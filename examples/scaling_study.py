#!/usr/bin/env python
"""Capacity planning: which jobs deserve more GPUs?

The paper's Section 7 conclusion is that the right cluster
configuration depends on the task's communication/computation balance,
"and to a certain degree each input set for a job".  This study sweeps
two contrasting jobs (compute-bound MM, communication-bound SIO) across
GPU counts and prints efficiency plus the Figure-2-style breakdown, so
the crossover where extra GPUs stop paying is visible.

    python examples/scaling_study.py
"""

from repro.harness import dataset_for, run_app
from repro.harness.report import render_table


def sweep(app: str, size: int, gpu_counts=(1, 4, 8, 16, 32, 64)):
    ds = dataset_for(app, size, seed=5)
    rows = []
    t1 = None
    for g in gpu_counts:
        run = run_app(app, ds, g)
        if t1 is None:
            t1 = run.elapsed
        eff = t1 / (g * run.elapsed)
        frac = run.stats.stage_fractions
        comm = frac["bin"] + frac["scheduler"]
        rows.append(
            [g, f"{run.elapsed:.4f}", f"{eff:.2f}", f"{frac['map']:.0%}",
             f"{frac['sort']:.0%}", f"{comm:.0%}"]
        )
    return rows


def main() -> None:
    headers = ["GPUs", "sim time (s)", "efficiency", "map", "sort", "comm+sched"]

    print(render_table(headers, sweep("MM", 16384),
                       title="Compute-bound: 16384^2 matrix multiply"))
    print("\n-> every GPU added keeps paying (map share stays dominant).\n")

    print(render_table(headers, sweep("SIO", 128 << 20),
                       title="Communication-bound: 128M-integer occurrence count"))
    print(
        "\n-> superlinear at 4 GPUs (pair set fits in core), then the network"
        "\n   take-over: past ~8 GPUs extra hardware mostly idles in waits."
    )


if __name__ == "__main__":
    main()

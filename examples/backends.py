#!/usr/bin/env python
"""Execution backends: one job, three ways to run it.

Builds a single Sparse Integer Occurrence job and executes it on

* ``sim``    — the discrete-event cluster simulation (modeled seconds),
* ``serial`` — the real dataflow, rank by rank, in this process,
* ``local``  — the real dataflow on 4 ``multiprocessing`` workers,

then verifies all three produced bit-identical per-rank outputs.
This is the repo's cross-validation story in miniature: the simulator's
functional answers are exactly what real parallel execution yields.

    python examples/backends.py
"""

import numpy as np

from repro.apps import sio_dataset, sio_job
from repro.core import available_backends, make_executor

N_WORKERS = 4
KEY_SPACE = 1 << 20


def main() -> None:
    dataset = sio_dataset(
        2 << 20, chunk_elements=300_000, key_space=KEY_SPACE, seed=2024
    )
    # Stealing is a sim-timing-driven rebalancing decision; disabling it
    # pins the deterministic round-robin placement all backends share.
    job = sio_job(key_space=KEY_SPACE).with_config(enable_stealing=False)

    print(f"available backends: {', '.join(available_backends())}")
    print(f"{dataset.n_chunks} chunks over {N_WORKERS} workers\n")

    results = {}
    for backend in ("sim", "serial", "local"):
        result = make_executor(backend, N_WORKERS).run(job, dataset)
        results[backend] = result
        kind = "modeled" if backend == "sim" else "wall-clock"
        pairs = sum(len(kv) for kv in result.outputs if kv is not None)
        print(
            f"{backend:>6}: {result.elapsed * 1e3:8.2f} ms {kind:<10} "
            f"{pairs:,d} reduced pairs"
        )

    ref = results["sim"]
    for backend in ("serial", "local"):
        for a, b in zip(ref.outputs, results[backend].outputs):
            assert (a is None) == (b is None)
            if a is not None:
                assert np.array_equal(a.keys, b.keys)
                assert a.values.tobytes() == b.values.tobytes()
    print("\nall backends agree bit-for-bit on every rank's output")


if __name__ == "__main__":
    main()

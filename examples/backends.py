#!/usr/bin/env python
"""Execution backends: one job, four ways to run it.

Builds a single Sparse Integer Occurrence job and executes it on the
requested backends (default: all of them)

* ``sim``     — the discrete-event cluster simulation (modeled seconds),
* ``serial``  — the real dataflow, rank by rank, in this process,
* ``local``   — the real dataflow on 4 ``multiprocessing`` workers,
* ``cluster`` — the real dataflow on 4 rank processes joined by the
  TCP socket shuffle fabric,

then verifies they all produced bit-identical per-rank outputs.
This is the repo's cross-validation story in miniature: the simulator's
functional answers are exactly what real parallel execution yields,
whether the shuffle rides in-node pipes or a real wire.

    python examples/backends.py
    python examples/backends.py --backend sim --backend cluster
    python examples/backends.py --fused            # fused map+combine kernel
    python examples/backends.py --accel torch      # device tier (if installed)
"""

import argparse

import numpy as np

from repro.apps import sio_dataset, sio_job
from repro.core import available_backends, make_executor

N_WORKERS = 4
KEY_SPACE = 1 << 20

ALL_BACKENDS = ("sim", "serial", "local", "cluster")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        action="append",
        choices=ALL_BACKENDS,
        default=None,
        help="backend to run (repeatable; default: all four)",
    )
    parser.add_argument(
        "--accel",
        choices=("numpy", "cupy", "torch"),
        default="numpy",
        help="array namespace for the map phase (numpy = parity tier)",
    )
    parser.add_argument(
        "--fused",
        action="store_true",
        help="collapse map + per-chunk combine into one namespace call",
    )
    args = parser.parse_args()
    if args.backend is None:
        args.backend = list(ALL_BACKENDS)
    return args


def main() -> None:
    args = parse_args()
    dataset = sio_dataset(
        2 << 20, chunk_elements=300_000, key_space=KEY_SPACE, seed=2024
    )
    # Stealing is a sim-timing-driven rebalancing decision; disabling it
    # pins the deterministic round-robin placement all backends share.
    job = sio_job(key_space=KEY_SPACE).with_config(enable_stealing=False)

    print(f"available backends: {', '.join(available_backends())}")
    print(f"{dataset.n_chunks} chunks over {N_WORKERS} workers\n")

    results = {}
    for backend in args.backend:
        result = make_executor(
            backend, N_WORKERS, accel=args.accel, fused=args.fused
        ).run(job, dataset)
        results[backend] = result
        kind = "modeled" if backend == "sim" else "wall-clock"
        pairs = sum(len(kv) for kv in result.outputs if kv is not None)
        print(
            f"{backend:>7}: {result.elapsed * 1e3:8.2f} ms {kind:<10} "
            f"{pairs:,d} reduced pairs"
        )

    if len(results) > 1:
        ref_name = "sim" if "sim" in results else args.backend[0]
        ref = results[ref_name]
        for backend, result in results.items():
            if backend == ref_name:
                continue
            for a, b in zip(ref.outputs, result.outputs):
                assert (a is None) == (b is None)
                if a is not None:
                    assert np.array_equal(a.keys, b.keys)
                    assert a.values.tobytes() == b.values.tobytes()
        others = ", ".join(b for b in results if b != ref_name)
        print(
            f"\n{ref_name} and {others} agree bit-for-bit on every "
            "rank's output"
        )


if __name__ == "__main__":
    main()

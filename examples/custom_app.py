#!/usr/bin/env python
"""Writing your own GPMR application: a log-histogram job.

Demonstrates the extension surface the paper emphasises — "every part
of the MapReduce pipeline is programmable by the user": a custom
Mapper (with its kernel cost descriptor), a custom Partitioner (block
ranges instead of round-robin), a Partial Reducer to shrink traffic,
and a Reducer.  The job buckets synthetic web-server response times
into a latency histogram.

    python examples/custom_app.py
"""

import numpy as np

from repro.core import (
    Chunk,
    GPMRRuntime,
    KeyValueSet,
    MapReduceJob,
    Mapper,
    BlockPartitioner,
    Reducer,
    SumPartialReducer,
)
from repro.primitives import launch_1d, segmented_reduce
from repro.workloads.base import Dataset, WorkItem
from repro.util.rng import generator

N_BUCKETS = 256  # logarithmic latency buckets


class LatencyDataset(Dataset):
    """Synthetic response times: log-normal with a heavy tail."""

    def __init__(self, n_events: int, chunk_events: int = 1 << 20, seed: int = 0):
        super().__init__(seed)
        self.n_events = n_events
        self.chunk_events = chunk_events

    @property
    def n_chunks(self) -> int:
        return -(-self.n_events // self.chunk_events)

    def chunk(self, index: int) -> WorkItem:
        self._check_index(index)
        lo = index * self.chunk_events
        n = min(self.chunk_events, self.n_events - lo)
        rng = generator(self.seed, stream=(index,))
        millis = rng.lognormal(mean=3.0, sigma=0.9, size=n).astype(np.float32)
        return WorkItem(index=index, data=millis, logical_items=n, logical_bytes=n * 4)


class BucketMapper(Mapper):
    """Map each latency to its log2 bucket, emitting <bucket, 1>."""

    def map_chunk(self, chunk: Chunk) -> KeyValueSet:
        millis = chunk.data
        buckets = np.clip(
            (np.log2(np.maximum(millis, 1e-3)) * 16 + 128).astype(np.int64),
            0,
            N_BUCKETS - 1,
        )
        return KeyValueSet(
            keys=buckets.astype(np.uint32),
            values=np.ones(len(buckets), dtype=np.int64),
            scale=chunk.scale,
        )

    def map_cost(self, chunk: Chunk):
        return [
            launch_1d(
                "latency_bucket",
                chunk.logical_items,
                flops_per_item=8.0,       # log2 + scale + clamp
                read_bytes_per_item=4.0,
                write_bytes_per_item=8.0,
            )
        ]


class HistogramReducer(Reducer):
    """Sum each bucket's partial counts."""

    def reduce_segments(self, keys, values, offsets, counts, scale) -> KeyValueSet:
        sums = segmented_reduce(values.astype(np.int64), offsets)
        return KeyValueSet(keys=keys, values=sums, scale=scale)

    def reduce_cost(self, n_values, n_keys):
        return [
            launch_1d(
                "histogram_reduce",
                n_values,
                flops_per_item=1.0,
                read_bytes_per_item=8.0,
            )
        ]


def main() -> None:
    dataset = LatencyDataset(n_events=8 << 20, seed=11)
    job = MapReduceJob(
        name="latency-histogram",
        mapper=BucketMapper(),
        reducer=HistogramReducer(),
        # Block partitioner: each rank owns a contiguous latency range,
        # so percentile queries stay rank-local.
        partitioner=BlockPartitioner(key_space=N_BUCKETS),
        # Only 256 distinct keys per chunk: partial reduction collapses
        # each chunk's million pairs to <=256 before the PCI-e transfer.
        partial_reducer=SumPartialReducer(),
        key_bytes=4,
        value_bytes=8,
        key_bits=8,
    )

    result = GPMRRuntime(n_gpus=4).run(job, dataset)
    merged = result.merged()
    hist = np.zeros(N_BUCKETS, dtype=np.int64)
    np.add.at(hist, merged.keys.astype(np.int64), merged.values.astype(np.int64))

    total = int(hist.sum())
    cdf = np.cumsum(hist) / total
    print(f"Histogrammed {total:,d} events on 4 simulated GPUs "
          f"in {result.elapsed * 1e3:.2f} ms simulated")
    for pct in (50, 90, 99, 99.9):
        bucket = int(np.searchsorted(cdf, pct / 100))
        latency = 2 ** ((bucket - 128) / 16)
        print(f"  p{pct:<5}: ~{latency:8.1f} ms  (bucket {bucket})")

    shuffled = result.stats.total_network_bytes
    print(f"\nNetwork traffic after partial reduction: {shuffled / 1e3:.1f} kB "
          f"(vs ~{8 * (8 << 20) / 1e6:.0f} MB without)")


if __name__ == "__main__":
    main()

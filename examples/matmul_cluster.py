#!/usr/bin/env python
"""Out-of-core matrix multiplication across a GPU cluster.

Reproduces the paper's flagship scaling result at example scale: a
4096x4096 single-precision multiply decomposed into panel tasks, run on
1..16 simulated GPUs, verified against NumPy, with the two-phase
(multiply, then partial-tile sum) structure of Section 5.3.1.

    python examples/matmul_cluster.py
"""


from repro.apps import mm_dataset, mm_validate, run_matmul


def main() -> None:
    # 4096^2 logical multiply; sample_factor=8 keeps the functional
    # arithmetic laptop-sized while costs stay at full scale.
    dataset = mm_dataset(m=4096, tile=1024, kspan=4, seed=7, sample_factor=8)
    print(
        f"Matrix multiply: {dataset.m}x{dataset.m} float32, "
        f"{dataset.n_chunks} phase-1 panel tasks "
        f"({dataset.grid}x{dataset.grid} tile grid, kspan={dataset.kspan})"
    )

    t1 = None
    for n_gpus in (1, 2, 4, 8, 16):
        result = run_matmul(n_gpus, dataset)
        mm_validate(result, dataset)  # exact vs NumPy on the sample
        if t1 is None:
            t1 = result.elapsed
        eff = t1 / (n_gpus * result.elapsed)
        frac = result.stats.stage_fractions
        print(
            f"  {n_gpus:>2} GPUs: {result.elapsed:7.3f} s simulated, "
            f"efficiency {eff:5.2f}, map share {frac['map']:5.1%}"
        )

    print("\nProduct verified against numpy on every run.")
    print("Phase-1 shuffles one partial tile per task; phase-2 sums per output tile.")


if __name__ == "__main__":
    main()

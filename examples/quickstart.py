#!/usr/bin/env python
"""Quickstart: count words with GPMR — simulated, then for real.

Runs the paper's Word Occurrence pipeline (minimal-perfect-hash keys,
on-GPU accumulation) over a synthetic corpus twice: on the ``"sim"``
backend (4 simulated GPUs with full cost accounting) and on a real
execution backend of your choice, checks the two agree bit-for-bit,
prints the top words, and shows where the simulated time went.

    python examples/quickstart.py                      # local (default)
    python examples/quickstart.py --backend cluster    # TCP socket fabric
    python examples/quickstart.py --backend sim        # simulation only
"""

import argparse

import numpy as np

from repro.apps import run_wo, wo_dataset, wo_mph
from repro.workloads import build_dictionary

BACKEND_LABELS = {
    "serial": "the real dataflow, rank by rank, in-process",
    "local": "4 real multiprocessing workers",
    "cluster": "4 rank processes over the TCP socket fabric",
}


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        choices=("sim", "serial", "local", "cluster"),
        default="local",
        help="execution backend for the real re-run "
        "(sim = run the simulation only; default: local)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    # A 32 MB corpus over a 5,000-word dictionary, split into 2 MB chunks.
    dataset = wo_dataset(
        n_chars=32 << 20, chunk_chars=2 << 20, n_words=5_000, seed=42
    )

    print("Running Word Occurrence on 4 simulated GPUs...")
    result = run_wo(4, dataset)

    if args.backend != "sim":
        print(f"Re-running the same job on {BACKEND_LABELS[args.backend]}...")
        real = run_wo(4, dataset, backend=args.backend)
        real_merged = real.merged()
        sim_merged_check = result.merged()
        assert np.array_equal(sim_merged_check.keys, real_merged.keys)
        assert np.array_equal(sim_merged_check.values, real_merged.values)
        print(
            f"sim and {args.backend} backends agree on all "
            f"{len(real_merged):,d} reduced pairs "
            f"({args.backend} wall time {real.elapsed:.2f}s)"
        )

    # The reduce output is a KeyValueSet of <mph-slot, count> pairs.
    merged = result.merged()
    counts = np.zeros(5_000, dtype=np.int64)
    np.add.at(counts, merged.keys.astype(np.int64), merged.values.astype(np.int64))

    # Invert the MPH to print actual words.
    words = list(build_dictionary(5_000))
    slot_of = wo_mph(5_000).lookup_words(words)
    word_of_slot = {int(s): w.decode() for s, w in zip(slot_of, words)}

    top = np.argsort(counts)[::-1][:10]
    print("\nTop 10 words:")
    for slot in top:
        print(f"  {word_of_slot[int(slot)]:>14}  {counts[slot]:>8,d}")
    print(f"\nTotal words counted: {counts.sum():,d}")

    stats = result.stats
    print(f"\nSimulated job time: {stats.elapsed * 1e3:.2f} ms on {stats.n_gpus} GPUs")
    print(f"Per-stage breakdown: {stats.describe()}")


if __name__ == "__main__":
    main()

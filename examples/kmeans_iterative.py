#!/usr/bin/env python
"""Iterative K-Means to convergence on a simulated GPU cluster.

The paper benchmarks a single KMC MapReduce iteration ("a full KMC
implementation repeats a fixed number of times or until convergence.
Our benchmark simply runs one iteration").  This example runs the full
iterative loop — one GPMR job per Lloyd step, feeding each step's
centres into the next — and reports convergence against the
ground-truth generating centres.

    python examples/kmeans_iterative.py
"""

import numpy as np

from repro.apps import kmc_dataset, kmc_extract_centers, kmc_job
from repro.core import GPMRRuntime


def main() -> None:
    k, dims, n_gpus = 12, 2, 8
    dataset = kmc_dataset(
        n_points=2 << 20, n_centers=k, dims=dims, chunk_points=256 << 10, seed=3
    )
    rt = GPMRRuntime(n_gpus=n_gpus)

    centers = dataset.start_centers()
    total_sim_time = 0.0
    print(f"K-Means: {dataset.n_points:,d} points, k={k}, {n_gpus} simulated GPUs")

    for iteration in range(1, 31):
        result = rt.run(kmc_job(dataset, centers=centers), dataset)
        new_centers, counts = kmc_extract_centers(result, k, dims, centers)
        shift = float(np.linalg.norm(new_centers - centers, axis=1).max())
        total_sim_time += result.elapsed
        print(
            f"  iter {iteration:>2}: max centre shift {shift:.6f}, "
            f"sim time {result.elapsed * 1e3:7.2f} ms, "
            f"cluster sizes {counts.min():,d}..{counts.max():,d}"
        )
        centers = new_centers
        if shift < 1e-3:
            print(f"\nConverged after {iteration} iterations.")
            break
    else:
        print("\nStopped at iteration cap.")

    # How close did we get to the generating centres?  Greedy matching.
    remaining = list(range(k))
    errs = []
    for c in centers:
        d = np.linalg.norm(dataset.true_centers[remaining] - c, axis=1)
        j = int(np.argmin(d))
        errs.append(float(d[j]))
        remaining.pop(j)
    print(f"Mean distance to generating centres: {np.mean(errs):.4f}")
    print(f"Total simulated time: {total_sim_time * 1e3:.1f} ms")


if __name__ == "__main__":
    main()

"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` also works on older pip/setuptools stacks that
lack PEP 660 editable-wheel support (they fall back to
``setup.py develop``, which needs no ``wheel`` package).
"""

from setuptools import setup

setup()

"""Rank-side endpoint of the cluster fabric.

A :class:`RankEndpoint` is everything one worker rank needs to take
part in a fabric run: a control connection to the coordinator and its
own shuffle listener for the data plane.  The full worker flow
(:meth:`run_job`) mirrors :mod:`repro.exec.local`'s ``_worker_main``
exactly — pull+map, all-to-all exchange, sort, reduce — with the
pickle-over-pipe queues replaced by framed TCP:

* **chunks are pulled, not pushed**: after the start barrier the rank
  requests work one chunk at a time over its control connection
  (``CHUNK_REQ`` -> ``CHUNK_GRANT``/``CHUNKS_DONE``), feeding each
  grant to an incremental :class:`~repro.exec.dataflow.MapRunner`.  A
  grant whose victim is another rank is a *steal* the coordinator's
  chunk service decided at runtime — dynamic load balancing over the
  real wire, externally launched ranks included.

* **exchange** is the same one-batch-per-(src, dst) protocol: after its
  map phase a rank opens one connection to every peer's shuffle
  listener, streams exactly one batch — a raw-codec ``BATCH`` header
  frame plus chunked ``BATCH_DATA`` frames, see
  :mod:`repro.fabric.stream` — and accepts exactly ``n-1`` inbound
  batches.  Self-destined parts never touch the wire, and batches
  larger than ``max_frame_bytes`` stream through it instead of dying.
  Outbound sends run on one thread per destination (the TCP analogue
  of ``mp.Queue``'s feeder thread) so a rank is always able to drain
  inbound batches while its own sends are still in flight — no
  send/recv interleaving deadlock at any batch size.
* **timing** buckets real wall-clock into the same Figure-2 stages
  (map / bin / sort / reduce) the sim charges modeled time to.

The endpoint is transport-complete for multi-host runs: the rank
itself states where its shuffle listener is reachable (``listen_host``
/ ``advertise_host``) rather than anyone inferring it, and everything
else is plain TCP — the same code joins a fabric from another host via
``python -m repro.fabric.launch``.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .stream import recv_batch, send_batch
from .wire import (
    MSG_ASSIGN,
    MSG_BARRIER,
    MSG_CHUNK_GRANT,
    MSG_CHUNK_REQ,
    MSG_CHUNKS_DONE,
    MSG_ERROR,
    MSG_HELLO,
    MSG_NAMES,
    MSG_RESULT,
    MSG_RESUME,
    MSG_WELCOME,
    DEFAULT_MAX_FRAME_BYTES,
    FabricError,
    PeerDisconnected,
    ProtocolError,
    ProtocolVersionError,
    recv_frame,
    send_frame,
)

__all__ = ["RankEndpoint", "run_rank"]

#: Accept-loop wake interval: how often exchange() re-checks its
#: deadline while waiting for inbound batches.
_POLL_SECONDS = 0.2


class RankEndpoint:
    """One rank's connections into the fabric (control + shuffle)."""

    def __init__(
        self,
        rank: int,
        coordinator: Tuple[str, int],
        listen_host: str = "127.0.0.1",
        advertise_host: Optional[str] = None,
        timeout_seconds: float = 120.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.rank = int(rank)
        self.coordinator_address = tuple(coordinator)
        self.timeout_seconds = float(timeout_seconds)
        self.max_frame_bytes = int(max_frame_bytes)
        # Data plane first: the listener must exist before HELLO
        # advertises it, so no peer can ever dial a closed port.
        self._shuffle_listener = socket.create_server((listen_host, 0), backlog=16)
        self._shuffle_listener.settimeout(_POLL_SECONDS)
        port = self._shuffle_listener.getsockname()[1]
        self.shuffle_address = (advertise_host or listen_host, port)
        self._control: Optional[socket.socket] = None
        self.n_workers: Optional[int] = None
        self.peers: Dict[int, Tuple[str, int]] = {}
        #: wire frames this rank's outbound shuffle used (BATCH +
        #: BATCH_DATA, summed over destinations) — the coalescing
        #: effectiveness measure surfaced as WorkerStats.shuffle_frames_sent
        self.frames_sent = 0
        self._frames_lock = threading.Lock()
        #: zlib-deflate outbound shuffle chunks (the driver's choice,
        #: learned from ASSIGN; receivers accept either form always)
        self.compress_exchange = False

    # -- control plane -----------------------------------------------------
    def connect(self) -> None:
        """Dial the coordinator, register, and learn the cluster size."""
        self._control = socket.create_connection(
            self.coordinator_address, timeout=self.timeout_seconds
        )
        send_frame(
            self._control,
            MSG_HELLO,
            {"rank": self.rank, "shuffle_address": self.shuffle_address},
            max_frame_bytes=self.max_frame_bytes,
        )
        _, welcome = recv_frame(
            self._control, max_frame_bytes=self.max_frame_bytes, expect=MSG_WELCOME
        )
        self.n_workers = int(welcome["n_workers"])
        self.max_frame_bytes = int(
            welcome.get("max_frame_bytes", self.max_frame_bytes)
        )

    def receive_assignment(self) -> Any:
        """Block for ASSIGN; returns the job and stores the peer map.

        Chunks are not in the frame — the rank pulls them one at a
        time via :meth:`request_chunk` after the start barrier.
        """
        _, assign = recv_frame(
            self._control, max_frame_bytes=self.max_frame_bytes, expect=MSG_ASSIGN
        )
        self.n_workers = int(assign["n_workers"])
        self.peers = {int(r): tuple(a) for r, a in assign["peers"].items()}
        self.compress_exchange = bool(assign.get("compress_exchange", False))
        # The job travels as a nested blob, pickled once for all ranks.
        return pickle.loads(assign["job_pickle"])

    def request_chunk(self) -> Optional[Tuple[Any, int]]:
        """Pull the rank's next chunk from the coordinator's service.

        Returns ``(chunk, victim_rank)``, or ``None`` once the
        coordinator answers CHUNKS_DONE.  A grant whose victim is not
        this rank was stolen from that rank's queue at runtime.
        """
        send_frame(
            self._control, MSG_CHUNK_REQ, {"rank": self.rank},
            max_frame_bytes=self.max_frame_bytes,
        )
        msg_type, payload = recv_frame(
            self._control, max_frame_bytes=self.max_frame_bytes
        )
        if msg_type == MSG_CHUNKS_DONE:
            return None
        if msg_type != MSG_CHUNK_GRANT:
            raise FabricError(
                f"expected CHUNK_GRANT or CHUNKS_DONE, got "
                f"{MSG_NAMES.get(msg_type, msg_type)}"
            )
        return payload["chunk"], int(payload["victim"])

    def barrier(self, name: str = "start") -> None:
        """Report arrival at ``name`` and block until RESUME."""
        send_frame(self._control, MSG_BARRIER, {"name": name},
                   max_frame_bytes=self.max_frame_bytes)
        _, resume = recv_frame(
            self._control, max_frame_bytes=self.max_frame_bytes, expect=MSG_RESUME
        )
        if resume.get("name") != name:
            raise FabricError(
                f"resumed from barrier {resume.get('name')!r}, expected {name!r}"
            )

    def send_result(self, output: Any, stats: Any) -> None:
        send_frame(
            self._control,
            MSG_RESULT,
            {"rank": self.rank, "output": output, "stats": stats},
            max_frame_bytes=self.max_frame_bytes,
        )

    def send_error(self, tb: str, stats: Any = None) -> None:
        send_frame(
            self._control,
            MSG_ERROR,
            {"rank": self.rank, "traceback": tb, "stats": stats},
            max_frame_bytes=self.max_frame_bytes,
        )

    # -- data plane: the all-to-all exchange -------------------------------
    def _send_batch(self, dest: int, parts: Sequence[Any]) -> None:
        counters: Dict[str, int] = {}
        with socket.create_connection(
            self.peers[dest], timeout=self.timeout_seconds
        ) as sock:
            send_batch(
                sock,
                self.rank,
                parts,
                max_frame_bytes=self.max_frame_bytes,
                compress=self.compress_exchange,
                counters=counters,
            )
        with self._frames_lock:
            self.frames_sent += counters.get("frames", 0)

    def exchange(
        self, parts_for: Sequence[Sequence[Any]]
    ) -> List[Tuple[int, List[Any]]]:
        """Run the one-batch-per-(src, dst) all-to-all shuffle.

        ``parts_for[dest]`` is this rank's emission list for ``dest``.
        Returns ``(source_rank, parts)`` batches for *every* source
        including self, in arrival order (callers canonicalise with
        :func:`repro.exec.dataflow.merge_incoming`).
        """
        assert self.n_workers is not None, "exchange before connect()"
        n = self.n_workers
        errors: List[BaseException] = []

        def _sender(dest: int) -> None:
            try:
                self._send_batch(dest, parts_for[dest])
            except BaseException as exc:  # surfaced after the joins
                errors.append(exc)

        senders = [
            threading.Thread(
                target=_sender, args=(dest,), name=f"gpmr-shuffle-to-{dest}",
                daemon=True,
            )
            for dest in range(n)
            if dest != self.rank
        ]
        for t in senders:
            t.start()

        batches: List[Tuple[int, List[Any]]] = [
            (self.rank, list(parts_for[self.rank]))
        ]
        deadline = time.monotonic() + self.timeout_seconds
        while len(batches) < n:
            if time.monotonic() > deadline:
                got = sorted(src for src, _ in batches)
                raise FabricError(
                    f"rank {self.rank} shuffle timed out after "
                    f"{self.timeout_seconds}s; received batches only from "
                    f"{got}"
                )
            try:
                conn, _addr = self._shuffle_listener.accept()
            except socket.timeout:
                continue
            try:
                with conn:
                    conn.settimeout(self.timeout_seconds)
                    src, parts = recv_batch(
                        conn, max_frame_bytes=self.max_frame_bytes
                    )
            except ProtocolVersionError:
                raise  # a version-skewed peer is a real failure
            except (ProtocolError, PeerDisconnected, socket.timeout):
                continue  # stray connection (scanner, health check); drop it
            batches.append((int(src), parts))

        for t in senders:
            t.join(timeout=self.timeout_seconds)
        if errors:
            raise FabricError(
                f"rank {self.rank} failed sending shuffle batches: {errors[0]}"
            ) from errors[0]
        return batches

    # -- full worker flow --------------------------------------------------
    def run_job(self) -> None:
        """Handshake, then execute the complete GPMR worker dataflow.

        Wall-clock lands in the sim's Figure-2 buckets: ``map`` covers
        the map phase, ``bin`` the exposed exchange time, ``sort`` and
        ``reduce`` are recorded inside ``reduce_worker``.
        """
        # Imported here so repro.fabric stays importable without the
        # exec package (the wire layer is dependency-free).
        from ..core.stats import WorkerStats
        from ..exec.dataflow import MapRunner, merge_incoming, reduce_worker

        stats = WorkerStats(rank=self.rank)
        posted = False
        try:
            job = self.receive_assignment()
            self.barrier("start")

            t0 = time.perf_counter()
            runner = MapRunner(job, self.n_workers)
            while True:
                grant = self.request_chunk()
                if grant is None:
                    break
                chunk, victim = grant
                if victim != self.rank:
                    stats.chunks_stolen += 1
                runner.feed(chunk)
            mapped = runner.finish()
            stats.chunks_mapped = mapped.chunks_mapped
            stats.pairs_emitted_logical = mapped.pairs_emitted_logical
            stats.bytes_sent_network = mapped.bytes_remote(self.rank)
            stats.bytes_kept_local = mapped.bytes_self(self.rank)
            t1 = time.perf_counter()
            stats.add("map", t1 - t0)

            posted = True  # exchange() sends every outbound batch itself
            batches = self.exchange(mapped.parts)
            incoming = merge_incoming(batches)
            t2 = time.perf_counter()
            stats.add("bin", t2 - t1)
            stats.shuffle_frames_sent = self.frames_sent

            output = reduce_worker(job, incoming, stats=stats)
            self.send_result(output, stats)
        except BaseException:
            if not posted and self.peers:
                # Unblock peers waiting on this rank's batch (the same
                # empty-batch courtesy the local backend's failing
                # workers extend), so survivors finish promptly instead
                # of running out their shuffle deadlines.
                for dest in range(self.n_workers or 0):
                    if dest == self.rank:
                        continue
                    try:
                        self._send_batch(dest, [])
                    except (OSError, FabricError):
                        pass  # peer already gone; its own deadline covers it
            # A failure that reaches the coordinator as an ERROR frame is
            # a *reported* failure (the rank then exits cleanly, like the
            # local backend's workers).  Only if shipping the traceback
            # itself fails does the exception propagate — the process
            # then dies visibly and the driver's liveness watch fires.
            self.send_error(traceback.format_exc(), stats)

    def close(self) -> None:
        if self._control is not None:
            try:
                self._control.close()
            except OSError:
                pass
            self._control = None
        try:
            self._shuffle_listener.close()
        except OSError:
            pass

    def __enter__(self) -> "RankEndpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_rank(
    rank: int,
    coordinator: Tuple[str, int],
    listen_host: str = "127.0.0.1",
    advertise_host: Optional[str] = None,
    timeout_seconds: float = 120.0,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Join the fabric as ``rank`` and run one job end to end.

    The in-process entry point behind ``python -m repro.fabric.launch``
    and the process target :class:`repro.exec.cluster.ClusterExecutor`
    spawns for local ranks.
    """
    with RankEndpoint(
        rank,
        coordinator,
        listen_host=listen_host,
        advertise_host=advertise_host,
        timeout_seconds=timeout_seconds,
        max_frame_bytes=max_frame_bytes,
    ) as endpoint:
        endpoint.connect()
        endpoint.run_job()

"""Rank-side endpoint of the cluster fabric.

A :class:`RankEndpoint` is everything one worker rank needs to take
part in a fabric run: a control connection to the coordinator and its
own shuffle listener for the data plane.  The full worker flow
(:meth:`run_job`) mirrors :mod:`repro.exec.local`'s ``_worker_main``
exactly — pull+map, all-to-all exchange, sort, reduce — with the
pickle-over-pipe queues replaced by framed TCP:

* **chunks are pulled, not pushed**: after the start barrier the rank
  requests work one chunk at a time over its control connection
  (``CHUNK_REQ`` -> ``CHUNK_GRANT``/``CHUNKS_DONE``), feeding each
  grant to an incremental :class:`~repro.exec.dataflow.MapRunner`.  A
  grant whose victim is another rank is a *steal* the coordinator's
  chunk service decided at runtime — dynamic load balancing over the
  real wire, externally launched ranks included.

* **exchange** is the same one-batch-per-(src, dst) protocol: after its
  map phase a rank opens one connection to every peer's shuffle
  listener, streams exactly one batch — a raw-codec ``BATCH`` header
  frame plus chunked ``BATCH_DATA`` frames, see
  :mod:`repro.fabric.stream` — and accepts exactly ``n-1`` inbound
  batches.  Self-destined parts never touch the wire, and batches
  larger than ``max_frame_bytes`` stream through it instead of dying.
  Outbound sends run on one thread per destination (the TCP analogue
  of ``mp.Queue``'s feeder thread) so a rank is always able to drain
  inbound batches while its own sends are still in flight — no
  send/recv interleaving deadlock at any batch size.
* **timing** buckets real wall-clock into the same Figure-2 stages
  (map / bin / sort / reduce) the sim charges modeled time to.

The endpoint is transport-complete for multi-host runs: the rank
itself states where its shuffle listener is reachable (``listen_host``
/ ``advertise_host``) rather than anyone inferring it, and everything
else is plain TCP — the same code joins a fabric from another host via
``python -m repro.fabric.launch``.
"""

from __future__ import annotations

import os
import pickle
import signal
import socket
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .stream import recv_batch, send_batch
from .wire import (
    MSG_ASSIGN,
    MSG_BARRIER,
    MSG_BATCH_ACK,
    MSG_CHUNK_GRANT,
    MSG_CHUNK_REQ,
    MSG_CHUNKS_DONE,
    MSG_ERROR,
    MSG_HELLO,
    MSG_MAPS_DONE,
    MSG_NAMES,
    MSG_RESULT,
    MSG_RESUME,
    MSG_WELCOME,
    DEFAULT_MAX_FRAME_BYTES,
    AuthenticationError,
    FabricError,
    PeerDisconnected,
    ProtocolError,
    ProtocolVersionError,
    answer_challenge,
    recv_frame,
    recv_raw_frame,
    send_frame,
    send_raw_frame,
)
from ..obs import BYTES_BUCKETS, NULL_OBS, Observability

__all__ = ["RankEndpoint", "run_rank"]

#: Accept-loop wake interval: how often exchange() re-checks its
#: deadline while waiting for inbound batches.
_POLL_SECONDS = 0.2


class RankEndpoint:
    """One rank's connections into the fabric (control + shuffle)."""

    def __init__(
        self,
        rank: int,
        coordinator: Tuple[str, int],
        listen_host: str = "127.0.0.1",
        advertise_host: Optional[str] = None,
        timeout_seconds: float = 120.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        listen_port: int = 0,
        rejoin: bool = False,
        auth_key: Optional[bytes] = None,
    ) -> None:
        self.rank = int(rank)
        self.coordinator_address = tuple(coordinator)
        self.timeout_seconds = float(timeout_seconds)
        self.max_frame_bytes = int(max_frame_bytes)
        #: shared secret for the coordinator's HMAC handshake; must
        #: match the coordinator's key (or be None when it has none)
        self.auth_key = auth_key
        #: True when this endpoint is a replacement incarnation joining
        #: a run already past its start barrier (its HELLO says so, and
        #: :meth:`run_job` skips the barrier)
        self.rejoin = bool(rejoin)
        # Data plane first: the listener must exist before HELLO
        # advertises it, so no peer can ever dial a closed port.  A
        # replacement binds its predecessor's exact port
        # (``listen_port``) so every surviving peer's directory stays
        # valid — retrying EADDRINUSE, because a survivor's outbound
        # retry can transiently occupy the freed port (loopback
        # self-connect / ephemeral source-port collision) until its
        # next backoff releases it.
        bind_deadline = time.monotonic() + self.timeout_seconds
        while True:
            try:
                self._shuffle_listener = socket.create_server(
                    (listen_host, int(listen_port)), backlog=16
                )
                break
            except OSError:
                if int(listen_port) == 0 or time.monotonic() > bind_deadline:
                    raise
                time.sleep(0.1)
        self._shuffle_listener.settimeout(_POLL_SECONDS)
        port = self._shuffle_listener.getsockname()[1]
        self.shuffle_address = (advertise_host or listen_host, port)
        self._control: Optional[socket.socket] = None
        self.n_workers: Optional[int] = None
        self.peers: Dict[int, Tuple[str, int]] = {}
        #: membership epoch last observed on a coordinator frame
        self.epoch = 0
        #: scripted fault injection, learned from ASSIGN
        self._kill_at_chunk: Optional[int] = None
        self._stall_seconds = 0.0
        self._grants_received = 0
        #: wire frames this rank's outbound shuffle used (BATCH +
        #: BATCH_DATA, summed over destinations) — the coalescing
        #: effectiveness measure surfaced as WorkerStats.shuffle_frames_sent
        self.frames_sent = 0
        self._frames_lock = threading.Lock()
        #: zlib-deflate outbound shuffle chunks (the driver's choice,
        #: learned from ASSIGN; receivers accept either form always)
        self.compress_exchange = False
        #: rank-side observability bundle, armed by the ``obs`` flag on
        #: ASSIGN; the export payload rides home on the RESULT frame
        self.obs = NULL_OBS
        #: grant pipelining depth, learned from ASSIGN: up to
        #: ``1 + prefetch_window`` CHUNK_REQ frames ride ahead of their
        #: answers so the next grant is usually already buffered while
        #: the current chunk maps (0 = fully synchronous request/reply)
        self.prefetch_window = 0
        #: CHUNK_REQ frames sent but not yet answered
        self._pending_reqs = 0
        #: a non-retry CHUNKS_DONE arrived; stop topping up and drain
        self._draining = False
        # Early-exchange inbox: a background thread accepts inbound
        # shuffle batches while this rank is still mapping, so the
        # exchange barrier only waits for genuinely late data.
        self._inbox_lock = threading.Lock()
        self._inbox_batches: List[Tuple[int, List[Any], Optional[List[int]]]] = []
        self._inbox_have: set = set()
        self._inbox_error: Optional[BaseException] = None
        self._inbox_stop = threading.Event()
        self._inbox_thread: Optional[threading.Thread] = None
        #: set once MAPS_DONE is on the wire — inbound batches may not
        #: be ACKed before this (see :meth:`_inbox_loop`)
        self._posted_event = threading.Event()

    # -- control plane -----------------------------------------------------
    def connect(self) -> None:
        """Dial the coordinator, register, and learn the cluster size."""
        self._control = socket.create_connection(
            self.coordinator_address, timeout=self.timeout_seconds
        )
        if self.auth_key is not None:
            # The coordinator challenges first thing on accept; answer
            # before any other frame goes out.
            answer_challenge(
                self._control, self.auth_key,
                max_frame_bytes=self.max_frame_bytes,
            )
        send_frame(
            self._control,
            MSG_HELLO,
            {"rank": self.rank, "shuffle_address": self.shuffle_address,
             "rejoin": self.rejoin},
            max_frame_bytes=self.max_frame_bytes,
        )
        try:
            _, welcome = recv_frame(
                self._control, max_frame_bytes=self.max_frame_bytes,
                expect=MSG_WELCOME,
            )
        except ProtocolError as exc:
            if "AUTH_CHALLENGE" in str(exc):
                # A keyed coordinator challenged us and we had nothing
                # to answer with — name the fix, not the symptom.
                raise AuthenticationError(
                    "coordinator requires an auth key but this rank has "
                    "none configured (pass auth_key= / --auth-key-env)"
                ) from exc
            raise
        self.n_workers = int(welcome["n_workers"])
        self.max_frame_bytes = int(
            welcome.get("max_frame_bytes", self.max_frame_bytes)
        )
        self.epoch = int(welcome.get("epoch", 0))

    def receive_assignment(self) -> Any:
        """Block for ASSIGN; returns the job and stores the peer map.

        Chunks are not in the frame — the rank pulls them one at a
        time via :meth:`request_chunk` after the start barrier.
        """
        _, assign = recv_frame(
            self._control, max_frame_bytes=self.max_frame_bytes, expect=MSG_ASSIGN
        )
        self.n_workers = int(assign["n_workers"])
        self.peers = {int(r): tuple(a) for r, a in assign["peers"].items()}
        self.compress_exchange = bool(assign.get("compress_exchange", False))
        self.epoch = int(assign.get("epoch", self.epoch))
        if assign.get("obs"):
            self.obs = Observability()
        self.prefetch_window = max(0, int(assign.get("prefetch", 0)))
        fault = assign.get("fault") or {}
        self._kill_at_chunk = fault.get("kill_at_chunk")
        self._stall_seconds = float(fault.get("stall_seconds", 0.0))
        # The job travels as a nested blob, pickled once for all ranks.
        return pickle.loads(assign["job_pickle"])

    def request_chunk(self) -> Optional[Tuple[Any, int]]:
        """Pull the rank's next chunk from the coordinator's service.

        Returns ``(chunk, victim_rank)``, or ``None`` once the
        coordinator answers CHUNKS_DONE and every in-flight request has
        drained.  Requests are *pipelined*: up to
        ``1 + prefetch_window`` CHUNK_REQ frames ride ahead of their
        answers, so the grant for chunk ``i+1`` is usually already in
        the socket buffer while chunk ``i`` is mapping and the
        ``grant_wait`` span measures only the exposed wait.  The
        coordinator answers strictly one frame per request, so the
        drain never leaves an answer unread (an unread grant would
        strand a chunk the service considers delivered).

        A grant whose victim is not this rank was stolen from that
        rank's queue at runtime.  A ``retry``-flagged CHUNKS_DONE
        (speculation may still free up work) re-opens the window after
        a short sleep.  Scripted fault injection from ASSIGN lives
        here: ``stall_seconds`` sleeps before every round, and the rank
        SIGKILLs itself upon receiving its ``kill_at_chunk``-th grant —
        genuinely mid-map, with requests possibly still in flight
        exactly like a real crash (recovery reclaims any grant the
        coordinator answered into the dead connection, because the
        rank never posted).
        """
        obs = self.obs
        while True:
            if self._stall_seconds:
                time.sleep(self._stall_seconds)
            while (
                not self._draining
                and self._pending_reqs < 1 + self.prefetch_window
            ):
                send_frame(
                    self._control, MSG_CHUNK_REQ, {"rank": self.rank},
                    max_frame_bytes=self.max_frame_bytes,
                )
                self._pending_reqs += 1
            if self._draining and self._pending_reqs == 0:
                return None
            w0 = time.time()
            msg_type, payload = recv_frame(
                self._control, max_frame_bytes=self.max_frame_bytes
            )
            self._pending_reqs -= 1
            if obs.enabled:
                w1 = time.time()
                obs.tracer.add_span("grant_wait", w0, w1, rank=self.rank)
                obs.metrics.histogram("grant_latency_s").observe(w1 - w0)
            if isinstance(payload, dict) and "epoch" in payload:
                self.epoch = int(payload["epoch"])
            if msg_type == MSG_CHUNKS_DONE:
                if payload.get("retry"):
                    self._draining = False
                    time.sleep(0.02)
                    continue
                self._draining = True
                continue
            if msg_type != MSG_CHUNK_GRANT:
                raise FabricError(
                    f"expected CHUNK_GRANT or CHUNKS_DONE, got "
                    f"{MSG_NAMES.get(msg_type, msg_type)}"
                )
            self._draining = False
            self._grants_received += 1
            if (
                self._kill_at_chunk is not None
                and self._grants_received >= self._kill_at_chunk
            ):
                # Die exactly as "kill -9" would: no cleanup, no
                # courtesy batches, the grant never mapped.
                os.kill(os.getpid(), signal.SIGKILL)
            return payload["chunk"], int(payload["victim"])

    def barrier(self, name: str = "start") -> None:
        """Report arrival at ``name`` and block until RESUME."""
        w0 = time.time()
        send_frame(self._control, MSG_BARRIER, {"name": name},
                   max_frame_bytes=self.max_frame_bytes)
        _, resume = recv_frame(
            self._control, max_frame_bytes=self.max_frame_bytes, expect=MSG_RESUME
        )
        self.obs.tracer.add_span(
            "barrier_wait", w0, time.time(), rank=self.rank, barrier=name
        )
        if resume.get("name") != name:
            raise FabricError(
                f"resumed from barrier {resume.get('name')!r}, expected {name!r}"
            )

    def send_result(self, output: Any, stats: Any) -> None:
        send_frame(
            self._control,
            MSG_RESULT,
            {"rank": self.rank, "output": output, "stats": stats,
             "obs": self.obs.export()},
            max_frame_bytes=self.max_frame_bytes,
        )

    def send_error(self, tb: str, stats: Any = None) -> None:
        send_frame(
            self._control,
            MSG_ERROR,
            {"rank": self.rank, "traceback": tb, "stats": stats},
            max_frame_bytes=self.max_frame_bytes,
        )

    # -- data plane: the all-to-all exchange -------------------------------
    def _send_batch(
        self,
        dest: int,
        parts: Sequence[Any],
        chunk_ids: Optional[Sequence[int]] = None,
        *,
        confirm: bool = True,
    ) -> None:
        """Deliver one batch to ``dest``, confirmed, retrying until then.

        A send is only *delivered* when the receiver's BATCH_ACK comes
        back — bytes accepted into a dead peer's kernel buffers are
        not.  Any failure (refused connect while a replacement rank is
        still rebinding its predecessor's port, a reset when the peer
        died mid-receive, an unacknowledged batch) reconnects and
        resends the whole batch until the deadline.  Receivers
        deduplicate by source rank, so a batch that was delivered but
        whose ACK was lost is simply dropped on the resend.
        """
        deadline = time.monotonic() + self.timeout_seconds
        obs = self.obs
        attempt = 0
        while True:
            attempt += 1
            if attempt > 1:
                # The previous attempt died unconfirmed; the whole
                # batch goes again (receivers dedup by source rank).
                obs.tracer.event("batch_resend", rank=self.rank, dest=dest,
                                 attempt=attempt)
                obs.metrics.counter("batch_resends").inc()
            counters: Dict[str, int] = {}
            s0 = time.time()
            try:
                with socket.create_connection(
                    self.peers[dest], timeout=self.timeout_seconds
                ) as sock:
                    if sock.getsockname() == sock.getpeername():
                        # Loopback self-connect: retrying into a dead
                        # peer's freed port can TCP-simultaneous-open
                        # onto itself, which both fakes a connection
                        # and blocks the replacement rank from
                        # rebinding that port.  Abort and back off.
                        raise OSError("self-connected to own ephemeral port")
                    sock.settimeout(self.timeout_seconds)
                    send_batch(
                        sock,
                        self.rank,
                        parts,
                        max_frame_bytes=self.max_frame_bytes,
                        compress=self.compress_exchange,
                        counters=counters,
                        chunk_ids=chunk_ids,
                    )
                    if confirm:
                        recv_raw_frame(
                            sock,
                            max_frame_bytes=self.max_frame_bytes,
                            expect=MSG_BATCH_ACK,
                        )
                break
            except (OSError, FabricError):
                if not confirm or time.monotonic() + 0.25 > deadline:
                    raise
                time.sleep(0.25)
        if obs.enabled:
            s1 = time.time()
            obs.tracer.add_span("shuffle_send", s0, s1, rank=self.rank,
                                dest=dest)
            obs.metrics.histogram("shuffle_batch_s").observe(s1 - s0)
            obs.metrics.histogram(
                "shuffle_batch_bytes", bounds=BYTES_BUCKETS
            ).observe(counters.get("bytes", 0))
        with self._frames_lock:
            self.frames_sent += counters.get("frames", 0)

    def start_inbox(self) -> None:
        """Begin accepting inbound shuffle batches in the background.

        :meth:`run_job` starts the inbox *before* its map loop: a peer
        that finishes mapping early streams its batch into this rank
        while it is still mapping, so the exchange barrier afterwards
        only waits for genuinely late data — the early-reduce overlap.
        Idempotent; :meth:`exchange` starts it lazily for direct
        callers.

        ACK discipline: a batch that arrives before this rank has
        posted MAPS_DONE is received and buffered, but its BATCH_ACK is
        *withheld* until the rank posts.  An ACK confirms delivery, and
        a rank that dies mid-map must look undelivered-to — recovery
        respawns it and reclaims exactly its un-posted map phase, so
        its senders must resend to the replacement incarnation.  An
        early ACK would let a batch vanish with the dead process.
        """
        if self._inbox_thread is not None:
            return
        assert self.n_workers is not None, "inbox before connect()"
        expected = self.n_workers - 1
        self._inbox_thread = threading.Thread(
            target=self._inbox_loop, args=(expected,),
            name=f"gpmr-inbox-{self.rank}", daemon=True,
        )
        self._inbox_thread.start()

    def _inbox_loop(self, expected: int) -> None:
        """Accept, dedup, and buffer inbound batches until all arrive.

        Every fully received batch is confirmed with BATCH_ACK (held
        back until MAPS_DONE is posted, see :meth:`start_inbox`); a
        second batch from a source that already delivered (its ACK got
        lost, or a speculative-recovery resend) is acknowledged and
        dropped by the dedup on source rank.
        """
        unacked: List[socket.socket] = []

        def _flush_acks() -> None:
            for held in unacked:
                try:
                    send_raw_frame(
                        held, MSG_BATCH_ACK, b"",
                        max_frame_bytes=self.max_frame_bytes,
                    )
                except (OSError, FabricError):
                    pass  # sender abandoned this attempt; dedup covers it
                try:
                    held.close()
                except OSError:
                    pass
            unacked.clear()

        try:
            while not self._inbox_stop.is_set():
                if self._posted_event.is_set() and unacked:
                    _flush_acks()
                with self._inbox_lock:
                    done = len(self._inbox_have) >= expected
                if done and not unacked:
                    break
                try:
                    conn, _addr = self._shuffle_listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed; shutdown path
                try:
                    conn.settimeout(self.timeout_seconds)
                    src, parts, tags = recv_batch(
                        conn, max_frame_bytes=self.max_frame_bytes
                    )
                except ProtocolVersionError:
                    conn.close()
                    raise  # a version-skewed peer is a real failure
                except (ProtocolError, PeerDisconnected, socket.timeout,
                        OSError):
                    conn.close()  # stray or abandoned connection; drop it
                    continue
                with self._inbox_lock:
                    if int(src) not in self._inbox_have:
                        self._inbox_have.add(int(src))
                        self._inbox_batches.append((int(src), parts, tags))
                if self._posted_event.is_set():
                    try:
                        send_raw_frame(
                            conn, MSG_BATCH_ACK, b"",
                            max_frame_bytes=self.max_frame_bytes,
                        )
                    except (OSError, FabricError):
                        pass  # sender resends; the dedup drops the copy
                    conn.close()
                else:
                    unacked.append(conn)
        except BaseException as exc:
            self._inbox_error = exc
        finally:
            _flush_acks()

    def exchange(
        self,
        parts_for: Sequence[Sequence[Any]],
        chunk_ids_for: Optional[Sequence[Sequence[int]]] = None,
    ) -> List[Tuple[int, List[Any], Optional[List[int]]]]:
        """Run the one-batch-per-(src, dst) all-to-all shuffle.

        ``parts_for[dest]`` is this rank's emission list for ``dest``;
        ``chunk_ids_for`` (optional) the matching provenance tags.
        Returns ``(source_rank, parts, chunk_ids)`` batches for *every*
        source including self, in arrival order (callers canonicalise
        with :func:`repro.exec.dataflow.merge_incoming`).  Inbound
        batches are collected by the background inbox (possibly running
        since before this rank's map phase ended — see
        :meth:`start_inbox`); this method starts the senders, waits the
        inbox out, and joins.
        """
        assert self.n_workers is not None, "exchange before connect()"
        n = self.n_workers
        errors: List[BaseException] = []

        def _sender(dest: int) -> None:
            try:
                self._send_batch(
                    dest,
                    parts_for[dest],
                    None if chunk_ids_for is None else chunk_ids_for[dest],
                )
            except BaseException as exc:  # surfaced after the joins
                errors.append(exc)

        senders = [
            threading.Thread(
                target=_sender, args=(dest,), name=f"gpmr-shuffle-to-{dest}",
                daemon=True,
            )
            for dest in range(n)
            if dest != self.rank
        ]
        for t in senders:
            t.start()

        # By the time exchange runs the map/post boundary has passed
        # (run_job posts MAPS_DONE first; direct callers have no map
        # phase at all), so withheld ACKs may flush.
        self._posted_event.set()
        self.start_inbox()

        self_tags = (
            None if chunk_ids_for is None else list(chunk_ids_for[self.rank])
        )
        deadline = time.monotonic() + self.timeout_seconds
        while True:
            if self._inbox_error is not None:
                raise FabricError(
                    f"rank {self.rank} inbox failed: {self._inbox_error}"
                ) from self._inbox_error
            with self._inbox_lock:
                count = len(self._inbox_have)
                have = set(self._inbox_have)
            if count >= n - 1:
                break
            if time.monotonic() > deadline:
                raise FabricError(
                    f"rank {self.rank} shuffle timed out after "
                    f"{self.timeout_seconds}s; received batches only from "
                    f"{sorted(have | {self.rank})}"
                )
            time.sleep(_POLL_SECONDS / 4)
        self._inbox_thread.join(timeout=self.timeout_seconds)

        for t in senders:
            t.join(timeout=self.timeout_seconds)
        if errors:
            raise FabricError(
                f"rank {self.rank} failed sending shuffle batches: {errors[0]}"
            ) from errors[0]
        with self._inbox_lock:
            batches = [(self.rank, list(parts_for[self.rank]), self_tags)]
            batches.extend(self._inbox_batches)
        return batches

    # -- full worker flow --------------------------------------------------
    def run_job(self) -> None:
        """Handshake, then execute the complete GPMR worker dataflow.

        Wall-clock lands in the sim's Figure-2 buckets: ``map`` covers
        the map phase, ``bin`` the exposed exchange time, ``sort`` and
        ``reduce`` are recorded inside ``reduce_worker``.
        """
        # Imported here so repro.fabric stays importable without the
        # exec package (the wire layer is dependency-free).
        from ..core.stats import WorkerStats
        from ..exec.dataflow import MapRunner, merge_incoming, reduce_worker

        stats = WorkerStats(rank=self.rank)
        posted = False
        try:
            job = self.receive_assignment()
            if not self.rejoin:
                # A replacement rank joins mid-run: the start barrier
                # already released while its predecessor was alive.
                self.barrier("start")

            tracer = self.obs.tracer
            t0 = time.perf_counter()
            runner = MapRunner(job, self.n_workers)
            # Accept peers' batches concurrently with our own map phase
            # (early-exchange overlap; ACKs withheld until we post).
            self.start_inbox()
            while True:
                grant = self.request_chunk()
                if grant is None:
                    break
                chunk, victim = grant
                if victim != self.rank:
                    stats.chunks_stolen += 1
                w0 = time.time()
                runner.feed(chunk)
                tracer.add_span("chunk_map", w0, time.time(),
                                rank=self.rank, chunk=chunk.index)
            w0 = time.time()
            mapped = runner.finish()
            tracer.add_span("map_finish", w0, time.time(), rank=self.rank)
            stats.chunks_mapped = mapped.chunks_mapped
            stats.pairs_emitted_logical = mapped.pairs_emitted_logical
            stats.bytes_sent_network = mapped.bytes_remote(self.rank)
            stats.bytes_kept_local = mapped.bytes_self(self.rank)
            t1 = time.perf_counter()
            stats.add("map", t1 - t0)

            # Announce the map/post boundary before any batch leaves:
            # once the coordinator records this rank as posted, its
            # chunks are no longer reclaimable, which is exactly when
            # its output starts reaching peers.
            send_frame(
                self._control, MSG_MAPS_DONE, {"rank": self.rank},
                max_frame_bytes=self.max_frame_bytes,
            )
            posted = True  # exchange() sends every outbound batch itself
            self._posted_event.set()  # inbox may flush withheld ACKs
            r0 = time.time()
            batches = self.exchange(mapped.parts, mapped.part_chunk_ids)
            incoming = merge_incoming(batches)
            tracer.add_span("shuffle_recv", r0, time.time(), rank=self.rank)
            t2 = time.perf_counter()
            stats.add("bin", t2 - t1)
            stats.shuffle_frames_sent = self.frames_sent

            output = reduce_worker(
                job, incoming, stats=stats,
                obs=self.obs if self.obs.enabled else None,
            )
            self.send_result(output, stats)
        except BaseException:
            if not posted and self.peers:
                # Unblock peers waiting on this rank's batch (the same
                # empty-batch courtesy the local backend's failing
                # workers extend), so survivors finish promptly instead
                # of running out their shuffle deadlines.
                for dest in range(self.n_workers or 0):
                    if dest == self.rank:
                        continue
                    try:
                        self._send_batch(dest, [], confirm=False)
                    except (OSError, FabricError):
                        pass  # peer already gone; its own deadline covers it
            # A failure that reaches the coordinator as an ERROR frame is
            # a *reported* failure (the rank then exits cleanly, like the
            # local backend's workers).  Only if shipping the traceback
            # itself fails does the exception propagate — the process
            # then dies visibly and the driver's liveness watch fires.
            self.send_error(traceback.format_exc(), stats)

    def close(self) -> None:
        self._inbox_stop.set()
        if self._control is not None:
            try:
                self._control.close()
            except OSError:
                pass
            self._control = None
        try:
            self._shuffle_listener.close()
        except OSError:
            pass

    def __enter__(self) -> "RankEndpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_rank(
    rank: int,
    coordinator: Tuple[str, int],
    listen_host: str = "127.0.0.1",
    advertise_host: Optional[str] = None,
    timeout_seconds: float = 120.0,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    listen_port: int = 0,
    rejoin: bool = False,
    auth_key: Optional[bytes] = None,
) -> None:
    """Join the fabric as ``rank`` and run one job end to end.

    The in-process entry point behind ``python -m repro.fabric.launch``
    and the process target :class:`repro.exec.cluster.ClusterExecutor`
    spawns for local ranks.  A replacement for a dead rank passes
    ``rejoin=True`` and the predecessor's exact shuffle ``listen_port``
    (so the peer directory every live rank already holds stays valid).
    """
    with RankEndpoint(
        rank,
        coordinator,
        listen_host=listen_host,
        advertise_host=advertise_host,
        timeout_seconds=timeout_seconds,
        max_frame_bytes=max_frame_bytes,
        listen_port=listen_port,
        rejoin=rejoin,
        auth_key=auth_key,
    ) as endpoint:
        endpoint.connect()
        endpoint.run_job()

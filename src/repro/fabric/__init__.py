"""The cluster fabric: a real TCP shuffle + control plane for GPMR.

Where the sim *models* the paper's MPI interconnect and the ``local``
backend fakes it with in-node queues, this package is an actual wire:

* :mod:`repro.fabric.wire` — length-prefixed, version-checked framed
  messaging (the protocol both planes speak): pickled frames for the
  control plane, raw-bytes frames for the data plane;
* :mod:`repro.fabric.stream` — the data plane's batch encoding: binary
  KVSet codec manifests plus chunked ``BATCH_DATA`` streaming (batches
  larger than ``max_frame_bytes`` stream instead of failing) with an
  optional zlib gate;
* :mod:`repro.fabric.coordinator` — the driver side: rank registration,
  job broadcast, barrier, runtime chunk service
  (``CHUNK_REQ``/``CHUNK_GRANT`` — pull-based dynamic work stealing),
  result collection, failure detection;
* :mod:`repro.fabric.endpoint` — the rank side, including the
  one-batch-per-(src, dst) all-to-all shuffle over peer TCP sockets;
* :mod:`repro.fabric.launch` — ``python -m repro.fabric.launch`` for
  joining a fabric from another host.

:class:`repro.exec.cluster.ClusterExecutor` (``make_executor("cluster",
n)``) runs the shared :mod:`repro.exec` dataflow over this fabric.
"""

from .coordinator import ClusterTimeout, Coordinator, RankFailure
from .endpoint import RankEndpoint, run_rank
from .stream import recv_batch, send_batch
from .wire import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FabricError,
    FrameTooLarge,
    PeerDisconnected,
    ProtocolError,
    ProtocolVersionError,
    TruncatedFrame,
    parse_address,
    recv_frame,
    recv_raw_frame,
    send_frame,
    send_raw_frame,
)

__all__ = [
    "Coordinator",
    "RankEndpoint",
    "run_rank",
    "ClusterTimeout",
    "RankFailure",
    "FabricError",
    "ProtocolError",
    "ProtocolVersionError",
    "FrameTooLarge",
    "TruncatedFrame",
    "PeerDisconnected",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "send_frame",
    "recv_frame",
    "send_raw_frame",
    "recv_raw_frame",
    "send_batch",
    "recv_batch",
    "parse_address",
]

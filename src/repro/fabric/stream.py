"""Streamed raw-buffer shuffle batches: the fabric's data plane.

Under protocol v1 a shuffle batch was one pickled ``MSG_BATCH`` frame,
which meant (a) every byte was pickled and copied on both ends and
(b) a batch bigger than ``max_frame_bytes`` simply could not be sent.
This module re-encodes the data plane on the binary KVSet codec
(:mod:`repro.core.kvset`) with *chunked streaming*:

* one ``MSG_BATCH`` header frame — a small raw struct carrying the
  source rank, flags, the total payload size, and the batch manifest
  (per-part codec headers, order-preserving, no pickle);
* zero or more ``MSG_BATCH_DATA`` frames, each holding one bounded
  chunk of the raw key/value bytes.  Chunks are sized to fit inside
  ``max_frame_bytes``, so a batch of any size streams through a small
  frame bound instead of raising :class:`FrameTooLarge`.

Compression is a per-chunk gate: with ``compress=True`` each chunk is
zlib-deflated and sent compressed *only when that actually shrinks it*
(each DATA frame says which form it carries), so incompressible data
never pays the inflation. The receiver honours whatever arrives —
the flag tunes the sender, not the protocol.

Chunks **coalesce across part boundaries**: a batch of many small
parts (tiny per-key emission lists are common) packs into as few
``MSG_BATCH_DATA`` frames as the chunk size allows instead of one-plus
frames per buffer, cutting per-frame header and syscall overhead on
the many-small-parts path.  The receiver never sees part boundaries —
it reassembles by byte count against the manifest — so coalescing is
purely a sender-side batching decision.  Passing a ``counters`` dict
to :func:`send_batch` reports ``{"frames": ..., "bytes": ...}`` for
the send, which the endpoint surfaces as
``WorkerStats.shuffle_frames_sent``.
"""

from __future__ import annotations

import socket
import struct
import zlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .wire import (
    DEFAULT_MAX_FRAME_BYTES,
    MSG_BATCH,
    MSG_BATCH_DATA,
    FrameTooLarge,
    ProtocolError,
    recv_raw_frame,
    send_raw_frame,
)
from ..core.kvset import CodecError, KeyValueSet, pack_parts, unpack_parts

__all__ = ["DEFAULT_CHUNK_BYTES", "send_batch", "recv_batch"]

#: Target raw-chunk size for streamed sends; the real chunk is the
#: smaller of this and what ``max_frame_bytes`` leaves room for.
DEFAULT_CHUNK_BYTES = 1 << 20

#: BATCH header frame payload: src(I) flags(B) total_nbytes(Q)
#: manifest_len(I) — manifest bytes follow; with flags bit 1 set, a
#: chunk-id tag block (count ``!I`` + count ``!q`` ids, one per part)
#: follows the manifest.
_BATCH_HEADER = struct.Struct("!IB3xQI")

#: BATCH_DATA frame payload: raw_len(Q) flags(B) — body follows.
#: flags bit 0: body is zlib-compressed.
_DATA_HEADER = struct.Struct("!QB3x")

_FLAG_ZLIB = 1
#: batch header flag: a chunk-id provenance tag block trails the
#: manifest (one id per part; -1 = finish-time emission), letting
#: receivers deduplicate speculative re-execution output
_FLAG_TAGS = 2

_TAG_COUNT = struct.Struct("!I")


def _chunk_bytes(max_frame_bytes: int) -> int:
    """Largest raw chunk a DATA frame can carry under the bound.

    Compressed bodies replace raw ones only when smaller, so the raw
    chunk size is the worst case and must fit with the chunk header.
    """
    room = max_frame_bytes - _DATA_HEADER.size
    if room < 1:
        raise FrameTooLarge(
            f"max_frame_bytes={max_frame_bytes} leaves no room for "
            "streamed batch chunks"
        )
    return min(DEFAULT_CHUNK_BYTES, room)


def _iter_chunks(
    buffers: Sequence[memoryview], chunk_bytes: int
) -> Iterator[memoryview]:
    """Yield bounded-size pieces of the batch payload, in order.

    Small buffers *coalesce*: consecutive buffers pack into one chunk
    until it reaches ``chunk_bytes``, so a batch of many tiny parts
    costs a handful of DATA frames instead of one-plus per buffer.  A
    chunk that happens to be a single contiguous span is yielded as a
    zero-copy view; only genuinely coalesced chunks pay a join copy
    (they are small by construction).
    """
    pending: List[memoryview] = []
    pending_nbytes = 0
    for buf in buffers:
        offset = 0
        while offset < buf.nbytes:
            take = min(chunk_bytes - pending_nbytes, buf.nbytes - offset)
            pending.append(buf[offset : offset + take])
            pending_nbytes += take
            offset += take
            if pending_nbytes == chunk_bytes:
                yield _join_views(pending)
                pending, pending_nbytes = [], 0
    if pending:
        yield _join_views(pending)


def _join_views(views: List[memoryview]) -> memoryview:
    if len(views) == 1:
        return views[0]
    # bytes.join consumes buffer objects directly: one copy, not two.
    return memoryview(b"".join(views))


def send_batch(
    sock: socket.socket,
    src: int,
    parts: Sequence[KeyValueSet],
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    compress: bool = False,
    counters: Optional[Dict[str, int]] = None,
    chunk_ids: Optional[Sequence[int]] = None,
) -> int:
    """Stream one shuffle batch; returns payload bytes put on the wire.

    ``counters`` (optional dict) accumulates ``"frames"`` (BATCH +
    BATCH_DATA frames sent) and ``"bytes"`` for this call — the
    exchange-stats hook.  ``chunk_ids`` (optional, one per part) ships
    provenance tags in the header frame so receivers can drop
    speculative-duplicate map output (see
    :func:`repro.exec.dataflow.merge_incoming`).
    """
    manifest, buffers, total_nbytes = pack_parts(parts)
    chunk_bytes = _chunk_bytes(max_frame_bytes)
    flags = _FLAG_ZLIB if compress else 0
    tag_block = b""
    if chunk_ids is not None:
        if len(chunk_ids) != len(parts):
            raise ValueError(
                f"chunk_ids carries {len(chunk_ids)} tag(s) for "
                f"{len(parts)} part(s)"
            )
        flags |= _FLAG_TAGS
        tag_block = _TAG_COUNT.pack(len(chunk_ids)) + struct.pack(
            f"!{len(chunk_ids)}q", *chunk_ids
        )
    header = _BATCH_HEADER.pack(src, flags, total_nbytes, len(manifest))
    sent = send_raw_frame(
        sock, MSG_BATCH, header + manifest + tag_block,
        max_frame_bytes=max_frame_bytes,
    )
    frames = 1
    for chunk in _iter_chunks(buffers, chunk_bytes):
        body = chunk
        flags = 0
        if compress:
            deflated = zlib.compress(chunk)  # takes the view; no copy
            if len(deflated) < chunk.nbytes:
                body, flags = deflated, _FLAG_ZLIB
        sent += send_raw_frame(
            sock,
            MSG_BATCH_DATA,
            _DATA_HEADER.pack(chunk.nbytes, flags) + bytes(body),
            max_frame_bytes=max_frame_bytes,
        )
        frames += 1
    if counters is not None:
        counters["frames"] = counters.get("frames", 0) + frames
        counters["bytes"] = counters.get("bytes", 0) + sent
    return sent


def recv_batch(
    sock: socket.socket,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Tuple[int, List[KeyValueSet], Optional[List[int]]]:
    """Receive one streamed batch; returns ``(source_rank, parts,
    chunk_ids)`` — ``chunk_ids`` is ``None`` when the sender shipped no
    provenance tags.

    Reassembles the DATA chunks into one buffer and decodes the parts
    as zero-copy views into it (the reduce path's concatenation is the
    only copy the payload takes after the socket).
    """
    _, payload = recv_raw_frame(
        sock, max_frame_bytes=max_frame_bytes, expect=MSG_BATCH
    )
    if len(payload) < _BATCH_HEADER.size:
        raise ProtocolError(f"BATCH header truncated at {len(payload)} B")
    src, hdr_flags, total_nbytes, manifest_len = _BATCH_HEADER.unpack_from(payload)
    rest = payload[_BATCH_HEADER.size :]
    if len(rest) < manifest_len:
        raise ProtocolError(
            f"BATCH manifest holds {len(rest)} B, header declares "
            f"{manifest_len}"
        )
    manifest = rest[:manifest_len]
    chunk_ids: Optional[List[int]] = None
    trailer = rest[manifest_len:]
    if hdr_flags & _FLAG_TAGS:
        if len(trailer) < _TAG_COUNT.size:
            raise ProtocolError("BATCH tag block truncated")
        (n_tags,) = _TAG_COUNT.unpack_from(trailer)
        expected = _TAG_COUNT.size + 8 * n_tags
        if len(trailer) != expected:
            raise ProtocolError(
                f"BATCH tag block holds {len(trailer)} B, expected {expected}"
            )
        chunk_ids = list(
            struct.unpack_from(f"!{n_tags}q", trailer, _TAG_COUNT.size)
        )
    elif trailer:
        raise ProtocolError(
            f"BATCH frame carries {len(trailer)} trailing byte(s) with no "
            "tag flag set"
        )
    # Accumulate arriving chunks instead of pre-allocating
    # total_nbytes: the declared size is an unauthenticated 64-bit wire
    # field, and the wire layer's contract is that nothing is allocated
    # beyond what actually arrives (each frame is <= max_frame_bytes).
    received = []
    offset = 0
    while offset < total_nbytes:
        _, frame = recv_raw_frame(
            sock, max_frame_bytes=max_frame_bytes, expect=MSG_BATCH_DATA
        )
        if len(frame) < _DATA_HEADER.size:
            raise ProtocolError(f"BATCH_DATA header truncated at {len(frame)} B")
        raw_len, flags = _DATA_HEADER.unpack_from(frame)
        if raw_len == 0:
            # The sender never emits empty chunks; accepting them would
            # let a broken peer spin this loop without progress.
            raise ProtocolError("zero-length batch chunk")
        body = frame[_DATA_HEADER.size :]
        if flags & _FLAG_ZLIB:
            try:
                body = zlib.decompress(body)
            except zlib.error as exc:
                raise ProtocolError(f"corrupt compressed batch chunk: {exc}") from exc
        if len(body) != raw_len:
            raise ProtocolError(
                f"batch chunk carries {len(body)} B, declares {raw_len}"
            )
        if offset + raw_len > total_nbytes:
            raise ProtocolError("batch chunks overrun the declared payload size")
        received.append(body)
        offset += raw_len
    try:
        parts = unpack_parts(manifest, b"".join(received))
        if chunk_ids is not None and len(chunk_ids) != len(parts):
            raise ProtocolError(
                f"BATCH carries {len(chunk_ids)} tag(s) for "
                f"{len(parts)} part(s)"
            )
        return src, parts, chunk_ids
    except CodecError as exc:
        # A manifest that disagrees with the delivered payload is a
        # peer/protocol problem, not a local one: classify it so the
        # exchange loop treats the connection as corrupt.
        raise ProtocolError(f"undecodable batch payload: {exc}") from exc

"""Length-prefixed framed messaging: the cluster fabric's wire format.

Every message on a fabric socket is one *frame*::

    +-------+---------+------+----------+----------------+---------...
    | magic | version | type | reserved | payload length | payload
    | 4 B   | 1 B     | 1 B  | 2 B      | 8 B (big-end.) | pickled object
    +-------+---------+------+----------+----------------+---------...

The header is fixed (16 bytes, network byte order) and versioned, so a
rank launched from a different repo revision fails fast with
:class:`ProtocolVersionError` instead of desynchronising mid-shuffle.
Control-plane payloads (jobs, chunk lists, results) are pickled Python
objects (:func:`send_frame` / :func:`recv_frame`); data-plane payloads
are *raw bytes* (:func:`send_raw_frame` / :func:`recv_raw_frame`) —
the shuffle's ``BATCH`` traffic rides the binary KVSet codec via
:mod:`repro.fabric.stream`, never pickle.  The length prefix makes
message boundaries explicit on the byte stream, and an enforced
``max_frame_bytes`` bound rejects corrupted or hostile lengths before
any allocation happens.

EOF handling distinguishes two cases the coordinator cares about:

* a socket that closes *between* frames raises :class:`PeerDisconnected`
  (orderly death — a rank process exited);
* a socket that closes *inside* a frame raises :class:`TruncatedFrame`
  (the peer died mid-send, or the stream corrupted).

**Trust model**: control-plane payloads are pickles, and unpickling
attacker-supplied bytes is code execution — the frame bound guards
allocation, not authenticity.  v5 adds the HMAC challenge-response
handshake (:func:`deliver_challenge` / :func:`answer_challenge`, à la
``multiprocessing.connection``): when a listener holds a key, every
accepted connection must answer a fresh random challenge with
``HMAC-SHA256(key, challenge)`` before *any* pickled frame is read —
the pre-auth exchange rides raw frames only, so unauthenticated bytes
are never unpickled.  The handshake authenticates connection
establishment, not the stream (no per-frame MAC, no encryption), so a
shared-key deployment still wants the private network below; it stops
is-anyone-listening port scans and wrong-cluster cross-talk, not an
on-path attacker.  Like the MPI interconnect it reproduces, the fabric
assumes a *private, trusted network*: bind ``127.0.0.1`` (the default)
or an isolated cluster interface, never an internet-facing address.
"""

from __future__ import annotations

import hmac
import json
import os
import pickle
import secrets
import socket
import struct
from typing import Any, Optional, Tuple, Union

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "MSG_NAMES",
    "MSG_HELLO",
    "MSG_WELCOME",
    "MSG_ASSIGN",
    "MSG_BARRIER",
    "MSG_RESUME",
    "MSG_RESULT",
    "MSG_ERROR",
    "MSG_BATCH",
    "MSG_BATCH_DATA",
    "MSG_CHUNK_REQ",
    "MSG_CHUNK_GRANT",
    "MSG_CHUNKS_DONE",
    "MSG_BATCH_ACK",
    "MSG_MAPS_DONE",
    "MSG_AUTH_CHALLENGE",
    "MSG_AUTH_RESPONSE",
    "MSG_AUTH_OK",
    "MSG_SUBMIT",
    "MSG_JOB_RESULT",
    "MSG_JOB_ERROR",
    "CHALLENGE_BYTES",
    "FabricError",
    "ProtocolError",
    "ProtocolVersionError",
    "FrameTooLarge",
    "TruncatedFrame",
    "PeerDisconnected",
    "AuthenticationError",
    "send_frame",
    "recv_frame",
    "send_raw_frame",
    "recv_raw_frame",
    "send_versioned_error",
    "deliver_challenge",
    "answer_challenge",
    "load_auth_key",
    "parse_address",
]

#: Bump on any incompatible header/message change.  v2: BATCH frames
#: switched from one pickled payload to a raw binary-codec header frame
#: followed by streamed BATCH_DATA chunk frames.  v3: chunk
#: distribution went pull-based — ASSIGN carries job/config metadata
#: only, and ranks fetch their chunks at runtime via
#: CHUNK_REQ/CHUNK_GRANT/CHUNKS_DONE control frames.  v4: fault
#: tolerance — membership epochs ride WELCOME/ASSIGN/grant frames, a
#: dead rank's replacement rejoins mid-run with a ``rejoin`` HELLO,
#: BATCH header frames may carry chunk-id provenance tags and every
#: received batch is confirmed with BATCH_ACK (senders retry
#: unconfirmed batches, so a batch lost in a dead peer's kernel
#: buffers is re-routed to its replacement), and ranks announce the
#: end of their map phase with MAPS_DONE before shuffling.  v5: the
#: job-service era — an HMAC challenge-response handshake
#: (AUTH_CHALLENGE/AUTH_RESPONSE/AUTH_OK, raw frames, required before
#: any pickled frame whenever the listener holds a key) and the
#: multi-job control frames SUBMIT/JOB_RESULT/JOB_ERROR spoken by
#: ``repro.service``'s daemon and client.  Still v5 (no frame change):
#: ranks may *pipeline* CHUNK_REQ frames — up to ``1 + prefetch``
#: requests in flight, the window shipped as ASSIGN's ``prefetch`` key
#: — because the coordinator has always answered exactly one frame per
#: request; a CHUNK_GRANT may carry a descriptor-only streamed chunk
#: that the rank re-materialises locally, and BATCH frames may arrive
#: at a peer that is still mapping (its ACK is simply withheld until
#: it posts MAPS_DONE).
PROTOCOL_VERSION = 5

MAGIC = b"GPMR"

#: magic(4s) version(B) msg_type(B) reserved(2x) payload_len(Q)
HEADER = struct.Struct("!4sBB2xQ")

#: Refuse frames above this many payload bytes (1 GiB) unless the
#: caller raises the bound explicitly.
DEFAULT_MAX_FRAME_BYTES = 1 << 30

# -- message types ----------------------------------------------------------
MSG_HELLO = 1    #: rank -> coordinator: register {rank, shuffle address}
MSG_WELCOME = 2  #: coordinator -> rank: registration accepted {n_workers}
MSG_ASSIGN = 3   #: coordinator -> rank: {job, chunks, peers, n_workers}
MSG_BARRIER = 4  #: rank -> coordinator: reached the named barrier
MSG_RESUME = 5   #: coordinator -> rank: all ranks arrived, proceed
MSG_RESULT = 6   #: rank -> coordinator: {rank, output, stats}
MSG_ERROR = 7    #: rank -> coordinator: {rank, traceback}
MSG_BATCH = 8    #: rank -> rank: shuffle batch header (raw codec manifest)
MSG_BATCH_DATA = 9  #: rank -> rank: one streamed chunk of batch payload
MSG_CHUNK_REQ = 10    #: rank -> coordinator: give me my next chunk
MSG_CHUNK_GRANT = 11  #: coordinator -> rank: {chunk, victim}
MSG_CHUNKS_DONE = 12  #: coordinator -> rank: no more work for you
MSG_BATCH_ACK = 13    #: rank -> rank: your shuffle batch arrived intact
MSG_MAPS_DONE = 14    #: rank -> coordinator: map phase over, posting batches
MSG_AUTH_CHALLENGE = 15  #: listener -> peer: random nonce to HMAC (raw)
MSG_AUTH_RESPONSE = 16   #: peer -> listener: HMAC-SHA256(key, nonce) (raw)
MSG_AUTH_OK = 17         #: listener -> peer: digest verified, proceed (raw)
MSG_SUBMIT = 18      #: client -> daemon: run this job {app, dataset, ...}
MSG_JOB_RESULT = 19  #: daemon -> client: finished job's outputs + stats
MSG_JOB_ERROR = 20   #: daemon -> client: the job (or submission) failed

MSG_NAMES = {
    MSG_HELLO: "HELLO",
    MSG_WELCOME: "WELCOME",
    MSG_ASSIGN: "ASSIGN",
    MSG_BARRIER: "BARRIER",
    MSG_RESUME: "RESUME",
    MSG_RESULT: "RESULT",
    MSG_ERROR: "ERROR",
    MSG_BATCH: "BATCH",
    MSG_BATCH_DATA: "BATCH_DATA",
    MSG_CHUNK_REQ: "CHUNK_REQ",
    MSG_CHUNK_GRANT: "CHUNK_GRANT",
    MSG_CHUNKS_DONE: "CHUNKS_DONE",
    MSG_BATCH_ACK: "BATCH_ACK",
    MSG_MAPS_DONE: "MAPS_DONE",
    MSG_AUTH_CHALLENGE: "AUTH_CHALLENGE",
    MSG_AUTH_RESPONSE: "AUTH_RESPONSE",
    MSG_AUTH_OK: "AUTH_OK",
    MSG_SUBMIT: "SUBMIT",
    MSG_JOB_RESULT: "JOB_RESULT",
    MSG_JOB_ERROR: "JOB_ERROR",
}


class FabricError(RuntimeError):
    """Base class for every cluster-fabric failure."""


class ProtocolError(FabricError):
    """The byte stream violated the framing protocol."""


class ProtocolVersionError(ProtocolError):
    """Peer speaks a different fabric protocol revision.

    ``peer_version`` carries the revision the peer's frame header
    declared (None when unknowable), so listeners can answer legacy
    clients with a useful versioned refusal instead of a bare close.
    """

    def __init__(self, message: str, peer_version: Optional[int] = None) -> None:
        super().__init__(message)
        self.peer_version = peer_version


class FrameTooLarge(ProtocolError):
    """Declared payload length exceeds the enforced bound."""


class TruncatedFrame(ProtocolError):
    """The stream ended in the middle of a frame."""


class PeerDisconnected(FabricError):
    """The peer closed the connection at a frame boundary."""


class AuthenticationError(FabricError):
    """The HMAC challenge-response handshake failed."""


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes:
    """Read exactly ``n`` bytes, mapping EOF to the right fabric error."""
    buf = bytearray()
    while len(buf) < n:
        try:
            piece = sock.recv(n - len(buf))
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise PeerDisconnected(f"connection reset: {exc}") from exc
        if not piece:
            if at_boundary and not buf:
                raise PeerDisconnected("peer closed the connection")
            raise TruncatedFrame(
                f"stream ended after {len(buf)} of {n} expected bytes"
            )
        buf.extend(piece)
    return bytes(buf)


def send_raw_frame(
    sock: socket.socket,
    msg_type: int,
    payload,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> int:
    """Send one framed message whose payload is raw bytes, as-is.

    The data plane's primitive: no pickling.  Returns the number of
    payload bytes put on the wire (the fabric's real network-traffic
    accounting).
    """
    payload = payload if isinstance(payload, (bytes, bytearray)) else bytes(payload)
    if len(payload) > max_frame_bytes:
        raise FrameTooLarge(
            f"refusing to send {len(payload)} B "
            f"{MSG_NAMES.get(msg_type, msg_type)} frame "
            f"(max_frame_bytes={max_frame_bytes})"
        )
    header = HEADER.pack(MAGIC, PROTOCOL_VERSION, msg_type, len(payload))
    try:
        sock.sendall(header + payload)
    except (ConnectionResetError, BrokenPipeError) as exc:
        raise PeerDisconnected(f"send failed: {exc}") from exc
    return len(payload)


def recv_raw_frame(
    sock: socket.socket,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    expect: Optional[int] = None,
) -> Tuple[int, bytes]:
    """Receive one frame; returns ``(msg_type, payload_bytes)``.

    With ``expect``, a frame of any other type is a
    :class:`ProtocolError` (fail fast on desynchronised peers).
    """
    raw = _recv_exact(sock, HEADER.size, at_boundary=True)
    magic, version, msg_type, length = HEADER.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolVersionError(
            f"peer speaks fabric protocol v{version}, "
            f"this build speaks v{PROTOCOL_VERSION}",
            peer_version=version,
        )
    if length > max_frame_bytes:
        raise FrameTooLarge(
            f"declared payload of {length} B exceeds "
            f"max_frame_bytes={max_frame_bytes}"
        )
    payload = _recv_exact(sock, length, at_boundary=False)
    if expect is not None and msg_type != expect:
        raise ProtocolError(
            f"expected {MSG_NAMES.get(expect, expect)} frame, "
            f"got {MSG_NAMES.get(msg_type, msg_type)}"
        )
    return msg_type, payload


def send_frame(
    sock: socket.socket,
    msg_type: int,
    payload: Any,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> int:
    """Pickle ``payload`` and send it as one framed message.

    The control plane's primitive (HELLO/ASSIGN/RESULT/...); shuffle
    batches use :mod:`repro.fabric.stream` raw frames instead.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return send_raw_frame(sock, msg_type, blob, max_frame_bytes=max_frame_bytes)


def recv_frame(
    sock: socket.socket,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    expect: Optional[int] = None,
) -> Tuple[int, Any]:
    """Receive one pickled-payload frame; returns ``(msg_type, payload)``."""
    msg_type, payload = recv_raw_frame(
        sock, max_frame_bytes=max_frame_bytes, expect=expect
    )
    return msg_type, pickle.loads(payload)


# -- authentication ---------------------------------------------------------

#: Challenge nonce size.  32 random bytes per connection: a replayed
#: AUTH_RESPONSE from a sniffed handshake never matches the next
#: connection's fresh nonce.
CHALLENGE_BYTES = 32


def _coerce_auth_key(key: Union[str, bytes, bytearray]) -> bytes:
    if isinstance(key, str):
        key = key.encode("utf-8")
    if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
        raise ValueError("auth key must be a non-empty str or bytes")
    return bytes(key)


def _auth_digest(key: bytes, nonce: bytes) -> bytes:
    return hmac.new(key, nonce, "sha256").digest()


def deliver_challenge(
    sock: socket.socket,
    key: Union[str, bytes],
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Listener side of the HMAC handshake (à la
    ``multiprocessing.connection.deliver_challenge``).

    Sends a fresh random nonce, reads the peer's ``AUTH_RESPONSE``
    digest, and compares it in constant time
    (:func:`secrets.compare_digest`).  On a match the peer gets
    ``AUTH_OK``; on a mismatch it gets a raw ``JOB_ERROR`` refusal and
    this raises :class:`AuthenticationError` — callers close the
    socket.  Every frame in the exchange is raw: no byte from the peer
    is unpickled before its key checks out.
    """
    key = _coerce_auth_key(key)
    nonce = os.urandom(CHALLENGE_BYTES)
    send_raw_frame(sock, MSG_AUTH_CHALLENGE, nonce, max_frame_bytes=max_frame_bytes)
    _, response = recv_raw_frame(
        sock, max_frame_bytes=max_frame_bytes, expect=MSG_AUTH_RESPONSE
    )
    if not secrets.compare_digest(response, _auth_digest(key, nonce)):
        try:
            send_raw_frame(
                sock,
                MSG_JOB_ERROR,
                json.dumps({"error": "authentication failed"}).encode("utf-8"),
                max_frame_bytes=max_frame_bytes,
            )
        except FabricError:
            pass
        raise AuthenticationError("peer answered the challenge with a bad digest")
    send_raw_frame(sock, MSG_AUTH_OK, b"", max_frame_bytes=max_frame_bytes)


def answer_challenge(
    sock: socket.socket,
    key: Union[str, bytes],
    *,
    challenge: Optional[bytes] = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Connecting side of the HMAC handshake.

    Reads the listener's ``AUTH_CHALLENGE`` nonce (or takes one a
    caller already pulled off the wire while sniffing the first frame,
    via ``challenge=``), answers with ``HMAC-SHA256(key, nonce)``, and
    waits for ``AUTH_OK``.  Anything else back — the listener's
    refusal — raises :class:`AuthenticationError`.
    """
    key = _coerce_auth_key(key)
    if challenge is not None:
        nonce = challenge
    else:
        _, nonce = recv_raw_frame(
            sock, max_frame_bytes=max_frame_bytes, expect=MSG_AUTH_CHALLENGE
        )
    send_raw_frame(
        sock, MSG_AUTH_RESPONSE, _auth_digest(key, nonce),
        max_frame_bytes=max_frame_bytes,
    )
    msg_type, payload = recv_raw_frame(sock, max_frame_bytes=max_frame_bytes)
    if msg_type != MSG_AUTH_OK:
        detail = payload.decode("utf-8", "replace") or "no detail"
        raise AuthenticationError(
            f"listener rejected our key "
            f"({MSG_NAMES.get(msg_type, msg_type)}: {detail})"
        )


def load_auth_key(
    env: Optional[str] = None, path: Optional[str] = None
) -> Optional[bytes]:
    """Resolve a shared auth key from an env var or a key file.

    The CLI surfaces (``repro.fabric.launch``, ``repro.service.daemon``
    and its client) all take the key indirectly — an environment
    variable name or a file path — so the secret itself never appears
    in ``argv`` or shell history.  Returns None when neither source is
    given; raises when a named source is missing or empty.
    """
    if env is not None and path is not None:
        raise ValueError("give the auth key via env var or file, not both")
    if env is not None:
        value = os.environ.get(env)
        if not value:
            raise ValueError(f"auth-key env var {env!r} is unset or empty")
        return _coerce_auth_key(value)
    if path is not None:
        with open(path, "rb") as fh:
            value = fh.read().strip()
        if not value:
            raise ValueError(f"auth-key file {path!r} is empty")
        return _coerce_auth_key(value)
    return None


def send_versioned_error(
    sock: socket.socket,
    detail: str,
    *,
    peer_version: Optional[int] = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Refuse a mis-versioned or unauthorized peer with a raw frame.

    The payload is UTF-8 JSON naming this build's protocol version
    (and the peer's, when its header revealed one) — raw, never
    pickled, so even a legacy or hostile peer gets a parseable reason
    instead of a silent close.  The v5 frame header itself tells a
    well-behaved older client what the listener speaks.  Best-effort:
    send failures are swallowed (the peer may already be gone).
    """
    body = {"error": detail, "protocol_version": PROTOCOL_VERSION}
    if peer_version is not None:
        body["peer_version"] = peer_version
    try:
        send_raw_frame(
            sock,
            MSG_JOB_ERROR,
            json.dumps(body).encode("utf-8"),
            max_frame_bytes=max_frame_bytes,
        )
    except FabricError:
        pass


def parse_address(spec: str) -> Tuple[str, int]:
    """Parse a ``host:port`` spec (the launcher's --coordinator form)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {spec!r} is not of the form host:port")
    return host, int(port)

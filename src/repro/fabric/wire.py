"""Length-prefixed framed messaging: the cluster fabric's wire format.

Every message on a fabric socket is one *frame*::

    +-------+---------+------+----------+----------------+---------...
    | magic | version | type | reserved | payload length | payload
    | 4 B   | 1 B     | 1 B  | 2 B      | 8 B (big-end.) | pickled object
    +-------+---------+------+----------+----------------+---------...

The header is fixed (16 bytes, network byte order) and versioned, so a
rank launched from a different repo revision fails fast with
:class:`ProtocolVersionError` instead of desynchronising mid-shuffle.
Control-plane payloads (jobs, chunk lists, results) are pickled Python
objects (:func:`send_frame` / :func:`recv_frame`); data-plane payloads
are *raw bytes* (:func:`send_raw_frame` / :func:`recv_raw_frame`) —
the shuffle's ``BATCH`` traffic rides the binary KVSet codec via
:mod:`repro.fabric.stream`, never pickle.  The length prefix makes
message boundaries explicit on the byte stream, and an enforced
``max_frame_bytes`` bound rejects corrupted or hostile lengths before
any allocation happens.

EOF handling distinguishes two cases the coordinator cares about:

* a socket that closes *between* frames raises :class:`PeerDisconnected`
  (orderly death — a rank process exited);
* a socket that closes *inside* a frame raises :class:`TruncatedFrame`
  (the peer died mid-send, or the stream corrupted).

**Trust model**: control-plane payloads are pickles, and unpickling
attacker-supplied bytes is code execution — the frame bound guards
allocation, not authenticity.  Like the MPI interconnect it reproduces, the fabric
assumes a *private, trusted network*: bind ``127.0.0.1`` (the default)
or an isolated cluster interface, never an internet-facing address.
An authenticated (HMAC-challenge) handshake is a roadmap item.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "MSG_NAMES",
    "MSG_HELLO",
    "MSG_WELCOME",
    "MSG_ASSIGN",
    "MSG_BARRIER",
    "MSG_RESUME",
    "MSG_RESULT",
    "MSG_ERROR",
    "MSG_BATCH",
    "MSG_BATCH_DATA",
    "MSG_CHUNK_REQ",
    "MSG_CHUNK_GRANT",
    "MSG_CHUNKS_DONE",
    "MSG_BATCH_ACK",
    "MSG_MAPS_DONE",
    "FabricError",
    "ProtocolError",
    "ProtocolVersionError",
    "FrameTooLarge",
    "TruncatedFrame",
    "PeerDisconnected",
    "send_frame",
    "recv_frame",
    "send_raw_frame",
    "recv_raw_frame",
    "parse_address",
]

#: Bump on any incompatible header/message change.  v2: BATCH frames
#: switched from one pickled payload to a raw binary-codec header frame
#: followed by streamed BATCH_DATA chunk frames.  v3: chunk
#: distribution went pull-based — ASSIGN carries job/config metadata
#: only, and ranks fetch their chunks at runtime via
#: CHUNK_REQ/CHUNK_GRANT/CHUNKS_DONE control frames.  v4: fault
#: tolerance — membership epochs ride WELCOME/ASSIGN/grant frames, a
#: dead rank's replacement rejoins mid-run with a ``rejoin`` HELLO,
#: BATCH header frames may carry chunk-id provenance tags and every
#: received batch is confirmed with BATCH_ACK (senders retry
#: unconfirmed batches, so a batch lost in a dead peer's kernel
#: buffers is re-routed to its replacement), and ranks announce the
#: end of their map phase with MAPS_DONE before shuffling.
PROTOCOL_VERSION = 4

MAGIC = b"GPMR"

#: magic(4s) version(B) msg_type(B) reserved(2x) payload_len(Q)
HEADER = struct.Struct("!4sBB2xQ")

#: Refuse frames above this many payload bytes (1 GiB) unless the
#: caller raises the bound explicitly.
DEFAULT_MAX_FRAME_BYTES = 1 << 30

# -- message types ----------------------------------------------------------
MSG_HELLO = 1    #: rank -> coordinator: register {rank, shuffle address}
MSG_WELCOME = 2  #: coordinator -> rank: registration accepted {n_workers}
MSG_ASSIGN = 3   #: coordinator -> rank: {job, chunks, peers, n_workers}
MSG_BARRIER = 4  #: rank -> coordinator: reached the named barrier
MSG_RESUME = 5   #: coordinator -> rank: all ranks arrived, proceed
MSG_RESULT = 6   #: rank -> coordinator: {rank, output, stats}
MSG_ERROR = 7    #: rank -> coordinator: {rank, traceback}
MSG_BATCH = 8    #: rank -> rank: shuffle batch header (raw codec manifest)
MSG_BATCH_DATA = 9  #: rank -> rank: one streamed chunk of batch payload
MSG_CHUNK_REQ = 10    #: rank -> coordinator: give me my next chunk
MSG_CHUNK_GRANT = 11  #: coordinator -> rank: {chunk, victim}
MSG_CHUNKS_DONE = 12  #: coordinator -> rank: no more work for you
MSG_BATCH_ACK = 13    #: rank -> rank: your shuffle batch arrived intact
MSG_MAPS_DONE = 14    #: rank -> coordinator: map phase over, posting batches

MSG_NAMES = {
    MSG_HELLO: "HELLO",
    MSG_WELCOME: "WELCOME",
    MSG_ASSIGN: "ASSIGN",
    MSG_BARRIER: "BARRIER",
    MSG_RESUME: "RESUME",
    MSG_RESULT: "RESULT",
    MSG_ERROR: "ERROR",
    MSG_BATCH: "BATCH",
    MSG_BATCH_DATA: "BATCH_DATA",
    MSG_CHUNK_REQ: "CHUNK_REQ",
    MSG_CHUNK_GRANT: "CHUNK_GRANT",
    MSG_CHUNKS_DONE: "CHUNKS_DONE",
    MSG_BATCH_ACK: "BATCH_ACK",
    MSG_MAPS_DONE: "MAPS_DONE",
}


class FabricError(RuntimeError):
    """Base class for every cluster-fabric failure."""


class ProtocolError(FabricError):
    """The byte stream violated the framing protocol."""


class ProtocolVersionError(ProtocolError):
    """Peer speaks a different fabric protocol revision."""


class FrameTooLarge(ProtocolError):
    """Declared payload length exceeds the enforced bound."""


class TruncatedFrame(ProtocolError):
    """The stream ended in the middle of a frame."""


class PeerDisconnected(FabricError):
    """The peer closed the connection at a frame boundary."""


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes:
    """Read exactly ``n`` bytes, mapping EOF to the right fabric error."""
    buf = bytearray()
    while len(buf) < n:
        try:
            piece = sock.recv(n - len(buf))
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise PeerDisconnected(f"connection reset: {exc}") from exc
        if not piece:
            if at_boundary and not buf:
                raise PeerDisconnected("peer closed the connection")
            raise TruncatedFrame(
                f"stream ended after {len(buf)} of {n} expected bytes"
            )
        buf.extend(piece)
    return bytes(buf)


def send_raw_frame(
    sock: socket.socket,
    msg_type: int,
    payload,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> int:
    """Send one framed message whose payload is raw bytes, as-is.

    The data plane's primitive: no pickling.  Returns the number of
    payload bytes put on the wire (the fabric's real network-traffic
    accounting).
    """
    payload = payload if isinstance(payload, (bytes, bytearray)) else bytes(payload)
    if len(payload) > max_frame_bytes:
        raise FrameTooLarge(
            f"refusing to send {len(payload)} B "
            f"{MSG_NAMES.get(msg_type, msg_type)} frame "
            f"(max_frame_bytes={max_frame_bytes})"
        )
    header = HEADER.pack(MAGIC, PROTOCOL_VERSION, msg_type, len(payload))
    try:
        sock.sendall(header + payload)
    except (ConnectionResetError, BrokenPipeError) as exc:
        raise PeerDisconnected(f"send failed: {exc}") from exc
    return len(payload)


def recv_raw_frame(
    sock: socket.socket,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    expect: Optional[int] = None,
) -> Tuple[int, bytes]:
    """Receive one frame; returns ``(msg_type, payload_bytes)``.

    With ``expect``, a frame of any other type is a
    :class:`ProtocolError` (fail fast on desynchronised peers).
    """
    raw = _recv_exact(sock, HEADER.size, at_boundary=True)
    magic, version, msg_type, length = HEADER.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolVersionError(
            f"peer speaks fabric protocol v{version}, "
            f"this build speaks v{PROTOCOL_VERSION}"
        )
    if length > max_frame_bytes:
        raise FrameTooLarge(
            f"declared payload of {length} B exceeds "
            f"max_frame_bytes={max_frame_bytes}"
        )
    payload = _recv_exact(sock, length, at_boundary=False)
    if expect is not None and msg_type != expect:
        raise ProtocolError(
            f"expected {MSG_NAMES.get(expect, expect)} frame, "
            f"got {MSG_NAMES.get(msg_type, msg_type)}"
        )
    return msg_type, payload


def send_frame(
    sock: socket.socket,
    msg_type: int,
    payload: Any,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> int:
    """Pickle ``payload`` and send it as one framed message.

    The control plane's primitive (HELLO/ASSIGN/RESULT/...); shuffle
    batches use :mod:`repro.fabric.stream` raw frames instead.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return send_raw_frame(sock, msg_type, blob, max_frame_bytes=max_frame_bytes)


def recv_frame(
    sock: socket.socket,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    expect: Optional[int] = None,
) -> Tuple[int, Any]:
    """Receive one pickled-payload frame; returns ``(msg_type, payload)``."""
    msg_type, payload = recv_raw_frame(
        sock, max_frame_bytes=max_frame_bytes, expect=expect
    )
    return msg_type, pickle.loads(payload)


def parse_address(spec: str) -> Tuple[str, int]:
    """Parse a ``host:port`` spec (the launcher's --coordinator form)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {spec!r} is not of the form host:port")
    return host, int(port)

"""Driver-side control plane of the cluster fabric.

The :class:`Coordinator` owns one TCP listening socket.  Rank processes
(local or on other hosts) dial in and the run proceeds through four
control-plane phases, all over the framed wire protocol in
:mod:`repro.fabric.wire`:

1. **Registration** — each rank sends ``HELLO`` carrying its rank id
   and the address of its own shuffle listener; the coordinator answers
   ``WELCOME``.  Registration tolerates stragglers: ranks may dial in
   in any order, any time before the deadline.
2. **Assignment broadcast** — ``ASSIGN`` ships the pickled job and the
   full peer directory (rank -> shuffle address).  Chunks are *not* in
   the frame: distribution is pull-based (phase 4).
3. **Barrier** — every rank reports ``BARRIER``; once all have arrived
   the coordinator broadcasts ``RESUME``.  This pins a common start
   line so per-rank wall-clock stage timings are comparable.
4. **Chunk service + result collection** — the coordinator multiplexes
   over all rank connections, answering each ``CHUNK_REQ`` from the
   driver's :class:`~repro.core.scheduler.ChunkService` with a
   ``CHUNK_GRANT`` (chunk + victim rank) or ``CHUNKS_DONE``; an idle
   rank — spawned or externally launched — thereby steals chunks from
   the longest queue at runtime.  Each rank ends with exactly one
   ``RESULT`` (output + stats) or ``ERROR`` (remote traceback) frame.

Peer failure is detected, never waited out: a rank connection that hits
EOF before its result arrived raises :class:`RankFailure` immediately
(a dead process's kernel closes its sockets), and every phase enforces
a deadline, raising :class:`ClusterTimeout` with the laggards named.
"""

from __future__ import annotations

import pickle
import selectors
import socket
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .wire import (
    MSG_ASSIGN,
    MSG_BARRIER,
    MSG_CHUNK_GRANT,
    MSG_CHUNK_REQ,
    MSG_CHUNKS_DONE,
    MSG_ERROR,
    MSG_HELLO,
    MSG_MAPS_DONE,
    MSG_RESULT,
    MSG_RESUME,
    MSG_WELCOME,
    DEFAULT_MAX_FRAME_BYTES,
    AuthenticationError,
    FabricError,
    PeerDisconnected,
    ProtocolError,
    ProtocolVersionError,
    deliver_challenge,
    recv_frame,
    send_frame,
    send_versioned_error,
)
from ..core.scheduler import DEFAULT_PREFETCH_WINDOW, RETRY
from ..obs import NULL_OBS

__all__ = ["Coordinator", "ClusterTimeout", "RankFailure"]

#: How often blocking phases wake up to re-check deadlines/liveness.
_POLL_SECONDS = 0.2


class ClusterTimeout(FabricError, TimeoutError):
    """A control-plane phase missed its deadline; names the laggards.

    Also a :class:`TimeoutError`, so ``except TimeoutError`` catches a
    cluster-backend deadline exactly like a local-backend one.
    """


class RankFailure(FabricError):
    """A rank failed; carries the rank id and what is known about why."""

    def __init__(self, rank: int, detail: str) -> None:
        super().__init__(f"rank {rank} failed:\n{detail}")
        self.rank = rank
        self.detail = detail


class Coordinator:
    """Rank registry, broadcaster, barrier, and result sink for one job.

    ``liveness_probe`` (optional) is called on every poll tick of every
    blocking phase; it should raise if it knows a rank already died
    (e.g. the launching executor watching its child processes), turning
    a would-be timeout into an immediate, attributed failure.
    """

    def __init__(
        self,
        n_workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_seconds: float = 120.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        liveness_probe: Optional[Callable[[], None]] = None,
        compress_exchange: bool = False,
        obs: Optional[Any] = None,
        auth_key: Optional[bytes] = None,
        prefetch_window: int = DEFAULT_PREFETCH_WINDOW,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.timeout_seconds = float(timeout_seconds)
        self.max_frame_bytes = int(max_frame_bytes)
        self.liveness_probe = liveness_probe
        #: grant pipelining depth shipped to every rank via ASSIGN:
        #: ranks keep up to ``1 + prefetch_window`` CHUNK_REQ frames in
        #: flight so the next grant overlaps the current chunk's map
        self.prefetch_window = max(0, int(prefetch_window))
        #: when set, every accepted connection (registration and
        #: mid-run rejoin alike) must pass the HMAC challenge-response
        #: handshake before its first pickled frame is read
        self.auth_key = auth_key
        #: ranks zlib-deflate their shuffle chunks (shipped via ASSIGN)
        self.compress_exchange = bool(compress_exchange)
        #: driver-side observability bundle; when set, ASSIGN frames
        #: arm rank-side tracing and RESULT-frame export payloads are
        #: stashed in :attr:`obs_payloads` for the executor to absorb
        self.obs = obs if obs is not None else NULL_OBS
        #: rank -> the export payload its RESULT frame carried
        self.obs_payloads: Dict[int, Any] = {}
        self._listener = socket.create_server(
            (host, port), backlog=max(self.n_workers, 8)
        )
        self._listener.settimeout(_POLL_SECONDS)
        self.host, self.port = self._listener.getsockname()[:2]
        #: rank -> control connection, filled by :meth:`wait_for_ranks`
        self._conns: Dict[int, socket.socket] = {}
        #: rank -> advertised shuffle (host, port)
        self.shuffle_peers: Dict[int, Tuple[str, int]] = {}
        #: membership epoch: bumped on every join/leave (registration
        #: included), carried on WELCOME/ASSIGN/grant frames so ranks
        #: can observe membership changes between grant rounds
        self.epoch = 0
        #: ``(epoch, "join"|"leave", rank)`` events, in epoch order
        self.membership_log: List[Tuple[int, str, int]] = []
        #: the broadcast job blob, kept so a replacement rank can be
        #: re-assigned mid-run (set by :meth:`broadcast_assignments`)
        self._job_blob: Optional[bytes] = None
        self._fault_plan: Optional[Any] = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def close(self) -> None:
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self._conns.clear()
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- phase helpers -----------------------------------------------------
    def _deadline(self) -> float:
        return time.monotonic() + self.timeout_seconds

    def _tick(self, deadline: float, phase: str, waiting_on: Sequence[int]) -> None:
        if self.liveness_probe is not None:
            self.liveness_probe()
        if time.monotonic() > deadline:
            raise ClusterTimeout(
                f"{phase} timed out after {self.timeout_seconds}s; "
                f"still waiting on rank(s) {sorted(waiting_on)}"
            )

    def _authenticate(self, conn: socket.socket) -> bool:
        """Run the HMAC handshake on a fresh connection (when keyed).

        True means the peer may proceed to pickled frames.  A peer
        with the wrong key (or no auth at all) is refused and dropped
        — False, keep listening; the handshake never aborts the run
        the way a misconfiguration does.  The exception is version
        skew: a legacy client gets a versioned refusal frame and the
        error propagates, matching the registration path's existing
        fail-fast contract.
        """
        if self.auth_key is None:
            return True
        try:
            deliver_challenge(
                conn, self.auth_key, max_frame_bytes=self.max_frame_bytes
            )
            return True
        except ProtocolVersionError as exc:
            send_versioned_error(
                conn, str(exc), peer_version=exc.peer_version,
                max_frame_bytes=self.max_frame_bytes,
            )
            conn.close()
            raise
        except (AuthenticationError, ProtocolError, PeerDisconnected,
                socket.timeout, OSError):
            conn.close()
            return False

    # -- 1. registration ---------------------------------------------------
    def wait_for_ranks(self) -> None:
        """Accept HELLOs until every rank 0..n-1 has registered.

        A connection that is not a well-formed HELLO — a port scanner,
        a health check, a half-open socket — is dropped and accepting
        continues; only real misconfigurations (protocol version skew,
        duplicate or out-of-range ranks) abort the run.  The handshake
        itself gets a short per-connection timeout so one silent client
        cannot serially consume the whole registration deadline.
        """
        deadline = self._deadline()
        while len(self._conns) < self.n_workers:
            missing = [r for r in range(self.n_workers) if r not in self._conns]
            self._tick(deadline, "rank registration", missing)
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            conn.settimeout(min(5.0, self.timeout_seconds))
            if not self._authenticate(conn):
                continue
            try:
                _, hello = recv_frame(
                    conn, max_frame_bytes=self.max_frame_bytes, expect=MSG_HELLO
                )
            except ProtocolVersionError:
                conn.close()
                raise
            except (ProtocolError, PeerDisconnected, socket.timeout):
                conn.close()  # not a rank; keep listening
                continue
            conn.settimeout(self.timeout_seconds)
            rank = int(hello["rank"])
            if not 0 <= rank < self.n_workers:
                conn.close()
                raise FabricError(
                    f"HELLO from out-of-range rank {rank} "
                    f"(cluster has {self.n_workers} ranks)"
                )
            if rank in self._conns:
                conn.close()
                raise FabricError(f"duplicate registration for rank {rank}")
            self._conns[rank] = conn
            self.shuffle_peers[rank] = tuple(hello["shuffle_address"])
            self.epoch += 1
            self.membership_log.append((self.epoch, "join", rank))
            send_frame(
                conn,
                MSG_WELCOME,
                {"n_workers": self.n_workers,
                 "max_frame_bytes": self.max_frame_bytes,
                 "epoch": self.epoch},
                max_frame_bytes=self.max_frame_bytes,
            )

    # -- 2. assignment broadcast -------------------------------------------
    def broadcast_assignments(
        self, job: Any, fault_plan: Optional[Any] = None
    ) -> None:
        """Ship the job and the peer directory — metadata only.

        The job (potentially megabytes of mapper state) is pickled
        *once* and embedded as a blob in every rank's ASSIGN frame (and
        kept, so a replacement rank rejoining mid-run can be
        re-assigned without the driver's involvement).  Chunks do
        **not** travel here: ranks pull them one at a time through
        CHUNK_REQ/CHUNK_GRANT during phase 4.  With a ``fault_plan``,
        each rank's ASSIGN carries its scripted kill/stall injection.
        """
        self._job_blob = pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        self._fault_plan = fault_plan
        peers = dict(self.shuffle_peers)
        for rank in range(self.n_workers):
            try:
                send_frame(
                    self._conns[rank],
                    MSG_ASSIGN,
                    self._assignment_payload(rank, peers, fault_plan),
                    max_frame_bytes=self.max_frame_bytes,
                )
            except PeerDisconnected as exc:
                raise RankFailure(
                    rank, f"disconnected before receiving its assignment: {exc}"
                ) from exc

    def _assignment_payload(
        self,
        rank: int,
        peers: Dict[int, Tuple[str, int]],
        fault_plan: Optional[Any],
        rejoin: bool = False,
    ) -> Dict[str, Any]:
        fault: Dict[str, Any] = {}
        if fault_plan is not None:
            # A replacement incarnation never re-runs its predecessor's
            # scripted kill — it exists to finish the reclaimed work.
            # A stall is a rank property (a slow host stays slow) and
            # survives respawn.
            kill_at = fault_plan.kill_for(rank)
            stall = fault_plan.stall_for(rank)
            if kill_at is not None and not rejoin:
                fault["kill_at_chunk"] = kill_at
            if stall:
                fault["stall_seconds"] = stall
        return {
            "job_pickle": self._job_blob,
            "peers": peers,
            "n_workers": self.n_workers,
            "compress_exchange": self.compress_exchange,
            "epoch": self.epoch,
            "fault": fault,
            "rejoin": rejoin,
            "obs": self.obs.enabled,
            "prefetch": self.prefetch_window,
        }

    # -- 3. barrier ---------------------------------------------------------
    def barrier(self, name: str = "start") -> None:
        """Wait for every rank's BARRIER frame, then broadcast RESUME."""
        arrived: set = set()
        deadline = self._deadline()
        with selectors.DefaultSelector() as sel:
            for rank, conn in self._conns.items():
                sel.register(conn, selectors.EVENT_READ, rank)
            while len(arrived) < self.n_workers:
                waiting = [r for r in self._conns if r not in arrived]
                self._tick(deadline, f"barrier {name!r}", waiting)
                for key, _ in sel.select(timeout=_POLL_SECONDS):
                    rank = key.data
                    try:
                        msg_type, payload = recv_frame(
                            key.fileobj, max_frame_bytes=self.max_frame_bytes
                        )
                    except PeerDisconnected as exc:
                        raise RankFailure(
                            rank, f"disconnected at barrier {name!r}: {exc}"
                        ) from exc
                    if msg_type == MSG_ERROR:
                        # A rank can fail before reaching the barrier
                        # (bad assignment unpickle, version skew on a
                        # remote host); surface its traceback, not a
                        # framing complaint.
                        raise RankFailure(rank, payload["traceback"])
                    if msg_type != MSG_BARRIER:
                        raise FabricError(
                            f"rank {rank} sent frame type {msg_type} "
                            f"while barrier {name!r} was pending"
                        )
                    if payload.get("name") != name:
                        raise FabricError(
                            f"rank {rank} reached barrier "
                            f"{payload.get('name')!r}, expected {name!r}"
                        )
                    arrived.add(rank)
        for rank, conn in self._conns.items():
            try:
                send_frame(conn, MSG_RESUME, {"name": name},
                           max_frame_bytes=self.max_frame_bytes)
            except PeerDisconnected as exc:
                raise RankFailure(
                    rank, f"disconnected at barrier {name!r} release: {exc}"
                ) from exc

    # -- 4. chunk service + result collection --------------------------------
    def collect_results(
        self,
        chunk_service: Optional[Any] = None,
        respawner: Optional[Callable[[int, int], bool]] = None,
    ) -> List[Tuple[int, Any, Any]]:
        """Serve chunk pulls and gather one RESULT frame per rank.

        While results are outstanding the coordinator answers every
        ``CHUNK_REQ`` from ``chunk_service`` (the driver's
        :class:`~repro.core.scheduler.ChunkService`): the rank's next
        chunk rides back as a ``CHUNK_GRANT`` carrying the victim rank
        (so the worker can count its steals), or ``CHUNKS_DONE`` once
        the service has nothing left for it (a ``retry`` flag instead
        asks the idle rank to re-poll while speculation may still free
        up work).  A ``MAPS_DONE`` frame marks the rank's map phase
        posted at the service.  Returns ``(rank, output, stats)``
        tuples in rank order.

        The first ERROR frame raises :class:`RankFailure` carrying the
        remote traceback *immediately*.  A connection that drops before
        reporting normally raises :class:`RankFailure` too — but with a
        ``respawner`` attached, a rank that died *before posting its
        map output* is recovered instead: its connection is retired,
        its un-posted grants are reclaimed into the pool, a membership
        epoch is logged, and ``respawner(rank, shuffle_port)`` launches
        a replacement which rejoins mid-run through the listener (its
        HELLO carries ``rejoin``) and pulls the reclaimed work.
        """
        results: Dict[int, Tuple[int, Any, Any]] = {}
        deadline = self._deadline()
        with selectors.DefaultSelector() as sel:
            for rank, conn in self._conns.items():
                sel.register(conn, selectors.EVENT_READ, rank)
            # The listener stays live so a replacement rank can join
            # between grant rounds (registered with data=None).
            sel.register(self._listener, selectors.EVENT_READ, None)
            while len(results) < self.n_workers:
                waiting = [
                    r for r in range(self.n_workers) if r not in results
                ]
                self._tick(deadline, "result collection", waiting)
                for key, _ in sel.select(timeout=_POLL_SECONDS):
                    if key.data is None:
                        self._accept_rejoin(sel)
                        continue
                    rank = key.data
                    if rank in results:
                        continue
                    try:
                        msg_type, payload = recv_frame(
                            key.fileobj, max_frame_bytes=self.max_frame_bytes
                        )
                    except PeerDisconnected as exc:
                        if self._recover_rank(
                            rank, sel, key.fileobj, chunk_service, respawner
                        ):
                            continue
                        raise RankFailure(
                            rank,
                            f"worker process disconnected before reporting "
                            f"a result ({exc})",
                        ) from exc
                    if msg_type == MSG_CHUNK_REQ:
                        try:
                            self._answer_chunk_request(rank, chunk_service)
                        except RankFailure:
                            # Death on the send side of a grant: the
                            # grant stayed outstanding, so recovery
                            # reclaims it with the rest.
                            if not self._recover_rank(
                                rank, sel, key.fileobj, chunk_service,
                                respawner,
                            ):
                                raise
                        continue
                    if msg_type == MSG_MAPS_DONE:
                        if chunk_service is not None:
                            chunk_service.mark_posted(rank)
                        continue
                    if msg_type == MSG_RESULT:
                        results[rank] = (
                            rank, payload["output"], payload["stats"]
                        )
                        # Kept out of the triples so existing callers'
                        # unpacking stays valid; executors absorb this.
                        self.obs_payloads[rank] = payload.get("obs")
                    elif msg_type == MSG_ERROR:
                        raise RankFailure(rank, payload["traceback"])
                    else:
                        raise FabricError(
                            f"rank {rank} sent unexpected frame type {msg_type} "
                            "during result collection"
                        )
                    sel.unregister(key.fileobj)
        return [results[r] for r in sorted(results)]

    # -- fault tolerance ------------------------------------------------------
    def _recover_rank(
        self,
        rank: int,
        sel: selectors.BaseSelector,
        conn: socket.socket,
        chunk_service: Optional[Any],
        respawner: Optional[Callable[[int, int], bool]],
    ) -> bool:
        """Try to survive ``rank``'s death; True if a replacement is due.

        Recovery needs a respawner, a chunk service that still holds
        the rank's whole un-posted map phase (nothing shipped — the
        unit of loss), and respawn budget (the respawner's call).  The
        replacement is told to bind the dead rank's exact shuffle port,
        so the peer directory every surviving rank already holds stays
        valid — pending batches re-route to the replacement by retry.
        """
        if (
            respawner is None
            or chunk_service is None
            or not chunk_service.can_recover(rank)
        ):
            return False
        try:
            sel.unregister(conn)
        except (KeyError, ValueError):
            pass
        try:
            conn.close()
        except OSError:
            pass
        self._conns.pop(rank, None)
        self.obs.tracer.event("rank_dead", rank=rank, epoch=self.epoch)
        if not respawner(rank, self.shuffle_peers[rank][1]):
            return False  # respawn budget exhausted
        self.epoch += 1
        self.membership_log.append((self.epoch, "leave", rank))
        chunk_service.reclaim(rank)
        self.obs.tracer.event("respawn", rank=rank, epoch=self.epoch)
        self.obs.metrics.counter("respawns").inc()
        return True

    def _accept_rejoin(self, sel: selectors.BaseSelector) -> None:
        """Admit a replacement rank's mid-run HELLO (or drop a stray).

        The handshake mirrors registration: WELCOME, then an ASSIGN
        rebuilt from the stored job blob and the *current* peer
        directory, flagged ``rejoin`` so the endpoint skips the start
        barrier and goes straight to pulling chunks.
        """
        try:
            conn, _addr = self._listener.accept()
        except (socket.timeout, OSError):
            return
        conn.settimeout(min(5.0, self.timeout_seconds))
        if not self._authenticate(conn):
            return
        try:
            _, hello = recv_frame(
                conn, max_frame_bytes=self.max_frame_bytes, expect=MSG_HELLO
            )
        except ProtocolVersionError:
            conn.close()
            raise
        except (ProtocolError, PeerDisconnected, socket.timeout):
            conn.close()  # not a rank; ignore
            return
        rank = int(hello.get("rank", -1))
        if (
            not hello.get("rejoin")
            or not 0 <= rank < self.n_workers
            or rank in self._conns
        ):
            conn.close()  # not a legitimate mid-run rejoin
            return
        if self._job_blob is None:
            conn.close()
            raise FabricError(
                f"rank {rank} tried to rejoin before any assignment broadcast"
            )
        conn.settimeout(self.timeout_seconds)
        self._conns[rank] = conn
        self.shuffle_peers[rank] = tuple(hello["shuffle_address"])
        self.epoch += 1
        self.membership_log.append((self.epoch, "join", rank))
        self.obs.tracer.event("rejoin", rank=rank, epoch=self.epoch)
        send_frame(
            conn,
            MSG_WELCOME,
            {"n_workers": self.n_workers,
             "max_frame_bytes": self.max_frame_bytes,
             "epoch": self.epoch},
            max_frame_bytes=self.max_frame_bytes,
        )
        send_frame(
            conn,
            MSG_ASSIGN,
            self._assignment_payload(
                rank, dict(self.shuffle_peers), self._fault_plan, rejoin=True
            ),
            max_frame_bytes=self.max_frame_bytes,
        )
        sel.register(conn, selectors.EVENT_READ, rank)

    def _answer_chunk_request(self, rank: int, chunk_service: Optional[Any]) -> None:
        """Reply to one rank's CHUNK_REQ with a grant, retry, or done."""
        if chunk_service is None:
            raise FabricError(
                f"rank {rank} requested a chunk but no chunk service is "
                "attached to this run"
            )
        assignment = chunk_service.request(rank)
        try:
            if assignment is None:
                send_frame(
                    self._conns[rank], MSG_CHUNKS_DONE,
                    {"epoch": self.epoch},
                    max_frame_bytes=self.max_frame_bytes,
                )
            elif assignment is RETRY:
                send_frame(
                    self._conns[rank], MSG_CHUNKS_DONE,
                    {"retry": True, "epoch": self.epoch},
                    max_frame_bytes=self.max_frame_bytes,
                )
            else:
                send_frame(
                    self._conns[rank],
                    MSG_CHUNK_GRANT,
                    {"chunk": assignment.chunk, "victim": assignment.victim,
                     "epoch": self.epoch},
                    max_frame_bytes=self.max_frame_bytes,
                )
        except PeerDisconnected as exc:
            raise RankFailure(
                rank, f"disconnected while being granted a chunk: {exc}"
            ) from exc

"""Driver-side control plane of the cluster fabric.

The :class:`Coordinator` owns one TCP listening socket.  Rank processes
(local or on other hosts) dial in and the run proceeds through four
control-plane phases, all over the framed wire protocol in
:mod:`repro.fabric.wire`:

1. **Registration** — each rank sends ``HELLO`` carrying its rank id
   and the address of its own shuffle listener; the coordinator answers
   ``WELCOME``.  Registration tolerates stragglers: ranks may dial in
   in any order, any time before the deadline.
2. **Assignment broadcast** — ``ASSIGN`` ships the pickled job and the
   full peer directory (rank -> shuffle address).  Chunks are *not* in
   the frame: distribution is pull-based (phase 4).
3. **Barrier** — every rank reports ``BARRIER``; once all have arrived
   the coordinator broadcasts ``RESUME``.  This pins a common start
   line so per-rank wall-clock stage timings are comparable.
4. **Chunk service + result collection** — the coordinator multiplexes
   over all rank connections, answering each ``CHUNK_REQ`` from the
   driver's :class:`~repro.core.scheduler.ChunkService` with a
   ``CHUNK_GRANT`` (chunk + victim rank) or ``CHUNKS_DONE``; an idle
   rank — spawned or externally launched — thereby steals chunks from
   the longest queue at runtime.  Each rank ends with exactly one
   ``RESULT`` (output + stats) or ``ERROR`` (remote traceback) frame.

Peer failure is detected, never waited out: a rank connection that hits
EOF before its result arrived raises :class:`RankFailure` immediately
(a dead process's kernel closes its sockets), and every phase enforces
a deadline, raising :class:`ClusterTimeout` with the laggards named.
"""

from __future__ import annotations

import pickle
import selectors
import socket
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .wire import (
    MSG_ASSIGN,
    MSG_BARRIER,
    MSG_CHUNK_GRANT,
    MSG_CHUNK_REQ,
    MSG_CHUNKS_DONE,
    MSG_ERROR,
    MSG_HELLO,
    MSG_RESULT,
    MSG_RESUME,
    MSG_WELCOME,
    DEFAULT_MAX_FRAME_BYTES,
    FabricError,
    PeerDisconnected,
    ProtocolError,
    ProtocolVersionError,
    recv_frame,
    send_frame,
)

__all__ = ["Coordinator", "ClusterTimeout", "RankFailure"]

#: How often blocking phases wake up to re-check deadlines/liveness.
_POLL_SECONDS = 0.2


class ClusterTimeout(FabricError, TimeoutError):
    """A control-plane phase missed its deadline; names the laggards.

    Also a :class:`TimeoutError`, so ``except TimeoutError`` catches a
    cluster-backend deadline exactly like a local-backend one.
    """


class RankFailure(FabricError):
    """A rank failed; carries the rank id and what is known about why."""

    def __init__(self, rank: int, detail: str) -> None:
        super().__init__(f"rank {rank} failed:\n{detail}")
        self.rank = rank
        self.detail = detail


class Coordinator:
    """Rank registry, broadcaster, barrier, and result sink for one job.

    ``liveness_probe`` (optional) is called on every poll tick of every
    blocking phase; it should raise if it knows a rank already died
    (e.g. the launching executor watching its child processes), turning
    a would-be timeout into an immediate, attributed failure.
    """

    def __init__(
        self,
        n_workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_seconds: float = 120.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        liveness_probe: Optional[Callable[[], None]] = None,
        compress_exchange: bool = False,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.timeout_seconds = float(timeout_seconds)
        self.max_frame_bytes = int(max_frame_bytes)
        self.liveness_probe = liveness_probe
        #: ranks zlib-deflate their shuffle chunks (shipped via ASSIGN)
        self.compress_exchange = bool(compress_exchange)
        self._listener = socket.create_server(
            (host, port), backlog=max(self.n_workers, 8)
        )
        self._listener.settimeout(_POLL_SECONDS)
        self.host, self.port = self._listener.getsockname()[:2]
        #: rank -> control connection, filled by :meth:`wait_for_ranks`
        self._conns: Dict[int, socket.socket] = {}
        #: rank -> advertised shuffle (host, port)
        self.shuffle_peers: Dict[int, Tuple[str, int]] = {}

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def close(self) -> None:
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self._conns.clear()
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- phase helpers -----------------------------------------------------
    def _deadline(self) -> float:
        return time.monotonic() + self.timeout_seconds

    def _tick(self, deadline: float, phase: str, waiting_on: Sequence[int]) -> None:
        if self.liveness_probe is not None:
            self.liveness_probe()
        if time.monotonic() > deadline:
            raise ClusterTimeout(
                f"{phase} timed out after {self.timeout_seconds}s; "
                f"still waiting on rank(s) {sorted(waiting_on)}"
            )

    # -- 1. registration ---------------------------------------------------
    def wait_for_ranks(self) -> None:
        """Accept HELLOs until every rank 0..n-1 has registered.

        A connection that is not a well-formed HELLO — a port scanner,
        a health check, a half-open socket — is dropped and accepting
        continues; only real misconfigurations (protocol version skew,
        duplicate or out-of-range ranks) abort the run.  The handshake
        itself gets a short per-connection timeout so one silent client
        cannot serially consume the whole registration deadline.
        """
        deadline = self._deadline()
        while len(self._conns) < self.n_workers:
            missing = [r for r in range(self.n_workers) if r not in self._conns]
            self._tick(deadline, "rank registration", missing)
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            conn.settimeout(min(5.0, self.timeout_seconds))
            try:
                _, hello = recv_frame(
                    conn, max_frame_bytes=self.max_frame_bytes, expect=MSG_HELLO
                )
            except ProtocolVersionError:
                conn.close()
                raise
            except (ProtocolError, PeerDisconnected, socket.timeout):
                conn.close()  # not a rank; keep listening
                continue
            conn.settimeout(self.timeout_seconds)
            rank = int(hello["rank"])
            if not 0 <= rank < self.n_workers:
                conn.close()
                raise FabricError(
                    f"HELLO from out-of-range rank {rank} "
                    f"(cluster has {self.n_workers} ranks)"
                )
            if rank in self._conns:
                conn.close()
                raise FabricError(f"duplicate registration for rank {rank}")
            self._conns[rank] = conn
            self.shuffle_peers[rank] = tuple(hello["shuffle_address"])
            send_frame(
                conn,
                MSG_WELCOME,
                {"n_workers": self.n_workers,
                 "max_frame_bytes": self.max_frame_bytes},
                max_frame_bytes=self.max_frame_bytes,
            )

    # -- 2. assignment broadcast -------------------------------------------
    def broadcast_assignments(self, job: Any) -> None:
        """Ship the job and the peer directory — metadata only.

        The job (potentially megabytes of mapper state) is pickled
        *once* and embedded as a blob in every rank's ASSIGN frame.
        Chunks do **not** travel here: ranks pull them one at a time
        through CHUNK_REQ/CHUNK_GRANT during phase 4, so the frame
        carries only what every rank needs before the barrier.
        """
        job_blob = pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        peers = dict(self.shuffle_peers)
        for rank in range(self.n_workers):
            try:
                send_frame(
                    self._conns[rank],
                    MSG_ASSIGN,
                    {
                        "job_pickle": job_blob,
                        "peers": peers,
                        "n_workers": self.n_workers,
                        "compress_exchange": self.compress_exchange,
                    },
                    max_frame_bytes=self.max_frame_bytes,
                )
            except PeerDisconnected as exc:
                raise RankFailure(
                    rank, f"disconnected before receiving its assignment: {exc}"
                ) from exc

    # -- 3. barrier ---------------------------------------------------------
    def barrier(self, name: str = "start") -> None:
        """Wait for every rank's BARRIER frame, then broadcast RESUME."""
        arrived: set = set()
        deadline = self._deadline()
        with selectors.DefaultSelector() as sel:
            for rank, conn in self._conns.items():
                sel.register(conn, selectors.EVENT_READ, rank)
            while len(arrived) < self.n_workers:
                waiting = [r for r in self._conns if r not in arrived]
                self._tick(deadline, f"barrier {name!r}", waiting)
                for key, _ in sel.select(timeout=_POLL_SECONDS):
                    rank = key.data
                    try:
                        msg_type, payload = recv_frame(
                            key.fileobj, max_frame_bytes=self.max_frame_bytes
                        )
                    except PeerDisconnected as exc:
                        raise RankFailure(
                            rank, f"disconnected at barrier {name!r}: {exc}"
                        ) from exc
                    if msg_type == MSG_ERROR:
                        # A rank can fail before reaching the barrier
                        # (bad assignment unpickle, version skew on a
                        # remote host); surface its traceback, not a
                        # framing complaint.
                        raise RankFailure(rank, payload["traceback"])
                    if msg_type != MSG_BARRIER:
                        raise FabricError(
                            f"rank {rank} sent frame type {msg_type} "
                            f"while barrier {name!r} was pending"
                        )
                    if payload.get("name") != name:
                        raise FabricError(
                            f"rank {rank} reached barrier "
                            f"{payload.get('name')!r}, expected {name!r}"
                        )
                    arrived.add(rank)
        for rank, conn in self._conns.items():
            try:
                send_frame(conn, MSG_RESUME, {"name": name},
                           max_frame_bytes=self.max_frame_bytes)
            except PeerDisconnected as exc:
                raise RankFailure(
                    rank, f"disconnected at barrier {name!r} release: {exc}"
                ) from exc

    # -- 4. chunk service + result collection --------------------------------
    def collect_results(
        self, chunk_service: Optional[Any] = None
    ) -> List[Tuple[int, Any, Any]]:
        """Serve chunk pulls and gather one RESULT frame per rank.

        While results are outstanding the coordinator answers every
        ``CHUNK_REQ`` from ``chunk_service`` (the driver's
        :class:`~repro.core.scheduler.ChunkService`): the rank's next
        chunk rides back as a ``CHUNK_GRANT`` carrying the victim rank
        (so the worker can count its steals), or ``CHUNKS_DONE`` once
        the service has nothing left for it.  Returns ``(rank, output,
        stats)`` tuples in rank order.  The first ERROR frame raises
        :class:`RankFailure` carrying the remote traceback
        *immediately* — peers of the failed rank may still be draining
        the shuffle, and a single failure must not cost the run its
        full timeout.  A connection that drops before reporting raises
        :class:`RankFailure` too — a hard-killed worker is detected
        here, not waited out.
        """
        results: Dict[int, Tuple[int, Any, Any]] = {}
        deadline = self._deadline()
        with selectors.DefaultSelector() as sel:
            for rank, conn in self._conns.items():
                sel.register(conn, selectors.EVENT_READ, rank)
            while len(results) < self.n_workers:
                waiting = [r for r in self._conns if r not in results]
                self._tick(deadline, "result collection", waiting)
                for key, _ in sel.select(timeout=_POLL_SECONDS):
                    rank = key.data
                    if rank in results:
                        continue
                    try:
                        msg_type, payload = recv_frame(
                            key.fileobj, max_frame_bytes=self.max_frame_bytes
                        )
                    except PeerDisconnected as exc:
                        raise RankFailure(
                            rank,
                            f"worker process disconnected before reporting "
                            f"a result ({exc})",
                        ) from exc
                    if msg_type == MSG_CHUNK_REQ:
                        self._answer_chunk_request(rank, chunk_service)
                        continue
                    if msg_type == MSG_RESULT:
                        results[rank] = (
                            rank, payload["output"], payload["stats"]
                        )
                    elif msg_type == MSG_ERROR:
                        raise RankFailure(rank, payload["traceback"])
                    else:
                        raise FabricError(
                            f"rank {rank} sent unexpected frame type {msg_type} "
                            "during result collection"
                        )
                    sel.unregister(key.fileobj)
        return [results[r] for r in sorted(results)]

    def _answer_chunk_request(self, rank: int, chunk_service: Optional[Any]) -> None:
        """Reply to one rank's CHUNK_REQ with a grant or done."""
        if chunk_service is None:
            raise FabricError(
                f"rank {rank} requested a chunk but no chunk service is "
                "attached to this run"
            )
        assignment = chunk_service.request(rank)
        try:
            if assignment is None:
                send_frame(
                    self._conns[rank], MSG_CHUNKS_DONE, {},
                    max_frame_bytes=self.max_frame_bytes,
                )
            else:
                send_frame(
                    self._conns[rank],
                    MSG_CHUNK_GRANT,
                    {"chunk": assignment.chunk, "victim": assignment.victim},
                    max_frame_bytes=self.max_frame_bytes,
                )
        except PeerDisconnected as exc:
            raise RankFailure(
                rank, f"disconnected while being granted a chunk: {exc}"
            ) from exc

"""Join a cluster fabric from the command line — the multi-host path.

:class:`~repro.exec.cluster.ClusterExecutor` spawns its ranks as local
processes for single-host runs and tests, but the wire protocol is
host-agnostic; this launcher is the only extra piece a real multi-host
run needs.  Start the driver with ``make_executor("cluster", N,
spawn_ranks=False)`` (it prints / exposes its coordinator address),
then on each host::

    python -m repro.fabric.launch --coordinator driver-host:5555 --rank 0
    python -m repro.fabric.launch --coordinator driver-host:5555 --rank 1 ...

Each invocation registers with the coordinator, receives its job over
the wire, pulls chunks one at a time from the coordinator's chunk
service (stealing from loaded peers at runtime like any other rank),
shuffles directly with its peers, and reports its result — no code or
data staging on the worker hosts.

``--listen-host`` binds the rank's shuffle listener (default
``0.0.0.0`` here, so peers on other hosts can reach it) and
``--advertise-host`` is the address peers should dial (defaults to this
host's name as resolved locally).

The fabric moves pickled objects and assumes a private, trusted
network (see :mod:`repro.fabric.wire`); only bind interfaces on an
isolated cluster interconnect.
"""

from __future__ import annotations

import argparse
import socket
import sys
from typing import Optional, Sequence

from .endpoint import run_rank
from .wire import DEFAULT_MAX_FRAME_BYTES, load_auth_key, parse_address

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric.launch",
        description="Join a GPMR cluster fabric as one worker rank.",
    )
    parser.add_argument(
        "--coordinator",
        required=True,
        metavar="HOST:PORT",
        help="address of the driver's fabric coordinator",
    )
    parser.add_argument(
        "--rank", required=True, type=int, help="this worker's rank id (0-based)"
    )
    parser.add_argument(
        "--listen-host",
        default="0.0.0.0",
        help="interface the shuffle listener binds (default: all)",
    )
    parser.add_argument(
        "--advertise-host",
        default=None,
        help="address peers dial for shuffle batches "
        "(default: this host's resolved name)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="per-phase fabric timeout (default: 300)",
    )
    parser.add_argument(
        "--max-frame-bytes",
        type=int,
        default=DEFAULT_MAX_FRAME_BYTES,
        help="largest accepted wire frame (default: 1 GiB)",
    )
    parser.add_argument(
        "--listen-port",
        type=int,
        default=0,
        help="shuffle listener port (default: ephemeral; a rejoining "
        "replacement passes its predecessor's port)",
    )
    parser.add_argument(
        "--rejoin",
        action="store_true",
        help="join as a replacement for a rank that died mid-run: skip "
        "the start barrier and take over the dead rank's un-posted "
        "chunks (requires --listen-port set to the dead rank's "
        "shuffle port)",
    )
    parser.add_argument(
        "--auth-key-env",
        default=None,
        metavar="VAR",
        help="environment variable holding the fabric's shared auth "
        "key (the coordinator must be started with the same key)",
    )
    parser.add_argument(
        "--auth-key-file",
        default=None,
        metavar="PATH",
        help="file holding the shared auth key (trailing whitespace "
        "stripped); mutually exclusive with --auth-key-env",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.rank < 0:
        print(f"error: --rank must be >= 0, got {args.rank}", file=sys.stderr)
        return 2
    advertise = args.advertise_host
    if advertise is None:
        # A wildcard bind is not dialable; advertise something that is.
        advertise = (
            "127.0.0.1"
            if args.listen_host in ("0.0.0.0", "")
            and args.coordinator.startswith(("127.", "localhost"))
            else socket.gethostname()
        )
    try:
        auth_key = load_auth_key(args.auth_key_env, args.auth_key_file)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        run_rank(
            args.rank,
            parse_address(args.coordinator),
            listen_host=args.listen_host,
            advertise_host=advertise,
            timeout_seconds=args.timeout,
            max_frame_bytes=args.max_frame_bytes,
            listen_port=args.listen_port,
            rejoin=args.rejoin,
            auth_key=auth_key,
        )
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"rank {args.rank} failed: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Minimal perfect hashing (substrate S10) for Word Occurrence keys."""

from .mph import (
    MinimalPerfectHash,
    MPHBuildError,
    PolyHashes,
    poly_hashes_bytes,
    segmented_poly_hashes,
)

__all__ = [
    "MinimalPerfectHash",
    "MPHBuildError",
    "PolyHashes",
    "poly_hashes_bytes",
    "segmented_poly_hashes",
]

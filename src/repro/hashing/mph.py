"""Minimal perfect hashing for string keys (the paper's WO trick).

Word Occurrence cannot use strings as GPU keys ("strings cannot be read
in a single instruction"), so the paper assigns each dictionary word a
unique four-byte integer via a minimal perfect hash [Cichelli 1980].
We implement a displacement-based MPH in the CHD family:

1. three vectorisable polynomial byte hashes ``h1, h2, h3`` over the
   word bytes;
2. words are grouped into ``m ~ n / LAMBDA`` buckets by ``h1 % m``;
3. buckets are placed largest-first: for each bucket we search a
   displacement ``d`` such that ``mix(h2, d) % n`` is a fresh,
   collision-free slot for every word in the bucket, where ``mix`` is a
   splitmix-style non-linear combiner (an affine ``h2 + d*h3`` form
   would leave mod-n-congruent pairs colliding for *every* d).

Lookup is branch-free and fully vectorised over arrays of word hashes —
which is exactly what the simulated WO map kernel needs to hash
millions of words per chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["PolyHashes", "poly_hashes_bytes", "MinimalPerfectHash", "MPHBuildError"]

#: Average bucket load of the displacement search.
LAMBDA = 4

#: Polynomial bases for the three hash streams (odd, well-mixed).
_BASES = (31, 131, 65599)
_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class PolyHashes:
    """The three base hashes of a batch of words (uint64 arrays)."""

    h1: np.ndarray
    h2: np.ndarray
    h3: np.ndarray

    def __len__(self) -> int:
        return len(self.h1)


def _poly_hash_word(word: bytes, base: int) -> int:
    h = 0
    for b in word:
        h = (h * base + b + 1) & 0xFFFFFFFFFFFFFFFF
    return h


def poly_hashes_bytes(words: Sequence[bytes]) -> PolyHashes:
    """Base hashes for a list of byte-string words (build-time path)."""
    n = len(words)
    out = [np.empty(n, dtype=np.uint64) for _ in _BASES]
    for i, word in enumerate(words):
        for j, base in enumerate(_BASES):
            out[j][i] = _poly_hash_word(word, base)
    return PolyHashes(*out)


def segmented_poly_hashes(
    data: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> PolyHashes:
    """Vectorised base hashes for words packed in one byte array.

    ``data`` is a uint8 array; word ``i`` is
    ``data[starts[i] : starts[i] + lengths[i]]``.  The polynomial hash
    ``h = sum((b + 1) * base^(L - 1 - pos))`` is computed for all words
    at once with a power table and ``np.add.reduceat`` — this is the
    map-kernel path, so it must not loop per word.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if len(starts) == 0:
        e = np.empty(0, dtype=np.uint64)
        return PolyHashes(e, e.copy(), e.copy())
    max_len = int(lengths.max())
    total = int(lengths.sum())

    # Flatten all word bytes with their in-word positions.
    within = np.arange(total) - np.repeat(np.cumsum(lengths) - lengths, lengths)
    byte_pos = np.repeat(starts, lengths) + within
    raw = data[byte_pos].astype(np.uint64) + np.uint64(1)
    # Exponent of the base for each byte: L - 1 - position.
    exps = (np.repeat(lengths, lengths) - 1 - within).astype(np.int64)

    seg_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    hashes: List[np.ndarray] = []
    with np.errstate(over="ignore"):  # modular 2^64 arithmetic is intended
        for base in _BASES:
            powers = np.empty(max_len, dtype=np.uint64)
            powers[0] = 1
            for p in range(1, max_len):  # max_len is tiny (longest word)
                powers[p] = (powers[p - 1] * np.uint64(base)) & _MASK64
            terms = (raw * powers[exps]) & _MASK64
            sums = np.add.reduceat(terms, seg_starts)
            hashes.append(sums.astype(np.uint64))
    return PolyHashes(*hashes)


class MPHBuildError(RuntimeError):
    """Raised when displacement search fails (retry with a new seed)."""


_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _mix(h2: np.ndarray, d: np.uint64) -> np.ndarray:
    """Splitmix64-style combine of a word hash with a displacement."""
    with np.errstate(over="ignore"):  # modular 2^64 arithmetic is intended
        z = (h2 ^ (d * _GOLDEN)) & _MASK64
        z = ((z ^ (z >> np.uint64(30))) * _MIX1) & _MASK64
        z = ((z ^ (z >> np.uint64(27))) * _MIX2) & _MASK64
        return z ^ (z >> np.uint64(31))


class MinimalPerfectHash:
    """A minimal perfect hash over a fixed vocabulary of byte words.

    ``build`` maps each of the ``n`` vocabulary words to a distinct slot
    in ``[0, n)``; ``lookup_hashes`` maps batches of pre-hashed words to
    their slots without branching.
    """

    def __init__(self, n: int, m: int, displacements: np.ndarray) -> None:
        self.n = n
        self.m = m
        self.displacements = displacements

    # -- construction ------------------------------------------------------
    @classmethod
    def build(cls, words: Sequence[bytes], max_displacement: int = 1 << 16) -> "MinimalPerfectHash":
        if len(set(words)) != len(words):
            raise ValueError("vocabulary contains duplicate words")
        n = len(words)
        if n == 0:
            raise ValueError("cannot build an MPH over an empty vocabulary")
        hashes = poly_hashes_bytes(words)
        m = max(1, n // LAMBDA)

        buckets: List[List[int]] = [[] for _ in range(m)]
        b_of = (hashes.h1 % np.uint64(m)).astype(np.int64)
        for i in range(n):
            buckets[b_of[i]].append(i)

        order = sorted(range(m), key=lambda b: -len(buckets[b]))
        taken = np.zeros(n, dtype=bool)
        displacements = np.zeros(m, dtype=np.uint64)
        h2 = hashes.h2

        batch = 64  # displacement candidates evaluated per vector op
        for b in order:
            members = buckets[b]
            if not members:
                continue
            mh2 = h2[members][:, None]
            placed = False
            for d0 in range(0, max_displacement, batch):
                ds = np.arange(d0, d0 + batch, dtype=np.uint64)[None, :]
                slots = (_mix(mh2, ds) % np.uint64(n)).astype(np.int64)
                # A candidate column is valid when its slots are distinct
                # and all free.
                srt = np.sort(slots, axis=0)
                distinct = (
                    np.ones(batch, dtype=bool)
                    if len(members) == 1
                    else ~np.any(srt[1:] == srt[:-1], axis=0)
                )
                free = ~np.any(taken[slots], axis=0)
                valid = np.flatnonzero(distinct & free)
                if len(valid):
                    col = int(valid[0])
                    taken[slots[:, col]] = True
                    displacements[b] = d0 + col
                    placed = True
                    break
            if not placed:
                raise MPHBuildError(
                    f"no displacement found for bucket of {len(members)} words"
                )
        assert taken.all(), "MPH build finished without covering every slot"
        return cls(n=n, m=m, displacements=displacements)

    # -- lookup ------------------------------------------------------------
    def lookup_hashes(self, hashes: PolyHashes) -> np.ndarray:
        """Slot indices in ``[0, n)`` for pre-hashed words (vectorised)."""
        b = (hashes.h1 % np.uint64(self.m)).astype(np.int64)
        d = self.displacements[b]
        slots = _mix(hashes.h2, d) % np.uint64(self.n)
        return slots.astype(np.int64)

    def lookup_words(self, words: Sequence[bytes]) -> np.ndarray:
        """Slot indices for raw byte words (convenience, loops per word)."""
        return self.lookup_hashes(poly_hashes_bytes(words))

    @property
    def table_bytes(self) -> int:
        """Size of the displacement table (what ships to the GPU)."""
        return self.displacements.nbytes

"""Analytic kernel cost model (the temporal half of a CUDA kernel).

A :class:`KernelLaunch` describes *what a kernel does* in roofline
terms — total FLOPs, global-memory traffic, coalescing quality, atomics
— plus its launch geometry.  :func:`kernel_duration` converts that into
simulated seconds on a :class:`~repro.hw.specs.GPUSpec` using a
max-of-bottlenecks roofline:

``t = launch_overhead + max(t_compute, t_memory) + t_atomics + t_sync``

with an occupancy de-rating when the grid is too small to fill the
machine (Kirk & Hwu's "many threads and blocks" rule, which the paper
leans on) and a divergence de-rating for warp-incoherent kernels.

The numbers that matter for the reproduction are *ratios* (map kernel
vs PCI-e vs network), and those are governed by the published bandwidth
and throughput figures in :mod:`repro.hw.specs`; the efficiency
constants here are the usual achievable fractions of peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import GPUSpec
from ..util.validation import check_in_range, check_non_negative

__all__ = ["KernelLaunch", "kernel_duration", "COMPUTE_EFFICIENCY", "MEMORY_EFFICIENCY"]

#: Achievable fraction of peak FLOP/s for tuned kernels.
COMPUTE_EFFICIENCY = 0.75
#: Achievable fraction of peak DRAM bandwidth for coalesced streams.
MEMORY_EFFICIENCY = 0.80


@dataclass(frozen=True)
class KernelLaunch:
    """Roofline description of one kernel invocation.

    Parameters
    ----------
    name:
        Label for tracing/stats.
    grid_blocks / block_threads:
        Launch geometry; used for the occupancy de-rating and to bound
        ``block_threads`` by the device limit.
    flops:
        Total floating-point (or integer ALU) operations.
    gmem_read / gmem_write:
        Global-memory traffic in bytes.
    coalescing:
        Fraction of peak memory bandwidth this kernel's access pattern
        achieves (1.0 = perfectly coalesced, ~1/16 = fully scattered
        32-bit accesses on GT200).
    atomics:
        Number of global-memory atomic operations issued.
    atomic_conflict:
        Average serialisation factor of those atomics (1 = conflict-free
        fire-and-forget, N = N-way same-address contention).
    divergence:
        Warp-divergence de-rating of compute throughput (1.0 = coherent).
    syncs:
        Number of device-wide synchronisation points beyond the launch
        itself (each costs one launch overhead — GPMR kernels that need
        global sync split into multiple launches).
    """

    name: str
    grid_blocks: int
    block_threads: int
    flops: float = 0.0
    gmem_read: float = 0.0
    gmem_write: float = 0.0
    coalescing: float = 1.0
    atomics: float = 0.0
    atomic_conflict: float = 1.0
    divergence: float = 1.0
    syncs: int = 0

    def __post_init__(self) -> None:
        check_non_negative(self.grid_blocks, "grid_blocks")
        check_non_negative(self.block_threads, "block_threads")
        check_non_negative(self.flops, "flops")
        check_non_negative(self.gmem_read, "gmem_read")
        check_non_negative(self.gmem_write, "gmem_write")
        check_in_range(self.coalescing, 1e-3, 1.0, "coalescing")
        check_non_negative(self.atomics, "atomics")
        if self.atomic_conflict < 1.0:
            raise ValueError("atomic_conflict must be >= 1")
        check_in_range(self.divergence, 1e-3, 1.0, "divergence")
        check_non_negative(self.syncs, "syncs")

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.block_threads

    @property
    def bytes_moved(self) -> float:
        return self.gmem_read + self.gmem_write

    def scaled(self, factor: float) -> "KernelLaunch":
        """The same kernel over ``factor`` times the work (geometry too)."""
        return KernelLaunch(
            name=self.name,
            grid_blocks=max(1, int(round(self.grid_blocks * factor))),
            block_threads=self.block_threads,
            flops=self.flops * factor,
            gmem_read=self.gmem_read * factor,
            gmem_write=self.gmem_write * factor,
            coalescing=self.coalescing,
            atomics=self.atomics * factor,
            atomic_conflict=self.atomic_conflict,
            divergence=self.divergence,
            syncs=self.syncs,
        )


def occupancy(spec: GPUSpec, launch: KernelLaunch) -> float:
    """Fraction of the device the launch can keep busy (0..1].

    A grid with fewer resident threads than the device supports cannot
    hide latency; throughput falls roughly linearly below full
    occupancy.  We floor at one warp per SM's worth of throughput.
    """
    if launch.total_threads <= 0:
        return 1.0
    full = spec.max_resident_threads
    frac = min(1.0, launch.total_threads / full)
    floor = spec.warp_size / 1024.0  # one warp per SM
    return max(frac, floor)


def kernel_duration(spec: GPUSpec, launch: KernelLaunch) -> float:
    """Simulated execution time of ``launch`` on ``spec`` in seconds."""
    if launch.block_threads > spec.max_threads_per_block:
        raise ValueError(
            f"{launch.name}: block of {launch.block_threads} threads exceeds "
            f"device limit {spec.max_threads_per_block}"
        )

    occ = occupancy(spec, launch)

    compute_rate = spec.peak_flops * COMPUTE_EFFICIENCY * launch.divergence * occ
    t_compute = launch.flops / compute_rate if launch.flops else 0.0

    mem_rate = spec.mem_bandwidth * MEMORY_EFFICIENCY * launch.coalescing * occ
    t_memory = launch.bytes_moved / mem_rate if launch.bytes_moved else 0.0

    t_atomic = launch.atomics * spec.atomic_cost * launch.atomic_conflict
    overheads = spec.kernel_launch_overhead * (1 + launch.syncs)

    return overheads + max(t_compute, t_memory) + t_atomic

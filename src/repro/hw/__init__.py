"""Hardware models (substrate S2): GPUs, CPUs, PCI-e, nodes.

The paper ran on real Tesla S1070 hardware; this package substitutes a
calibrated performance model (see DESIGN.md section 2).  Components:

* :mod:`~repro.hw.specs` — spec records + the NCSA Accelerator preset
* :mod:`~repro.hw.memory` — device-memory allocator (1 GB budget real)
* :mod:`~repro.hw.kernel` — roofline kernel cost model
* :mod:`~repro.hw.gpu` / :mod:`~repro.hw.pcie` / :mod:`~repro.hw.cpu`
  — contention-aware device models on the DES
* :mod:`~repro.hw.node` — node assembly
"""

from .cpu import HostCPU
from .gpu import GPU
from .kernel import COMPUTE_EFFICIENCY, MEMORY_EFFICIENCY, KernelLaunch, kernel_duration
from .memory import Allocation, DeviceAllocator, OutOfDeviceMemory
from .meter import Meter
from .node import Node, build_nodes
from .pcie import D2H, H2D, PCIeLink
from .specs import (
    ACCELERATOR,
    ACCELERATOR_NODE,
    GT200,
    OPTERON_2216_2P,
    PCIE_GEN1_X16,
    PCIE_GEN2_X16,
    QDR_INFINIBAND,
    ClusterSpec,
    CPUSpec,
    GPUSpec,
    NICSpec,
    NodeSpec,
    PCIeSpec,
)

__all__ = [
    "GPU",
    "HostCPU",
    "KernelLaunch",
    "kernel_duration",
    "COMPUTE_EFFICIENCY",
    "MEMORY_EFFICIENCY",
    "Allocation",
    "DeviceAllocator",
    "OutOfDeviceMemory",
    "Meter",
    "Node",
    "build_nodes",
    "PCIeLink",
    "H2D",
    "D2H",
    "GPUSpec",
    "CPUSpec",
    "PCIeSpec",
    "NICSpec",
    "NodeSpec",
    "ClusterSpec",
    "GT200",
    "OPTERON_2216_2P",
    "PCIE_GEN1_X16",
    "PCIE_GEN2_X16",
    "QDR_INFINIBAND",
    "ACCELERATOR_NODE",
    "ACCELERATOR",
]

"""The simulated GPU device.

A :class:`GPU` combines:

* a :class:`~repro.hw.memory.DeviceAllocator` enforcing the device
  memory budget (1 GB per GPU in the paper's runs),
* a capacity-1 *compute engine* — GT200 runs one kernel at a time,
* a shared :class:`~repro.hw.pcie.PCIeLink` for h2d/d2h copies (copies
  and kernels overlap because they occupy different resources — this is
  what makes GPMR's streaming chunk pipeline effective),
* a :class:`~repro.hw.meter.Meter` recording busy time per activity.

The *functional* side of kernels (what they compute) lives in the
primitive library and the apps; the GPU only prices and serialises
them.
"""

from __future__ import annotations

from typing import Generator

from .kernel import KernelLaunch, kernel_duration
from .memory import Allocation, DeviceAllocator
from .meter import Meter
from .pcie import D2H, H2D, PCIeLink
from .specs import GPUSpec
from ..sim import Environment, Resource

__all__ = ["GPU"]


class GPU:
    """One simulated GPU attached to a node."""

    def __init__(
        self,
        env: Environment,
        spec: GPUSpec,
        link: PCIeLink,
        device_index: int = 0,
        name: str = "",
    ) -> None:
        self.env = env
        self.spec = spec
        self.link = link
        self.device_index = device_index
        self.name = name or f"gpu{device_index}"
        self.allocator = DeviceAllocator(spec.mem_capacity)
        self._compute = Resource(env, capacity=1, name=f"{self.name}:compute")
        self.meter = Meter()
        self.kernels_launched = 0

    # -- memory ------------------------------------------------------------
    def alloc(self, nbytes: int, tag: str = "") -> Allocation:
        """Reserve device memory (raises OutOfDeviceMemory when over budget)."""
        return self.allocator.alloc(nbytes, tag=tag)

    def free(self, allocation: Allocation) -> None:
        self.allocator.free(allocation)

    def fits(self, nbytes: int) -> bool:
        return self.allocator.would_fit(nbytes)

    # -- execution -----------------------------------------------------------
    def kernel_time(self, launch: KernelLaunch) -> float:
        """Unloaded duration of a launch (no queueing)."""
        return kernel_duration(self.spec, launch)

    def run_kernel(self, launch: KernelLaunch) -> Generator:
        """Process: execute ``launch`` on the compute engine.

        Returns the kernel's simulated duration (excluding queueing).
        """
        duration = kernel_duration(self.spec, launch)
        with self._compute.request() as req:
            yield req
            yield self.env.timeout(duration)
        self.kernels_launched += 1
        self.meter.add("kernel", duration)
        return duration

    def copy_h2d(self, nbytes: int, tag: str = "h2d") -> Generator:
        """Process: host-to-device copy over the shared PCI-e link."""
        elapsed = yield from self.link.transfer(nbytes, H2D)
        self.meter.add(tag, elapsed)
        return elapsed

    def copy_d2h(self, nbytes: int, tag: str = "d2h") -> Generator:
        """Process: device-to-host copy over the shared PCI-e link."""
        elapsed = yield from self.link.transfer(nbytes, D2H)
        self.meter.add(tag, elapsed)
        return elapsed

    @property
    def compute_queue_len(self) -> int:
        return self._compute.queue_len

    def __repr__(self) -> str:  # pragma: no cover
        return f"<GPU {self.name} spec={self.spec.name!r}>"

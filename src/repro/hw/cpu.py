"""Host CPU model: a pool of cores with throughput-based task pricing.

GPMR uses the host CPU for exactly one pipeline stage — **Bin**, the
network-transmission substage that runs in its own thread — plus
whatever the user's chunk (de)serialisation costs.  The Phoenix
baseline (:mod:`repro.baselines.phoenix`) prices entire MapReduce jobs
on this model.
"""

from __future__ import annotations

from typing import Generator

from .meter import Meter
from .specs import CPUSpec
from ..sim import Environment, Resource

__all__ = ["HostCPU"]


class HostCPU:
    """All sockets of one node as a single core pool."""

    def __init__(self, env: Environment, spec: CPUSpec, name: str = "cpu") -> None:
        self.env = env
        self.spec = spec
        self.name = name
        self.cores = Resource(env, capacity=spec.core_count, name=f"{name}:cores")
        self.meter = Meter()

    # -- pricing -------------------------------------------------------------
    def flops_time(self, flops: float) -> float:
        """Single-core time for ``flops`` floating-point operations."""
        per_core = self.spec.clock_hz * self.spec.flops_per_core_cycle
        return flops / per_core

    def bytes_time(self, nbytes: float) -> float:
        """Single-core time to stream ``nbytes`` (memcpy/serialisation)."""
        return nbytes / self.spec.byte_throughput_per_core

    # -- execution -----------------------------------------------------------
    def run(self, seconds: float, tag: str = "cpu") -> Generator:
        """Process: occupy one core for ``seconds``."""
        if seconds < 0:
            raise ValueError("duration must be non-negative")
        with self.cores.request() as req:
            yield req
            if seconds:
                yield self.env.timeout(seconds)
        self.meter.add(tag, seconds)
        return seconds

    def compute(self, flops: float, tag: str = "compute") -> Generator:
        """Process: single-core computation of ``flops``."""
        result = yield from self.run(self.flops_time(flops), tag=tag)
        return result

    def process_bytes(self, nbytes: float, tag: str = "memcpy") -> Generator:
        """Process: single-core byte handling of ``nbytes``."""
        result = yield from self.run(self.bytes_time(nbytes), tag=tag)
        return result

"""Device-memory accounting: a first-fit allocator with coalescing free.

The GPUs in this reproduction hold their *data* in host NumPy arrays
(the functional half of the model), but the *budget* of device memory
is enforced here so that out-of-core behaviour is real: a GPMR chunk
that would not fit on a 1 GB GT200 raises :class:`OutOfDeviceMemory`
exactly where a ``cudaMalloc`` would have failed.

The allocator is a classic address-ordered first-fit free list with
coalescing on free, so fragmentation behaviour is plausible rather than
idealised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["Allocation", "DeviceAllocator", "OutOfDeviceMemory"]


class OutOfDeviceMemory(MemoryError):
    """Raised when an allocation cannot be satisfied."""

    def __init__(self, requested: int, free: int, capacity: int) -> None:
        super().__init__(
            f"device OOM: requested {requested} B, largest-free-dependent, "
            f"free {free} B of {capacity} B"
        )
        self.requested = requested
        self.free = free
        self.capacity = capacity


@dataclass(frozen=True)
class Allocation:
    """A live device-memory reservation."""

    offset: int
    size: int
    tag: str = ""

    @property
    def end(self) -> int:
        return self.offset + self.size


class DeviceAllocator:
    """First-fit allocator over a linear device address space."""

    #: all allocations are rounded up to this many bytes (GPU malloc
    #: granularity; also keeps offsets aligned for coalescing).
    ALIGNMENT = 256

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = int(capacity)
        # (offset, size), address-ordered, non-adjacent.
        self._free: List[Tuple[int, int]] = [(0, self._capacity)]
        self._live: Dict[int, Allocation] = {}
        self._peak = 0

    # -- inspection ------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used(self) -> int:
        return sum(a.size for a in self._live.values())

    @property
    def free_bytes(self) -> int:
        return self._capacity - self.used

    @property
    def peak_used(self) -> int:
        """High-water mark of bytes in use."""
        return self._peak

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def largest_free_block(self) -> int:
        return max((size for _, size in self._free), default=0)

    def would_fit(self, nbytes: int) -> bool:
        """Whether ``alloc(nbytes)`` would currently succeed."""
        needed = self._aligned(nbytes)
        return any(size >= needed for _, size in self._free)

    # -- operations --------------------------------------------------------
    @classmethod
    def _aligned(cls, nbytes: int) -> int:
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        n = max(int(nbytes), 1)
        return (n + cls.ALIGNMENT - 1) // cls.ALIGNMENT * cls.ALIGNMENT

    def alloc(self, nbytes: int, tag: str = "") -> Allocation:
        """Reserve ``nbytes`` (rounded to alignment); first-fit placement."""
        needed = self._aligned(nbytes)
        for i, (offset, size) in enumerate(self._free):
            if size >= needed:
                if size == needed:
                    self._free.pop(i)
                else:
                    self._free[i] = (offset + needed, size - needed)
                allocation = Allocation(offset=offset, size=needed, tag=tag)
                self._live[offset] = allocation
                self._peak = max(self._peak, self.used)
                return allocation
        raise OutOfDeviceMemory(needed, self.free_bytes, self._capacity)

    def free(self, allocation: Allocation) -> None:
        """Release a reservation, coalescing with free neighbours."""
        live = self._live.pop(allocation.offset, None)
        if live is None or live.size != allocation.size:
            raise ValueError(f"double free or foreign allocation: {allocation}")

        lo, size = allocation.offset, allocation.size
        hi = lo + size
        merged: List[Tuple[int, int]] = []
        for off, sz in self._free:
            if off + sz == lo:           # free block ends where we start
                lo, size = off, sz + size
            elif off == hi:              # free block starts where we end
                size += sz
                hi = lo + size
            else:
                merged.append((off, sz))
        merged.append((lo, size))
        merged.sort()
        self._free = merged

    def reset(self) -> None:
        """Free everything (device reset)."""
        self._free = [(0, self._capacity)]
        self._live.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<DeviceAllocator used={self.used}/{self._capacity} "
            f"live={len(self._live)} frags={len(self._free)}>"
        )

"""PCI-e link model: bandwidth, latency, per-direction contention.

Each physical link carries independent half-duplex engines per
direction (h2d, d2h), modelled as capacity-1 resources.  On the Tesla
S1070, two GPUs share one PCI-e cable to the host — exactly the
contention that makes GPMR's communication-avoiding substages matter —
so a :class:`PCIeLink` is typically shared by two :class:`~repro.hw.gpu.GPU`
instances.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from .specs import PCIeSpec
from ..sim import Environment, Resource

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.events import Event

__all__ = ["PCIeLink", "H2D", "D2H"]

H2D = "h2d"
D2H = "d2h"


class PCIeLink:
    """One PCI-e cable between host memory and (up to two) GPUs."""

    def __init__(self, env: Environment, spec: PCIeSpec, name: str = "pcie") -> None:
        self.env = env
        self.spec = spec
        self.name = name
        self._engines = {
            H2D: Resource(env, capacity=1, name=f"{name}:{H2D}"),
            D2H: Resource(env, capacity=1, name=f"{name}:{D2H}"),
        }
        self.bytes_moved = {H2D: 0, D2H: 0}

    def duration(self, nbytes: int, direction: str) -> float:
        """Unloaded transfer time for ``nbytes`` in ``direction``."""
        bw = self.spec.bandwidth_h2d if direction == H2D else self.spec.bandwidth_d2h
        return self.spec.latency + nbytes / bw

    def transfer(self, nbytes: int, direction: str) -> Generator["Event", None, float]:
        """Process: move ``nbytes``; returns the time spent (incl. queueing)."""
        if direction not in self._engines:
            raise ValueError(f"unknown PCI-e direction {direction!r}")
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        start = self.env.now
        engine = self._engines[direction]
        with engine.request() as req:
            yield req
            if nbytes:
                yield self.env.timeout(self.duration(nbytes, direction))
        self.bytes_moved[direction] += int(nbytes)
        return self.env.now - start

    def queue_len(self, direction: str) -> int:
        return self._engines[direction].queue_len

"""Node assembly: CPUs + GPUs + PCI-e links, instantiated from specs.

A :class:`Node` builds the simulation-side objects for one cluster
node.  GPUs are attached to PCI-e links in pairs (S1070 topology: two
GPUs per cable), so siblings contend for host transfer bandwidth.
"""

from __future__ import annotations

from typing import List

from .cpu import HostCPU
from .gpu import GPU
from .pcie import PCIeLink
from .specs import ClusterSpec, NodeSpec
from ..sim import Environment

__all__ = ["Node", "build_nodes"]


class Node:
    """One simulated cluster node."""

    def __init__(self, env: Environment, spec: NodeSpec, index: int = 0) -> None:
        self.env = env
        self.spec = spec
        self.index = index
        self.name = f"node{index}"
        self.cpu = HostCPU(env, spec.cpu, name=f"{self.name}:cpu")

        self.links: List[PCIeLink] = [
            PCIeLink(env, spec.pcie, name=f"{self.name}:pcie{i}")
            for i in range(spec.pcie_links)
        ]
        self.gpus: List[GPU] = []
        for g in range(spec.gpus_per_node):
            link = self.links[g // spec.pcie.gpus_per_link]
            self.gpus.append(
                GPU(env, spec.gpu, link, device_index=g, name=f"{self.name}:gpu{g}")
            )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name} gpus={len(self.gpus)}>"


def build_nodes(env: Environment, cluster: ClusterSpec, n_nodes: int) -> List[Node]:
    """Instantiate the first ``n_nodes`` nodes of ``cluster``."""
    if n_nodes < 1 or n_nodes > cluster.node_count:
        raise ValueError(
            f"n_nodes must be in [1, {cluster.node_count}], got {n_nodes}"
        )
    return [Node(env, cluster.node, index=i) for i in range(n_nodes)]

"""Hardware specification records and the paper's cluster preset.

All the temporal behaviour of the reproduction derives from the numbers
in this module.  The :data:`ACCELERATOR` preset models the NCSA
*Accelerator* cluster used in the paper's evaluation (Section 5.1):

* 32 nodes, each with an NVIDIA Tesla S1070 (4 × GT200 GPUs, RAM use
  capped at 1 GB per GPU for the tests),
* 2 × dual-core 2.4 GHz AMD Opterons and 8 GB of host RAM per node,
* QDR InfiniBand through generation-1 PCI-e,
* benchmarks run on up to 64 GPUs.

The GT200 figures are the public Tesla T10 numbers (30 SMs x 8 SPs at
1.296 GHz, 102 GB/s GDDR3).  Efficiency de-ratings (achievable fraction
of peak) live in :mod:`repro.hw.kernel`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..util.units import GB, GIB, US
from ..util.validation import check_positive

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "PCIeSpec",
    "NICSpec",
    "NodeSpec",
    "ClusterSpec",
    "GT200",
    "OPTERON_2216_2P",
    "PCIE_GEN1_X16",
    "PCIE_GEN2_X16",
    "QDR_INFINIBAND",
    "ACCELERATOR_NODE",
    "ACCELERATOR",
]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU."""

    name: str
    sm_count: int
    cores_per_sm: int
    clock_hz: float
    mem_capacity: int          #: usable device memory in bytes
    mem_bandwidth: float       #: device-memory bandwidth, bytes/s
    warp_size: int = 32
    max_threads_per_block: int = 512
    shared_mem_per_sm: int = 16 * 1024
    registers_per_sm: int = 16384
    copy_engines: int = 1
    kernel_launch_overhead: float = 8 * US
    #: amortised cost of one fire-and-forget global atomic (conflict-free
    #: throughput ~250 M/s on GT200), seconds; conflicts multiply it.
    atomic_cost: float = 4e-9
    #: GT200 has no floating-point atomics (paper Section 5.3.4).
    has_float_atomics: bool = False
    #: flops per core per cycle (MAD = 2).
    flops_per_core_cycle: float = 2.0

    def __post_init__(self) -> None:
        check_positive(self.sm_count, "sm_count")
        check_positive(self.clock_hz, "clock_hz")
        check_positive(self.mem_capacity, "mem_capacity")
        check_positive(self.mem_bandwidth, "mem_bandwidth")

    @property
    def core_count(self) -> int:
        return self.sm_count * self.cores_per_sm

    @property
    def peak_flops(self) -> float:
        """Peak single-precision FLOP/s (MAD-issue)."""
        return self.core_count * self.clock_hz * self.flops_per_core_cycle

    @property
    def max_resident_threads(self) -> int:
        """Threads needed to fully occupy the device (1024/SM on GT200)."""
        return self.sm_count * 1024

    def with_memory(self, mem_capacity: int) -> "GPUSpec":
        """A copy of this spec with a different usable-memory cap."""
        return replace(self, mem_capacity=int(mem_capacity))


@dataclass(frozen=True)
class CPUSpec:
    """Static description of a node's host CPUs (all sockets combined)."""

    name: str
    sockets: int
    cores_per_socket: int
    clock_hz: float
    mem_bandwidth: float            #: host memory bandwidth, bytes/s
    flops_per_core_cycle: float = 2.0  #: sustained scalar/SSE mix
    #: throughput of memcpy-like byte handling per core, bytes/s
    byte_throughput_per_core: float = 1.2e9

    @property
    def core_count(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def peak_flops(self) -> float:
        return self.core_count * self.clock_hz * self.flops_per_core_cycle


@dataclass(frozen=True)
class PCIeSpec:
    """A PCI-e link between host memory and one or more GPUs."""

    name: str
    bandwidth_h2d: float   #: bytes/s host-to-device (effective)
    bandwidth_d2h: float   #: bytes/s device-to-host (effective)
    latency: float         #: per-transfer setup latency, seconds
    #: GPUs sharing this link (Tesla S1070: 2 GPUs per PCI-e cable)
    gpus_per_link: int = 2


@dataclass(frozen=True)
class NICSpec:
    """The node's network interface."""

    name: str
    bandwidth: float       #: bytes/s per direction (effective)
    latency: float         #: one-way message latency, seconds
    #: MPI per-message software overhead on the host, seconds
    message_overhead: float = 2 * US


@dataclass(frozen=True)
class NodeSpec:
    """One cluster node: CPUs + GPUs + links + host memory."""

    name: str
    cpu: CPUSpec
    gpu: GPUSpec
    gpus_per_node: int
    pcie: PCIeSpec
    nic: NICSpec
    host_memory: int

    @property
    def pcie_links(self) -> int:
        """Number of independent PCI-e links on the node."""
        links, rem = divmod(self.gpus_per_node, self.pcie.gpus_per_link)
        return links + (1 if rem else 0)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`NodeSpec` nodes."""

    name: str
    node: NodeSpec
    node_count: int

    @property
    def total_gpus(self) -> int:
        return self.node_count * self.node.gpus_per_node

    def placement(self, n_gpus: int) -> Tuple[Tuple[int, int], ...]:
        """Map ``n_gpus`` workers onto nodes, packing nodes full first.

        Returns a tuple of ``(node_index, local_gpu_index)`` pairs — the
        same fill-first placement the paper's job launcher used (their
        LR result dips when a job first becomes multi-node with an
        imbalanced GPU count per node).
        """
        check_positive(n_gpus, "n_gpus")
        if n_gpus > self.total_gpus:
            raise ValueError(
                f"requested {n_gpus} GPUs but {self.name!r} has {self.total_gpus}"
            )
        per = self.node.gpus_per_node
        return tuple((i // per, i % per) for i in range(n_gpus))

    def nodes_used(self, n_gpus: int) -> int:
        per = self.node.gpus_per_node
        return (n_gpus + per - 1) // per


# ---------------------------------------------------------------------------
# Presets: the paper's evaluation platform
# ---------------------------------------------------------------------------

#: Tesla T10 (GT200) as found in the S1070, memory capped at 1 GB as in the
#: paper's methodology ("for testing purposes, we limit RAM usage to 1 GB").
GT200 = GPUSpec(
    name="NVIDIA GT200 (Tesla S1070, 1 GB cap)",
    sm_count=30,
    cores_per_sm=8,
    clock_hz=1.296e9,
    mem_capacity=1 * GIB,
    mem_bandwidth=102 * GB,
    copy_engines=1,
)

#: Two dual-core 2.4 GHz AMD Opterons (4 cores/node).
OPTERON_2216_2P = CPUSpec(
    name="2x AMD Opteron 2216 (dual-core, 2.4 GHz)",
    sockets=2,
    cores_per_socket=2,
    clock_hz=2.4e9,
    mem_bandwidth=10.6 * GB,
)

#: Generation-1 PCI-e x16: ~4 GB/s raw, ~3 GB/s effective with pinned
#: memory; two GPUs of the S1070 share each cable.
PCIE_GEN1_X16 = PCIeSpec(
    name="PCI-e gen1 x16",
    bandwidth_h2d=3.0 * GB,
    bandwidth_d2h=2.7 * GB,
    latency=12 * US,
    gpus_per_link=2,
)

#: Generation-2 PCI-e x16: the Tesla S1070's host interface cards are
#: PCI-e 2.0 (~5.5 GB/s effective pinned); the paper's "generation-1
#: PCI-e" remark describes the InfiniBand HCA attachment, which limits
#: the NIC (see QDR_INFINIBAND), not the GPU cables.
PCIE_GEN2_X16 = PCIeSpec(
    name="PCI-e gen2 x16 (S1070 host interface card)",
    bandwidth_h2d=5.5 * GB,
    bandwidth_d2h=5.2 * GB,
    latency=10 * US,
    gpus_per_link=2,
)

#: QDR InfiniBand behind gen1 PCI-e: link limited to ~2.8 GB/s effective.
QDR_INFINIBAND = NICSpec(
    name="QDR InfiniBand (gen1 PCI-e limited)",
    bandwidth=2.8 * GB,
    latency=2 * US,
)

ACCELERATOR_NODE = NodeSpec(
    name="NCSA Accelerator node",
    cpu=OPTERON_2216_2P,
    gpu=GT200,
    gpus_per_node=4,
    pcie=PCIE_GEN2_X16,
    nic=QDR_INFINIBAND,
    host_memory=8 * GIB,
)

#: The paper's evaluation cluster: 32 nodes x Tesla S1070 (= 128 GPUs
#: installed; at most 64 used due to sharing with other users).
ACCELERATOR = ClusterSpec(
    name="NCSA Accelerator",
    node=ACCELERATOR_NODE,
    node_count=32,
)

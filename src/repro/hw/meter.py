"""Busy-time metering for simulated devices.

A :class:`Meter` accumulates how much simulated time a component spent
in each tagged activity ("kernel", "h2d", "network", ...).  The GPMR
runtime aggregates worker meters into the per-stage runtime breakdowns
of the paper's Figure 2.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple

__all__ = ["Meter"]


class Meter:
    """Accumulates busy seconds per tag."""

    def __init__(self) -> None:
        self._busy: Dict[str, float] = defaultdict(float)

    def add(self, tag: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration for {tag!r}: {seconds}")
        self._busy[tag] += seconds

    def get(self, tag: str) -> float:
        return self._busy.get(tag, 0.0)

    @property
    def total(self) -> float:
        return sum(self._busy.values())

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._busy.items()))

    def as_dict(self) -> Dict[str, float]:
        return dict(self._busy)

    def merge(self, other: "Meter") -> None:
        for tag, seconds in other._busy.items():
            self._busy[tag] += seconds

    def clear(self) -> None:
        self._busy.clear()

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(f"{k}={v:.3g}s" for k, v in self.items())
        return f"<Meter {inner}>"

"""Discrete-event simulation engine (substrate S1).

A compact, deterministic, generator-based DES in the style of SimPy:

* :class:`Environment` — virtual clock + event calendar
* :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf`
* :class:`Process` — generators that yield events
* :class:`Resource`, :class:`Container` — contention primitives
* :class:`Store`, :class:`FilterStore` — message queues

Everything temporal in the reproduction (GPU kernels, PCI-e copies,
network sends, CPU binning threads) executes on this engine, so
communication/computation overlap — the paper's central concern — is
modelled end to end.
"""

from .engine import EmptySchedule, Environment
from .events import AllOf, AnyOf, Condition, Event, Interrupt, Timeout
from .process import Process
from .resources import Container, PriorityResource, Request, Resource
from .store import FilterStore, Store

__all__ = [
    "Environment",
    "EmptySchedule",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "PriorityResource",
    "Request",
    "Container",
    "Store",
    "FilterStore",
]

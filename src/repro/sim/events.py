"""Event primitives for the discrete-event simulation engine.

The engine (:mod:`repro.sim.engine`) advances a virtual clock and fires
events in (time, priority, insertion-order) order.  Processes
(:mod:`repro.sim.process`) are generators that ``yield`` events; the
engine resumes them when the yielded event fires.

Event lifecycle::

    PENDING ---> TRIGGERED ---> PROCESSED
       (succeed/fail)   (callbacks ran)

An event may *succeed* with a value or *fail* with an exception.  A
failed event re-raises its exception inside every process waiting on
it, unless the failure was *defused* (consumed by a condition that
already fired).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Environment

__all__ = [
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "PENDING",
    "TRIGGERED",
    "PROCESSED",
]

#: Event has been created but not yet scheduled.
PENDING = 0
#: Event has been scheduled (has a value or an exception) but callbacks
#: have not run yet.
TRIGGERED = 1
#: Event callbacks have been executed.
PROCESSED = 2


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries the value passed to :meth:`Process.interrupt`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A happening at a point in simulated time.

    Parameters
    ----------
    env:
        The owning :class:`~repro.sim.engine.Environment`.
    name:
        Optional debugging label.
    """

    __slots__ = ("env", "name", "callbacks", "_value", "_exception", "_state", "_defused")

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = PENDING
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once all callbacks have executed."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value (raises if the event failed)."""
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine will not crash."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = 1) -> "Event":
        """Schedule this event to fire *now* with ``value``."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._value = value
        self._state = TRIGGERED
        self.env.schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = 1) -> "Event":
        """Schedule this event to fire *now*, raising ``exception`` in waiters."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = TRIGGERED
        self.env.schedule(self, delay=0.0, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome into this one (used by conditions)."""
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(event._value)

    # -- engine hook ---------------------------------------------------
    def _run_callbacks(self) -> None:
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        if self._exception is not None and not self._defused:
            raise self._exception

    # -- composition -----------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} state={self._state}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env, name=f"timeout({delay})")
        self.delay = float(delay)
        self._value = value
        self._state = TRIGGERED
        env.schedule(self, delay=self.delay)


class Condition(Event):
    """Fires when ``evaluate`` says enough of ``events`` have fired.

    The condition's value is a dict mapping each fired sub-event to its
    value, in firing order.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env, name=type(self).__name__)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        if not self._events:
            self.succeed({})
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        # Only events whose callbacks have run (fired) contribute values;
        # Timeout objects are born TRIGGERED, so `triggered` alone would
        # wrongly include not-yet-elapsed timeouts.
        return {e: e._value for e in self._events if e.processed and e.ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if event._exception is not None:
                event.defuse()
            return
        self._count += 1
        if event._exception is not None:
            event.defuse()
            self.fail(event._exception)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Fires once *all* sub-events have fired (fails fast on error)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Fires once *any* sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)

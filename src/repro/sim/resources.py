"""Shared-resource primitives: :class:`Resource`, :class:`Container`.

These model contention: a PCI-e link is a ``Resource(capacity=1)``, a
GPU's copy engines a ``Resource(capacity=2)``, a memory pool a
``Container``.  Requests are events, so processes wait in deterministic
FIFO (or priority) order.

Usage::

    link = Resource(env, capacity=1)

    def copy(env, link):
        req = link.request()
        yield req
        try:
            yield env.timeout(transfer_time)
        finally:
            link.release(req)
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, List, Tuple

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Request", "Resource", "PriorityResource", "Container"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted.

    Supports ``with``-style use inside process generators::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env, name=f"request:{resource.name}")
        self.resource = resource
        self.priority = priority
        self._key: Tuple[int, int] = (priority, next(resource._seq))

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release if granted, or withdraw from the wait queue."""
        self.resource.release(self)


class Resource:
    """A capacity-limited resource with a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.name = name
        self._capacity = capacity
        self._seq = count()
        self._waiting: List[Tuple[Tuple[int, int], Request]] = []
        self._users: List[Request] = []

    # -- inspection ------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting for the resource."""
        return len(self._waiting)

    # -- operations ------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        """Claim a unit of capacity; the returned event fires when granted."""
        req = Request(self, priority=priority)
        heapq.heappush(self._waiting, (req._key, req))
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a granted unit (or withdraw an ungranted request)."""
        if request in self._users:
            self._users.remove(request)
        else:
            # Lazy removal from the wait heap.
            for i, (_, queued) in enumerate(self._waiting):
                if queued is request:
                    self._waiting.pop(i)
                    heapq.heapify(self._waiting)
                    break
        self._grant()

    def _grant(self) -> None:
        while self._waiting and len(self._users) < self._capacity:
            _, req = heapq.heappop(self._waiting)
            if req.triggered:
                continue  # cancelled before being granted
            self._users.append(req)
            req.succeed(req, priority=0)


class PriorityResource(Resource):
    """A :class:`Resource` whose ``request(priority=...)`` jumps the queue.

    Lower priority values are served first; ties break FIFO.
    """


class Container:
    """A continuous stock of substance with blocking get/put.

    Used for modelling bounded memory pools: ``get`` blocks until the
    requested amount is available, ``put`` blocks while it would exceed
    ``capacity``.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.name = name
        self._capacity = float(capacity)
        self._level = float(init)
        self._seq = count()
        self._getters: List[Tuple[int, float, Event]] = []
        self._putters: List[Tuple[int, float, Event]] = []

    @property
    def level(self) -> float:
        return self._level

    @property
    def capacity(self) -> float:
        return self._capacity

    def get(self, amount: float) -> Event:
        """Event that fires once ``amount`` has been withdrawn."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        evt = Event(self.env, name=f"get:{self.name}")
        heapq.heappush(self._getters, (next(self._seq), amount, evt))
        self._settle()
        return evt

    def put(self, amount: float) -> Event:
        """Event that fires once ``amount`` has been deposited."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self._capacity:
            raise ValueError(f"put of {amount} exceeds total capacity {self._capacity}")
        evt = Event(self.env, name=f"put:{self.name}")
        heapq.heappush(self._putters, (next(self._seq), amount, evt))
        self._settle()
        return evt

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                seq, amount, evt = self._putters[0]
                if self._level + amount <= self._capacity:
                    heapq.heappop(self._putters)
                    self._level += amount
                    evt.succeed(priority=0)
                    progressed = True
            if self._getters:
                seq, amount, evt = self._getters[0]
                if amount <= self._level:
                    heapq.heappop(self._getters)
                    self._level -= amount
                    evt.succeed(priority=0)
                    progressed = True

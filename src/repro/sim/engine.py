"""The discrete-event simulation core: :class:`Environment`.

The environment owns the virtual clock and the event calendar (a binary
heap keyed by ``(time, priority, sequence)``, so simultaneous events
fire in deterministic insertion order).  All other simulation
components — processes, resources, the GPU and network models — are
built on top of this class.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Environment", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


#: Priority used for "urgent" scheduling (resource bookkeeping fires
#: before same-time user events).
URGENT = 0
#: Default event priority.
NORMAL = 1


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None between steps)."""
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Spawn ``generator`` as a new simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Insert ``event`` into the calendar ``delay`` units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event (advancing the clock to it)."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        event._run_callbacks()

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the calendar drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event fires, returning its
          value (or raising its exception).
        """
        if until is None:
            try:
                while True:
                    self.step()
            except EmptySchedule:
                return None

        if isinstance(until, Event):
            stop: List[Any] = []
            until.callbacks.append(stop.append)
            while not stop:
                try:
                    self.step()
                except EmptySchedule:
                    raise RuntimeError(
                        f"simulation ran dry before {until!r} fired"
                    ) from None
            if until._exception is not None:
                raise until._exception
            return until._value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"cannot run until {horizon} < now ({self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Environment now={self._now} queued={len(self._queue)}>"

"""Generator-based simulation processes.

A *process* is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  Yielding an event suspends the process until the event fires;
the event's value is returned from the ``yield`` expression (or its
exception is raised at the ``yield``).

Processes are themselves events: they fire when the generator returns,
with the generator's return value, so processes can wait on each other::

    def child(env):
        yield env.timeout(5)
        return 42

    def parent(env):
        result = yield env.process(child(env))   # result == 42
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import Event, Interrupt, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Process"]


class Process(Event):
    """Wraps a generator and steps it as the events it yields fire."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any], name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._target: Optional[Event] = None

        # Kick-start the process at the current simulation time.
        init = Event(env, name=f"init:{self.name}")
        init._state = 1  # TRIGGERED with value None
        init.callbacks.append(self._resume)
        env.schedule(init, delay=0.0)

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is self:
            raise RuntimeError("a process cannot interrupt itself")

        interrupt_event = Event(self.env, name=f"interrupt:{self.name}")
        interrupt_event._exception = Interrupt(cause)
        interrupt_event._state = 1  # TRIGGERED
        interrupt_event.defuse()

        # Detach from the event we were waiting on so its eventual firing
        # does not resume us a second time.
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, delay=0.0, priority=0)

    # -- engine stepping ---------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self.env._active_process = self
        try:
            while True:
                try:
                    if trigger._exception is not None:
                        trigger.defuse()
                        next_target = self._generator.throw(trigger._exception)
                    else:
                        next_target = self._generator.send(trigger._value)
                except StopIteration as stop:
                    self._target = None
                    self.succeed(stop.value)
                    break
                except BaseException as exc:
                    self._target = None
                    self.fail(exc)
                    break

                if not isinstance(next_target, Event):
                    raise RuntimeError(
                        f"process {self.name!r} yielded a non-event: {next_target!r}"
                    )
                if next_target.env is not self.env:
                    raise RuntimeError("cannot wait on an event from another environment")

                if next_target.processed:
                    # Already fired: continue stepping synchronously.
                    trigger = next_target
                    continue
                self._target = next_target
                next_target.callbacks.append(self._resume)
                break
        finally:
            self.env._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} alive={self.is_alive}>"

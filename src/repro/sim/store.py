"""Message-passing stores for the simulation engine.

:class:`Store` is an unbounded (or bounded) FIFO of Python objects with
blocking ``get``.  It is the building block for mailboxes in the
simulated MPI layer and for the work queues of the GPMR scheduler.

:class:`FilterStore` adds ``get(filter=...)`` so a consumer can wait
for a *specific* item (e.g. an MPI receive matching a (source, tag)
pair).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Store", "FilterStore", "StorePut", "StoreGet"]


class StorePut(Event):
    """Fires once the attached item has been accepted by the store."""

    __slots__ = ("item",)

    def __init__(self, env: "Environment", item: Any, name: str = "") -> None:
        super().__init__(env, name=name)
        self.item = item


class StoreGet(Event):
    """Fires with a matching item once one is available."""

    __slots__ = ("filter",)

    def __init__(
        self,
        env: "Environment",
        filter: Optional[Callable[[Any], bool]] = None,  # noqa: A002
        name: str = "",
    ) -> None:
        super().__init__(env, name=name)
        self.filter = filter or (lambda item: True)


class Store:
    """FIFO store of arbitrary items with event-based get/put."""

    def __init__(self, env: "Environment", capacity: float = float("inf"), name: str = "store") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.name = name
        self._capacity = capacity
        self._items: List[Any] = []
        self._getters: List[StoreGet] = []
        self._putters: List[StorePut] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def items(self) -> List[Any]:
        """Snapshot of currently stored items (FIFO order)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> StorePut:
        """Event that fires once ``item`` has been accepted."""
        evt = StorePut(self.env, item, name=f"put:{self.name}")
        self._putters.append(evt)
        self._settle()
        return evt

    def get(self) -> StoreGet:
        """Event that fires with the oldest item once one is available."""
        evt = StoreGet(self.env, name=f"get:{self.name}")
        self._getters.append(evt)
        self._settle()
        return evt

    def try_get(self) -> Any:
        """Non-blocking pop; returns None when empty (items must not be None)."""
        if self._items:
            item = self._items.pop(0)
            self._settle()
            return item
        return None

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self._items) < self._capacity:
                putter = self._putters.pop(0)
                self._items.append(putter.item)
                putter.succeed(priority=0)
                progressed = True
            for getter in list(self._getters):
                match_idx = None
                for i, item in enumerate(self._items):
                    if getter.filter(item):
                        match_idx = i
                        break
                if match_idx is not None:
                    item = self._items.pop(match_idx)
                    self._getters.remove(getter)
                    getter.succeed(item, priority=0)
                    progressed = True


class FilterStore(Store):
    """A :class:`Store` whose consumers may wait for matching items only."""

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # noqa: A002
        evt = StoreGet(self.env, filter=filter, name=f"get:{self.name}")
        self._getters.append(evt)
        self._settle()
        return evt

"""Low-overhead span/event tracing for MapReduce runs.

A :class:`Tracer` buffers timestamped **spans** (an interval with a
duration: a chunk map, a sort, a shuffle send) and **point events**
(a steal, a reclaim, a respawn) as plain dicts.  Worker processes
record into their own tracer and ship the buffered records back to
the driver over the existing result channels — the local backend's
result queue, the fabric's ``RESULT`` frame — where they are merged
into the run's tracer.  The merged buffer serializes to JSONL
(:func:`write_jsonl`) and to the Chrome ``trace_event`` format
(:func:`chrome_trace`), which loads directly at
https://ui.perfetto.dev or ``chrome://tracing``.

Timestamps come from a pluggable ``clock`` callable — ``time.time``
by default, so records from different processes on one host share a
timebase; the sim backend swaps in its modeled clock (``env.now``)
and marks the trace meta accordingly.

When tracing is off, callers hold :data:`NULL_TRACER`, whose methods
are no-ops: a disabled hot path pays one attribute lookup and an
empty call, nothing else.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "chrome_trace",
    "read_jsonl",
    "write_jsonl",
]

Record = Dict[str, Any]


class Tracer:
    """A per-run (or per-rank) append-only buffer of spans and events.

    Thread-safe: the exchange's per-destination sender threads and the
    driver's service thread all append to one tracer.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.time,
        rank: Optional[int] = None,
        job_id: Optional[str] = None,
    ) -> None:
        self.clock = clock
        self.rank = rank  #: default rank attribution for worker-side tracers
        #: default job attribution (multi-job service runs): stamped on
        #: every record this tracer writes *and* on absorbed worker
        #: records that lack one, so interleaved jobs' spans never
        #: cross-attribute.  None (one-shot runs) adds no field at all.
        self.job_id = job_id
        self._records: List[Record] = []
        self._lock = threading.Lock()
        self._seq = 0

    # -- recording ----------------------------------------------------

    def add_span(
        self,
        name: str,
        t0: float,
        t1: float,
        rank: Optional[int] = None,
        chunk: Optional[int] = None,
        job: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Record a completed interval with explicit endpoints.

        Explicit endpoints (rather than "now") let the sim record
        modeled-time spans and let callers reuse timing they already
        take for :class:`~repro.core.stats.WorkerStats`.
        """
        rec: Record = {
            "ev": "span",
            "name": name,
            "ts": t0,
            "dur": t1 - t0,
            "rank": self.rank if rank is None else rank,
            "chunk": chunk,
        }
        job = self.job_id if job is None else job
        if job is not None:
            rec["job"] = job
        if args:
            rec["args"] = args
        with self._lock:
            rec["seq"] = self._seq
            self._seq += 1
            self._records.append(rec)

    @contextmanager
    def span(
        self,
        name: str,
        rank: Optional[int] = None,
        chunk: Optional[int] = None,
        **args: Any,
    ):
        """Record the enclosed block as a span, timed by ``self.clock``."""
        t0 = self.clock()
        try:
            yield
        finally:
            self.add_span(name, t0, self.clock(), rank=rank, chunk=chunk, **args)

    def event(
        self,
        name: str,
        rank: Optional[int] = None,
        chunk: Optional[int] = None,
        ts: Optional[float] = None,
        job: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Record a point event, stamped by ``self.clock`` unless given."""
        rec: Record = {
            "ev": "event",
            "name": name,
            "ts": self.clock() if ts is None else ts,
            "rank": self.rank if rank is None else rank,
            "chunk": chunk,
        }
        job = self.job_id if job is None else job
        if job is not None:
            rec["job"] = job
        if args:
            rec["args"] = args
        with self._lock:
            rec["seq"] = self._seq
            self._seq += 1
            self._records.append(rec)

    # -- merging / access ---------------------------------------------

    def absorb(self, records: Optional[Iterable[Record]]) -> None:
        """Merge another tracer's exported records (e.g. from a worker).

        Worker-side tracers don't know which service job their run
        belongs to; when this (driver-side) tracer does, absorbed
        records missing a ``job`` field inherit it here.
        """
        if not records:
            return
        with self._lock:
            for rec in records:
                rec = dict(rec)
                if self.job_id is not None:
                    rec.setdefault("job", self.job_id)
                rec["seq"] = self._seq
                self._seq += 1
                self._records.append(rec)

    @property
    def records(self) -> List[Record]:
        with self._lock:
            return list(self._records)

    def sorted_records(self) -> List[Record]:
        """Records in timeline order (stable across merges)."""
        return sorted(self.records, key=lambda r: (r["ts"], r.get("seq", 0)))

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._seq = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class NullTracer:
    """The disabled tracer: every method is a no-op."""

    enabled = False
    rank = None
    job_id = None
    _NULL_CTX = None  # set below; a reusable no-op context manager

    def add_span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def span(self, *args: Any, **kwargs: Any):
        return _NULL_CTX

    def event(self, *args: Any, **kwargs: Any) -> None:
        pass

    def absorb(self, records: Optional[Iterable[Record]]) -> None:
        pass

    @property
    def records(self) -> List[Record]:
        return []

    def sorted_records(self) -> List[Record]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


class _NullContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_CTX = _NullContext()

#: Shared no-op tracer: hold this instead of ``None`` so hot paths
#: never branch on "is tracing on?".
NULL_TRACER = NullTracer()


# -- serialization ----------------------------------------------------

def write_jsonl(
    path: str,
    meta: Dict[str, Any],
    records: Iterable[Record],
    metrics: Optional[Dict[str, Any]] = None,
) -> None:
    """Serialize one run: a meta header line, one line per record,
    and a trailing metrics-snapshot line."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"ev": "meta", **meta}) + "\n")
        for rec in records:
            fh.write(json.dumps(rec) + "\n")
        if metrics is not None:
            fh.write(json.dumps({"ev": "metrics", "metrics": metrics}) + "\n")


def read_jsonl(path: str) -> Dict[str, Any]:
    """Load a trace file into ``{"meta", "records", "metrics"}``."""
    meta: Dict[str, Any] = {}
    records: List[Record] = []
    metrics: Optional[Dict[str, Any]] = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.get("ev")
            if kind == "meta":
                meta = {k: v for k, v in obj.items() if k != "ev"}
            elif kind == "metrics":
                metrics = obj.get("metrics")
            else:
                records.append(obj)
    return {"meta": meta, "records": records, "metrics": metrics}


def chrome_trace(
    records: Iterable[Record],
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Convert records to the Chrome ``trace_event`` JSON object.

    Spans become complete ("ph": "X") events, point events become
    instants ("ph": "i"); each rank is a tid (the driver is tid 0) so
    Perfetto renders one swim lane per rank.  Timestamps are rebased
    to the earliest record and expressed in microseconds, as the
    format requires.
    """
    records = sorted(records, key=lambda r: (r["ts"], r.get("seq", 0)))
    t0 = records[0]["ts"] if records else 0.0
    meta = meta or {}
    pid = 0

    def tid_of(rec: Record) -> int:
        rank = rec.get("rank")
        return 0 if rank is None else int(rank) + 1

    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": meta.get("job", "repro") or "repro"},
        },
        {
            "ph": "M", "name": "thread_name", "pid": pid, "tid": 0,
            "args": {"name": "driver"},
        },
    ]
    seen_ranks = sorted(
        {r["rank"] for r in records if r.get("rank") is not None}
    )
    for rank in seen_ranks:
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid,
            "tid": int(rank) + 1, "args": {"name": f"rank {rank}"},
        })
    for rec in records:
        args = dict(rec.get("args") or {})
        if rec.get("chunk") is not None:
            args["chunk"] = rec["chunk"]
        ev: Dict[str, Any] = {
            "name": rec["name"],
            "pid": pid,
            "tid": tid_of(rec),
            "ts": (rec["ts"] - t0) * 1e6,
            "args": args,
        }
        if rec.get("ev") == "span":
            ev["ph"] = "X"
            ev["dur"] = max(rec.get("dur", 0.0), 0.0) * 1e6
        else:
            ev["ph"] = "i"
            ev["s"] = "t"
        events.append(ev)
    return {"traceEvents": events, "displayTimeUnit": "ms"}

"""Record a traced demo run: ``python -m repro.obs.record``.

A thin wrapper over :func:`repro.harness.run_app` that runs one of
the single-phase benchmark apps with tracing on and writes the JSONL
trace (and optionally the Chrome export) — what the CI bench-smoke
job uses to publish a sample trace artifact::

    python -m repro.obs.record --app SIO --backend local -n 2 \\
        --out results/sio_local.trace.jsonl \\
        --chrome results/sio_local.trace.chrome.json
"""

from __future__ import annotations

import argparse
from typing import List, Optional

__all__ = ["main"]

_DEFAULT_SIZES = {"SIO": 64_000, "WO": 64_000, "KMC": 16_000, "LR": 16_000}


def _make_dataset(app: str, size: int):
    """Build a dataset sized so the run grants ~8 chunks."""
    from .. import apps

    if app == "SIO":
        return apps.sio_dataset(
            n_elements=size, chunk_elements=max(size // 8, 1_000),
            key_space=1 << 14, seed=7,
        )
    if app == "WO":
        return apps.wo_dataset(
            n_chars=size, chunk_chars=max(size // 8, 1_024), seed=7,
        )
    if app == "KMC":
        return apps.kmc_dataset(
            n_points=size, chunk_points=max(size // 8, 512), seed=7,
        )
    if app == "LR":
        return apps.lr_dataset(
            n_points=size, chunk_points=max(size // 8, 512), seed=7,
        )
    raise ValueError(f"unknown app {app!r}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.record",
        description="Run one app with tracing on and write the trace.",
    )
    parser.add_argument("--app", choices=sorted(_DEFAULT_SIZES), default="SIO")
    parser.add_argument(
        "--backend", choices=("sim", "serial", "local", "cluster"),
        default="local",
    )
    parser.add_argument("-n", "--n-workers", type=int, default=2)
    parser.add_argument(
        "--size", type=int, default=None,
        help="problem size (elements/chars/points; app-specific default)",
    )
    parser.add_argument(
        "--accel", choices=("numpy", "cupy", "torch"), default=None,
        help="array namespace for map/partial-reduce (default: numpy)",
    )
    parser.add_argument(
        "--fused", action="store_true",
        help="run the fused map+partial-reduce kernel where the app has one",
    )
    parser.add_argument("--out", required=True, help="JSONL trace path")
    parser.add_argument(
        "--chrome", metavar="OUT",
        help="also write the Chrome trace_event export",
    )
    ns = parser.parse_args(argv)

    from ..harness import run_app

    size = ns.size or _DEFAULT_SIZES[ns.app]
    dataset = _make_dataset(ns.app, size)
    extra = {}
    if ns.accel is not None:
        extra["accel"] = ns.accel
    if ns.fused:
        extra["fused"] = True
    run = run_app(
        ns.app, dataset, ns.n_workers, backend=ns.backend,
        trace_path=ns.out, **extra,
    )
    obs = run.result.obs
    print(run.stats.describe())
    print(f"trace: {ns.out} ({len(obs.tracer)} records)")
    if ns.chrome:
        obs.write_chrome(ns.chrome)
        print(f"chrome export: {ns.chrome} (open at https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())

"""Counters, gauges, and fixed-bucket histograms for run metrics.

The scheduler, exchange, and fabric update these on hot paths, so the
design goal is cheapness: a counter increment is an attribute add
under a lock, a histogram observation is one ``bisect`` plus two
adds.  When metrics are off, callers hold :data:`NULL_METRICS`, whose
instruments are shared no-ops.

Histograms use fixed geometric bucket ladders (no per-observation
allocation); quantiles (:meth:`Histogram.percentile`) interpolate
linearly inside the owning bucket, clamped to the observed min/max,
which is exact at the bucket-resolution the ladder provides — plenty
for p50/p95/p99 summaries of grant latencies and batch sizes.

Everything snapshots to plain dicts (:meth:`MetricsRegistry.snapshot`)
so worker processes can ship their registries to the driver over the
existing result channels, where :meth:`MetricsRegistry.absorb` merges
them: counters sum, gauges take the newest value, histograms add
bucket-wise.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "SECONDS_BUCKETS",
]

#: 1 µs .. ~67 s, doubling — the latency ladder.
SECONDS_BUCKETS: Tuple[float, ...] = tuple(1e-6 * 2 ** i for i in range(27))

#: 64 B .. 64 GiB, x4 — the payload-size ladder.
BYTES_BUCKETS: Tuple[float, ...] = tuple(64.0 * 4 ** i for i in range(16))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``bounds`` are the bucket upper edges; one overflow bucket catches
    everything above the last edge.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max", "_lock")

    def __init__(self, bounds: Tuple[float, ...] = SECONDS_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        i = bisect_right(self.bounds, value)
        with self._lock:
            self.counts[i] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]), interpolated within its bucket."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            lo = self.bounds[i - 1] if i > 0 else 0.0
            hi = self.bounds[i] if i < len(self.bounds) else self.max
            lo = max(lo, self.min) if lo < self.min <= hi else lo
            hi = min(hi, self.max)
            if cum + c >= target:
                frac = (target - cum) / c
                return lo + (hi - lo) * frac
            cum += c
        return self.max

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self.max if self.count else 0.0,
        }

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        with self._lock:
            for i, c in enumerate(other.counts):
                self.counts[i] += c
            self.count += other.count
            self.total += other.total
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Histogram":
        h = cls(tuple(d["bounds"]))
        h.counts = list(d["counts"])
        h.count = d["count"]
        h.total = d["total"]
        h.min = float("inf") if d.get("min") is None else d["min"]
        h.max = float("-inf") if d.get("max") is None else d["max"]
        return h


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "max": 0.0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments for one run, snapshot/merge-able across ranks."""

    enabled = True

    def __init__(self, job_id: Optional[str] = None) -> None:
        #: job this registry's numbers belong to (multi-job service
        #: runs); rides every :meth:`snapshot` so interleaved jobs'
        #: metrics stay attributable.  None for one-shot runs.
        self.job_id = job_id
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter()
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge()
            return g

    def histogram(
        self, name: str, bounds: Tuple[float, ...] = SECONDS_BUCKETS
    ) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(bounds)
            return h

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict export, picklable and JSON-serializable."""
        with self._lock:
            snap: Dict[str, Any] = {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: h.to_dict() for k, h in self._histograms.items()
                },
            }
            if self.job_id is not None:
                snap["job_id"] = self.job_id
            return snap

    def absorb(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Merge a snapshot from another registry (e.g. a worker's)."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, d in snapshot.get("histograms", {}).items():
            self.histogram(name, tuple(d["bounds"])).merge(
                Histogram.from_dict(d)
            )

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class _NullMetricsRegistry:
    """The disabled registry: hands out shared no-op instruments."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, bounds: Any = None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> None:
        return None

    def absorb(self, snapshot: Optional[Dict[str, Any]]) -> None:
        pass

    def clear(self) -> None:
        pass


#: Shared no-op registry: hold this instead of ``None`` so hot paths
#: never branch on "are metrics on?".
NULL_METRICS = _NullMetricsRegistry()

"""Runtime observability: span/event tracing, metrics, run inspection.

The public handle is :class:`Observability` — one per run, bundling a
:class:`~repro.obs.trace.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry`.  Pass one (or just a
``trace_path=``) to :func:`repro.make_executor` /
:func:`repro.harness.run_app`::

    from repro import make_executor
    from repro.obs import Observability

    obs = Observability()
    with make_executor("local", 4, obs=obs, trace_path="run.trace.jsonl") as ex:
        result = ex.run(job, dataset=ds)
    print(obs.metrics.histogram("grant_latency_s").summary())

then inspect the written trace::

    python -m repro.obs.view run.trace.jsonl
    python -m repro.obs.view run.trace.jsonl --chrome run.chrome.json

(the Chrome export loads at https://ui.perfetto.dev).

Tracing is **off by default** and passive when on: instrumentation
records timestamps and counts but never changes scheduling or data
movement, so traced runs stay bit-identical to untraced runs — the
parity contract the test suite enforces.  Components that may or may
not be observed hold :data:`NULL_OBS` instead of ``None``: its tracer
and metrics are shared no-ops, so disabled hot paths pay one
attribute lookup and an empty call.
"""

from __future__ import annotations

import uuid
from typing import Any, Dict, Optional

from .metrics import (
    BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    SECONDS_BUCKETS,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "BYTES_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "SECONDS_BUCKETS",
    "Tracer",
    "chrome_trace",
    "read_jsonl",
    "write_jsonl",
]


class Observability:
    """One run's tracer + metrics registry, merged at the driver.

    Worker processes build their own instance, record into it, and
    ship :meth:`export` payloads back over the result channel; the
    driver :meth:`absorb`\\ s them into the run-level instance that
    executors expose on :attr:`repro.core.runtime.JobResult.obs`.
    """

    enabled = True

    def __init__(
        self,
        run_id: Optional[str] = None,
        job_id: Optional[str] = None,
    ) -> None:
        self.run_id = run_id or uuid.uuid4().hex[:12]
        #: service-job namespace: stamped on every trace record and
        #: metrics snapshot so interleaved multi-job traces stay
        #: attributable (None outside a job service)
        self.job_id = job_id
        self.tracer = Tracer(job_id=job_id)
        self.metrics = MetricsRegistry(job_id=job_id)
        self.meta: Dict[str, Any] = {}

    # -- lifecycle ----------------------------------------------------

    def reset(self) -> None:
        """Drop recorded data so one instance can observe a fresh run."""
        self.tracer.clear()
        self.metrics.clear()
        self.meta = {}

    def set_job(self, job_id: Optional[str]) -> None:
        """Re-namespace the bundle for the next observed job.

        A pool-managed executor's bundle observes many jobs back to
        back; the service calls this per lease so each run's records
        and snapshots carry the job they belong to.
        """
        self.job_id = job_id
        self.tracer.job_id = job_id
        self.metrics.job_id = job_id

    def finish(
        self,
        backend: str,
        stats: Any = None,
        clock: str = "wall",
        **extra: Any,
    ) -> None:
        """Stamp run-level metadata once the job completes.

        ``stats`` is the run's :class:`~repro.core.stats.JobStats`;
        its dict form rides in the trace header so the view CLI can
        print the authoritative Figure-2 stage table.
        """
        self.meta.update({
            "run_id": self.run_id,
            "backend": backend,
            "clock": clock,
            **extra,
        })
        if self.job_id is not None:
            self.meta.setdefault("job_id", self.job_id)
        if stats is not None:
            self.meta.update({
                "job": stats.job_name,
                "n_workers": stats.n_gpus,
                "elapsed": stats.elapsed,
                "stats": stats.to_dict(),
            })

    # -- worker <-> driver shipping -----------------------------------

    def export(self) -> Dict[str, Any]:
        """A picklable payload of everything recorded so far."""
        return {
            "trace": self.tracer.records,
            "metrics": self.metrics.snapshot(),
        }

    def absorb(self, payload: Optional[Dict[str, Any]]) -> None:
        """Merge a worker's :meth:`export` payload."""
        if not payload:
            return
        self.tracer.absorb(payload.get("trace"))
        self.metrics.absorb(payload.get("metrics"))

    # -- serialization ------------------------------------------------

    def write_jsonl(self, path: str) -> None:
        write_jsonl(
            path,
            self.meta or {"run_id": self.run_id},
            self.tracer.sorted_records(),
            self.metrics.snapshot(),
        )

    def write_chrome(self, path: str) -> None:
        import json

        with open(path, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(self.tracer.records, self.meta), fh)


class _NullObservability:
    """The disabled bundle — see :data:`NULL_OBS`."""

    enabled = False
    run_id = None
    job_id = None
    tracer = NULL_TRACER
    metrics = NULL_METRICS
    meta: Dict[str, Any] = {}

    def reset(self) -> None:
        pass

    def set_job(self, job_id: Optional[str]) -> None:
        pass

    def finish(self, backend: str, stats: Any = None, **extra: Any) -> None:
        pass

    def export(self) -> None:
        return None

    def absorb(self, payload: Optional[Dict[str, Any]]) -> None:
        pass


#: Shared no-op bundle: components hold this instead of ``None``.
NULL_OBS = _NullObservability()

"""Run-inspection CLI: ``python -m repro.obs.view run.trace.jsonl``.

Prints, from one JSONL trace file:

* the run header (app, backend, workers, clock domain, elapsed);
* the Figure-2 per-rank stage table, from the ``JobStats`` embedded
  in the trace meta (the authoritative end-of-job accounting);
* per-rank span timelines (chunk maps, sorts, shuffles, waits);
* the steal / reclaim / respawn / speculation chronology;
* metric summaries (counters, and p50/p95/p99 per histogram).

``--chrome OUT`` additionally converts the trace to the Chrome
``trace_event`` format, viewable at https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional

from ..core.stats import STAGES
from .metrics import Histogram
from .trace import chrome_trace, read_jsonl

__all__ = ["main", "render"]

#: Point events worth a line in the chronology (grants are shown only
#: with ``--grants``; a big run has one per chunk incarnation).
CHRONOLOGY_EVENTS = frozenset({
    "steal", "reclaim", "rank_dead", "respawn", "rejoin",
    "speculate", "speculation_win", "speculation_loss", "batch_resend",
})


def _fmt_seconds(v: float) -> str:
    return f"{v * 1e3:.3f}ms" if v < 1.0 else f"{v:.3f}s"


def _fmt_metric(name: str, v: float) -> str:
    if name.endswith("_s"):
        return _fmt_seconds(v)
    if "bytes" in name:
        if v >= 1 << 20:
            return f"{v / (1 << 20):.1f}MiB"
        if v >= 1 << 10:
            return f"{v / (1 << 10):.1f}KiB"
        return f"{v:.0f}B"
    return f"{v:g}"


def _stage_table(stats: Dict[str, Any]) -> List[str]:
    header = "rank".ljust(6) + "".join(s.rjust(11) for s in STAGES) + "total".rjust(11)
    lines = ["stage seconds (Figure-2 buckets)", header]
    totals = {s: 0.0 for s in STAGES}
    for w in sorted(stats.get("workers", []), key=lambda w: w["rank"]):
        secs = w.get("stage_seconds", {})
        row = str(w["rank"]).ljust(6)
        for s in STAGES:
            totals[s] += secs.get(s, 0.0)
            row += f"{secs.get(s, 0.0):11.4f}"
        row += f"{sum(secs.values()):11.4f}"
        lines.append(row)
    denom = sum(totals.values())
    row = "all".ljust(6)
    for s in STAGES:
        row += f"{totals[s]:11.4f}"
    row += f"{denom:11.4f}"
    lines.append(row)
    if denom:
        row = "share".ljust(6)
        for s in STAGES:
            row += f"{totals[s] / denom:10.1%} "
        lines.append(row.rstrip())
    return lines


def _timelines(records: List[Dict[str, Any]], t0: float, limit: int) -> List[str]:
    # Group by (job, rank): a multi-job service trace interleaves
    # several jobs' spans, and rank 2 of job A is not rank 2 of job B.
    # Single-job traces have no "job" field, collapsing this to the
    # familiar per-rank grouping.
    by_lane: Dict[Any, List[Dict[str, Any]]] = {}
    for rec in records:
        if rec.get("ev") == "span":
            by_lane.setdefault((rec.get("job"), rec.get("rank")), []).append(rec)
    if not by_lane:
        return []
    multi_job = len({job for job, _rank in by_lane}) > 1 or any(
        job is not None for job, _rank in by_lane
    )
    lines = ["per-rank timelines (spans; t=0 at first record)"]
    for job, rank in sorted(
        by_lane, key=lambda k: (k[0] is None, k[0], k[1] is None, k[1])
    ):
        label = "driver" if rank is None else f"rank {rank}"
        if multi_job:
            label = f"job {job or '?'} · {label}"
        spans = by_lane[(job, rank)]
        lines.append(f"{label}: {len(spans)} span(s)")
        shown = spans if limit <= 0 else spans[:limit]
        for rec in shown:
            chunk = f" chunk={rec['chunk']}" if rec.get("chunk") is not None else ""
            args = rec.get("args") or {}
            extra = "".join(f" {k}={v}" for k, v in args.items())
            lines.append(
                f"  +{rec['ts'] - t0:10.6f}s {_fmt_seconds(max(rec.get('dur', 0.0), 0.0)):>10} "
                f"{rec['name']}{chunk}{extra}"
            )
        if limit > 0 and len(spans) > limit:
            lines.append(f"  ... {len(spans) - limit} more")
    return lines


def _chronology(
    records: List[Dict[str, Any]], t0: float, include_grants: bool
) -> List[str]:
    names = CHRONOLOGY_EVENTS | {"grant"} if include_grants else CHRONOLOGY_EVENTS
    events = [
        r for r in records
        if r.get("ev") == "event" and r.get("name") in names
    ]
    if not events:
        return []
    lines = ["chronology (point events)"]
    for rec in events:
        rank = rec.get("rank")
        who = "driver" if rank is None else f"rank={rank}"
        if rec.get("job") is not None:
            who = f"job={rec['job']} {who}"
        chunk = f" chunk={rec['chunk']}" if rec.get("chunk") is not None else ""
        args = rec.get("args") or {}
        extra = "".join(f" {k}={v}" for k, v in args.items())
        lines.append(
            f"  +{rec['ts'] - t0:10.6f}s {rec['name']:<16} {who}{chunk}{extra}"
        )
    return lines


def _metrics_summary(metrics: Optional[Dict[str, Any]]) -> List[str]:
    if not metrics:
        return []
    lines = ["metrics"]
    if metrics.get("job_id"):
        lines[0] = f"metrics (job {metrics['job_id']})"
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("  counters: " + "  ".join(
            f"{k}={v}" for k, v in sorted(counters.items())
        ))
    gauges = metrics.get("gauges") or {}
    if gauges:
        lines.append("  gauges:   " + "  ".join(
            f"{k}={v:g}" for k, v in sorted(gauges.items())
        ))
    for name, d in sorted((metrics.get("histograms") or {}).items()):
        h = Histogram.from_dict(d)
        s = h.summary()
        lines.append(
            f"  {name:<24} n={s['count']:<6} "
            f"p50={_fmt_metric(name, s['p50'])} "
            f"p95={_fmt_metric(name, s['p95'])} "
            f"p99={_fmt_metric(name, s['p99'])} "
            f"max={_fmt_metric(name, s['max'])}"
        )
    return lines


def render(
    trace: Dict[str, Any], limit: int = 20, include_grants: bool = False
) -> str:
    """The full report for one loaded trace, as a string."""
    meta = trace.get("meta") or {}
    records = sorted(
        trace.get("records") or [],
        key=lambda r: (r["ts"], r.get("seq", 0)),
    )
    t0 = records[0]["ts"] if records else 0.0
    clock = meta.get("clock", "wall")
    job_id = f" [job {meta['job_id']}]" if meta.get("job_id") else ""
    out: List[str] = [
        f"run {meta.get('run_id', '?')}{job_id} — {meta.get('job', '?')} on "
        f"{meta.get('backend', '?')} ×{meta.get('n_workers', '?')} "
        f"({clock} clock), elapsed {meta.get('elapsed', 0.0):.4f}s, "
        f"{len(records)} record(s)"
    ]
    if meta.get("stats"):
        out.append("")
        out.extend(_stage_table(meta["stats"]))
    timeline = _timelines(records, t0, limit)
    if timeline:
        out.append("")
        out.extend(timeline)
    chrono = _chronology(records, t0, include_grants)
    if chrono:
        out.append("")
        out.extend(chrono)
    summary = _metrics_summary(trace.get("metrics"))
    if summary:
        out.append("")
        out.extend(summary)
    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.view",
        description="Inspect a run trace recorded with trace_path=/obs=.",
    )
    parser.add_argument("trace", help="path to a run.trace.jsonl file")
    parser.add_argument(
        "--limit", type=int, default=20,
        help="max spans to print per rank (0 = all; default 20)",
    )
    parser.add_argument(
        "--grants", action="store_true",
        help="include every grant event in the chronology",
    )
    parser.add_argument(
        "--chrome", metavar="OUT",
        help="also write a Chrome trace_event JSON (open in Perfetto)",
    )
    ns = parser.parse_args(argv)

    trace = read_jsonl(ns.trace)
    print(render(trace, limit=ns.limit, include_grants=ns.grants))
    if ns.chrome:
        with open(ns.chrome, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(trace["records"], trace["meta"]), fh)
        print(f"\nchrome trace written to {ns.chrome} "
              "(open at https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())

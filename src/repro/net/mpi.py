"""MPI-like message passing over the simulated fabric (substrate S4).

GPMR's Bin substage and shuffle use MPI point-to-point plus a barrier;
the harness additionally uses collectives for iterative jobs (KMC).
This module provides an mpi4py-flavoured API on the DES:

* :meth:`Communicator.isend` — non-blocking send, returns a process
  event that fires on delivery
* :meth:`Communicator.recv` — blocking receive with ``(source, tag)``
  matching (``ANY`` wildcards)
* :meth:`Communicator.barrier` — generation-counted barrier
* :meth:`Communicator.alltoallv`, :meth:`allgather`, :meth:`allreduce`,
  :meth:`bcast` — collectives built from point-to-point

Because workers are plain generator processes (not OS processes), the
caller passes its rank explicitly.  Payloads are real Python/NumPy
objects — the functional half — while the temporal half is priced from
the message's ``nbytes`` through the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Sequence

from .fabric import Fabric
from ..sim import Environment, Event, FilterStore

__all__ = ["ANY", "Message", "Communicator"]

#: Wildcard for ``recv`` source/tag matching.
ANY = -1


@dataclass(frozen=True)
class Message:
    """One delivered point-to-point message."""

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int


class Communicator:
    """A group of ranks mapped onto cluster nodes."""

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        rank_to_node: Sequence[int],
        message_overhead: float = 2e-6,
    ) -> None:
        if not rank_to_node:
            raise ValueError("communicator needs at least one rank")
        self.env = env
        self.fabric = fabric
        self.rank_to_node = list(rank_to_node)
        self.message_overhead = message_overhead
        self._mailboxes = [
            FilterStore(env, name=f"mbox{r}") for r in range(self.size)
        ]
        self._barrier_gen = 0
        self._barrier_count = 0
        self._barrier_event = env.event(name="barrier0")
        self.bytes_by_rank = [0] * self.size

    @property
    def size(self) -> int:
        return len(self.rank_to_node)

    def node_of(self, rank: int) -> int:
        return self.rank_to_node[rank]

    # -- point to point ------------------------------------------------------
    def _check_rank(self, rank: int, what: str) -> None:
        if not (0 <= rank < self.size):
            raise ValueError(f"{what} rank {rank} out of range [0, {self.size})")

    def _send_proc(
        self, source: int, dest: int, payload: Any, nbytes: int, tag: int
    ) -> Generator:
        # Host-side software overhead, then the wire.
        if self.message_overhead:
            yield self.env.timeout(self.message_overhead)
        yield from self.fabric.send(self.node_of(source), self.node_of(dest), nbytes)
        msg = Message(source=source, dest=dest, tag=tag, payload=payload, nbytes=nbytes)
        yield self._mailboxes[dest].put(msg)
        self.bytes_by_rank[source] += int(nbytes)
        return msg

    def isend(
        self, source: int, dest: int, payload: Any, nbytes: int, tag: int = 0
    ) -> Event:
        """Non-blocking send; the returned event fires on delivery."""
        self._check_rank(source, "source")
        self._check_rank(dest, "dest")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.env.process(
            self._send_proc(source, dest, payload, nbytes, tag),
            name=f"isend {source}->{dest} tag={tag}",
        )

    def send(
        self, source: int, dest: int, payload: Any, nbytes: int, tag: int = 0
    ) -> Generator:
        """Process: blocking send (completes on delivery)."""
        msg = yield self.isend(source, dest, payload, nbytes, tag)
        return msg

    def recv(self, rank: int, source: int = ANY, tag: int = ANY) -> Event:
        """Event firing with the first :class:`Message` matching the filter."""
        self._check_rank(rank, "receiver")

        def match(msg: Message) -> bool:
            return (source == ANY or msg.source == source) and (
                tag == ANY or msg.tag == tag
            )

        return self._mailboxes[rank].get(filter=match)

    def pending(self, rank: int) -> int:
        """Messages waiting in ``rank``'s mailbox."""
        return len(self._mailboxes[rank])

    # -- barrier ---------------------------------------------------------
    def barrier(self, rank: int) -> Event:
        """Event that fires once every rank has entered this barrier round."""
        self._check_rank(rank, "barrier")
        evt = self._barrier_event
        self._barrier_count += 1
        if self._barrier_count == self.size:
            self._barrier_count = 0
            self._barrier_gen += 1
            self._barrier_event = self.env.event(name=f"barrier{self._barrier_gen}")
            evt.succeed(self._barrier_gen)
        return evt

    # -- collectives -----------------------------------------------------
    def alltoallv(
        self,
        rank: int,
        payloads: Sequence[Any],
        sizes: Sequence[int],
        tag: int = 0,
    ) -> Generator:
        """Process: exchange one payload with every rank (incl. self).

        ``payloads[d]``/``sizes[d]`` go to rank ``d``; returns a list
        indexed by source rank of the payloads received.
        """
        if len(payloads) != self.size or len(sizes) != self.size:
            raise ValueError("alltoallv needs one payload and size per rank")
        sends = [
            self.isend(rank, dest, payloads[dest], sizes[dest], tag=tag)
            for dest in range(self.size)
        ]
        received: List[Any] = [None] * self.size
        for _ in range(self.size):
            msg = yield self.recv(rank, tag=tag)
            received[msg.source] = msg.payload
        yield self.env.all_of(sends)
        return received

    def allgather(self, rank: int, payload: Any, nbytes: int, tag: int = 1) -> Generator:
        """Process: every rank contributes one payload, all get the list."""
        result = yield from self.alltoallv(
            rank, [payload] * self.size, [nbytes] * self.size, tag=tag
        )
        return result

    def allreduce(
        self,
        rank: int,
        payload: Any,
        nbytes: int,
        op: Callable[[Any, Any], Any],
        tag: int = 2,
    ) -> Generator:
        """Process: reduce payloads over ``op``; every rank gets the result.

        Implemented as allgather + local fold (deterministic rank order),
        which is what small-communicator MPI implementations do anyway.
        """
        values = yield from self.allgather(rank, payload, nbytes, tag=tag)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def bcast(self, rank: int, root: int, payload: Any, nbytes: int, tag: int = 3) -> Generator:
        """Process: root's payload is delivered to every rank."""
        self._check_rank(root, "root")
        if rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.isend(rank, dest, payload, nbytes, tag=tag)
            return payload
        msg = yield self.recv(rank, source=root, tag=tag)
        return msg.payload

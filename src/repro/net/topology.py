"""Cluster network topologies (networkx-backed).

The paper's cluster uses QDR InfiniBand through a switch; for MPI
point-to-point traffic the observable contention points are each node's
NIC (tx and rx) and, for adversarial patterns, the switch core.  We
model topologies as graphs whose edges carry bandwidth/latency
attributes; the fabric (:mod:`repro.net.fabric`) instantiates
simulation resources per edge direction and routes messages along
shortest paths.

Provided topologies:

* :class:`StarTopology` — every node connects to one non-blocking
  switch: contention only at NICs.  This matches a single-switch QDR
  IB cluster like Accelerator.
* :class:`FatTreeTopology` — two-level fat tree with configurable
  oversubscription, for experiments about constrained bisection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

import networkx as nx

from ..hw.specs import NICSpec
from ..util.validation import check_positive

__all__ = ["LinkAttrs", "Topology", "StarTopology", "FatTreeTopology"]


@dataclass(frozen=True)
class LinkAttrs:
    """Physical attributes of one (undirected) cable."""

    bandwidth: float   #: bytes/s per direction
    latency: float     #: seconds per traversal


class Topology:
    """A network graph with per-edge attributes and cached routes.

    Node identifiers: cluster nodes are integers ``0..n-1``; internal
    switches use string identifiers (e.g. ``"sw0"``).
    """

    def __init__(self, n_nodes: int) -> None:
        check_positive(n_nodes, "n_nodes")
        self.n_nodes = n_nodes
        self.graph = nx.Graph()
        self._route_cache: Dict[Tuple[int, int], List[Tuple[Hashable, Hashable]]] = {}

    def add_link(self, u: Hashable, v: Hashable, attrs: LinkAttrs) -> None:
        self.graph.add_edge(u, v, attrs=attrs)

    def link_attrs(self, u: Hashable, v: Hashable) -> LinkAttrs:
        return self.graph.edges[u, v]["attrs"]

    def route(self, src: int, dst: int) -> List[Tuple[Hashable, Hashable]]:
        """Ordered list of directed edges from ``src`` to ``dst``."""
        if src == dst:
            return []
        key = (src, dst)
        if key not in self._route_cache:
            path = nx.shortest_path(self.graph, src, dst)
            self._route_cache[key] = list(zip(path, path[1:]))
        return self._route_cache[key]

    def path_latency(self, src: int, dst: int) -> float:
        return sum(self.link_attrs(u, v).latency for u, v in self.route(src, dst))

    def path_bandwidth(self, src: int, dst: int) -> float:
        """Bottleneck bandwidth along the route (inf for self-sends)."""
        edges = self.route(src, dst)
        if not edges:
            return float("inf")
        return min(self.link_attrs(u, v).bandwidth for u, v in edges)

    def validate(self) -> None:
        """All cluster nodes must be mutually reachable."""
        for n in range(self.n_nodes):
            if n not in self.graph:
                raise ValueError(f"cluster node {n} missing from topology graph")
        if self.n_nodes > 1 and not nx.is_connected(self.graph):
            raise ValueError("topology graph is not connected")


class StarTopology(Topology):
    """All nodes on one non-blocking switch (single-switch IB cluster)."""

    SWITCH = "switch"

    def __init__(self, n_nodes: int, nic: NICSpec) -> None:
        super().__init__(n_nodes)
        self.nic = nic
        attrs = LinkAttrs(bandwidth=nic.bandwidth, latency=nic.latency / 2)
        if n_nodes == 1:
            self.graph.add_node(0)
        else:
            for n in range(n_nodes):
                self.add_link(n, self.SWITCH, attrs)
        self.validate()


class FatTreeTopology(Topology):
    """Two-level fat tree: leaf switches of ``radix`` nodes, one core.

    ``oversubscription`` divides uplink bandwidth: 1.0 is full bisection
    (behaves like a star), 4.0 means 4:1 oversubscribed uplinks.
    """

    def __init__(
        self,
        n_nodes: int,
        nic: NICSpec,
        radix: int = 8,
        oversubscription: float = 1.0,
    ) -> None:
        super().__init__(n_nodes)
        check_positive(radix, "radix")
        check_positive(oversubscription, "oversubscription")
        self.nic = nic
        edge = LinkAttrs(bandwidth=nic.bandwidth, latency=nic.latency / 2)
        n_leaves = (n_nodes + radix - 1) // radix
        uplink = LinkAttrs(
            bandwidth=nic.bandwidth * radix / oversubscription,
            latency=nic.latency / 2,
        )
        if n_nodes == 1:
            self.graph.add_node(0)
        else:
            for n in range(n_nodes):
                self.add_link(n, f"leaf{n // radix}", edge)
            if n_leaves > 1:
                for l in range(n_leaves):
                    self.add_link(f"leaf{l}", "core", uplink)
        self.validate()

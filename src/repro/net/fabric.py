"""The network fabric: moves bytes between nodes with contention.

Every directed edge of the topology gets a capacity-1 transmission
resource; a message holds every edge of its route for
``latency + bytes/bottleneck_bw`` (store-and-forward is negligible for
the multi-megabyte shuffles MapReduce generates, so we model cut-through
with route-wide occupancy).

Intra-node traffic (between two GPU workers on one node) never touches
the NIC: it is a host-memory copy priced at the node's memcpy
bandwidth, matching how MVAPICH2 ships same-node messages through
shared memory.
"""

from __future__ import annotations

from typing import Dict, Generator, Hashable, Tuple

from .topology import Topology
from ..hw.specs import CPUSpec
from ..sim import Environment, Resource

__all__ = ["Fabric"]


class Fabric:
    """Contention-aware byte mover over a :class:`Topology`."""

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        cpu: CPUSpec,
        loopback_latency: float = 1e-6,
    ) -> None:
        self.env = env
        self.topology = topology
        self.cpu = cpu
        self.loopback_latency = loopback_latency
        #: shared-memory copy bandwidth for same-node messages
        self.loopback_bandwidth = cpu.mem_bandwidth / 2  # read + write
        self._channels: Dict[Tuple[Hashable, Hashable], Resource] = {}
        # Fat links (fat-tree uplinks) carry several concurrent
        # NIC-rate transfers: channel capacity scales with the ratio of
        # the link's bandwidth to the thinnest edge's.
        edge_bws = [
            topology.link_attrs(u, v).bandwidth for u, v in topology.graph.edges
        ]
        self._base_bw = min(edge_bws) if edge_bws else 1.0
        self.bytes_sent = 0
        self.messages_sent = 0

    def _channel(self, u: Hashable, v: Hashable) -> Resource:
        key = (u, v)
        if key not in self._channels:
            bw = self.topology.link_attrs(u, v).bandwidth
            capacity = max(1, int(round(bw / self._base_bw)))
            self._channels[key] = Resource(
                self.env, capacity=capacity, name=f"ch:{u}->{v}"
            )
        return self._channels[key]

    def duration(self, src: int, dst: int, nbytes: int) -> float:
        """Unloaded transfer time for ``nbytes`` from ``src`` to ``dst``."""
        if src == dst:
            return self.loopback_latency + nbytes / self.loopback_bandwidth
        lat = self.topology.path_latency(src, dst)
        bw = self.topology.path_bandwidth(src, dst)
        return lat + nbytes / bw

    def send(self, src: int, dst: int, nbytes: int) -> Generator:
        """Process: move ``nbytes`` from node ``src`` to node ``dst``.

        Returns the elapsed time including queueing on busy links.
        """
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        start = self.env.now

        if src == dst:
            yield self.env.timeout(self.duration(src, dst, nbytes))
        else:
            route = self.topology.route(src, dst)
            requests = [self._channel(u, v).request() for u, v in route]
            for req in requests:
                yield req
            try:
                yield self.env.timeout(self.duration(src, dst, nbytes))
            finally:
                for (u, v), req in zip(route, requests):
                    self._channel(u, v).release(req)

        self.bytes_sent += int(nbytes)
        self.messages_sent += 1
        return self.env.now - start

    def channel_queue_len(self, u: Hashable, v: Hashable) -> int:
        chan = self._channels.get((u, v))
        return chan.queue_len if chan else 0

"""Cluster network substrate (S3 + S4): topology, fabric, MPI layer."""

from .fabric import Fabric
from .mpi import ANY, Communicator, Message
from .topology import FatTreeTopology, LinkAttrs, StarTopology, Topology

__all__ = [
    "Topology",
    "StarTopology",
    "FatTreeTopology",
    "LinkAttrs",
    "Fabric",
    "Communicator",
    "Message",
    "ANY",
]

"""Concurrent-client load generator for the job service.

Spawns N client threads, each holding its own authenticated connection
and firing M submissions (round-robin over a mixed app set), and
reports what the service's multi-job scheduling actually delivers:
end-to-end jobs/sec and the p50/p95/p99 submit-to-result latency
distribution (the same :class:`~repro.obs.metrics.Histogram`
instrument the runtime uses, so the numbers aggregate the same way).

Use it three ways: as a CLI against a running daemon
(``python -m repro.service.loadgen --port 7711 ...``), self-contained
with ``--self-host`` (spins a daemon up in-process first), or from
benchmark/CI code via :func:`run_load`.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import Histogram
from .client import ServiceClient

__all__ = ["LoadReport", "run_load", "main"]

#: Latency bucket edges (seconds) sized for service round-trips.
LATENCY_BUCKETS = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 30.0, 60.0,
)

#: Default mixed-app workload: small specs so smoke runs stay fast.
DEFAULT_MIX: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("SIO", {"n_elements": 6000, "chunk_elements": 1500,
             "key_space": 512, "seed": 11}),
    ("WO", {"n_chars": 4000, "chunk_chars": 1000, "seed": 12}),
    ("LR", {"n_points": 4000, "chunk_points": 1000, "seed": 13}),
)


@dataclass
class LoadReport:
    """What one load run measured."""

    clients: int
    jobs_per_client: int
    completed: int
    failed: int
    wall_s: float
    latency: Histogram
    errors: List[str] = field(default_factory=list)

    @property
    def jobs_per_sec(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def render(self) -> str:
        s = self.latency.summary()
        lines = [
            f"clients={self.clients} jobs/client={self.jobs_per_client} "
            f"completed={self.completed} failed={self.failed}",
            f"wall      {self.wall_s:8.3f} s",
            f"jobs/sec  {self.jobs_per_sec:8.2f}",
            "latency (submit -> result, seconds):",
            f"  p50 {s['p50']:8.4f}   p95 {s['p95']:8.4f}   "
            f"p99 {s['p99']:8.4f}   max {s['max']:8.4f}",
        ]
        for err in self.errors[:5]:
            lines.append(f"  error: {err.splitlines()[-1] if err else err}")
        return "\n".join(lines)


def _client_worker(
    address: Tuple[str, int],
    auth_key,
    jobs: Sequence[Tuple[str, Dict[str, Any]]],
    backend: Optional[str],
    n_gpus: Optional[int],
    latency: Histogram,
    errors: List[str],
    counts: Dict[str, int],
    lock: threading.Lock,
    start_gate: threading.Event,
) -> None:
    try:
        client = ServiceClient(address[0], address[1], auth_key=auth_key)
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        with lock:
            errors.append(f"connect: {exc}")
            counts["failed"] += len(jobs)
        return
    start_gate.wait()
    with client:
        # Pipeline every submission, then collect: measures the
        # service's concurrency, not this thread's round-trip loop.
        t_submits = []
        futures = []
        for app, spec in jobs:
            t_submits.append(time.perf_counter())
            futures.append(
                client.submit_async(
                    app, spec, backend=backend, n_gpus=n_gpus
                )
            )
        for t0, fut in zip(t_submits, futures):
            try:
                fut.result(timeout=300.0)
            except Exception as exc:  # noqa: BLE001
                with lock:
                    errors.append(str(exc))
                    counts["failed"] += 1
                continue
            latency.observe(time.perf_counter() - t0)
            with lock:
                counts["completed"] += 1


def run_load(
    address: Tuple[str, int],
    n_clients: int = 4,
    jobs_per_client: int = 4,
    mix: Sequence[Tuple[str, Dict[str, Any]]] = DEFAULT_MIX,
    auth_key=None,
    backend: Optional[str] = None,
    n_gpus: Optional[int] = None,
) -> LoadReport:
    """Drive ``n_clients`` concurrent clients; return the measurements."""
    latency = Histogram(LATENCY_BUCKETS)
    errors: List[str] = []
    counts = {"completed": 0, "failed": 0}
    lock = threading.Lock()
    start_gate = threading.Event()
    threads = []
    for c in range(n_clients):
        # Stagger the mix so concurrent clients hit different apps.
        jobs = [mix[(c + j) % len(mix)] for j in range(jobs_per_client)]
        t = threading.Thread(
            target=_client_worker,
            args=(address, auth_key, jobs, backend, n_gpus,
                  latency, errors, counts, lock, start_gate),
            name=f"loadgen-client{c}",
        )
        t.start()
        threads.append(t)
    t0 = time.perf_counter()
    start_gate.set()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return LoadReport(
        clients=n_clients,
        jobs_per_client=jobs_per_client,
        completed=counts["completed"],
        failed=counts["failed"],
        wall_s=wall,
        latency=latency,
        errors=errors,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Benchmark a running job service with concurrent clients.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7711)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--jobs-per-client", type=int, default=4)
    parser.add_argument("--backend", default=None,
                        help="backend override (default: daemon's default)")
    parser.add_argument("--n-gpus", type=int, default=None)
    parser.add_argument("--auth-key-env", default=None, metavar="VAR")
    parser.add_argument("--auth-key-file", default=None, metavar="PATH")
    parser.add_argument("--self-host", action="store_true",
                        help="start a daemon in-process and load it "
                        "(ignores --host/--port)")
    args = parser.parse_args(argv)

    from ..fabric.wire import load_auth_key

    try:
        auth_key = load_auth_key(args.auth_key_env, args.auth_key_file)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    service = None
    if args.self_host:
        from .daemon import JobService

        service = JobService(
            port=0, auth_key=auth_key,
            max_concurrent_jobs=max(2, args.clients // 2),
            default_backend=args.backend or "local",
        ).start()
        address = service.address
        print(f"self-hosted daemon on {address[0]}:{address[1]}")
    else:
        address = (args.host, args.port)

    try:
        report = run_load(
            address,
            n_clients=args.clients,
            jobs_per_client=args.jobs_per_client,
            auth_key=auth_key,
            backend=args.backend,
            n_gpus=args.n_gpus,
        )
    finally:
        if service is not None:
            service.close()
    print(report.render())
    return 0 if report.failed == 0 else 1


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())

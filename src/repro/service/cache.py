"""Dataset cache: repeat traffic skips ingest.

Jobs submitted to the service name their dataset as a *spec* — the
keyword arguments of the app's registered ``*_dataset`` factory
(:attr:`repro.apps.AppSpec.dataset`).  The factories are deterministic
(same spec, same data), so ``(app, spec)`` is a sound cache key: the
first submission builds (ingests) the dataset, later identical
submissions reuse the resident object with near-zero ingest time — the
MapSQ-style amortization the service exists for.

LRU with a bounded entry count.  Entries are shared across concurrent
jobs; datasets are treated as immutable after construction (the
backends already rely on that for replay).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Tuple

from ..apps import APPS
from ..obs import NULL_OBS

__all__ = ["DatasetCache"]


def _freeze_spec(spec: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    # repr-frozen like the executor pool's kwargs: spec values are
    # normally scalars, but equality-of-spec is all the key needs.
    return tuple(sorted((k, repr(v)) for k, v in spec.items()))


class DatasetCache:
    """LRU of built datasets keyed by ``(app, frozen spec)``."""

    def __init__(self, max_entries: int = 8, obs=None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.obs = obs or NULL_OBS
        self._entries: "OrderedDict[Tuple[str, Tuple], Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, app: str, spec: Dict[str, Any]) -> Tuple[Any, bool]:
        """The dataset for ``(app, spec)`` and whether it was a hit.

        Misses build through the app's registered factory and record
        the build (ingest) time in the ``dataset_build_s`` histogram;
        hits only bump the LRU order.
        """
        try:
            factory = APPS[app].dataset
        except KeyError:
            raise ValueError(
                f"unknown app {app!r}; registered: {sorted(APPS)}"
            ) from None
        key = (app, _freeze_spec(spec))
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.obs.metrics.counter("dataset_cache_hits").inc()
                return self._entries[key], True
            # Build under the lock: concurrent identical submissions
            # wait for one ingest instead of racing duplicates (the
            # point of the cache is to not ingest twice).
            t0 = time.perf_counter()
            dataset = factory(**spec)
            self.obs.metrics.histogram("dataset_build_s").observe(
                time.perf_counter() - t0
            )
            self.obs.metrics.counter("dataset_cache_misses").inc()
            self._entries[key] = dataset
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return dataset, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

"""Dataset cache: repeat traffic skips ingest.

Jobs submitted to the service name their dataset as a *spec* — the
keyword arguments of the app's registered ``*_dataset`` factory
(:attr:`repro.apps.AppSpec.dataset`).  The factories are deterministic
(same spec, same data), so ``(app, spec)`` is a sound cache key: the
first submission builds (ingests) the dataset, later identical
submissions reuse the resident object with near-zero ingest time — the
MapSQ-style amortization the service exists for.

A spec may carry ``"stream": True``: the cache then builds (and holds)
a :class:`~repro.workloads.readers.StreamedDataset` — a chunk *reader*
over the factory, not materialised arrays — so cached entries stay
descriptor-sized no matter the dataset, and jobs that hit the entry
run out-of-core with grant-time materialisation on the workers.

LRU with a bounded entry count.  Entries are shared across concurrent
jobs; datasets are treated as immutable after construction (the
backends already rely on that for replay).  Builds run under a
*per-key* lock: concurrent identical submissions still wait for one
ingest (build-once), but a slow ingest never blocks hits — or other
builds — on different keys.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Tuple

from ..apps import APPS
from ..obs import NULL_OBS
from ..util.freeze import freeze_kwargs
from ..workloads.readers import streamed

__all__ = ["DatasetCache"]


def _freeze_spec(spec: Dict[str, Any]) -> Tuple:
    # Canonical content-based freeze (shared with the executor pool):
    # address-bearing reprs would never hit, truncated array reprs
    # would collide — see repro.util.freeze.
    return freeze_kwargs(spec)


class DatasetCache:
    """LRU of built datasets keyed by ``(app, frozen spec)``."""

    def __init__(self, max_entries: int = 8, obs=None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.obs = obs or NULL_OBS
        self._entries: "OrderedDict[Tuple[str, bool, Tuple], Any]" = OrderedDict()
        #: guards ``_entries`` and ``_building`` only — never held
        #: across a dataset build
        self._lock = threading.Lock()
        #: one in-flight build lock per key, discarded after the build
        self._building: Dict[Tuple[str, bool, Tuple], threading.Lock] = {}

    def get(self, app: str, spec: Dict[str, Any]) -> Tuple[Any, bool]:
        """The dataset for ``(app, spec)`` and whether it was a hit.

        Misses build through the app's registered factory and record
        the build (ingest) time in the ``dataset_build_s`` histogram;
        hits only bump the LRU order.  A ``"stream": True`` spec entry
        builds the streaming wrapper instead of materialising.
        """
        try:
            factory = APPS[app].dataset
        except KeyError:
            raise ValueError(
                f"unknown app {app!r}; registered: {sorted(APPS)}"
            ) from None
        spec = dict(spec)
        stream = bool(spec.pop("stream", False))
        key = (app, stream, _freeze_spec(spec))
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.obs.metrics.counter("dataset_cache_hits").inc()
                return self._entries[key], True
            build_lock = self._building.get(key)
            if build_lock is None:
                build_lock = self._building[key] = threading.Lock()
        # Serialise identical submissions on the per-key lock (one
        # ingest, the rest wait and hit); different keys build — and
        # hit — concurrently.
        with build_lock:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.obs.metrics.counter("dataset_cache_hits").inc()
                    return self._entries[key], True
            t0 = time.perf_counter()
            dataset = streamed(factory, **spec) if stream else factory(**spec)
            self.obs.metrics.histogram("dataset_build_s").observe(
                time.perf_counter() - t0
            )
            with self._lock:
                self.obs.metrics.counter("dataset_cache_misses").inc()
                self._entries[key] = dataset
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                self._building.pop(key, None)
            return dataset, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

"""Warm executor pool: reuse backends across jobs instead of rebuilding.

One-shot ``run_app`` pays full executor construction per call.  The
pool inverts that for the job service: executors are built once per
*configuration* — ``(backend, n_workers, kwargs)`` — leased to a job,
and returned warm for the next job with the same shape.  Warmth here
is honest about what the built-in backends keep between runs: the
instance (no re-validation or registry dispatch), the process-wide
shared-memory resource tracker (pre-started once for the local
backend, not per run), and the daemon-resident imports; per-run worker
processes and fabric sockets are still acquired inside ``run()``
today, which is the elastic follow-up noted in ROADMAP item 2.

Every lease is stamped with the daemon's shared
:class:`~repro.core.scheduler.JobChunkAuthority` (when the pool has
one), so runs on pooled executors open job-scoped chunk namespaces
behind the one multi-job front rather than private services.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..core.executor import Executor, make_executor
from ..core.scheduler import JobChunkAuthority
from ..obs import NULL_OBS
from ..util.freeze import freeze_kwargs

__all__ = ["ExecutorPool"]

#: A lease key: backend name, worker count, and the frozen kwargs.
PoolKey = Tuple[str, int, Tuple]


def _freeze_kwargs(kwargs: Dict) -> Tuple:
    # Canonical content-based freeze: kwargs may be unhashable
    # (FaultPlan) and only equality-of-configuration matters for
    # pooling, but repr-keys would never match for address-bearing
    # reprs and would collide for truncated array reprs — see
    # repro.util.freeze for the rules (and the rejection of live
    # objects that cannot be keyed soundly).
    return freeze_kwargs(kwargs)


class ExecutorPool:
    """Reusable executors keyed by configuration; thread-safe.

    ``lease()`` hands out a warm idle instance when one exists
    (``pool_warm_hits``) and builds cold otherwise
    (``pool_cold_builds``); ``release()`` resets the instance and
    shelves it for the next job, retiring surplus instances beyond
    ``max_idle_per_key`` via the executors' idempotent ``close()``.
    """

    def __init__(
        self,
        chunk_authority: Optional[JobChunkAuthority] = None,
        obs=None,
        max_idle_per_key: int = 4,
    ) -> None:
        self.chunk_authority = chunk_authority
        self.obs = obs or NULL_OBS
        self.max_idle_per_key = int(max_idle_per_key)
        self._idle: Dict[PoolKey, List[Executor]] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._tracker_started = False
        self._tracker_lock = threading.Lock()

    # -- leasing -----------------------------------------------------------

    def lease(self, backend: str, n_workers: int, **kwargs) -> Executor:
        """A runnable executor for this configuration, warm if possible."""
        key: PoolKey = (backend, int(n_workers), _freeze_kwargs(kwargs))
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot lease from a closed ExecutorPool")
            stack = self._idle.get(key)
            ex = stack.pop() if stack else None
        if ex is not None:
            self.obs.metrics.counter("pool_warm_hits").inc()
        else:
            self.obs.metrics.counter("pool_cold_builds").inc()
            if backend == "local":
                self._ensure_tracker()
            ex = make_executor(backend, n_workers, **kwargs)
            ex._pool_key = key
        # The daemon's shared multi-job chunk front; runs on this lease
        # open job-scoped namespaces instead of private services.
        ex.chunk_authority = self.chunk_authority
        return ex

    def release(self, executor: Executor) -> None:
        """Return a lease; the instance is reset and shelved (or retired)."""
        key = getattr(executor, "_pool_key", None)
        if executor.closed or key is None:
            return
        try:
            executor.reset()
        except Exception:
            # A lease that cannot be returned to a runnable state must
            # not be shelved (the next lease would inherit the broken
            # state) nor leaked open — retire it and surface the reset
            # failure to the caller.
            executor.close()
            raise
        executor.chunk_authority = None
        with self._lock:
            stack = self._idle.setdefault(key, [])
            if self._closed or len(stack) >= self.max_idle_per_key:
                retire = True
            else:
                retire = False
                stack.append(executor)
        if retire:
            executor.close()

    def _ensure_tracker(self) -> None:
        """Pre-start the shm resource tracker once, daemon-side.

        One-shot local runs pay this fork on their first run; pooled
        runs pay it once per daemon lifetime.  The dedicated lock
        closes the check-then-act race: two concurrent cold local
        leases would otherwise both fork a tracker.
        """
        with self._tracker_lock:
            if self._tracker_started:
                return
            from ..exec.exchange import ensure_shared_tracker

            ensure_shared_tracker()
            self._tracker_started = True

    # -- lifecycle ---------------------------------------------------------

    @property
    def idle_count(self) -> int:
        with self._lock:
            return sum(len(s) for s in self._idle.values())

    def close(self) -> None:
        """Retire every idle executor; later releases retire too."""
        with self._lock:
            self._closed = True
            stacks = list(self._idle.values())
            self._idle = {}
        for stack in stacks:
            for ex in stack:
                ex.close()

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Thin client for the job service: ``submit(app, spec) -> AppRun``.

One :class:`ServiceClient` holds one authenticated connection to the
daemon and pipelines any number of submissions over it: each SUBMIT
frame carries a client-side sequence number, the daemon echoes it in
the matching JOB_RESULT / JOB_ERROR frame, and a background reader
thread resolves the corresponding :class:`concurrent.futures.Future`.
``submit_async`` is the native shape; ``submit`` is the blocking
convenience; the module-level :func:`submit` does
connect-submit-disconnect for one-shot callers.

Results come back as the same :class:`~repro.harness.runners.AppRun`
records one-shot ``run_app`` produces, so downstream tooling (tables,
plots, validators) cannot tell service runs from local ones — which is
the point: the service changes *where and how warm* jobs run, never
what they compute.
"""

from __future__ import annotations

import pickle
import socket
import threading
from concurrent.futures import Future
from typing import Any, Dict, Optional, Tuple, Union

from ..fabric.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    MSG_AUTH_CHALLENGE,
    MSG_JOB_ERROR,
    MSG_JOB_RESULT,
    MSG_SUBMIT,
    MSG_WELCOME,
    AuthenticationError,
    FabricError,
    PeerDisconnected,
    ProtocolError,
    answer_challenge,
    recv_raw_frame,
    send_frame,
)
from ..harness.runners import AppRun

__all__ = ["JobFailed", "ServiceClient", "submit"]


class JobFailed(RuntimeError):
    """The daemon ran (or rejected) the job and reported an error."""

    def __init__(self, message: str, job_id: Optional[str] = None) -> None:
        super().__init__(message)
        self.job_id = job_id


class ServiceClient:
    """One connection to the daemon; submissions pipeline over it."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7711,
        auth_key: Optional[Union[bytes, str]] = None,
        connect_timeout: float = 10.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[int, Future] = {}
        self._seq = 0
        self._closed = False
        self.server_info = self._handshake(auth_key)
        self._sock.settimeout(None)
        self._reader = threading.Thread(
            target=self._reader_loop, name="gpmr-svc-reader", daemon=True
        )
        self._reader.start()

    # -- handshake ---------------------------------------------------------

    def _handshake(self, auth_key) -> Dict[str, Any]:
        """Branch on the daemon's first frame: challenge or welcome.

        A keyed daemon leads with a raw AUTH_CHALLENGE; a keyless one
        leads with the pickled WELCOME.  Reading raw first means no
        byte is unpickled before we know the connection is greeted.
        """
        try:
            msg_type, payload = recv_raw_frame(
                self._sock, max_frame_bytes=self.max_frame_bytes
            )
        except (FabricError, OSError) as exc:
            self._sock.close()
            raise ConnectionError(f"service handshake failed: {exc}") from exc
        if msg_type == MSG_AUTH_CHALLENGE:
            if auth_key is None:
                self._sock.close()
                raise AuthenticationError(
                    "service requires an auth key but this client has none "
                    "configured (pass auth_key=)"
                )
            try:
                answer_challenge(
                    self._sock, auth_key, challenge=payload,
                    max_frame_bytes=self.max_frame_bytes,
                )
                msg_type, payload = recv_raw_frame(
                    self._sock, max_frame_bytes=self.max_frame_bytes,
                    expect=MSG_WELCOME,
                )
            except (AuthenticationError, ProtocolError):
                self._sock.close()
                raise
            except (FabricError, OSError) as exc:
                self._sock.close()
                raise AuthenticationError(
                    f"service closed the connection during auth "
                    f"(wrong key?): {exc}"
                ) from exc
        elif msg_type != MSG_WELCOME:
            self._sock.close()
            raise ProtocolError(
                f"expected WELCOME or AUTH_CHALLENGE from service, "
                f"got message type {msg_type}"
            )
        return pickle.loads(payload)

    # -- submission --------------------------------------------------------

    def submit_async(
        self,
        app: str,
        spec: Optional[Dict[str, Any]] = None,
        *,
        dataset: Any = None,
        n_gpus: Optional[int] = None,
        backend: Optional[str] = None,
        schedule: Any = None,
        priority: int = 0,
        executor_kwargs: Optional[Dict[str, Any]] = None,
    ) -> "Future[AppRun]":
        """Queue one job; the Future resolves to its :class:`AppRun`.

        Name the dataset by ``spec`` (factory kwargs — hits the
        daemon's cache) or ship a built ``dataset`` object verbatim.
        """
        if (spec is None) == (dataset is None):
            raise ValueError("pass exactly one of spec= or dataset=")
        fut: "Future[AppRun]" = Future()
        with self._pending_lock:
            if self._closed:
                raise RuntimeError("client is closed")
            self._seq += 1
            seq = self._seq
            self._pending[seq] = fut
        payload = {
            "seq": seq,
            "app": app,
            "spec": spec,
            "dataset": dataset,
            "n_gpus": n_gpus,
            "backend": backend,
            "schedule": schedule,
            "priority": priority,
            "executor_kwargs": executor_kwargs or {},
        }
        try:
            with self._send_lock:
                send_frame(
                    self._sock, MSG_SUBMIT, payload,
                    max_frame_bytes=self.max_frame_bytes,
                )
        except (FabricError, OSError) as exc:
            with self._pending_lock:
                self._pending.pop(seq, None)
            raise ConnectionError(f"submit failed: {exc}") from exc
        return fut

    def submit(self, app: str, spec=None, *, timeout=None, **kwargs) -> AppRun:
        """Blocking submit; returns the job's :class:`AppRun`."""
        return self.submit_async(app, spec, **kwargs).result(timeout=timeout)

    def metrics(self, timeout: Optional[float] = 30.0) -> Dict[str, Any]:
        """The daemon's live metrics snapshot (answered out of band)."""
        fut: Future = Future()
        with self._pending_lock:
            if self._closed:
                raise RuntimeError("client is closed")
            self._seq += 1
            seq = self._seq
            self._pending[seq] = fut
        with self._send_lock:
            send_frame(
                self._sock, MSG_SUBMIT, {"seq": seq, "op": "metrics"},
                max_frame_bytes=self.max_frame_bytes,
            )
        return fut.result(timeout=timeout)

    # -- reader ------------------------------------------------------------

    def _reader_loop(self) -> None:
        while True:
            try:
                msg_type, blob = recv_raw_frame(
                    self._sock, max_frame_bytes=self.max_frame_bytes
                )
                payload = pickle.loads(blob)
            except (FabricError, PeerDisconnected, OSError, EOFError,
                    pickle.UnpicklingError) as exc:
                self._fail_all(exc)
                return
            seq = payload.get("seq") if isinstance(payload, dict) else None
            with self._pending_lock:
                fut = self._pending.pop(seq, None)
            if fut is None:
                continue  # daemon replied to a seq we gave up on
            if msg_type == MSG_JOB_RESULT:
                fut.set_result(self._to_result(payload))
            elif msg_type == MSG_JOB_ERROR:
                fut.set_exception(
                    JobFailed(payload.get("error", "job failed"),
                              job_id=payload.get("job_id"))
                )
            else:
                fut.set_exception(
                    ProtocolError(f"unexpected message type {msg_type}")
                )

    @staticmethod
    def _to_result(payload: Dict[str, Any]) -> Any:
        if "metrics" in payload:  # op=metrics introspection reply
            return payload
        run = AppRun(
            app=payload["app"],
            size=payload["size"],
            n_gpus=payload["n_gpus"],
            elapsed=payload["elapsed"],
            stats=payload.get("stats"),
            backend=payload.get("backend", "local"),
            result=payload.get("result"),
        )
        # Service-side extras ride on the record without changing its
        # shape for downstream table/plot code.
        run.job_id = payload.get("job_id")
        run.cache_hit = payload.get("cache_hit")
        run.ingest_s = payload.get("ingest_s")
        run.service_elapsed = payload.get("service_elapsed")
        return run

    def _fail_all(self, exc: Exception) -> None:
        with self._pending_lock:
            pending, self._pending = self._pending, {}
            was_closed = self._closed
        for fut in pending.values():
            if was_closed:
                fut.set_exception(RuntimeError("client closed"))
            else:
                fut.set_exception(
                    ConnectionError(f"connection to service lost: {exc}")
                )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._pending_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(timeout=5.0)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def submit(
    app: str,
    spec: Optional[Dict[str, Any]] = None,
    *,
    address: Tuple[str, int] = ("127.0.0.1", 7711),
    auth_key: Optional[Union[bytes, str]] = None,
    **kwargs,
) -> AppRun:
    """One-shot convenience: connect, run one job, disconnect."""
    with ServiceClient(address[0], address[1], auth_key=auth_key) as client:
        return client.submit(app, spec, **kwargs)

"""The persistent driver daemon: ``python -m repro.service.daemon``.

One long-lived process owns what every one-shot ``run_app`` call used
to rebuild: the warm :class:`~repro.service.pool.ExecutorPool`, the
:class:`~repro.service.cache.DatasetCache`, and the shared multi-job
:class:`~repro.core.scheduler.JobChunkAuthority`.  Clients connect
over the v5 wire protocol (:mod:`repro.fabric.wire`), pass the HMAC
challenge-response handshake when the daemon holds a key, and submit
jobs as ``SUBMIT`` frames; results return as ``JOB_RESULT`` /
``JOB_ERROR`` frames tagged with the client's sequence number, so one
connection can pipeline many concurrent submissions.

Admission is fair-by-priority: submissions land in a priority queue
(lower number first, FIFO within a priority) drained by
``max_concurrent_jobs`` runner threads — the concurrency limit *is*
the admission policy, and each running job's chunks live in their own
namespace on the shared authority, so jobs never steal each other's
work.

The daemon never unpickles a byte from an unauthenticated connection:
the handshake rides raw frames, and a legacy v4 ``HELLO`` (or any
other version skew) is answered with a versioned raw refusal frame
before the socket closes.
"""

from __future__ import annotations

import argparse
import itertools
import pickle
import queue
import socket
import sys
import threading
import time
import traceback
from typing import Any, Dict, Optional, Tuple

from ..apps import APPS, MMResult
from ..core.runtime import JobResult
from ..core.scheduler import JobChunkAuthority
from ..fabric.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    MSG_JOB_ERROR,
    MSG_JOB_RESULT,
    MSG_SUBMIT,
    MSG_WELCOME,
    AuthenticationError,
    FabricError,
    PeerDisconnected,
    ProtocolError,
    ProtocolVersionError,
    PROTOCOL_VERSION,
    deliver_challenge,
    load_auth_key,
    recv_frame,
    send_frame,
    send_raw_frame,
    send_versioned_error,
)
from ..obs import Observability
from .cache import DatasetCache
from .pool import ExecutorPool

__all__ = ["JobService", "main"]

#: Accept-loop wake interval while checking for shutdown.
_POLL_SECONDS = 0.2


def _strip_obs(result: Any) -> Any:
    """A wire-safe copy of a run result (tracers hold locks)."""
    if isinstance(result, JobResult) and result.obs is not None:
        return JobResult(
            stats=result.stats,
            outputs=result.outputs,
            schedule=result.schedule,
            obs=None,
        )
    if isinstance(result, MMResult):
        return MMResult(
            product=result.product,
            elapsed=result.elapsed,
            phase1=_strip_obs(result.phase1),
            phase2=_strip_obs(result.phase2),
        )
    return result


class JobService:
    """The daemon: accept clients, admit jobs, run them on warm pools."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_key: Optional[bytes] = None,
        max_concurrent_jobs: int = 2,
        default_backend: str = "local",
        default_n_gpus: int = 2,
        cache_entries: int = 8,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        obs: Optional[Observability] = None,
    ) -> None:
        if max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be >= 1")
        self.auth_key = auth_key
        self.default_backend = default_backend
        self.default_n_gpus = int(default_n_gpus)
        self.max_frame_bytes = int(max_frame_bytes)
        #: daemon-level observability: pool/cache counters, admission
        #: queue depth, and the submit-to-result latency histogram the
        #: service benchmark reads.  Always on — the daemon is the
        #: driver, so this instruments control decisions, never the
        #: (bit-parity-locked) data path.
        self.obs = obs or Observability()
        self.authority = JobChunkAuthority(obs=self.obs)
        self.pool = ExecutorPool(chunk_authority=self.authority, obs=self.obs)
        self.cache = DatasetCache(max_entries=cache_entries, obs=self.obs)
        self._listener = socket.create_server((host, port), backlog=64)
        self._listener.settimeout(_POLL_SECONDS)
        self.host, self.port = self._listener.getsockname()[:2]
        self._admission: "queue.PriorityQueue" = queue.PriorityQueue()
        self._arrivals = itertools.count()
        self._job_ids = itertools.count(1)
        self._shutdown = threading.Event()
        self._threads: list = []
        self._conn_threads: list = []
        self._started = False
        self.max_concurrent_jobs = int(max_concurrent_jobs)

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "JobService":
        """Start the accept loop and the job-runner threads."""
        if self._started:
            return self
        self._started = True
        accept = threading.Thread(
            target=self._accept_loop, name="gpmr-svc-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        for i in range(self.max_concurrent_jobs):
            t = threading.Thread(
                target=self._runner_loop, name=f"gpmr-svc-runner{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def close(self) -> None:
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:
            pass
        for t in self._threads:
            t.join(timeout=5.0)
        self.pool.close()

    def __enter__(self) -> "JobService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def serve_forever(self) -> None:
        """Block until interrupted (the CLI's main loop)."""
        self.start()
        try:
            while not self._shutdown.is_set():
                time.sleep(_POLL_SECONDS)
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    # -- accept / per-connection -------------------------------------------

    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            t = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="gpmr-svc-conn", daemon=True,
            )
            t.start()
            self._conn_threads.append(t)

    def _handshake(self, conn: socket.socket) -> bool:
        """Authenticate (when keyed) and greet; False drops the peer."""
        conn.settimeout(30.0)
        if self.auth_key is not None:
            try:
                deliver_challenge(
                    conn, self.auth_key, max_frame_bytes=self.max_frame_bytes
                )
            except ProtocolVersionError as exc:
                # e.g. a legacy v4 HELLO where the AUTH_RESPONSE should
                # be: refuse with a versioned raw frame, then close.
                send_versioned_error(
                    conn, str(exc), peer_version=exc.peer_version,
                    max_frame_bytes=self.max_frame_bytes,
                )
                conn.close()
                return False
            except (AuthenticationError, FabricError, socket.timeout, OSError):
                conn.close()
                return False
        try:
            send_frame(
                conn,
                MSG_WELCOME,
                {
                    "service": "gpmr-job-service",
                    "protocol": PROTOCOL_VERSION,
                    "apps": sorted(APPS),
                    "default_backend": self.default_backend,
                    "default_n_gpus": self.default_n_gpus,
                },
                max_frame_bytes=self.max_frame_bytes,
            )
        except (FabricError, OSError):
            conn.close()
            return False
        return True

    def _serve_connection(self, conn: socket.socket) -> None:
        if not self._handshake(conn):
            return
        conn.settimeout(None)
        send_lock = threading.Lock()
        try:
            while not self._shutdown.is_set():
                try:
                    _, submit = recv_frame(
                        conn, max_frame_bytes=self.max_frame_bytes,
                        expect=MSG_SUBMIT,
                    )
                except ProtocolVersionError as exc:
                    # A legacy (keyless-era) client got past the greet
                    # only to speak v4 frames: versioned refusal, drop.
                    send_versioned_error(
                        conn, str(exc), peer_version=exc.peer_version,
                        max_frame_bytes=self.max_frame_bytes,
                    )
                    return
                except (PeerDisconnected, OSError):
                    return
                except ProtocolError:
                    return
                self._dispatch(conn, send_lock, submit)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(
        self, conn: socket.socket, send_lock: threading.Lock, submit: Any
    ) -> None:
        if not isinstance(submit, dict) or "seq" not in submit:
            self._reply(
                conn, send_lock, MSG_JOB_ERROR,
                {"seq": None, "error": "malformed SUBMIT payload"},
            )
            return
        seq = submit["seq"]
        op = submit.get("op", "run")
        if op == "metrics":
            # Introspection is answered inline — it must not queue
            # behind running jobs (it is how clients watch them).
            self._reply(
                conn, send_lock, MSG_JOB_RESULT,
                {"seq": seq, "metrics": self.obs.metrics.snapshot(),
                 "active_jobs": self.authority.active_jobs,
                 "pool_idle": self.pool.idle_count},
            )
            return
        if op != "run":
            self._reply(
                conn, send_lock, MSG_JOB_ERROR,
                {"seq": seq, "error": f"unknown op {op!r}"},
            )
            return
        priority = int(submit.get("priority", 0))
        ticket = {
            "conn": conn,
            "send_lock": send_lock,
            "submit": submit,
            "t_submitted": time.perf_counter(),
        }
        self._admission.put((priority, next(self._arrivals), ticket))
        self.obs.metrics.gauge("admission_depth").set(self._admission.qsize())

    def _reply(
        self, conn: socket.socket, send_lock: threading.Lock,
        msg_type: int, payload: Any,
    ) -> None:
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 - result of arbitrary app code
            payload = {
                "seq": payload.get("seq"),
                "error": "result not picklable:\n" + traceback.format_exc(),
            }
            msg_type = MSG_JOB_ERROR
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        with send_lock:
            try:
                send_raw_frame(
                    conn, msg_type, blob, max_frame_bytes=self.max_frame_bytes
                )
            except (FabricError, OSError):
                pass  # client went away; the job still ran

    # -- job runners -------------------------------------------------------

    def _runner_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                _priority, _arrival, ticket = self._admission.get(
                    timeout=_POLL_SECONDS
                )
            except queue.Empty:
                continue
            self.obs.metrics.gauge("admission_depth").set(
                self._admission.qsize()
            )
            self._run_ticket(ticket)

    def _run_ticket(self, ticket: Dict[str, Any]) -> None:
        submit = ticket["submit"]
        seq = submit["seq"]
        job_id = f"j{next(self._job_ids):04d}"
        try:
            payload = self._execute(submit, job_id)
        except Exception:  # noqa: BLE001 - job failures go to the client
            self.obs.metrics.counter("jobs_failed").inc()
            self._reply(
                ticket["conn"], ticket["send_lock"], MSG_JOB_ERROR,
                {"seq": seq, "job_id": job_id,
                 "error": traceback.format_exc()},
            )
            return
        elapsed = time.perf_counter() - ticket["t_submitted"]
        self.obs.metrics.histogram("submit_to_result_s").observe(elapsed)
        self.obs.metrics.counter("jobs_completed").inc()
        payload.update({"seq": seq, "service_elapsed": elapsed})
        self._reply(ticket["conn"], ticket["send_lock"], MSG_JOB_RESULT, payload)

    def _execute(self, submit: Dict[str, Any], job_id: str) -> Dict[str, Any]:
        app = submit["app"]
        try:
            spec_entry = APPS[app]
        except KeyError:
            raise ValueError(
                f"unknown app {app!r}; registered: {sorted(APPS)}"
            ) from None
        backend = submit.get("backend") or self.default_backend
        n_gpus = int(submit.get("n_gpus") or self.default_n_gpus)
        executor_kwargs = dict(submit.get("executor_kwargs") or {})
        schedule = submit.get("schedule")

        # Dataset: by spec (cached, the warm path) or shipped verbatim.
        t0 = time.perf_counter()
        if submit.get("spec") is not None:
            dataset, cache_hit = self.cache.get(app, dict(submit["spec"]))
        elif submit.get("dataset") is not None:
            dataset, cache_hit = submit["dataset"], False
        else:
            raise ValueError("SUBMIT carries neither spec nor dataset")
        ingest_s = time.perf_counter() - t0
        self.obs.metrics.histogram("ingest_s").observe(ingest_s)

        ex = self.pool.lease(backend, n_gpus, **executor_kwargs)
        ex.job_id = job_id
        try:
            result = spec_entry.runner(
                n_gpus, dataset, backend=backend, schedule=schedule,
                executor=ex,
            )
        finally:
            # Retire the job's chunk namespace; the executor itself
            # goes back on the shelf warm.
            if job_id in self.authority.active_jobs:
                self.authority.close_job(job_id)
            self.pool.release(ex)
        return {
            "job_id": job_id,
            "app": app,
            "size": spec_entry.size_of(dataset),
            "n_gpus": n_gpus,
            "backend": backend,
            "elapsed": result.elapsed,
            "stats": getattr(result, "stats", None),
            "result": _strip_obs(result),
            "cache_hit": cache_hit,
            "ingest_s": ingest_s,
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.daemon",
        description="Run the persistent GPMR job service.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: loopback)")
    parser.add_argument("--port", type=int, default=7711,
                        help="port to listen on (default: 7711; 0 = ephemeral)")
    parser.add_argument("--backend", default="local",
                        help="default execution backend (default: local)")
    parser.add_argument("--n-gpus", type=int, default=2,
                        help="default workers per job (default: 2)")
    parser.add_argument("--max-concurrent-jobs", type=int, default=2,
                        help="job-runner threads (default: 2)")
    parser.add_argument("--cache-entries", type=int, default=8,
                        help="dataset cache capacity (default: 8)")
    parser.add_argument("--auth-key-env", default=None, metavar="VAR",
                        help="environment variable holding the shared "
                        "HMAC auth key; clients must present the same key")
    parser.add_argument("--auth-key-file", default=None, metavar="PATH",
                        help="file holding the shared auth key; mutually "
                        "exclusive with --auth-key-env")
    args = parser.parse_args(argv)
    try:
        auth_key = load_auth_key(args.auth_key_env, args.auth_key_file)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.host not in ("127.0.0.1", "localhost", "::1") and auth_key is None:
        print(
            "warning: binding a non-loopback interface without an auth key; "
            "anyone who can reach the port can submit jobs "
            "(see --auth-key-env)",
            file=sys.stderr,
        )
    service = JobService(
        host=args.host,
        port=args.port,
        auth_key=auth_key,
        max_concurrent_jobs=args.max_concurrent_jobs,
        default_backend=args.backend,
        default_n_gpus=args.n_gpus,
        cache_entries=args.cache_entries,
    )
    print(
        f"gpmr job service on {service.host}:{service.port} "
        f"(backend={args.backend}×{args.n_gpus}, "
        f"concurrency={args.max_concurrent_jobs}, "
        f"auth={'on' if auth_key else 'off'})",
        flush=True,
    )
    service.serve_forever()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())

"""The long-lived job service (ROADMAP item 2).

One-shot ``run_app`` pays executor construction, dataset ingest, and
(for the cluster backend) fabric connection setup on every call.  This
package amortizes all three across jobs: a persistent daemon
(:mod:`repro.service.daemon`) owns a warm
:class:`~repro.service.pool.ExecutorPool`, a
:class:`~repro.service.cache.DatasetCache` keyed off the ``APPS``
registry, and one shared
:class:`~repro.core.scheduler.JobChunkAuthority` giving every
concurrent job its own chunk namespace.  Clients
(:mod:`repro.service.client`) submit over the v5 wire protocol —
HMAC-authenticated when the daemon holds a key — and get back the same
``AppRun`` records one-shot runs produce, bit-identical outputs
included.

Quick start::

    # terminal 1
    python -m repro.service.daemon --backend local --n-gpus 2

    # terminal 2 (or any process)
    from repro.service import ServiceClient
    with ServiceClient() as svc:
        run = svc.submit("SIO", {"n_elements": 20_000, "seed": 7})

:mod:`repro.service.loadgen` drives many concurrent clients against a
daemon and reports jobs/sec with p50/p99 latency.
"""

from .cache import DatasetCache
from .client import JobFailed, ServiceClient, submit
from .pool import ExecutorPool

__all__ = [
    "DatasetCache",
    "ExecutorPool",
    "JobFailed",
    "JobService",
    "ServiceClient",
    "submit",
]


def __getattr__(name):
    # Lazy so `python -m repro.service.daemon` does not import the
    # daemon module twice (once here, once as __main__).
    if name == "JobService":
        from .daemon import JobService

        return JobService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

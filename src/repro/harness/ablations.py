"""Ablation experiments (A1–A4) for the design choices DESIGN.md calls out.

* **A1** — Accumulation on/off for WO, KMC, LR ("We saw dramatically
  worse performance in KMC, LR, and especially WO before implementing
  Accumulation; all three had similar characteristics to SIO").
* **A2** — SIO pipeline configurations: plain vs Partial Reduction vs
  Combine ("we forego Partial Reduction and Accumulation as they yield
  no speedup with our intermediate data, and we skip Combine as it
  causes slowdown").
* **A3** — chunk-size sweep: the overlap trade-off of Section 3.
* **A4** — WO reduce kernels: warp-per-key vs thread-per-key ("reduction
  times were reduced (by an order of magnitude in some cases)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .report import render_table
from ..apps import (
    kmc_dataset,
    lr_dataset,
    run_kmc,
    run_lr,
    run_wo,
    sio_dataset,
    sio_job,
    wo_dataset,
)
from ..core import GPMRRuntime, SumCombiner, SumPartialReducer
from ..core.job import MapReduceJob
from ..hw import GT200, kernel_duration
from ..apps.word_occurrence import WOThreadReducer, WOWarpReducer

__all__ = [
    "AblationResult",
    "ablation_accumulation",
    "ablation_sio_pipeline",
    "ablation_chunk_size",
    "ablation_wo_reduce",
]

M = 1 << 20


@dataclass
class AblationResult:
    title: str
    headers: List[str]
    rows: List[List[object]]
    #: named scalar findings for assertions
    findings: Dict[str, float]

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)


def ablation_accumulation(n_gpus: int = 4, seed: int = 0) -> AblationResult:
    """A1: accumulation on/off for WO, KMC, LR."""
    rows = []
    findings: Dict[str, float] = {}

    wo_ds = wo_dataset(64 * M, seed=seed, sample_factor=32)
    t_on = run_wo(n_gpus, wo_ds, use_accumulation=True).elapsed
    t_off = run_wo(n_gpus, wo_ds, use_accumulation=False).elapsed
    rows.append(["WO 64M", t_on, t_off, t_off / t_on])
    findings["wo_slowdown"] = t_off / t_on

    kmc_ds = kmc_dataset(32 * M, seed=seed, sample_factor=16)
    t_on = run_kmc(n_gpus, kmc_ds, use_accumulation=True).elapsed
    t_off = run_kmc(n_gpus, kmc_ds, use_accumulation=False).elapsed
    rows.append(["KMC 32M", t_on, t_off, t_off / t_on])
    findings["kmc_slowdown"] = t_off / t_on

    lr_ds = lr_dataset(64 * M, seed=seed, sample_factor=32)
    t_on = run_lr(n_gpus, lr_ds, use_accumulation=True).elapsed
    t_off = run_lr(n_gpus, lr_ds, use_accumulation=False).elapsed
    rows.append(["LR 64M", t_on, t_off, t_off / t_on])
    findings["lr_slowdown"] = t_off / t_on

    return AblationResult(
        title=f"A1: Accumulation ablation ({n_gpus} GPUs)",
        headers=["Workload", "with accum (s)", "without (s)", "slowdown"],
        rows=rows,
        findings=findings,
    )


def ablation_sio_pipeline(n_gpus: int = 4, seed: int = 0) -> AblationResult:
    """A2: SIO with plain / partial-reduce / combine pipelines."""
    ds = sio_dataset(32 * M, seed=seed, sample_factor=16)
    rt = GPMRRuntime(n_gpus=n_gpus)

    def variant(partial=None, combiner=None) -> float:
        base = sio_job(ds.key_space)
        job = MapReduceJob(
            name=base.name,
            mapper=base.mapper,
            reducer=base.reducer,
            partitioner=base.partitioner,
            partial_reducer=partial,
            combiner=combiner,
            sorter=base.sorter,
            key_bytes=base.key_bytes,
            value_bytes=base.value_bytes,
            key_bits=base.key_bits,
        )
        return rt.run(job, ds).elapsed

    t_plain = variant()
    t_partial = variant(partial=SumPartialReducer())
    t_combine = variant(combiner=SumCombiner())
    findings = {
        "plain": t_plain,
        "partial_reduce": t_partial,
        "combine": t_combine,
    }
    rows = [
        ["plain (paper's choice)", t_plain, 1.0],
        ["+ partial reduction", t_partial, t_partial / t_plain],
        ["+ combine", t_combine, t_combine / t_plain],
    ]
    return AblationResult(
        title=f"A2: SIO pipeline configurations ({n_gpus} GPUs, 32M ints)",
        headers=["Pipeline", "elapsed (s)", "vs plain"],
        rows=rows,
        findings=findings,
    )


def ablation_chunk_size(
    n_gpus: int = 8,
    chunk_elements: Sequence[int] = (1 * M, 4 * M, 16 * M, 64 * M),
    seed: int = 0,
) -> AblationResult:
    """A3: SIO chunk-size sweep (overlap vs per-chunk overhead)."""
    rows = []
    findings: Dict[str, float] = {}
    rt = GPMRRuntime(n_gpus=n_gpus)
    for chunk in chunk_elements:
        ds = sio_dataset(
            128 * M, chunk_elements=chunk, seed=seed, sample_factor=64
        )
        t = rt.run(sio_job(ds.key_space), ds).elapsed
        rows.append([f"{chunk // M}M ints/chunk", ds.n_chunks, t])
        findings[f"chunk_{chunk // M}M"] = t
    return AblationResult(
        title=f"A3: SIO chunk-size sweep ({n_gpus} GPUs, 128M ints)",
        headers=["Chunk size", "# chunks", "elapsed (s)"],
        rows=rows,
        findings=findings,
    )


def ablation_wo_reduce(seed: int = 0) -> AblationResult:
    """A4: WO reduce kernel, warp-per-key vs thread-per-key.

    Prices the two reduce kernels over the same (n_values, n_keys)
    workload, and also times full WO jobs with each reducer.
    """
    n_keys = 43_000
    n_values = n_keys * 16  # 16 GPUs' worth of accumulated tables
    warp = sum(
        kernel_duration(GT200, k)
        for k in WOWarpReducer().reduce_cost(n_values, n_keys)
    )
    thread = sum(
        kernel_duration(GT200, k)
        for k in WOThreadReducer().reduce_cost(n_values, n_keys)
    )
    ds = wo_dataset(16 * M, seed=seed, sample_factor=8)
    t_warp_job = run_wo(4, ds, warp_reducer=True).elapsed
    t_thread_job = run_wo(4, ds, warp_reducer=False).elapsed
    findings = {
        "kernel_speedup": thread / warp,
        "warp_kernel_s": warp,
        "thread_kernel_s": thread,
        "job_speedup": t_thread_job / t_warp_job,
    }
    rows = [
        ["warp-per-key kernel", warp, 1.0],
        ["thread-per-key kernel", thread, thread / warp],
        ["warp-per-key full job (4 GPUs)", t_warp_job, 1.0],
        ["thread-per-key full job (4 GPUs)", t_thread_job, t_thread_job / t_warp_job],
    ]
    return AblationResult(
        title="A4: WO reduce kernel ablation",
        headers=["Variant", "seconds", "ratio"],
        rows=rows,
        findings=findings,
    )

"""Regeneration of the paper's Tables 1–4.

Each ``tableN()`` returns a structured result with a ``render()``
producing the same rows the paper prints, plus the paper's published
values for side-by-side comparison (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .experiments import TABLE2_SIZES, TABLE3_SIZES, dataset_for
from .loc import app_loc_counts
from .report import render_table
from .runners import run_app
from ..apps import (
    kmc_mars_workload,
    kmc_phoenix_workload,
    lr_phoenix_workload,
    mm_mars_workload,
    mm_phoenix_workload,
    sio_phoenix_workload,
    wo_mars_workload,
    wo_phoenix_workload,
)
from ..baselines import MarsModel, PhoenixModel

__all__ = [
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "table1",
    "table2",
    "table3",
    "table4",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
]

#: The paper's Table 2 (speedup of GPMR over Phoenix).
PAPER_TABLE2: Dict[str, Tuple[float, float]] = {
    "MM": (162.712, 559.209),
    "KMC": (2.991, 11.726),
    "LR": (1.296, 4.085),
    "SIO": (1.450, 2.322),
    "WO": (11.080, 18.441),
}

#: The paper's Table 3 (speedup of GPMR over Mars).
PAPER_TABLE3: Dict[str, Tuple[float, float]] = {
    "MM": (2.695, 10.760),
    "KMC": (37.344, 129.425),
    "WO": (3.098, 11.709),
}

#: The paper's Table 4 (lines of source code per benchmark).
PAPER_TABLE4: Dict[str, Dict[str, int]] = {
    "Phoenix": {"MM": 317, "KMC": 345, "WO": 231},
    "Mars": {"MM": 235, "KMC": 152, "WO": 140},
    "GPMR": {"MM": 214, "KMC": 129, "WO": 397},
}


# ---------------------------------------------------------------------------
# Table 1 — dataset sizes
# ---------------------------------------------------------------------------

@dataclass
class Table1Result:
    rows: List[List[object]]

    def render(self) -> str:
        headers = ["", "MM", "SIO", "WO", "KMC", "LR"]
        return render_table(headers, self.rows, title="Table 1: Dataset sizes")


def table1() -> Table1Result:
    """The dataset-size matrix (element sizes and counts, Table 1)."""
    rows = [
        ["Input element size", "float32", "4 bytes", "1 byte", "16 bytes", "8 bytes"],
        [
            "# Elems, first set (x10^6)",
            "1024^2..16384^2",
            "1, 8, 32, 128",
            "1, 16, 64, 512",
            "1, 8, 32, 512",
            "1, 16, 64, 512",
        ],
        [
            "# Elems, second set (x10^6/GPU)",
            "-",
            "1..32",
            "1..256",
            "1..32",
            "1..64",
        ],
    ]
    return Table1Result(rows=rows)


# ---------------------------------------------------------------------------
# Table 2 — GPMR vs Phoenix
# ---------------------------------------------------------------------------

@dataclass
class Table2Result:
    #: app -> (gpmr_1gpu_s, gpmr_4gpu_s, phoenix_s, speedup1, speedup4)
    measurements: Dict[str, Tuple[float, float, float, float, float]]

    def speedups(self, app: str) -> Tuple[float, float]:
        m = self.measurements[app]
        return m[3], m[4]

    def render(self) -> str:
        headers = ["", "MM", "KMC", "LR", "SIO", "WO"]
        order = ["MM", "KMC", "LR", "SIO", "WO"]
        row1 = ["1-GPU"] + [self.measurements[a][3] for a in order]
        row4 = ["4-GPU"] + [self.measurements[a][4] for a in order]
        paper1 = ["paper 1-GPU"] + [PAPER_TABLE2[a][0] for a in order]
        paper4 = ["paper 4-GPU"] + [PAPER_TABLE2[a][1] for a in order]
        return render_table(
            headers,
            [row1, row4, paper1, paper4],
            title="Table 2: Speedup of GPMR over Phoenix",
        )


def table2(seed: int = 0) -> Table2Result:
    """Run GPMR at 1 and 4 GPUs and the Phoenix model per app."""
    phoenix = PhoenixModel()
    workload_of = {
        "MM": mm_phoenix_workload,
        "SIO": sio_phoenix_workload,
        "WO": wo_phoenix_workload,
        "KMC": kmc_phoenix_workload,
        "LR": lr_phoenix_workload,
    }
    out: Dict[str, Tuple[float, float, float, float, float]] = {}
    for app, size in TABLE2_SIZES.items():
        ds = dataset_for(app, size, seed=seed)
        t1 = run_app(app, ds, 1).elapsed
        t4 = run_app(app, ds, 4).elapsed
        tp = phoenix.runtime(workload_of[app](ds)).total
        out[app] = (t1, t4, tp, tp / t1, tp / t4)
    return Table2Result(measurements=out)


# ---------------------------------------------------------------------------
# Table 3 — GPMR vs Mars
# ---------------------------------------------------------------------------

@dataclass
class Table3Result:
    #: app -> (gpmr_1gpu_s, gpmr_4gpu_s, mars_s, speedup1, speedup4)
    measurements: Dict[str, Tuple[float, float, float, float, float]]

    def speedups(self, app: str) -> Tuple[float, float]:
        m = self.measurements[app]
        return m[3], m[4]

    def render(self) -> str:
        order = ["MM", "KMC", "WO"]
        headers = ["", "MM", "KMC", "WO"]
        row1 = ["1-GPU"] + [self.measurements[a][3] for a in order]
        row4 = ["4-GPU"] + [self.measurements[a][4] for a in order]
        paper1 = ["paper 1-GPU"] + [PAPER_TABLE3[a][0] for a in order]
        paper4 = ["paper 4-GPU"] + [PAPER_TABLE3[a][1] for a in order]
        return render_table(
            headers,
            [row1, row4, paper1, paper4],
            title="Table 3: Speedup of GPMR over Mars",
        )


def table3(seed: int = 0) -> Table3Result:
    """Run GPMR at 1 and 4 GPUs and the Mars model per app."""
    mars = MarsModel()
    workload_of = {
        "MM": mm_mars_workload,
        "KMC": kmc_mars_workload,
        "WO": wo_mars_workload,
    }
    out: Dict[str, Tuple[float, float, float, float, float]] = {}
    for app, size in TABLE3_SIZES.items():
        ds = dataset_for(app, size, seed=seed)
        t1 = run_app(app, ds, 1).elapsed
        t4 = run_app(app, ds, 4).elapsed
        tm = mars.runtime(workload_of[app](ds)).total
        out[app] = (t1, t4, tm, tm / t1, tm / t4)
    return Table3Result(measurements=out)


# ---------------------------------------------------------------------------
# Table 4 — lines of source code
# ---------------------------------------------------------------------------

@dataclass
class Table4Result:
    ours: Dict[str, int]

    def render(self) -> str:
        headers = ["", "MM", "KMC", "WO"]
        rows = [
            ["Phoenix (paper)"] + [PAPER_TABLE4["Phoenix"][a] for a in ("MM", "KMC", "WO")],
            ["Mars (paper)"] + [PAPER_TABLE4["Mars"][a] for a in ("MM", "KMC", "WO")],
            ["GPMR (paper)"] + [PAPER_TABLE4["GPMR"][a] for a in ("MM", "KMC", "WO")],
            ["GPMR (this repo)"] + [self.ours[a] for a in ("MM", "KMC", "WO")],
        ]
        return render_table(headers, rows, title="Table 4: Lines of source code")


def table4() -> Table4Result:
    """Count this repo's benchmark implementation sizes."""
    return Table4Result(ours=app_loc_counts())

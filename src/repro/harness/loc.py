"""Line-of-code counting for Table 4.

The paper counts each benchmark's implementation, excluding common
setup, including boilerplate (headers and kernel wrappers).  We count
the same way: non-blank, non-comment lines of each app module
(docstrings excluded — they are this reproduction's equivalent of
paper-margin commentary, not code).
"""

from __future__ import annotations

import io
import tokenize
from pathlib import Path
from typing import Dict

__all__ = ["count_loc", "app_loc_counts"]

_APP_FILES = {
    "MM": "matmul.py",
    "KMC": "kmeans.py",
    "WO": "word_occurrence.py",
    "SIO": "sparse_int_occurrence.py",
    "LR": "linear_regression.py",
}


def count_loc(path: Path) -> int:
    """Non-blank, non-comment, non-docstring source lines of a file."""
    source = path.read_text()
    drop_lines = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenError:  # pragma: no cover - malformed source
        tokens = []
    for tok in tokens:
        if tok.type == tokenize.STRING and tok.line.lstrip().startswith(
            ('"""', "'''", 'r"""', "b'''")
        ):
            # A docstring (expression statement string): drop its span.
            drop_lines.update(range(tok.start[0], tok.end[0] + 1))
    count = 0
    for i, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        # Blank lines, whole-line comments, and docstring lines don't
        # count; code with a trailing comment does.
        if not stripped or stripped.startswith("#") or i in drop_lines:
            continue
        count += 1
    return count


def app_loc_counts() -> Dict[str, int]:
    """LoC of each benchmark implementation in this repository."""
    apps_dir = Path(__file__).resolve().parent.parent / "apps"
    return {app: count_loc(apps_dir / fname) for app, fname in _APP_FILES.items()}

"""Experiment harness (S13): regenerates every table and figure.

Entry points:

* :func:`table1` … :func:`table4` — the paper's tables
* :func:`figure2`, :func:`figure3` — runtime breakdowns + efficiency
* :func:`ablation_accumulation` … — the A1–A4 design-choice ablations

Each returns a structured result with ``render()`` for the text rows
the paper reports; ``benchmarks/`` wires them into pytest-benchmark.
"""

from .ablations import (
    AblationResult,
    ablation_accumulation,
    ablation_chunk_size,
    ablation_sio_pipeline,
    ablation_wo_reduce,
)
from .experiments import (
    APP_NAMES,
    FIGURE2_GPUS,
    GPU_COUNTS,
    TABLE2_SIZES,
    TABLE3_SIZES,
    bench_smoke_enabled,
    dataset_for,
    sample_factor_for,
    sample_target,
    strong_scaling_sizes,
)
from .figures import (
    Figure2Result,
    Figure3Result,
    efficiency_curve,
    figure2,
    figure3,
)
from .loc import app_loc_counts, count_loc
from .report import banner, render_series, render_table
from .runners import AppRun, run_app
from .accel_bench import accel_kernels
from .weak_scaling import WEAK_PER_GPU, WeakScalingResult, weak_scaling
from .tables import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    Table1Result,
    Table2Result,
    Table3Result,
    Table4Result,
    table1,
    table2,
    table3,
    table4,
)

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "figure2",
    "figure3",
    "efficiency_curve",
    "ablation_accumulation",
    "ablation_sio_pipeline",
    "ablation_chunk_size",
    "ablation_wo_reduce",
    "accel_kernels",
    "run_app",
    "AppRun",
    "weak_scaling",
    "WeakScalingResult",
    "WEAK_PER_GPU",
    "dataset_for",
    "sample_factor_for",
    "sample_target",
    "bench_smoke_enabled",
    "strong_scaling_sizes",
    "GPU_COUNTS",
    "FIGURE2_GPUS",
    "APP_NAMES",
    "TABLE2_SIZES",
    "TABLE3_SIZES",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "Figure2Result",
    "Figure3Result",
    "AblationResult",
    "app_loc_counts",
    "count_loc",
    "render_table",
    "render_series",
    "banner",
]

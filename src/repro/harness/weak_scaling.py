"""Weak-scaling experiments: Table 1's second dataset set.

"We ran each GPMR benchmark against two datasets.  One tests strong
scalability ...; the other tests weak scalability" with per-GPU element
counts (e.g. SIO 1–32 M elements *per GPU*).  The paper reports no
separate weak-scaling figure, so this module is an extension: it holds
per-GPU input constant, sweeps the GPU count, and reports *weak
efficiency* ``T(1) / T(N)`` (1.0 = perfect weak scaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .experiments import dataset_for
from .report import render_series
from .runners import run_app

__all__ = ["WeakScalingResult", "weak_scaling", "WEAK_PER_GPU"]

M = 1 << 20

#: Representative per-GPU element counts from Table 1's second set.
WEAK_PER_GPU: Dict[str, int] = {
    "SIO": 8 * M,      # second set: 1..32 M / GPU
    "WO": 32 * M,      # second set: 1..256 M / GPU
    "KMC": 8 * M,      # second set: 1..32 M / GPU
    "LR": 16 * M,      # second set: 1..64 M / GPU
}


@dataclass
class WeakCurve:
    app: str
    per_gpu: int
    gpu_counts: List[int]
    elapsed: List[float]

    @property
    def weak_efficiencies(self) -> List[float]:
        base = self.elapsed[0]
        return [base / t for t in self.elapsed]

    def efficiency_at(self, n_gpus: int) -> float:
        return self.weak_efficiencies[self.gpu_counts.index(n_gpus)]


@dataclass
class WeakScalingResult:
    curves: Dict[str, WeakCurve]

    def render(self) -> str:
        first = next(iter(self.curves.values()))
        xs = first.gpu_counts
        series = [
            (f"{app} ({c.per_gpu // M}M/GPU)", [round(e, 3) for e in c.weak_efficiencies])
            for app, c in self.curves.items()
        ]
        return render_series(
            "GPUs", xs, series,
            title="Weak scaling: efficiency T(1)/T(N), constant work per GPU",
        )


def weak_scaling(
    apps: Sequence[str] = ("SIO", "WO", "KMC", "LR"),
    gpu_counts: Sequence[int] = (1, 4, 8, 16, 32),
    seed: int = 0,
) -> WeakScalingResult:
    """Hold per-GPU input constant; sweep the GPU count."""
    curves: Dict[str, WeakCurve] = {}
    for app in apps:
        per_gpu = WEAK_PER_GPU[app]
        elapsed = []
        for g in gpu_counts:
            ds = dataset_for(app, per_gpu * g, seed=seed)
            elapsed.append(run_app(app, ds, g).elapsed)
        curves[app] = WeakCurve(
            app=app, per_gpu=per_gpu, gpu_counts=list(gpu_counts), elapsed=elapsed
        )
    return WeakScalingResult(curves=curves)

"""Experiment configurations: the paper's dataset matrix, scaled.

Sizes come from Table 1 (strong-scaling "first set" and weak-scaling
per-GPU "second set").  Every configuration is priced at *logical*
(paper) scale; ``sample_factor`` only shrinks the functional payload so
the sweep fits a single machine (see DESIGN.md and
:mod:`repro.workloads.base`).

``quick=True`` variants cut the largest sizes for CI-speed runs; the
default regenerates the full figure/table grids.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from ..apps import (
    kmc_dataset,
    lr_dataset,
    mm_dataset,
    sio_dataset,
    wo_dataset,
)

__all__ = [
    "GPU_COUNTS",
    "APP_NAMES",
    "strong_scaling_sizes",
    "dataset_for",
    "sample_factor_for",
    "sample_target",
    "bench_smoke_enabled",
    "TABLE2_SIZES",
    "TABLE3_SIZES",
    "FIGURE2_GPUS",
]

#: The paper's GPU-count sweep.
GPU_COUNTS: Tuple[int, ...] = (1, 4, 8, 16, 32, 64)

#: Figure 2's cluster configurations.
FIGURE2_GPUS: Tuple[int, ...] = (1, 8, 64)

APP_NAMES = ("MM", "SIO", "WO", "KMC", "LR")

M = 1 << 20

#: Strong-scaling input sizes per app (Table 1 first set; element
#: counts except MM, which is the matrix dimension).
_STRONG: Dict[str, Tuple[int, ...]] = {
    "MM": (1024, 2048, 4096, 16384),
    "SIO": (1 * M, 8 * M, 32 * M, 128 * M),
    "WO": (1 * M, 16 * M, 64 * M, 512 * M),
    "KMC": (1 * M, 8 * M, 32 * M, 512 * M),
    "LR": (1 * M, 16 * M, 64 * M, 512 * M),
}

#: Functional elements kept per dataset (sampling target).
_SAMPLE_TARGET = 2 * M

#: Smoke-mode sampling target: tiny functional payloads so every bench
#: executes end-to-end in seconds (CI rot protection, not measurement).
_SMOKE_SAMPLE_TARGET = 1 << 14


def bench_smoke_enabled() -> bool:
    """Whether ``REPRO_BENCH_SMOKE=1`` fast mode is active."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


def sample_target() -> int:
    """Functional elements to keep per dataset (smoke-aware)."""
    return _SMOKE_SAMPLE_TARGET if bench_smoke_enabled() else _SAMPLE_TARGET


def strong_scaling_sizes(app: str, quick: bool = False) -> Tuple[int, ...]:
    sizes = _STRONG[app]
    return sizes[1:3] if quick else sizes


def _clamp(value: int, lo: int, hi: int) -> int:
    return max(lo, min(hi, value))


def mm_tile_for(size: int) -> int:
    """Tile edge: 1024 for big matrices ("at least 1024^2"), smaller for
    small inputs so even 1024^2 decomposes into a schedulable grid."""
    return min(1024, max(size // 4, 64))


def sample_factor_for(app: str, size: int) -> int:
    """Power-of-two sampling factor keeping ~2M functional elements."""
    if app == "MM":
        # MM samples tile edges; the factor divides the tile.
        divisor = 16 if bench_smoke_enabled() else 64
        return max(1, mm_tile_for(size) // divisor)
    sf = 1
    target = sample_target()
    while size // sf > target:
        sf *= 2
    return sf


def chunk_elements_for(app: str, size: int) -> int:
    """Chunk sizing: "a fraction of the size of available memory",
    scaled down for small inputs so every sweep point has schedulable
    parallelism (the paper's small inputs still scaled to 4 GPUs)."""
    m = 1 << 20
    if app == "SIO":
        return _clamp(size // 16, m, 16 * m)
    if app == "WO":
        return _clamp(size // 16, m, 8 * m)
    if app == "KMC":
        return _clamp(size // 64, m, 4 * m)
    if app == "LR":
        return _clamp(size // 64, m, 8 * m)
    raise ValueError(f"no chunk policy for {app!r}")


def dataset_for(app: str, size: int, seed: int = 0):
    """Build the app's dataset at ``size`` with standard sampling."""
    sf = sample_factor_for(app, size)
    if app == "MM":
        tile = mm_tile_for(size)
        kspan = min(8, size // tile)
        return mm_dataset(size, tile=tile, kspan=kspan, seed=seed, sample_factor=sf)
    chunk = chunk_elements_for(app, size)
    if app == "SIO":
        return sio_dataset(size, chunk_elements=chunk, seed=seed, sample_factor=sf)
    if app == "WO":
        return wo_dataset(size, chunk_chars=chunk, seed=seed, sample_factor=sf)
    if app == "KMC":
        return kmc_dataset(size, chunk_points=chunk, seed=seed, sample_factor=sf)
    if app == "LR":
        return lr_dataset(size, chunk_points=chunk, seed=seed, sample_factor=sf)
    raise ValueError(f"unknown app {app!r}")


#: Table 2 input sizes: "our large (second-biggest) input data from our
#: first set.  The exception is MM, for which we use our small input
#: set" (1024^2).
TABLE2_SIZES: Dict[str, int] = {
    "MM": 1024,
    "SIO": 32 * M,
    "WO": 64 * M,
    "KMC": 32 * M,
    "LR": 64 * M,
}

#: Table 3 input sizes: "the largest problems that can meet the in-core
#: memory requirements of Mars" — 4096^2 MM, 8M-point KMC, 512 MB WO.
TABLE3_SIZES: Dict[str, int] = {
    "MM": 4096,
    "KMC": 8 * M,
    "WO": 512 * M,
}

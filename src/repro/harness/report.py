"""Plain-text rendering of harness results (tables and series).

The benches print exactly the rows/series the paper reports, so a
side-by-side read against the PDF is one ``pytest benchmarks/`` away.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "render_series", "banner"]


def banner(title: str, width: int = 78) -> str:
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: Sequence[tuple],
    title: str = "",
) -> str:
    """Render named (label, ys) series against shared x values."""
    headers = [x_label] + [label for label, _ in series]
    rows = []
    for i, x in enumerate(xs):
        row = [x] + [ys[i] if i < len(ys) else "" for _, ys in series]
        rows.append(row)
    return render_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)

"""Fused-kernel microbench: map-phase throughput and emission volume.

Times one rank's map phase (:class:`~repro.exec.dataflow.MapRunner`,
fed chunk by chunk exactly as the pull loop does) for each app, in up
to three variants:

* **raw** — the paper's first-port pipeline where it exists
  (``use_accumulation=False``): every pair crosses the map boundary;
* **staged** — the tuned unfused pipeline (accumulate / plain map);
* **fused** — the same job with its :class:`~repro.accel.FusedMapper`
  collapsing map + partial reduce (+ per-chunk combine) into one
  namespace call per chunk.

Reported per variant: map wall seconds, logical item throughput, bytes
handed to the exchange (``bytes_binned``), and bytes exported
device→host (zero on the numpy tier, where parts are born on host —
the single-crossing counter only moves on CuPy/Torch).  The headline
findings are the emission-byte reductions: fused KMC and WO emit one
resident table per rank instead of a pair stream, and fused SIO merges
like keys per chunk before the shuffle.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from .ablations import AblationResult
from .experiments import bench_smoke_enabled
from ..apps import (
    kmc_dataset,
    kmc_job,
    lr_dataset,
    lr_job,
    mm_dataset,
    sio_dataset,
    sio_job,
    wo_dataset,
    wo_job,
)
from ..apps.matmul import mm_phase1_job
from ..core.chunk import Chunk
from ..core.job import MapReduceJob
from ..exec.dataflow import MapRunner

__all__ = ["accel_kernels"]

M = 1 << 20

#: partitions the map output is split across (a mid-size rank count)
N_WORKERS = 4


def _time_map(job: MapReduceJob, chunks: Sequence[Chunk], fused: bool):
    runner = MapRunner(job, N_WORKERS, fused=fused)
    t0 = time.perf_counter()
    for chunk in chunks:
        runner.feed(chunk)
    out = runner.finish()
    return time.perf_counter() - t0, out


def accel_kernels(seed: int = 0) -> AblationResult:
    """Fused vs unfused map-phase throughput for the five apps."""
    smoke = bench_smoke_enabled()
    n_items = (1 << 14) if smoke else 2 * M
    chunk_items = max(n_items // 8, 1)

    wo_ds = wo_dataset(n_items, chunk_chars=chunk_items, seed=seed)
    kmc_ds = kmc_dataset(
        n_items, n_centers=32, dims=2, chunk_points=chunk_items, seed=seed
    )
    lr_ds = lr_dataset(n_items, chunk_points=chunk_items, seed=seed)
    # A key space small enough that chunks hold duplicate keys: the
    # per-chunk combine has something to merge.  (The paper's sparse
    # 2^28 space is the adversarial case where it would not.)
    sio_ds = sio_dataset(
        n_items, chunk_elements=chunk_items, key_space=1 << 14, seed=seed
    )
    mm_ds = mm_dataset(256 if smoke else 1024, tile=64 if smoke else 256,
                       kspan=2, seed=seed)

    cases = [
        ("KMC", kmc_ds, {
            "raw": (kmc_job(kmc_ds, use_accumulation=False), False),
            "staged": (kmc_job(kmc_ds), False),
            "fused": (kmc_job(kmc_ds), True),
        }),
        ("WO", wo_ds, {
            "raw": (wo_job(N_WORKERS, use_accumulation=False), False),
            "staged": (wo_job(N_WORKERS), False),
            "fused": (wo_job(N_WORKERS), True),
        }),
        ("LR", lr_ds, {
            "raw": (lr_job(use_accumulation=False), False),
            "staged": (lr_job(), False),
            "fused": (lr_job(), True),
        }),
        ("SIO", sio_ds, {
            "raw": (sio_job(key_space=sio_ds.key_space), False),
            "fused": (sio_job(key_space=sio_ds.key_space), True),
        }),
        ("MM p1", mm_ds, {
            "staged": (mm_phase1_job(mm_ds), False),
            "fused": (mm_phase1_job(mm_ds), True),
        }),
    ]

    rows: List[List[object]] = []
    findings: Dict[str, float] = {}
    for app, ds, variants in cases:
        chunks = list(ds.chunks())
        items = sum(c.logical_items for c in chunks)
        emitted: Dict[str, int] = {}
        elapsed: Dict[str, float] = {}
        for variant, (job, fused) in variants.items():
            secs, out = _time_map(job, chunks, fused)
            emitted[variant] = out.bytes_binned
            elapsed[variant] = secs
            rows.append([
                app,
                variant,
                secs,
                items / max(secs, 1e-12) / M,
                out.bytes_binned / M,
                out.bytes_device_to_host / M,
            ])
            findings[f"{app.lower().replace(' ', '_')}_{variant}_d2h_bytes"] = (
                float(out.bytes_device_to_host)
            )
        baseline = "raw" if "raw" in emitted else "staged"
        key = app.lower().replace(" ", "_")
        findings[f"{key}_emission_reduction"] = (
            emitted[baseline] / max(emitted["fused"], 1)
        )
        findings[f"{key}_fused_speedup"] = (
            elapsed[baseline] / max(elapsed["fused"], 1e-12)
        )

    return AblationResult(
        title=f"Fused map+partial-reduce kernels (numpy tier, "
              f"{N_WORKERS}-way partition)",
        headers=["App", "variant", "map (s)", "Mitems/s",
                 "emitted (MB)", "d2h (MB)"],
        rows=rows,
        findings=findings,
    )

"""Uniform run-and-measure helpers over the five apps."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps import APPS
from ..core.runtime import JobResult
from ..core.stats import JobStats

__all__ = ["AppRun", "run_app"]


@dataclass
class AppRun:
    """One measured execution of an app on some execution backend."""

    app: str
    size: int
    n_gpus: int
    elapsed: float
    stats: JobStats
    backend: str = "sim"
    #: the full result the backend returned — per-rank outputs, the
    #: recorded :class:`~repro.core.scheduler.ScheduleTrace`, and the
    #: fault counters; everything beyond the timing summary above.
    #: (For the two-phase MM app this is its ``MMResult``.)
    result: Optional[JobResult] = None


def run_app(
    app: str,
    dataset,
    n_gpus: int,
    backend: str = "sim",
    schedule=None,
    **executor_kwargs,
) -> AppRun:
    """Run ``app`` over ``dataset`` on ``n_gpus`` workers of ``backend``.

    Dispatches through the :data:`repro.apps.APPS` registry — every
    registered runner shares the uniform signature ``runner(n_gpus,
    dataset, *, backend, schedule, **executor_kwargs)``.

    With the default ``"sim"`` backend ``elapsed`` is modeled cluster
    time; with a real backend (``"local"`` / ``"serial"`` /
    ``"cluster"``) it is measured wall-clock time.

    ``schedule`` replays a recorded chunk schedule
    (:class:`~repro.core.scheduler.ScheduleTrace`; for the two-phase MM
    app, a ``(phase1, phase2)`` pair of traces) so a load-balanced run
    can be re-executed chunk-for-chunk on any backend.  Without it,
    every backend *generates* a schedule — the real ones steal natively
    at runtime — and records it on the result.

    ``executor_kwargs`` go to the backend factory verbatim (e.g.
    ``initial_distribution="single"`` to force an imbalanced start,
    ``fault_plan=FaultPlan(...)`` to arm kill/stall injection and
    recovery, or the local backend's ``stall_seconds`` straggler
    injection).  That includes the observability knobs: pass
    ``obs=Observability()`` and/or ``trace_path="run.trace.jsonl"``
    to record spans, events, and metrics for the run (see
    :mod:`repro.obs`); the bundle comes back on ``result.obs``.
    """
    try:
        spec = APPS[app]
    except KeyError:
        raise ValueError(
            f"unknown app {app!r}; registered: {sorted(APPS)}"
        ) from None
    result = spec.runner(
        n_gpus, dataset, backend=backend, schedule=schedule, **executor_kwargs
    )
    return AppRun(
        app=app,
        size=spec.size_of(dataset),
        n_gpus=n_gpus,
        elapsed=result.elapsed,
        stats=result.stats,
        backend=backend,
        result=result,
    )

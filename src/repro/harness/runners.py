"""Uniform run-and-measure helpers over the five apps."""

from __future__ import annotations

from dataclasses import dataclass

from ..apps import run_kmc, run_lr, run_matmul, run_sio, run_wo
from ..core.stats import JobStats

__all__ = ["AppRun", "run_app"]


@dataclass
class AppRun:
    """One measured execution of an app on some execution backend."""

    app: str
    size: int
    n_gpus: int
    elapsed: float
    stats: JobStats
    backend: str = "sim"


def run_app(
    app: str,
    dataset,
    n_gpus: int,
    backend: str = "sim",
    schedule=None,
    **executor_kwargs,
) -> AppRun:
    """Run ``app`` over ``dataset`` on ``n_gpus`` workers of ``backend``.

    With the default ``"sim"`` backend ``elapsed`` is modeled cluster
    time; with a real backend (``"local"`` / ``"serial"`` /
    ``"cluster"``) it is measured wall-clock time.

    ``schedule`` replays a recorded chunk schedule
    (:class:`~repro.core.scheduler.ScheduleTrace`; for the two-phase MM
    app, a ``(phase1, phase2)`` pair of traces) so a load-balanced run
    can be re-executed chunk-for-chunk on any backend.  Without it,
    every backend *generates* a schedule — the real ones steal natively
    at runtime — and records it on the result.

    ``executor_kwargs`` go to the backend factory verbatim (e.g.
    ``initial_distribution="single"`` to force an imbalanced start, or
    the local backend's ``stall_seconds`` straggler injection).
    """
    if app == "MM":
        result = run_matmul(
            n_gpus, dataset, backend=backend, schedule=schedule,
            **executor_kwargs,
        )
        stats = result.stats
        elapsed = result.elapsed
        size = dataset.m
    elif app == "SIO":
        r = run_sio(
            n_gpus, dataset, backend=backend, schedule=schedule,
            **executor_kwargs,
        )
        stats, elapsed, size = r.stats, r.elapsed, dataset.n_elements
    elif app == "WO":
        r = run_wo(
            n_gpus, dataset, backend=backend, schedule=schedule,
            executor_kwargs=executor_kwargs,
        )
        stats, elapsed, size = r.stats, r.elapsed, dataset.n_chars
    elif app == "KMC":
        r = run_kmc(
            n_gpus, dataset, backend=backend, schedule=schedule,
            **executor_kwargs,
        )
        stats, elapsed, size = r.stats, r.elapsed, dataset.n_points
    elif app == "LR":
        r = run_lr(
            n_gpus, dataset, backend=backend, schedule=schedule,
            **executor_kwargs,
        )
        stats, elapsed, size = r.stats, r.elapsed, dataset.n_points
    else:
        raise ValueError(f"unknown app {app!r}")
    return AppRun(
        app=app, size=size, n_gpus=n_gpus, elapsed=elapsed, stats=stats,
        backend=backend,
    )

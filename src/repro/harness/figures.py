"""Regeneration of the paper's Figures 2 and 3.

* **Figure 2** — runtime percentage breakdown (Map / Complete Binning /
  Sort / Reduce / GPMR Internal-Scheduler) for every app at 1, 8, and
  64 GPUs on the largest strong-scaling inputs.
* **Figure 3** — parallel efficiency (``speedup / n_gpus``) per app over
  the GPU sweep for each strong-scaling input size.  SIO is rendered as
  *speedup* like the paper's SIO panel (that is where the super-linear
  in-core bump is visible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .experiments import (
    FIGURE2_GPUS,
    GPU_COUNTS,
    dataset_for,
    strong_scaling_sizes,
)
from .report import render_series, render_table
from .runners import run_app
from ..core.stats import STAGES

__all__ = [
    "Figure2Result",
    "Figure3Result",
    "figure2",
    "figure3",
    "efficiency_curve",
]

_STAGE_LABELS = {
    "map": "Map",
    "bin": "Complete Binning",
    "sort": "Sort",
    "reduce": "Reduce",
    "scheduler": "GPMR Internal / Scheduler",
}


# ---------------------------------------------------------------------------
# Figure 2 — runtime breakdowns
# ---------------------------------------------------------------------------

@dataclass
class Figure2Result:
    #: (app, n_gpus) -> stage -> fraction
    breakdowns: Dict[Tuple[str, int], Dict[str, float]]

    def fraction(self, app: str, n_gpus: int, stage: str) -> float:
        return self.breakdowns[(app, n_gpus)][stage]

    def render(self) -> str:
        headers = ["App", "GPUs"] + [_STAGE_LABELS[s] for s in STAGES]
        rows = []
        for (app, g), frac in self.breakdowns.items():
            rows.append([app, g] + [f"{frac[s] * 100:.1f}%" for s in STAGES])
        return render_table(
            headers, rows, title="Figure 2: GPMR runtime breakdowns (largest datasets)"
        )


def figure2(
    apps: Sequence[str] = ("MM", "KMC", "LR", "SIO", "WO"),
    gpu_counts: Sequence[int] = FIGURE2_GPUS,
    quick: bool = False,
    seed: int = 0,
) -> Figure2Result:
    """Stage-fraction breakdowns on each app's largest input."""
    out: Dict[Tuple[str, int], Dict[str, float]] = {}
    for app in apps:
        size = strong_scaling_sizes(app, quick=quick)[-1]
        ds = dataset_for(app, size, seed=seed)
        for g in gpu_counts:
            run = run_app(app, ds, g)
            out[(app, g)] = run.stats.stage_fractions
    return Figure2Result(breakdowns=out)


# ---------------------------------------------------------------------------
# Figure 3 — parallel efficiency
# ---------------------------------------------------------------------------

@dataclass
class EfficiencyCurve:
    app: str
    size: int
    gpu_counts: List[int]
    elapsed: List[float]

    @property
    def speedups(self) -> List[float]:
        base = self.elapsed[0] * self.gpu_counts[0]
        return [base / t for t in self.elapsed]

    @property
    def efficiencies(self) -> List[float]:
        return [s / g for s, g in zip(self.speedups, self.gpu_counts)]

    def efficiency_at(self, n_gpus: int) -> float:
        return self.efficiencies[self.gpu_counts.index(n_gpus)]


@dataclass
class Figure3Result:
    #: app -> list of curves (one per input size)
    curves: Dict[str, List[EfficiencyCurve]]

    def curve(self, app: str, size: int) -> EfficiencyCurve:
        for c in self.curves[app]:
            if c.size == size:
                return c
        raise KeyError((app, size))

    def render(self) -> str:
        blocks = []
        for app, curves in self.curves.items():
            xs = curves[0].gpu_counts
            series = []
            for c in curves:
                label = _size_label(app, c.size)
                ys = [round(e, 3) for e in c.efficiencies]
                series.append((label, ys))
            blocks.append(
                render_series(
                    "GPUs", xs, series,
                    title=f"Figure 3 ({app}): parallel efficiency",
                )
            )
        return "\n\n".join(blocks)


def _size_label(app: str, size: int) -> str:
    if app == "MM":
        return f"{size}x{size}"
    m = size / (1 << 20)
    return f"{m:g}M elems"


def efficiency_curve(
    app: str,
    size: int,
    gpu_counts: Sequence[int] = GPU_COUNTS,
    seed: int = 0,
) -> EfficiencyCurve:
    """Strong-scaling efficiency curve for one app/input size."""
    ds = dataset_for(app, size, seed=seed)
    elapsed = [run_app(app, ds, g).elapsed for g in gpu_counts]
    return EfficiencyCurve(
        app=app, size=size, gpu_counts=list(gpu_counts), elapsed=elapsed
    )


def figure3(
    apps: Sequence[str] = ("MM", "SIO", "WO", "KMC", "LR"),
    gpu_counts: Sequence[int] = GPU_COUNTS,
    quick: bool = False,
    seed: int = 0,
) -> Figure3Result:
    """Full Figure-3 sweep: every app x input size x GPU count."""
    curves: Dict[str, List[EfficiencyCurve]] = {}
    for app in apps:
        sizes = strong_scaling_sizes(app, quick=quick)
        if app == "MM":
            sizes = tuple(s for s in sizes if s >= 2048)  # paper plots 2048+
        curves[app] = [
            efficiency_curve(app, size, gpu_counts=gpu_counts, seed=seed)
            for size in sizes
        ]
    return Figure3Result(curves=curves)

"""repro — a full reproduction of GPMR (Stuart & Owens, IPDPS 2011).

"Multi-GPU MapReduce on GPU Clusters" on a simulated GPU-cluster
substrate: a discrete-event engine (:mod:`repro.sim`), calibrated
GPU/PCI-e/network hardware models (:mod:`repro.hw`, :mod:`repro.net`),
CUDPP-style primitives (:mod:`repro.primitives`), the GPMR pipeline
itself (:mod:`repro.core`), the paper's five benchmarks
(:mod:`repro.apps`), the Phoenix and Mars baselines
(:mod:`repro.baselines`), and a harness regenerating every table and
figure (:mod:`repro.harness`).

Quickstart::

    from repro.core import GPMRRuntime
    from repro.apps import word_occurrence_job
    from repro.workloads import TextDataset

    ds = TextDataset(n_chars=1 << 20)
    job = word_occurrence_job(n_gpus=4)
    result = GPMRRuntime(n_gpus=4).run(job, ds)
    print(result.stats.describe())
"""

__version__ = "1.0.0"

from .core import GPMRRuntime, JobResult, KeyValueSet, MapReduceJob, PipelineConfig

__all__ = [
    "__version__",
    "GPMRRuntime",
    "JobResult",
    "KeyValueSet",
    "MapReduceJob",
    "PipelineConfig",
]

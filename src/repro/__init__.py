"""repro — a full reproduction of GPMR (Stuart & Owens, IPDPS 2011).

"Multi-GPU MapReduce on GPU Clusters" on a simulated GPU-cluster
substrate: a discrete-event engine (:mod:`repro.sim`), calibrated
GPU/PCI-e/network hardware models (:mod:`repro.hw`, :mod:`repro.net`),
CUDPP-style primitives (:mod:`repro.primitives`), the GPMR pipeline
itself (:mod:`repro.core`), the paper's five benchmarks
(:mod:`repro.apps`), the Phoenix and Mars baselines
(:mod:`repro.baselines`), and a harness regenerating every table and
figure (:mod:`repro.harness`).

Execution is pluggable (:mod:`repro.core.executor`): the same job runs
on the simulated cluster (``"sim"``), on real ``multiprocessing``
workers (``"local"``, :mod:`repro.exec`), or serially in-process
(``"serial"``), with bit-identical results.

Quickstart::

    from repro.core import make_executor
    from repro.apps import wo_job, wo_dataset

    ds = wo_dataset(n_chars=1 << 20)
    job = wo_job(n_gpus=4)
    result = make_executor("sim", 4).run(job, ds)      # modeled cluster
    result = make_executor("local", 4).run(job, ds)    # real processes
    print(result.stats.describe())
"""

from .core import (
    GPMRRuntime,
    JobResult,
    KeyValueSet,
    MapReduceJob,
    PipelineConfig,
    make_executor,
)
from .obs import Observability

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "GPMRRuntime",
    "JobResult",
    "KeyValueSet",
    "MapReduceJob",
    "PipelineConfig",
    "Observability",
    "make_executor",
]

"""Shared utilities: units, deterministic RNG, validation."""

from .rng import DEFAULT_SEED, child_generators, generator
from .units import GB, GIB, KB, KIB, MB, MIB, fmt_bytes, fmt_rate, fmt_time
from .validation import check_in_range, check_non_negative, check_positive, require

__all__ = [
    "DEFAULT_SEED",
    "generator",
    "child_generators",
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
    "require",
    "check_positive",
    "check_non_negative",
    "check_in_range",
]

"""Small argument-validation helpers shared across the package."""

from __future__ import annotations


__all__ = ["require", "check_positive", "check_non_negative", "check_in_range"]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str) -> float:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(value: float, lo: float, hi: float, name: str) -> float:
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value

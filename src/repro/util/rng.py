"""Deterministic random-number plumbing.

Every stochastic component in the reproduction draws from a
``numpy.random.Generator`` seeded through :func:`generator`, so any
experiment is bit-reproducible from its ``seed``.  Sub-streams are
derived with ``spawn_key``-style child seeding to keep independent
components decorrelated.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

__all__ = ["generator", "child_generators", "DEFAULT_SEED"]

DEFAULT_SEED = 0xC0FFEE


def generator(seed: Optional[int] = None, *, stream: Sequence[int] = ()) -> np.random.Generator:
    """A seeded :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Base seed; ``None`` uses :data:`DEFAULT_SEED` (never OS entropy —
        reproducibility is a design requirement here).
    stream:
        Optional sequence of integers naming a sub-stream, so two
        components sharing a base seed stay independent.
    """
    base = DEFAULT_SEED if seed is None else int(seed)
    return np.random.default_rng(np.random.SeedSequence(entropy=base, spawn_key=tuple(stream)))


def child_generators(seed: Optional[int], n: int) -> Iterator[np.random.Generator]:
    """``n`` independent generators derived from ``seed``."""
    for i in range(n):
        yield generator(seed, stream=(i,))

"""Unit helpers: byte sizes, rates, and human-readable formatting."""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "GHZ",
    "MHZ",
    "US",
    "MS",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
]

KB = 10**3
MB = 10**6
GB = 10**9
KIB = 2**10
MIB = 2**20
GIB = 2**30
GHZ = 10**9
MHZ = 10**6
US = 1e-6
MS = 1e-3


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary suffix (e.g. ``512.0 MiB``)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.1f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Render a duration with an adaptive unit (ns/us/ms/s)."""
    s = float(seconds)
    if s == 0:
        return "0 s"
    if abs(s) < 1e-6:
        return f"{s * 1e9:.1f} ns"
    if abs(s) < 1e-3:
        return f"{s * 1e6:.1f} us"
    if abs(s) < 1.0:
        return f"{s * 1e3:.2f} ms"
    return f"{s:.3f} s"


def fmt_rate(bytes_per_second: float) -> str:
    """Render a bandwidth (e.g. ``3.2 GB/s``)."""
    r = float(bytes_per_second)
    for unit in ("B/s", "KB/s", "MB/s", "GB/s"):
        if abs(r) < 1000.0 or unit == "GB/s":
            return f"{r:.1f} {unit}"
        r /= 1000.0
    raise AssertionError("unreachable")

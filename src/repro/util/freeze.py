"""Canonical freezing of configuration values into hashable keys.

The executor pool and the dataset cache key entries on "same
configuration": the kwargs of a lease, the spec of a dataset.  Keying
on ``repr(value)`` is wrong twice over — objects with default reprs
embed their *address* (``<Observability object at 0x...>``), so equal
configurations never collide and nothing pools; and numpy arrays
truncate (``[0 1 2 ... 97 98 99]``), so *distinct* large specs collide
onto one key.  :func:`freeze_value` canonicalises instead:

* scalars (None/bool/int/float/str/bytes) freeze by type and value;
* tuples/lists/sets/dicts freeze recursively (sets and dicts sorted);
* numpy arrays freeze as ``(dtype, shape, content digest)`` — full
  content, no truncation;
* dataclass instances (e.g. :class:`~repro.core.faults.FaultPlan`)
  freeze field-by-field, so two equal plans share a key;
* anything else — objects whose repr would be an address — is
  **rejected** with :class:`TypeError`, because a key that can never
  match is a silent cache-miss generator, and one that matches by
  accident is corruption.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict, Tuple

import numpy as np

__all__ = ["freeze_value", "freeze_kwargs"]

_SCALARS = (type(None), bool, int, float, complex, str, bytes)


def freeze_value(v: Any) -> Any:
    """A hashable, content-based canonical form of ``v``.

    Raises :class:`TypeError` for values with no canonical form (see
    module docstring) — callers should pass configuration by value, not
    by live object.
    """
    if isinstance(v, _SCALARS):
        return (type(v).__name__, v)
    if isinstance(v, np.generic):
        return ("npscalar", v.dtype.str, v.item())
    if isinstance(v, np.ndarray):
        arr = np.ascontiguousarray(v)
        digest = hashlib.sha256(arr.tobytes()).hexdigest()
        return ("ndarray", arr.dtype.str, arr.shape, digest)
    if isinstance(v, (tuple, list)):
        return ("seq", tuple(freeze_value(x) for x in v))
    if isinstance(v, (set, frozenset)):
        return ("set", tuple(sorted(freeze_value(x) for x in v)))
    if isinstance(v, dict):
        return (
            "map",
            tuple(sorted((str(k), freeze_value(x)) for k, x in v.items())),
        )
    if dataclasses.is_dataclass(v) and not isinstance(v, type):
        fields = {
            f.name: getattr(v, f.name) for f in dataclasses.fields(v)
        }
        return (
            "dataclass",
            f"{type(v).__module__}.{type(v).__qualname__}",
            freeze_value(fields),
        )
    raise TypeError(
        f"cannot canonicalise a {type(v).__name__} into a cache key: "
        "its repr would key on object identity (or truncate), so equal "
        "configurations would never (or wrongly) share a pool entry; "
        "pass scalars, arrays, or dataclasses instead"
    )


def freeze_kwargs(kwargs: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Freeze a kwargs/spec dict into a sorted hashable tuple."""
    return tuple(sorted((k, freeze_value(v)) for k, v in kwargs.items()))

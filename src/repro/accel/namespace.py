"""Array namespaces: the pluggable device tier under the dataflow.

A :class:`ArrayNamespace` is the small op vocabulary the GPMR per-rank
dataflow actually needs — construction, transfer, stable sort-by-key,
run-length encoding, segmented reduction, scatter-add, scan — bound to
one array library:

* ``"numpy"`` — the host tier, always available.  Every op delegates
  to the exact NumPy/:mod:`repro.primitives` implementation the seed
  pipeline uses, so a ``accel="numpy"`` run is **bit-identical** to a
  run that never heard of namespaces.  This is the parity reference.
* ``"cupy"`` — CUDA arrays via CuPy (optional import).
* ``"torch"`` — Torch tensors, CUDA when available (optional import).

The namespace is injected at the executor level
(``make_executor(..., accel="cupy")``) and travels to the workers as a
*name* inside the job's :class:`~repro.core.config.PipelineConfig`, so
cluster ranks and multiprocessing children resolve their own instance
locally — namespaces hold library handles, not state.

Device tiers make no bitwise float guarantee (GPU scatter-add order is
nondeterministic); the parity contract binds the ``"numpy"`` tier.
Torch widens unsigned key dtypes to ``int64`` on device (torch has no
``uint32``) and narrows them back on export.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from ..primitives import (
    KeyRuns,
    exclusive_scan,
    inclusive_scan,
    radix_sort_pairs,
    segmented_reduce,
    unique_segments,
)

__all__ = [
    "AccelUnavailable",
    "ArrayNamespace",
    "NumpyNamespace",
    "CupyNamespace",
    "TorchNamespace",
    "available_tiers",
    "namespace_of",
    "resolve_namespace",
    "ACCEL_TIERS",
]

#: The tier names ``resolve_namespace`` understands, in preference order.
ACCEL_TIERS = ("numpy", "cupy", "torch")


class AccelUnavailable(RuntimeError):
    """A requested acceleration tier's library is not importable here.

    Tests catch this (or probe :func:`available_tiers`) to skip device
    tiers cleanly on hosts without CuPy/Torch.
    """


class ArrayNamespace:
    """One array library bound to the op set the dataflow needs.

    Subclasses implement every op with their library's arrays;
    ``is_host`` namespaces promise their arrays *are* ``np.ndarray``
    (no transfer ever happens) and every op is bit-identical to the
    seed pipeline.
    """

    #: registry name ("numpy", "cupy", "torch")
    name: str = "abstract"
    #: True when arrays are host ndarrays and to_host is the identity
    is_host: bool = False

    # -- identity / transfer ------------------------------------------------
    def owns(self, arr: Any) -> bool:
        """Whether ``arr`` is this namespace's native array type."""
        raise NotImplementedError

    def from_host(self, arr: np.ndarray) -> Any:
        """Copy a host ndarray to this namespace's native array."""
        raise NotImplementedError

    def to_host(self, arr: Any) -> np.ndarray:
        """Copy a native array back to a host ndarray (identity on host)."""
        raise NotImplementedError

    def synchronize(self) -> None:
        """Block until queued device work is done (no-op on host).

        Span timing in the dataflow calls this before reading clocks,
        so wall-clock spans cover asynchronous device kernels instead
        of just their launch time.
        """

    # -- construction -------------------------------------------------------
    def asarray(self, x: Any, dtype: Any = None) -> Any:
        raise NotImplementedError

    def zeros(self, shape: Any, dtype: Any) -> Any:
        raise NotImplementedError

    def ones(self, shape: Any, dtype: Any) -> Any:
        raise NotImplementedError

    def arange(self, n: int, dtype: Any) -> Any:
        raise NotImplementedError

    def concatenate(self, arrays: Sequence[Any], axis: int = 0) -> Any:
        raise NotImplementedError

    def astype(self, arr: Any, dtype: Any) -> Any:
        raise NotImplementedError

    # -- compute ------------------------------------------------------------
    def add_at(self, target: Any, index: Any, values: Any) -> None:
        """In-place unbuffered scatter-add (``target[index] += values``)."""
        raise NotImplementedError

    def bincount(self, arr: Any, minlength: int) -> Any:
        raise NotImplementedError

    def argmin(self, arr: Any, axis: int) -> Any:
        raise NotImplementedError

    def matmul(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def stable_argsort(self, arr: Any) -> Any:
        raise NotImplementedError

    def cumsum(self, arr: Any) -> Any:
        raise NotImplementedError

    # -- pipeline primitives ------------------------------------------------
    def sort_pairs(self, keys: Any, values: Any, key_bits: Optional[int] = None):
        """Stable sort ``keys`` ascending, carrying ``values``."""
        raise NotImplementedError

    def unique_segments(self, sorted_keys: Any) -> KeyRuns:
        """Run-length encode a sorted key array (see primitives)."""
        raise NotImplementedError

    def segmented_reduce(self, values: Any, offsets: Any, op: str = "sum") -> Any:
        raise NotImplementedError

    def exclusive_scan(self, values: Any) -> Any:
        raise NotImplementedError

    def inclusive_scan(self, values: Any) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArrayNamespace {self.name}>"


class NumpyNamespace(ArrayNamespace):
    """The host tier: every op is the seed's exact NumPy computation."""

    name = "numpy"
    is_host = True

    def owns(self, arr: Any) -> bool:
        return isinstance(arr, np.ndarray)

    def from_host(self, arr: np.ndarray) -> np.ndarray:
        return np.asarray(arr)

    def to_host(self, arr: Any) -> np.ndarray:
        return np.asarray(arr)

    def asarray(self, x: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(x, dtype=dtype)

    def zeros(self, shape: Any, dtype: Any) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def ones(self, shape: Any, dtype: Any) -> np.ndarray:
        return np.ones(shape, dtype=dtype)

    def arange(self, n: int, dtype: Any) -> np.ndarray:
        return np.arange(n, dtype=dtype)

    def concatenate(self, arrays: Sequence[Any], axis: int = 0) -> np.ndarray:
        return np.concatenate(list(arrays), axis=axis)

    def astype(self, arr: Any, dtype: Any) -> np.ndarray:
        return np.asarray(arr).astype(dtype)

    def add_at(self, target: Any, index: Any, values: Any) -> None:
        np.add.at(target, index, values)

    def bincount(self, arr: Any, minlength: int) -> np.ndarray:
        return np.bincount(arr, minlength=minlength)

    def argmin(self, arr: Any, axis: int) -> np.ndarray:
        return arr.argmin(axis=axis)

    def matmul(self, a: Any, b: Any) -> np.ndarray:
        return a @ b

    def stable_argsort(self, arr: Any) -> np.ndarray:
        return np.argsort(arr, kind="stable")

    def cumsum(self, arr: Any) -> np.ndarray:
        return np.cumsum(arr)

    # The pipeline primitives delegate straight back to the seed's
    # implementations — this is what makes accel="numpy" the bit-parity
    # fallback rather than a reimplementation.
    def sort_pairs(self, keys: Any, values: Any, key_bits: Optional[int] = None):
        return radix_sort_pairs(keys, values, key_bits=key_bits)

    def unique_segments(self, sorted_keys: Any) -> KeyRuns:
        return unique_segments(sorted_keys)

    def segmented_reduce(self, values: Any, offsets: Any, op: str = "sum") -> Any:
        return segmented_reduce(values, offsets, op=op)

    def exclusive_scan(self, values: Any) -> Any:
        return exclusive_scan(values)

    def inclusive_scan(self, values: Any) -> Any:
        return inclusive_scan(values)


class CupyNamespace(ArrayNamespace):
    """CUDA arrays via CuPy.  Functional twins of the host ops; float
    scatter-adds are GPU-order nondeterministic (no bitwise promise)."""

    name = "cupy"
    is_host = False

    def __init__(self) -> None:
        try:
            import cupy  # noqa: PLC0415 - optional dependency probe
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise AccelUnavailable(
                "accel='cupy' requires CuPy (and a CUDA device); install "
                "cupy-cuda* or fall back to accel='numpy'"
            ) from exc
        self._cp = cupy

    def owns(self, arr: Any) -> bool:
        return isinstance(arr, self._cp.ndarray)

    def from_host(self, arr: np.ndarray) -> Any:
        return self._cp.asarray(arr)

    def to_host(self, arr: Any) -> np.ndarray:
        return self._cp.asnumpy(arr)

    def synchronize(self) -> None:
        self._cp.cuda.get_current_stream().synchronize()

    def asarray(self, x: Any, dtype: Any = None) -> Any:
        return self._cp.asarray(x, dtype=dtype)

    def zeros(self, shape: Any, dtype: Any) -> Any:
        return self._cp.zeros(shape, dtype=dtype)

    def ones(self, shape: Any, dtype: Any) -> Any:
        return self._cp.ones(shape, dtype=dtype)

    def arange(self, n: int, dtype: Any) -> Any:
        return self._cp.arange(n, dtype=dtype)

    def concatenate(self, arrays: Sequence[Any], axis: int = 0) -> Any:
        return self._cp.concatenate(list(arrays), axis=axis)

    def astype(self, arr: Any, dtype: Any) -> Any:
        return arr.astype(dtype)

    def add_at(self, target: Any, index: Any, values: Any) -> None:
        self._cp.add.at(target, index, values)

    def bincount(self, arr: Any, minlength: int) -> Any:
        return self._cp.bincount(arr, minlength=minlength)

    def argmin(self, arr: Any, axis: int) -> Any:
        return arr.argmin(axis=axis)

    def matmul(self, a: Any, b: Any) -> Any:
        return a @ b

    def stable_argsort(self, arr: Any) -> Any:
        # CuPy's argsort makes no stability promise; lexsort with the
        # element index as tiebreak forces it.
        cp = self._cp
        return cp.lexsort(cp.stack((cp.arange(len(arr)), arr)))

    def cumsum(self, arr: Any) -> Any:
        return self._cp.cumsum(arr)

    def sort_pairs(self, keys: Any, values: Any, key_bits: Optional[int] = None):
        del key_bits  # functional device sort needs no pass structure
        order = self.stable_argsort(keys)
        return keys[order], (values[order] if values is not None else None)

    def unique_segments(self, sorted_keys: Any) -> KeyRuns:
        return _device_unique_segments(self, sorted_keys)

    def segmented_reduce(self, values: Any, offsets: Any, op: str = "sum") -> Any:
        return _device_segmented_sum(self, values, offsets, op)

    def exclusive_scan(self, values: Any) -> Any:
        out = self._cp.zeros_like(values)
        if len(values):
            out[1:] = self._cp.cumsum(values[:-1])
        return out

    def inclusive_scan(self, values: Any) -> Any:
        return self._cp.cumsum(values)


class TorchNamespace(ArrayNamespace):
    """Torch tensors, on CUDA when available (CPU tensors otherwise —
    still a real second namespace for genericity tests)."""

    name = "torch"
    is_host = False

    #: torch has no wide unsigned dtypes; widen on device, narrow back
    #: to the original dtype at export.
    _WIDEN = {"uint16": "int32", "uint32": "int64", "uint64": "int64"}

    def __init__(self) -> None:
        try:
            import torch  # noqa: PLC0415 - optional dependency probe
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise AccelUnavailable(
                "accel='torch' requires PyTorch; install torch or fall "
                "back to accel='numpy'"
            ) from exc
        self._torch = torch
        self.device = "cuda" if torch.cuda.is_available() else "cpu"

    def _dtype(self, np_dtype: Any):
        name = np.dtype(np_dtype).name
        name = self._WIDEN.get(name, name)
        return getattr(self._torch, name)

    def owns(self, arr: Any) -> bool:
        return isinstance(arr, self._torch.Tensor)

    def from_host(self, arr: np.ndarray) -> Any:
        host = np.ascontiguousarray(arr)
        widened = self._WIDEN.get(host.dtype.name)
        if widened is not None:
            host = host.astype(widened)
        return self._torch.from_numpy(host).to(self.device)

    def to_host(self, arr: Any) -> np.ndarray:
        return arr.detach().cpu().numpy()

    def synchronize(self) -> None:
        if self.device == "cuda":  # pragma: no cover - needs hardware
            self._torch.cuda.synchronize()

    def asarray(self, x: Any, dtype: Any = None) -> Any:
        if self.owns(x):
            return x if dtype is None else x.to(self._dtype(dtype))
        return self.from_host(np.asarray(x, dtype=dtype))

    def zeros(self, shape: Any, dtype: Any) -> Any:
        return self._torch.zeros(shape, dtype=self._dtype(dtype), device=self.device)

    def ones(self, shape: Any, dtype: Any) -> Any:
        return self._torch.ones(shape, dtype=self._dtype(dtype), device=self.device)

    def arange(self, n: int, dtype: Any) -> Any:
        return self._torch.arange(n, dtype=self._dtype(dtype), device=self.device)

    def concatenate(self, arrays: Sequence[Any], axis: int = 0) -> Any:
        return self._torch.cat(list(arrays), dim=axis)

    def astype(self, arr: Any, dtype: Any) -> Any:
        return arr.to(self._dtype(dtype))

    def add_at(self, target: Any, index: Any, values: Any) -> None:
        if not self.owns(values):
            values = self.asarray(values, dtype=None)
        target.index_add_(0, index.to(self._torch.int64), values.to(target.dtype))

    def bincount(self, arr: Any, minlength: int) -> Any:
        return self._torch.bincount(arr, minlength=minlength)

    def argmin(self, arr: Any, axis: int) -> Any:
        return arr.argmin(dim=axis)

    def matmul(self, a: Any, b: Any) -> Any:
        return a @ b

    def stable_argsort(self, arr: Any) -> Any:
        return self._torch.argsort(arr, stable=True)

    def cumsum(self, arr: Any) -> Any:
        return self._torch.cumsum(arr, dim=0)

    def sort_pairs(self, keys: Any, values: Any, key_bits: Optional[int] = None):
        del key_bits
        order = self.stable_argsort(keys)
        return keys[order], (values[order] if values is not None else None)

    def unique_segments(self, sorted_keys: Any) -> KeyRuns:
        return _device_unique_segments(self, sorted_keys)

    def segmented_reduce(self, values: Any, offsets: Any, op: str = "sum") -> Any:
        return _device_segmented_sum(self, values, offsets, op)

    def exclusive_scan(self, values: Any) -> Any:
        out = self._torch.zeros_like(values)
        if len(values):
            out[1:] = self._torch.cumsum(values[:-1], dim=0)
        return out

    def inclusive_scan(self, values: Any) -> Any:
        return self._torch.cumsum(values, dim=0)


# ---------------------------------------------------------------------------
# Shared device formulations (CuPy and Torch express these identically
# through the namespace op vocabulary)
# ---------------------------------------------------------------------------

def _device_unique_segments(ns: ArrayNamespace, sorted_keys: Any) -> KeyRuns:
    """Head-flags + nonzero + diff, entirely in namespace ops."""
    n = len(sorted_keys)
    if n == 0:
        empty = ns.arange(0, dtype=np.int64)
        return KeyRuns(sorted_keys, empty, empty)
    heads = ns.ones(n, dtype=np.int64)
    heads[1:] = (sorted_keys[1:] != sorted_keys[:-1]).to(heads.dtype) if hasattr(
        heads, "to"
    ) else (sorted_keys[1:] != sorted_keys[:-1]).astype(heads.dtype)
    offsets = ns.astype(heads.nonzero()[0] if not hasattr(heads, "to")
                        else heads.nonzero().reshape(-1), np.int64)
    ends = ns.concatenate([offsets[1:], ns.asarray([n], dtype=np.int64)])
    counts = ends - offsets
    return KeyRuns(sorted_keys[offsets], offsets, counts)


def _device_segmented_sum(ns: ArrayNamespace, values: Any, offsets: Any, op: str):
    """Segment-id scatter-add; empty segments reduce to 0."""
    if op != "sum":
        raise ValueError(f"device segmented reduce supports op='sum', got {op!r}")
    n = len(values)
    n_seg = len(offsets)
    if n_seg == 0:
        return values[:0]
    ids = ns.zeros(max(n, 1), dtype=np.int64)
    if n_seg > 1:
        ns.add_at(ids, offsets[1:], ns.ones(n_seg - 1, dtype=np.int64))
    ids = ns.cumsum(ids)
    out = ns.zeros(n_seg, dtype=values.dtype if isinstance(values, np.ndarray)
                   else np.int64)
    if not isinstance(values, np.ndarray):
        out = ns.zeros(n_seg, dtype=np.int64)
        out = out.to(values.dtype) if hasattr(out, "to") else out.astype(values.dtype)
    if n:
        ns.add_at(out, ids[:n], values)
    return out


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------

_NAMESPACES = {}


def resolve_namespace(name: Optional[str] = "numpy") -> ArrayNamespace:
    """The namespace registered as ``name`` (cached singletons).

    Raises :class:`AccelUnavailable` when the tier's library is not
    importable, and ``ValueError`` for names outside
    :data:`ACCEL_TIERS`.
    """
    if isinstance(name, ArrayNamespace):
        return name
    key = (name or "numpy").lower()
    ns = _NAMESPACES.get(key)
    if ns is not None:
        return ns
    if key == "numpy":
        ns = NumpyNamespace()
    elif key == "cupy":
        ns = CupyNamespace()
    elif key == "torch":
        ns = TorchNamespace()
    else:
        raise ValueError(
            f"unknown acceleration tier {name!r}; expected one of {ACCEL_TIERS}"
        )
    _NAMESPACES[key] = ns
    return ns


def available_tiers() -> tuple:
    """The tiers whose libraries import on this host (numpy always)."""
    tiers = []
    for name in ACCEL_TIERS:
        try:
            resolve_namespace(name)
        except AccelUnavailable:
            continue
        tiers.append(name)
    return tuple(tiers)


def namespace_of(arr: Any) -> Optional[ArrayNamespace]:
    """The namespace owning ``arr``, judged by its array type's module.

    Returns None for objects no tier owns.  Used by the primitives to
    dispatch foreign (device) arrays to their library without the
    callers naming a namespace.
    """
    mod = type(arr).__module__
    root = mod.split(".", 1)[0]
    if root == "numpy":
        return resolve_namespace("numpy")
    if root in ("cupy", "torch"):
        try:
            return resolve_namespace(root)
        except AccelUnavailable:  # pragma: no cover - foreign array, no lib
            return None
    return None

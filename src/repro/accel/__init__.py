"""Acceleration tier: pluggable array namespaces + fused kernels.

``repro.accel`` hosts the :class:`ArrayNamespace` abstraction (NumPy /
CuPy / Torch array libraries behind one op vocabulary) and the
:class:`FusedMapper` protocol for single-call map+partial-reduce
kernels.  ``accel="numpy"`` is always available and bit-identical to
the seed pipeline; CuPy/Torch resolve only when importable.
"""

from .fused import FusedMapper
from .namespace import (
    ACCEL_TIERS,
    AccelUnavailable,
    ArrayNamespace,
    CupyNamespace,
    NumpyNamespace,
    TorchNamespace,
    available_tiers,
    namespace_of,
    resolve_namespace,
)

__all__ = [
    "ACCEL_TIERS",
    "AccelUnavailable",
    "ArrayNamespace",
    "CupyNamespace",
    "FusedMapper",
    "NumpyNamespace",
    "TorchNamespace",
    "available_tiers",
    "namespace_of",
    "resolve_namespace",
]

"""The fused map + partial-reduce protocol.

GPMR's speed case is that map and partial reduce are *one* kernel per
chunk: each device walks its chunk once, folds pairs into a small
per-rank state (or a combined per-chunk emission) on the spot, and
only the reduced result ever crosses the device→host boundary.  The
seed pipeline expresses the same semantics as three separate stages
(``map_chunk`` → accumulate/partial-reduce → partition), each of which
materialises a full :class:`~repro.core.kvset.KeyValueSet`.

A :class:`FusedMapper` collapses those stages into one namespace-level
call per chunk.  Attaching one to a job (``MapReduceJob(fused=...)``)
is purely additive: the unfused stages stay on the job and remain the
bit-parity reference; executors run the fused path only when asked
(``fused=True`` / ``PipelineConfig.fused``).

Contract (enforced by the accel-parity tests): on the ``"numpy"``
namespace a fused run's per-rank outputs are **bit-identical** to the
unfused run of the same job — same key/value dtypes, same bytes.  The
easiest way to honour that is for the fused kernel to share its
per-chunk arithmetic with the app's unfused mapper (see
``apps/kmeans._chunk_table`` for the pattern) rather than re-deriving
it.

This module deliberately imports nothing from :mod:`repro.core` at
runtime — core.job imports *us*, and the namespace layer sits below
both.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.chunk import Chunk
    from ..core.kvset import KeyValueSet
    from .namespace import ArrayNamespace

__all__ = ["FusedMapper"]


class FusedMapper:
    """One call per chunk covering map + partial reduce (+ combine).

    A fused kernel threads an opaque per-rank ``state`` (device-resident
    running totals, or ``None`` for stateless apps) through every chunk
    the rank maps, and may emit a per-chunk
    :class:`~repro.core.kvset.KeyValueSet` (already partially reduced)
    for jobs whose results can't fold into bounded state.  Emissions may
    hold namespace-native (device) arrays; the runner exports them to
    host exactly once, when the map phase posts its parts.
    """

    def initial_state(self, ns: "ArrayNamespace") -> Any:
        """Per-rank state before the first chunk (None for stateless)."""
        return None

    def map_reduce_chunk(
        self, chunk: "Chunk", state: Any, ns: "ArrayNamespace"
    ) -> Tuple[Any, Optional["KeyValueSet"]]:
        """Fold one chunk: return ``(new_state, emission_or_None)``."""
        raise NotImplementedError

    def finish_state(
        self, state: Any, ns: "ArrayNamespace"
    ) -> Optional["KeyValueSet"]:
        """Flush the per-rank state after the last chunk.

        Called exactly once per rank, *including* ranks that mapped
        zero chunks (``state`` is then the ``initial_state`` result) —
        mirroring the accumulator contract so every rank contributes
        its identity element to the reduce phase.  Return None for
        stateless kernels whose work is all in per-chunk emissions.
        """
        return None

"""In-process real execution: the same dataflow, one rank at a time.

``SerialExecutor`` runs the identical functional semantics as the
``multiprocessing`` backend with zero IPC — useful for debugging app
kernels, for environments where spawning processes is off-limits, and
as a fast third witness in the backend-parity tests.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from .dataflow import map_worker, merge_incoming, reduce_worker
from ..core.chunk import Chunk
from ..core.executor import Executor, register_backend
from ..core.job import MapReduceJob
from ..core.kvset import KeyValueSet
from ..core.runtime import JobResult, resolve_chunks, resolve_placement
from ..core.scheduler import ScheduleTrace
from ..core.stats import JobStats, WorkerStats
from ..workloads.base import Dataset

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    """Run every rank's dataflow sequentially in the current process."""

    name = "serial"

    def __init__(
        self, n_workers: int, initial_distribution: str = "round_robin"
    ) -> None:
        super().__init__(n_workers)
        self.initial_distribution = initial_distribution

    def run(
        self,
        job: MapReduceJob,
        dataset: Optional[Dataset] = None,
        chunks: Optional[Sequence[Chunk]] = None,
        schedule: Optional[ScheduleTrace] = None,
    ) -> JobResult:
        all_chunks = resolve_chunks(dataset, chunks)
        per_worker, stolen = resolve_placement(
            all_chunks, self.n_workers, self.initial_distribution, schedule
        )

        t_start = time.perf_counter()
        stats: List[WorkerStats] = []
        mapped = []
        for rank in range(self.n_workers):
            w = WorkerStats(rank=rank)
            t0 = time.perf_counter()
            out = map_worker(job, per_worker[rank], self.n_workers)
            w.add("map", time.perf_counter() - t0)
            w.chunks_mapped = out.chunks_mapped
            w.chunks_stolen = stolen[rank]
            w.pairs_emitted_logical = out.pairs_emitted_logical
            w.bytes_sent_network = out.bytes_remote(rank)
            w.bytes_kept_local = out.bytes_self(rank)
            mapped.append(out)
            stats.append(w)

        outputs: List[Optional[KeyValueSet]] = []
        for rank in range(self.n_workers):
            batches = [
                (src, mapped[src].batch_for(rank)) for src in range(self.n_workers)
            ]
            outputs.append(
                reduce_worker(job, merge_incoming(batches), stats=stats[rank])
            )

        return JobResult(
            stats=JobStats(
                job_name=job.name,
                n_gpus=self.n_workers,
                elapsed=time.perf_counter() - t_start,
                workers=stats,
            ),
            outputs=outputs,
            schedule=schedule,
        )


register_backend(SerialExecutor.name, SerialExecutor)

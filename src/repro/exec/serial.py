"""In-process real execution: the same dataflow, one rank at a time.

``SerialExecutor`` runs the identical functional semantics as the
``multiprocessing`` backend with zero IPC — useful for debugging app
kernels, for environments where spawning processes is off-limits, and
as a fast third witness in the backend-parity tests.

Chunk distribution is pull-based like every other backend: ranks take
turns requesting one chunk at a time from the shared driver-side
:class:`~repro.core.scheduler.ChunkService` (the serial analogue of
concurrent workers pulling at matching rates), so a serial run with
stealing enabled *generates* a deterministic load-balanced
:class:`~repro.core.scheduler.ScheduleTrace` instead of only replaying
one.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from .dataflow import MapRunner, merge_incoming, reduce_worker
from .local import WorkerFailure
from ..core.chunk import Chunk
from ..core.executor import Executor, register_backend
from ..core.faults import FaultPlan
from ..core.job import MapReduceJob
from ..core.kvset import KeyValueSet
from ..core.runtime import JobResult, resolve_chunks
from ..core.scheduler import ScheduleTrace
from ..core.stats import JobStats, WorkerStats
from ..obs import NULL_OBS, Observability
from ..workloads.base import Dataset

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    """Run every rank's dataflow sequentially in the current process."""

    name = "serial"

    def __init__(
        self,
        n_workers: int,
        initial_distribution: str = "round_robin",
        fault_plan: Optional[FaultPlan] = None,
        obs: Optional[Observability] = None,
        trace_path: Optional[str] = None,
        accel: Optional[str] = None,
        fused: Optional[bool] = None,
    ) -> None:
        super().__init__(
            n_workers, obs=obs, trace_path=trace_path, accel=accel, fused=fused
        )
        self.initial_distribution = initial_distribution
        #: kill injection mirrors the process backends in-process: at
        #: its scripted grant ordinal a rank's un-posted map state is
        #: discarded and its chunks reclaimed, exactly what SIGKILL
        #: plus respawn does for real.  ``stall_seconds`` is ignored
        #: (serial ranks take turns; there is no concurrent schedule to
        #: skew) and ``speculate_after`` is rejected — with one rank
        #: running at a time no grant can age while others idle.
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.validate_for(n_workers)
            if fault_plan.speculate_after is not None:
                raise ValueError(
                    "speculate_after is meaningless on the serial backend: "
                    "ranks run one at a time, so no in-flight grant can "
                    "straggle behind idle workers"
                )

    def run(
        self,
        job: MapReduceJob,
        dataset: Optional[Dataset] = None,
        chunks: Optional[Sequence[Chunk]] = None,
        schedule: Optional[ScheduleTrace] = None,
    ) -> JobResult:
        self._check_open()
        job = self._configure_job(job)
        all_chunks = resolve_chunks(dataset, chunks)
        fault = self.fault_plan
        if fault is not None and schedule is not None:
            raise ValueError(
                "fault_plan and schedule replay are mutually exclusive: a "
                "recorded trace already fixes every grant, so there is "
                "nothing to reclaim or speculate"
            )
        run_obs = self._begin_obs()
        obs = run_obs if run_obs is not None else NULL_OBS
        service = self._make_chunk_service(
            all_chunks, job, schedule=schedule, obs=run_obs
        )
        grant_latency = obs.metrics.histogram("grant_latency_s")

        t_start = time.perf_counter()
        stats = [WorkerStats(rank=r) for r in range(self.n_workers)]
        runners = [MapRunner(job, self.n_workers) for _ in range(self.n_workers)]
        grants_received = [0] * self.n_workers
        respawns_left = [
            0 if fault is None else fault.max_respawns
            for _ in range(self.n_workers)
        ]
        killed = [False] * self.n_workers

        # Interleaved pull: every active rank requests one chunk per
        # round, in rank order.  This models equal-speed workers, keeps
        # the generated schedule deterministic, and still exercises real
        # stealing — a rank whose queue is empty robs the longest one.
        active = set(range(self.n_workers))
        while active:
            for rank in range(self.n_workers):
                if rank not in active:
                    continue
                t_req = time.perf_counter()
                assignment = service.request(rank)
                grant_latency.observe(time.perf_counter() - t_req)
                if assignment is None:
                    active.discard(rank)
                    service.mark_posted(rank)
                    continue
                grants_received[rank] += 1
                kill_at = None if fault is None else fault.kill_for(rank)
                if (
                    kill_at is not None
                    and not killed[rank]
                    and grants_received[rank] >= kill_at
                ):
                    # The scripted death: this grant is never mapped,
                    # and everything the rank mapped-but-not-posted
                    # dies with it.
                    killed[rank] = True
                    if respawns_left[rank] <= 0 or not service.can_recover(rank):
                        raise WorkerFailure(
                            rank,
                            f"rank {rank} killed at grant {kill_at} with no "
                            "respawn budget left",
                        )
                    respawns_left[rank] -= 1
                    service.reclaim(rank)
                    runners[rank] = MapRunner(job, self.n_workers)
                    stats[rank] = WorkerStats(rank=rank)
                    continue
                w0 = time.time()
                t0 = time.perf_counter()
                runners[rank].feed(assignment.chunk)
                # A streamed chunk's payload is done with once mapped;
                # dropping it keeps the whole-run footprint bounded by
                # one in-flight chunk, not the logical dataset.
                assignment.chunk.release()
                t1 = time.perf_counter()
                stats[rank].add("map", t1 - t0)
                # Spans are anchored at wall-clock (the tracer's
                # timebase) but sized by the monotonic duration.
                obs.tracer.add_span(
                    "chunk_map", w0, w0 + (t1 - t0), rank=rank,
                    chunk=assignment.chunk.index,
                )
                if assignment.stolen_by(rank):
                    stats[rank].chunks_stolen += 1

        mapped = []
        for rank in range(self.n_workers):
            w0 = time.time()
            t0 = time.perf_counter()
            out = runners[rank].finish()
            t1 = time.perf_counter()
            stats[rank].add("map", t1 - t0)
            obs.tracer.add_span("map_finish", w0, w0 + (t1 - t0), rank=rank)
            stats[rank].chunks_mapped = out.chunks_mapped
            stats[rank].pairs_emitted_logical = out.pairs_emitted_logical
            stats[rank].bytes_sent_network = out.bytes_remote(rank)
            stats[rank].bytes_kept_local = out.bytes_self(rank)
            mapped.append(out)

        outputs: List[Optional[KeyValueSet]] = []
        for rank in range(self.n_workers):
            batches = [
                (src, mapped[src].batch_for(rank)) for src in range(self.n_workers)
            ]
            outputs.append(
                reduce_worker(
                    job, merge_incoming(batches), stats=stats[rank], obs=run_obs
                )
            )

        service.validate_ledgers(stats)
        service.record_outcomes()
        job_stats = JobStats(
            job_name=job.name,
            n_gpus=self.n_workers,
            elapsed=time.perf_counter() - t_start,
            workers=stats,
            chunks_reclaimed=service.chunks_reclaimed,
            speculative_wins=service.speculative_wins,
            retries_by_worker=list(service.retries_by_worker),
            clock="wall",
        )
        self._finish_obs(run_obs, job_stats)
        return JobResult(
            stats=job_stats,
            outputs=outputs,
            schedule=schedule if schedule is not None else service.trace,
            obs=run_obs,
        )


register_backend(SerialExecutor.name, SerialExecutor)

"""The functional GPMR dataflow, independent of any execution backend.

These are the *real* (NumPy-vectorized) map/combine/partition/sort/
reduce semantics a worker rank executes — the same Figure-1 work flow
the sim pipeline prices, minus the cost model.  Both the
``multiprocessing`` backend (:mod:`repro.exec.local`) and the in-process
backend (:mod:`repro.exec.serial`) run exactly this code, and the sim
backend's functional half follows the same rules, so all backends
produce bit-identical per-rank outputs.

Canonical semantics (the parity contract):

* a worker maps its assigned chunks in assignment order;
* Partial Reduce applies per chunk; Accumulate folds every chunk into a
  resident state emitted once, after the last map (a worker with *no*
  chunks still emits the accumulator's initial state, as the sim
  pipeline does); Combine buffers raw pairs and merges them once after
  all maps;
* Partition routes through
  :meth:`~repro.core.job.MapReduceJob.partition_parts` (no partitioner
  means everything goes to rank 0);
* each reducer rank concatenates its incoming parts in **source-major,
  emission-order** order, then sorts with the job's sorter and reduces
  per key segment.

The map phase runs on a pluggable :class:`~repro.accel.ArrayNamespace`
(``accel="numpy" | "cupy" | "torch"``; numpy is the bit-parity
reference) and, when the job carries a
:class:`~repro.accel.FusedMapper` and ``fused=True`` is requested,
collapses map + partial reduce (+ partition) into one namespace-level
call per chunk.  Device-resident shuffle parts cross to host exactly
once, when :meth:`MapRunner.finish` posts them; the crossing is counted
in :attr:`MapPhaseOutput.bytes_device_to_host`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..accel.namespace import resolve_namespace
from ..core.chunk import Chunk
from ..core.job import MapReduceJob
from ..core.kvset import KeyValueSet
from ..core.stats import WorkerStats
from ..primitives import unique_segments

__all__ = [
    "MapPhaseOutput",
    "MapRunner",
    "map_worker",
    "merge_incoming",
    "reduce_worker",
]


@dataclass
class MapPhaseOutput:
    """One worker's map-phase product: per-destination emission lists."""

    #: ``parts[dest]`` = this worker's parts for rank ``dest``, in
    #: emission order; empty parts are dropped at emission time.
    parts: List[List[KeyValueSet]]
    chunks_mapped: int = 0
    pairs_emitted_logical: int = 0
    #: logical bytes handed to the exchange (the sim's bin accounting)
    bytes_binned: int = 0
    #: per-destination share of ``bytes_binned``, same indexing as
    #: ``parts`` — lets workers split self-kept vs. network-sent bytes
    bytes_binned_by_dest: List[int] = field(default_factory=list)
    #: ``part_chunk_ids[dest][i]`` = id of the chunk that produced
    #: ``parts[dest][i]``, or -1 for finish-time (accumulate/combine)
    #: emissions — the provenance tag speculative-duplicate dedup keys
    #: on at the receivers
    part_chunk_ids: List[List[int]] = field(default_factory=list)
    #: physical bytes exported device→host at post time (0 on the
    #: numpy tier, where parts are born on host)
    bytes_device_to_host: int = 0

    def batch_for(self, dest: int) -> List[KeyValueSet]:
        return self.parts[dest]

    def chunk_ids_for(self, dest: int) -> List[int]:
        return self.part_chunk_ids[dest]

    def bytes_self(self, rank: int) -> int:
        """Logical bytes binned to this worker's own rank (never leave
        the process — the sim charges them to loopback, not the wire)."""
        return self.bytes_binned_by_dest[rank]

    def bytes_remote(self, rank: int) -> int:
        """Logical bytes binned to *other* ranks — what actually rides
        the exchange fabric, and what network accounting must report."""
        return self.bytes_binned - self.bytes_binned_by_dest[rank]


def _emit(
    job: MapReduceJob,
    kv: KeyValueSet,
    out: MapPhaseOutput,
    n_workers: int,
    chunk_id: int = -1,
) -> None:
    """Partition one emission and append the non-empty parts.

    ``chunk_id`` tags each appended part with the chunk it came from
    (-1 for finish-time emissions that aggregate many chunks).
    """
    if len(kv) == 0:
        return
    if n_workers == 1 or job.partitioner is None:
        # Fast path: every pair routes to rank 0 (either it is the only
        # rank, or partitioner-less jobs send everything to a single
        # reducer) — append the emission whole instead of paying the
        # partition scan and per-dest loop.  Bit-identical to the slow
        # path: it appends the same pairs in the same order.
        out.parts[0].append(kv)
        out.part_chunk_ids[0].append(chunk_id)
        out.bytes_binned += kv.nbytes_logical
        out.bytes_binned_by_dest[0] += kv.nbytes_logical
        return
    for dest, part in enumerate(job.partition_parts(kv, n_workers)):
        if len(part):
            out.parts[dest].append(part)
            out.part_chunk_ids[dest].append(chunk_id)
            out.bytes_binned += part.nbytes_logical
            out.bytes_binned_by_dest[dest] += part.nbytes_logical


class MapRunner:
    """One rank's map phase, fed one chunk at a time.

    The pull model's worker-side half: a worker requests a chunk from
    the driver's :class:`~repro.core.scheduler.ChunkService`, feeds it
    here, and repeats until the service says it is done; :meth:`finish`
    then flushes the deferred accumulate/combine paths.  Feeding the
    same chunk sequence always produces the same
    :class:`MapPhaseOutput` as the one-shot :func:`map_worker`, which
    is just this class over a precomputed list — that equivalence is
    what lets a recorded pull schedule replay bit-for-bit on any
    backend.
    """

    def __init__(
        self,
        job: MapReduceJob,
        n_workers: int,
        accel: Optional[str] = None,
        fused: Optional[bool] = None,
    ) -> None:
        self.job = job
        self.n_workers = n_workers
        #: resolved array namespace; defaults come from the job config
        #: (which travels in the job pickle to remote ranks)
        self.ns = resolve_namespace(
            job.config.accel if accel is None else accel
        )
        fused_flag = job.config.fused if fused is None else bool(fused)
        self._use_fused = fused_flag and job.fused is not None
        self.out = MapPhaseOutput(
            parts=[[] for _ in range(n_workers)],
            bytes_binned_by_dest=[0] * n_workers,
            part_chunk_ids=[[] for _ in range(n_workers)],
        )
        self._accum_state: Optional[KeyValueSet] = None
        self._combine_buffer: List[KeyValueSet] = []
        self._fused_state = (
            job.fused.initial_state(self.ns) if self._use_fused else None
        )
        self._finished = False

    def feed(self, chunk: Chunk) -> None:
        """Map one granted chunk (in grant order)."""
        if self._finished:
            raise RuntimeError("feed() after finish()")
        job = self.job
        if self._use_fused:
            # One namespace-level call covers map + partial reduce;
            # the synchronize fences queued device kernels so callers'
            # span timing covers the work, not just its launch.
            self._fused_state, emission = job.fused.map_reduce_chunk(
                chunk, self._fused_state, self.ns
            )
            self.out.chunks_mapped += 1
            if emission is not None and len(emission):
                self.out.pairs_emitted_logical += emission.logical_pairs
                _emit(job, emission, self.out, self.n_workers,
                      chunk_id=chunk.index)
            self.ns.synchronize()
            return
        kv = job.mapper.map_chunk(chunk)
        self.out.chunks_mapped += 1
        self.out.pairs_emitted_logical += kv.logical_pairs

        if job.accumulator is not None:
            if self._accum_state is None:
                self._accum_state = job.accumulator.initial_state(kv.scale)
            self._accum_state = job.accumulator.accumulate(self._accum_state, kv)
            return

        if job.partial_reducer is not None:
            kv = job.partial_reducer.partial_reduce(kv)

        if job.combiner is not None:
            if len(kv):
                self._combine_buffer.append(kv)
            return

        _emit(job, kv, self.out, self.n_workers, chunk_id=chunk.index)

    def finish(self) -> MapPhaseOutput:
        """Flush the accumulate/combine paths; returns the map output.

        A worker that mapped *no* chunks still emits the accumulator's
        initial state, as the sim pipeline does.
        """
        if self._finished:
            return self.out
        self._finished = True
        job = self.job
        if self._use_fused:
            # Flush runs for every rank — zero-chunk ranks included —
            # mirroring the accumulator's initial-state contract.
            emission = job.fused.finish_state(self._fused_state, self.ns)
            if emission is not None and len(emission):
                self.out.pairs_emitted_logical += emission.logical_pairs
                _emit(job, emission, self.out, self.n_workers)
        elif job.accumulator is not None:
            state = (
                self._accum_state
                if self._accum_state is not None
                else job.accumulator.initial_state(1.0)
            )
            _emit(job, state, self.out, self.n_workers)
        if job.combiner is not None and self._combine_buffer:
            merged = KeyValueSet.concat(self._combine_buffer)
            _emit(job, job.combiner.combine(merged), self.out, self.n_workers)
            self._combine_buffer = []
        self._export_parts_to_host()
        self.ns.synchronize()
        return self.out

    def _export_parts_to_host(self) -> None:
        """The single device→host crossing: convert every posted part.

        On the numpy tier this is a no-op scan (parts are born host);
        on device tiers each part is copied out exactly once and the
        physical bytes are tallied in ``bytes_device_to_host``.
        """
        for dest_parts in self.out.parts:
            for i, part in enumerate(dest_parts):
                if not part.is_host:
                    host = part.to_host(self.ns)
                    self.out.bytes_device_to_host += host.nbytes_actual
                    dest_parts[i] = host


def map_worker(
    job: MapReduceJob, chunks: Sequence[Chunk], n_workers: int
) -> MapPhaseOutput:
    """Run one rank's full map phase over a precomputed chunk list."""
    runner = MapRunner(job, n_workers)
    for chunk in chunks:
        runner.feed(chunk)
    return runner.finish()


def merge_incoming(batches: Sequence[Tuple]) -> List[KeyValueSet]:
    """Order received batches canonically: by source rank, then emission.

    ``batches`` holds one entry per source, in arbitrary arrival order:
    ``(source_rank, parts)``, or ``(source_rank, parts, chunk_ids)``
    with one provenance tag per part (the chunk that produced it, -1
    for finish-time emissions).  When tags are present, duplicate map
    output from speculative re-execution is dropped here: the *first*
    part per tagged chunk in canonical order is kept — deterministic,
    and bit-identical to any other choice because duplicate copies of a
    chunk's map output are themselves bit-identical.
    """
    ordered = sorted(batches, key=lambda item: item[0])
    merged: List[KeyValueSet] = []
    seen_chunks: set = set()
    for entry in ordered:
        src, parts = entry[0], entry[1]
        chunk_ids = entry[2] if len(entry) > 2 and entry[2] is not None else None
        if chunk_ids is None:
            merged.extend(parts)
            continue
        for part, cid in zip(parts, chunk_ids):
            if cid >= 0:
                if cid in seen_chunks:
                    continue
                seen_chunks.add(cid)
            merged.append(part)
    return merged


def reduce_worker(
    job: MapReduceJob,
    incoming: Sequence[KeyValueSet],
    stats: Optional[WorkerStats] = None,
    obs=None,
) -> Optional[KeyValueSet]:
    """Run one rank's sort + reduce over its (canonically ordered) input.

    Mirrors the sim pipeline exactly: ``skip_sort_reduce`` jobs return
    the concatenated shuffle output; an empty inbox returns ``None``; a
    job without a reducer returns the sorted pair set.

    With ``stats``, measured wall-clock lands in the same ``sort`` /
    ``reduce`` Figure-2 buckets the sim charges modeled time to; with
    ``obs``, the same intervals are recorded as ``sort`` / ``reduce``
    spans attributed to ``stats.rank``.
    """
    tracer = obs.tracer if obs is not None else None
    rank = stats.rank if stats is not None else None
    nonempty = [kv for kv in incoming if len(kv)]
    if not nonempty:
        return None
    if job.config.skip_sort_reduce:
        return KeyValueSet.concat(nonempty)

    # One monotonic clock for the whole run, rebased to the tracer's
    # wall-clock timebase exactly once: every span edge is
    # ``rebase + perf_counter()``, so the sort span's end and the reduce
    # span's start are the *same* reading instead of a wall-clock anchor
    # mixed with monotonic durations.
    rebase = time.time() - time.perf_counter()
    t0 = time.perf_counter()
    kv_all = KeyValueSet.concat(nonempty)
    sorted_kv = job.sorter.sort(kv_all)
    runs = unique_segments(sorted_kv.keys)
    t1 = time.perf_counter()
    if stats is not None:
        stats.add("sort", t1 - t0)
    if tracer is not None:
        tracer.add_span("sort", rebase + t0, rebase + t1, rank=rank)
    if runs.n_keys == 0 or job.reducer is None:
        return sorted_kv
    output = job.reducer.reduce_segments(
        runs.unique_keys,
        sorted_kv.values,
        runs.offsets,
        runs.counts,
        sorted_kv.scale,
    )
    t2 = time.perf_counter()
    if stats is not None:
        stats.add("reduce", t2 - t1)
    if tracer is not None:
        tracer.add_span("reduce", rebase + t1, rebase + t2, rank=rank)
    return output

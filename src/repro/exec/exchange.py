"""Zero-copy batch transport for the local backend's shuffle.

The ``multiprocessing`` queues used to carry whole pickled
``KeyValueSet`` lists; every shuffle byte was serialised, copied into a
pipe, and deserialised on the far side.  This module replaces that with
the binary KVSet codec (:mod:`repro.core.kvset`): the queue message is
now just a tiny routing tuple — a transport tag, a batch manifest, and
either the raw bytes inline (small batches) or the *name* of a
``multiprocessing.shared_memory`` segment holding them (large batches).
Receivers map the arrays in place; the reduce path's concatenation is
the single copy the data ever takes on the receiving side.

Queue message shapes (the first element is the transport tag):

``("pickle", parts)``
    Legacy pickled list of KVSets — kept as an explicit baseline
    (``LocalExecutor(exchange="pickle")``) so the shared-memory win
    stays measurable in ``bench_backend_scaling``.
``("inline", manifest, data)``
    Binary codec, payload bytes riding inside the message.  Used for
    batches under :data:`SHM_MIN_BYTES` (a segment per tiny batch costs
    more in syscalls than it saves in copies) and as the fallback when
    segment creation fails.
``("shm", name, nbytes, manifest)``
    Binary codec, payload in a named shared-memory segment.

Segment lifecycle — explicit, no leaks on failure paths:

* the **sender** creates the segment, fills it, closes its own mapping
  and posts the name; if the post itself fails it unlinks immediately
  (:func:`release_message`);
* the **receiver** attaches, builds zero-copy views
  (:func:`decode_batch` returns the segment handle), and after the
  reduce has copied the data out it closes + unlinks
  (:func:`release_segment`);
* the **driver** drains every shuffle queue after a failed run and
  unlinks any segments whose messages were never consumed
  (:func:`release_message` again).

All processes report to one ``multiprocessing`` resource tracker, which
is the backstop of last resort for hard-killed runs.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Any, List, Optional, Sequence, Tuple

from ..core.kvset import KeyValueSet, pack_parts, unpack_parts

__all__ = [
    "SHM_MIN_BYTES",
    "EXCHANGE_TRANSPORTS",
    "encode_batch",
    "decode_batch",
    "ensure_shared_tracker",
    "release_segment",
    "release_message",
]


_tracker_fork_hooks_installed = False


def _install_tracker_fork_hooks(tracker: Any) -> None:
    """Make forking safe against the tracker's process-local RLock.

    The tracker guards its state with a ``threading.RLock`` that every
    ``register``/``unregister``/``Process.start`` acquires briefly.  A
    multi-threaded driver (the job-service daemon runs concurrent jobs)
    can fork a rank at the exact moment another thread holds that lock;
    the child then inherits it in the locked state forever, and its
    first shm registration deadlocks inside ``ensure_running``.  The
    standard remedy (what ``logging`` does for its own locks): hold the
    lock across the fork in the parent, and hand the child a fresh one.
    """
    global _tracker_fork_hooks_installed
    if _tracker_fork_hooks_installed:
        return
    import os
    import threading

    if not hasattr(os, "register_at_fork"):  # pragma: no cover
        return  # no fork on this platform, nothing to guard
    if not isinstance(
        getattr(tracker, "_lock", None), type(threading.RLock())
    ):  # pragma: no cover
        return  # tracker internals changed; skip rather than guess

    def _reset_in_child() -> None:
        tracker._lock = threading.RLock()

    os.register_at_fork(
        before=lambda: tracker._lock.acquire(),
        after_in_parent=lambda: tracker._lock.release(),
        after_in_child=_reset_in_child,
    )
    _tracker_fork_hooks_installed = True


def ensure_shared_tracker() -> None:
    """Start the ``multiprocessing`` resource tracker in *this* process.

    The driver calls this before forking/spawning ranks so every rank
    inherits one shared tracker.  Otherwise each rank lazily spawns its
    own on first segment use, and a segment created in rank A but
    unlinked in rank B leaves A's private ledger unbalanced — the
    shutdown backstop then warns about (already unlinked) "leaks".
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        _install_tracker_fork_hooks(resource_tracker._resource_tracker)
    except (ImportError, AttributeError, OSError):  # pragma: no cover
        pass  # platform without a tracker; the backstop just isn't shared

#: Batches smaller than this ride inline in the queue message: below
#: ~32 KiB the shm_open/mmap/unlink round-trip costs more than the copy.
SHM_MIN_BYTES = 32 * 1024

#: Valid ``LocalExecutor(exchange=...)`` transports.
EXCHANGE_TRANSPORTS = ("shm", "pickle")


def encode_batch(
    parts: Sequence[KeyValueSet],
    transport: str = "shm",
    min_shm_bytes: int = SHM_MIN_BYTES,
    counters: Optional[dict] = None,
) -> Tuple[Any, ...]:
    """Encode one shuffle batch as a queue message (see module docs).

    ``counters``, when given, is incremented in place with the batch's
    transport accounting — ``"batches" += 1``, ``"bytes" += payload``
    (packed codec bytes; logical KVSet bytes for the pickle baseline).
    The observability layer meters shuffle batches through this hook.
    """
    if transport == "pickle":
        if counters is not None:
            counters["batches"] = counters.get("batches", 0) + 1
            counters["bytes"] = counters.get("bytes", 0) + sum(
                p.nbytes_logical for p in parts
            )
        return ("pickle", list(parts))
    if transport != "shm":
        raise ValueError(
            f"unknown exchange transport {transport!r}; "
            f"expected one of {EXCHANGE_TRANSPORTS}"
        )
    manifest, chunks, nbytes = pack_parts(parts)
    if counters is not None:
        counters["batches"] = counters.get("batches", 0) + 1
        counters["bytes"] = counters.get("bytes", 0) + nbytes
    if nbytes >= min_shm_bytes:
        try:
            segment = shared_memory.SharedMemory(create=True, size=nbytes)
        except OSError:
            pass  # /dev/shm unavailable or full; fall through to inline
        else:
            offset = 0
            for chunk in chunks:
                segment.buf[offset : offset + chunk.nbytes] = chunk
                offset += chunk.nbytes
            name = segment.name
            segment.close()  # sender's mapping only; the segment persists
            return ("shm", name, nbytes, manifest)
    return ("inline", manifest, b"".join(bytes(c) for c in chunks))


def decode_batch(
    message: Tuple[Any, ...],
) -> Tuple[List[KeyValueSet], Optional[shared_memory.SharedMemory]]:
    """Decode a queue message into ``(parts, segment_or_None)``.

    For ``"shm"`` messages the parts are zero-copy views into the
    returned segment; the caller must keep it alive until the data is
    copied out, then :func:`release_segment` it.  Other transports
    return ``None`` for the segment.
    """
    tag = message[0]
    if tag == "pickle":
        return list(message[1]), None
    if tag == "inline":
        _, manifest, data = message
        return unpack_parts(manifest, data), None
    if tag == "shm":
        _, name, nbytes, manifest = message
        segment = shared_memory.SharedMemory(name=name)
        try:
            # Slice to the payload size: POSIX rounds segments up to a
            # page, so the mapping may be larger than what was written.
            parts = unpack_parts(manifest, segment.buf[:nbytes])
        except BaseException:
            release_segment(segment)
            raise
        return parts, segment
    raise ValueError(f"unknown exchange message tag {tag!r}")


def release_segment(
    segment: shared_memory.SharedMemory, unlink: bool = True
) -> None:
    """Close (and by default unlink) one received segment, tolerantly.

    ``close`` raises :class:`BufferError` while zero-copy views are
    still alive; the mapping then lives until process exit, but the
    *name* is still unlinked so the segment cannot leak past the run.
    """
    try:
        segment.close()
    except BufferError:
        pass
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass  # already unlinked by a cleanup race; nothing to leak


def release_message(message: Tuple[Any, ...]) -> None:
    """Unlink the segment behind an undelivered/undecoded queue message.

    Used by a sender whose queue put failed and by the driver when it
    drains the shuffle queues after a failed run.  Non-segment messages
    are no-ops.
    """
    if not message or message[0] != "shm":
        return
    try:
        segment = shared_memory.SharedMemory(name=message[1])
    except FileNotFoundError:
        return  # receiver (or a previous drain) already cleaned it up
    release_segment(segment)

"""Real parallel execution on ``multiprocessing`` workers.

One OS process per rank runs the full GPMR worker dataflow
(:mod:`repro.exec.dataflow`).  Chunk distribution is **pull-based**:
instead of receiving a precomputed chunk list, each rank requests
chunks at runtime from a driver-side
:class:`~repro.core.scheduler.ChunkService` — a service thread answers
``(rank)`` requests arriving on a shared queue with per-rank grant
messages carrying ``(chunk, victim)``.  An idle rank therefore steals
work from the longest queue *while the run executes* (the paper's
dynamic load balancing, for real), every grant lands in a recorded
:class:`~repro.core.scheduler.ScheduleTrace` returned as
``JobResult.schedule``, and a supplied ``schedule=`` makes the service
replay a recorded trace grant-for-grant instead.

The "network fabric" is a ``multiprocessing.Queue`` per rank used as a
*control* channel: after its map phase a rank posts exactly one batch
message — ``(source_rank, message)`` — to every destination's queue
(including none to its own), then blocks until it has collected one
batch from each source.  With the default ``exchange="shm"`` transport
the message carries only the binary batch manifest plus the name of a
shared-memory segment holding the raw key/value bytes
(:mod:`repro.exec.exchange`); receivers map the arrays in place, so the
shuffle no longer pickles or pipes the payload.  ``exchange="pickle"``
keeps the original pickled-list messages as a measurable baseline.
Receivers order batches by source rank, which makes the shuffle
canonical and the run deterministic for a given schedule.

Failure handling: a worker that raises ships its traceback to the
driver over the result queue and still posts (empty) batches to every
peer it had not already posted to, so peers cannot deadlock and no peer
ever receives two batches from the same source; the driver re-raises as
:class:`WorkerFailure`.  A worker that dies hard (e.g. killed) is
caught by the driver's liveness watch; a worker that exits *cleanly*
without reporting a result is detected the same way instead of being
waited out.  After any run the driver drains the shuffle queues and
unlinks undelivered shared-memory segments.

Timing is real wall-clock: each worker buckets its map / exchange
(bin) / sort / reduce time into the same Figure-2 stages the sim
reports, so sim-modeled and measured breakdowns are directly
comparable.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import threading
import time
import traceback
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .dataflow import MapRunner, merge_incoming, reduce_worker
from .exchange import (
    EXCHANGE_TRANSPORTS,
    decode_batch,
    encode_batch,
    ensure_shared_tracker,
    release_message,
    release_segment,
)
from ..core.chunk import Chunk
from ..core.executor import Executor, register_backend
from ..core.faults import FaultPlan
from ..core.job import MapReduceJob
from ..core.kvset import KeyValueSet
from ..core.runtime import JobResult, resolve_chunks
from ..core.scheduler import (
    DEFAULT_PREFETCH_WINDOW,
    RETRY,
    ChunkService,
    ScheduleTrace,
)
from ..core.stats import JobStats, WorkerStats
from ..obs import BYTES_BUCKETS, NULL_TRACER, Observability
from ..workloads.base import Dataset

__all__ = ["LocalExecutor", "WorkerFailure", "dead_worker_failure"]

#: grant-message status codes of the local pull protocol
_GRANT_DONE, _GRANT_CHUNK, _GRANT_RETRY = 0, 1, 2


class WorkerFailure(RuntimeError):
    """A worker process failed; carries the rank and remote traceback."""

    def __init__(self, rank: int, detail: str) -> None:
        super().__init__(f"worker rank {rank} failed:\n{detail}")
        self.rank = rank
        self.detail = detail


def _default_start_method() -> str:
    # fork is dramatically cheaper and keeps the job object shared
    # copy-on-write; fall back to spawn where fork is unavailable.
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def dead_worker_failure(procs) -> Optional["WorkerFailure"]:
    """The liveness predicate shared by the local and cluster drivers:
    a :class:`WorkerFailure` naming every worker process that died with
    a nonzero exit code, or None while all are healthy."""
    dead = [p for p in procs if not p.is_alive() and p.exitcode not in (0, None)]
    if not dead:
        return None
    codes = {p.name: p.exitcode for p in dead}
    return WorkerFailure(-1, f"worker process(es) died without reporting: {codes}")


class _PullChunkSource:
    """Worker-side half of the local pull protocol.

    ``next()`` posts ``("req", rank)`` on the shared request queue and
    blocks for the service thread's grant on the rank's own grant queue
    — a ``(status, chunk, victim)`` triple: a chunk grant, a "retry
    later" (speculation may free up work; sleep briefly and re-ask), or
    "done".  ``stall_seconds`` sleeps before every request: the
    fault-injection hook that makes this rank a straggler so tests can
    watch its chunks get stolen (and, with speculation armed, its
    in-flight chunks re-executed).  ``kill_at_chunk`` is the
    :class:`~repro.core.faults.FaultPlan` kill hook: the process
    SIGKILLs itself upon *receiving* its n-th grant — genuinely
    mid-map, with that grant (plus any earlier un-posted ones)
    outstanding at the service.
    """

    def __init__(
        self,
        rank: int,
        request_queue,
        grant_queue,
        stall_seconds: float = 0.0,
        kill_at_chunk: Optional[int] = None,
        prefetch: int = 0,
    ) -> None:
        self.rank = rank
        self.request_queue = request_queue
        self.grant_queue = grant_queue
        self.stall_seconds = float(stall_seconds)
        self.kill_at_chunk = kill_at_chunk
        #: extra requests kept in flight beyond the one being answered:
        #: the service grants chunk i+1 while this rank maps chunk i,
        #: so the grant round-trip overlaps map compute (the sim's
        #: double buffer, for real).  0 restores strict alternation.
        self.prefetch = max(0, int(prefetch))
        #: requests posted but not yet answered
        self._pending = 0
        #: True after a DONE answer: stop posting new requests, but
        #: keep draining pending answers — a pipelined answer behind a
        #: DONE may still be a chunk (reclaim/speculation), which
        #: resumes the loop.  Only "draining with nothing pending"
        #: ends the pull.
        self._draining = False
        self._grants_received = 0
        #: set in-child by :func:`_worker_main` when tracing is on; the
        #: source itself is pickled to the child, an
        #: :class:`~repro.obs.Observability` (it holds locks) is not.
        self.obs: Optional[Observability] = None

    def next(self) -> Optional[Tuple[Chunk, int]]:
        obs = self.obs
        while True:
            if self.stall_seconds:
                time.sleep(self.stall_seconds)
            while not self._draining and self._pending < 1 + self.prefetch:
                self.request_queue.put(("req", self.rank))
                self._pending += 1
            if self._draining and self._pending == 0:
                return None
            # With prefetch the answer was (usually) already served
            # while the previous chunk mapped, so the measured grant
            # wait is only the residual blocking time — the overlap the
            # streaming bench's p99 column quantifies.
            w0 = time.time()
            status, chunk, victim = self.grant_queue.get()
            self._pending -= 1
            if obs is not None:
                w1 = time.time()
                obs.tracer.add_span("grant_wait", w0, w1, rank=self.rank)
                obs.metrics.histogram("grant_latency_s").observe(w1 - w0)
            if status == _GRANT_RETRY:
                self._draining = False
                time.sleep(0.02)
                continue
            if status == _GRANT_DONE:
                self._draining = True
                continue
            self._draining = False
            self._grants_received += 1
            if (
                self.kill_at_chunk is not None
                and self._grants_received >= self.kill_at_chunk
            ):
                # Die exactly as "kill -9" would: no cleanup, no
                # courtesy batches, the grant never mapped.  (A
                # pipelined request this death leaves unanswered is
                # safe: the service answers it either onto the old
                # grant queue — which the driver replaces under the
                # service lock, so the grant dies with it — or, after
                # reclaim, onto the replacement's queue, where a chunk
                # is simply mapped by the new incarnation and a
                # trailing DONE goes unread.)
                os.kill(os.getpid(), signal.SIGKILL)
            return chunk, victim

    def mark_posted(self) -> None:
        """Tell the service this rank is about to post its batches —
        past this point the unit-of-loss contract makes its death
        unrecoverable (nothing left to reclaim)."""
        self.request_queue.put(("posted", self.rank))


class _ListChunkSource:
    """A precomputed chunk list behind the pull interface.

    Used by tests that drive :func:`_worker_main` directly, without a
    live service; every chunk counts as the rank's own (victim ==
    rank).
    """

    def __init__(self, chunks: Sequence[Chunk], rank: int) -> None:
        self._chunks = list(chunks)
        self.rank = rank
        self._i = 0

    def next(self) -> Optional[Tuple[Chunk, int]]:
        if self._i >= len(self._chunks):
            return None
        chunk = self._chunks[self._i]
        self._i += 1
        return chunk, self.rank

    def mark_posted(self) -> None:
        pass


def _serve_chunks(
    service: ChunkService,
    request_queue,
    grant_queues,
    stop: threading.Event,
    errors: List[BaseException],
) -> None:
    """Driver-side service thread: answer pull requests until stopped.

    Grant messages are ``(status, chunk, victim)`` — ``(_GRANT_DONE,
    None, -1)`` tells the requesting rank it is done, ``_GRANT_RETRY``
    tells it to re-ask shortly (speculation may free up work).  A
    service failure is stashed in ``errors`` (the driver's collect loop
    re-raises it) and the requester is released with "done" so it
    cannot block forever.

    The service lock is held across request *and* put: the driver's
    recovery path (swap in a fresh grant queue, then ``reclaim``) takes
    the same lock, so a grant can never land on a queue the driver has
    already drained-by-replacement — no chunk is both re-queued and
    stranded on a dead rank's old queue.
    """
    while not stop.is_set():
        try:
            kind, rank = request_queue.get(timeout=0.1)
        except (queue_mod.Empty, OSError, EOFError, ValueError):
            continue
        try:
            with service.guard():
                if kind == "posted":
                    service.mark_posted(rank)
                    continue
                assignment = service.request(rank)
                if assignment is RETRY:
                    grant_queues[rank].put((_GRANT_RETRY, None, -1))
                elif assignment is None:
                    grant_queues[rank].put((_GRANT_DONE, None, -1))
                else:
                    grant_queues[rank].put(
                        (_GRANT_CHUNK, assignment.chunk, assignment.victim)
                    )
        except BaseException as exc:
            errors.append(exc)
            try:
                grant_queues[rank].put((_GRANT_DONE, None, -1))
            except BaseException:
                return


def _worker_main(
    rank: int,
    n_workers: int,
    job: MapReduceJob,
    chunk_source,
    shuffle_queues: List[mp.Queue],
    result_queue: mp.Queue,
    exchange: str = "shm",
    obs_enabled: bool = False,
) -> None:
    """Entry point of one rank's process: pull+map, exchange, sort, reduce.

    ``chunk_source`` is the rank's pull handle (``next() -> (chunk,
    victim) | None``); the worker counts a steal whenever a grant's
    victim is another rank, which the driver cross-checks against the
    service's ledger after the run.

    With ``obs_enabled`` the rank builds its own
    :class:`~repro.obs.Observability`, records its spans and metric
    samples into it, and ships the picklable ``export()`` payload back
    as the fifth element of the result tuple — the driver absorbs it
    into the run-level bundle.
    """
    obs = Observability() if obs_enabled else None
    tracer = obs.tracer if obs is not None else NULL_TRACER
    chunk_source.obs = obs
    stats = WorkerStats(rank=rank)
    posted: Set[int] = set()
    segments = []
    try:
        t0 = time.perf_counter()
        runner = MapRunner(job, n_workers)
        while True:
            nxt = chunk_source.next()
            if nxt is None:
                break
            chunk, victim = nxt
            if victim != rank:
                stats.chunks_stolen += 1
            w0 = time.time()
            runner.feed(chunk)
            tracer.add_span(
                "chunk_map", w0, time.time(), rank=rank, chunk=chunk.index
            )
        w0 = time.time()
        mapped = runner.finish()
        tracer.add_span("map_finish", w0, time.time(), rank=rank)
        stats.chunks_mapped = mapped.chunks_mapped
        stats.pairs_emitted_logical = mapped.pairs_emitted_logical
        stats.bytes_sent_network = mapped.bytes_remote(rank)
        stats.bytes_kept_local = mapped.bytes_self(rank)
        t1 = time.perf_counter()
        stats.add("map", t1 - t0)

        # Self-destined parts stay in-process; remote batches ride the
        # exchange transport.  Posted destinations are tracked one by
        # one so a failure mid-posting backfills only the peers that
        # never got this rank's batch.  The "posted" marker goes to the
        # service first: once any batch may have shipped, this rank's
        # map output is in the world and its death is no longer
        # recoverable by reclaim (the batches would double-count).
        chunk_source.mark_posted()
        for dest in range(n_workers):
            if dest == rank:
                continue
            counters = {"bytes": 0} if obs is not None else None
            s0 = time.time()
            message = encode_batch(
                mapped.batch_for(dest), transport=exchange, counters=counters
            )
            try:
                shuffle_queues[dest].put(
                    (rank, message, mapped.chunk_ids_for(dest))
                )
            except BaseException:
                release_message(message)  # never delivered; unlink now
                raise
            posted.add(dest)
            if obs is not None:
                s1 = time.time()
                tracer.add_span("shuffle_send", s0, s1, rank=rank, dest=dest)
                obs.metrics.histogram("shuffle_batch_s").observe(s1 - s0)
                obs.metrics.histogram(
                    "shuffle_batch_bytes", bounds=BYTES_BUCKETS
                ).observe(counters["bytes"])

        r0 = time.time()
        batches: List[Tuple[int, List[KeyValueSet], List[int]]] = [
            (rank, mapped.batch_for(rank), mapped.chunk_ids_for(rank))
        ]
        for _ in range(n_workers - 1):
            src, message, tags = shuffle_queues[rank].get()
            parts, segment = decode_batch(message)
            if segment is not None:
                segments.append(segment)
            batches.append((src, parts, tags))
        incoming = merge_incoming(batches)
        del batches
        tracer.add_span("shuffle_recv", r0, time.time(), rank=rank)
        t2 = time.perf_counter()
        stats.add("bin", t2 - t1)

        output = reduce_worker(job, incoming, stats=stats, obs=obs)
        # The reduce concatenated every incoming part into fresh
        # arrays; the zero-copy views are dead and the segments can go.
        del incoming
        while segments:
            release_segment(segments.pop())
        result_queue.put(
            (rank, None, output, stats, obs.export() if obs else None)
        )
    except BaseException:
        # Unblock only the peers still waiting on this rank's batch —
        # re-posting to an already-served peer would make it count two
        # batches from one source and merge nondeterministically.
        for dest in range(n_workers):
            if dest != rank and dest not in posted:
                try:
                    shuffle_queues[dest].put(
                        (rank, encode_batch([], transport=exchange), [])
                    )
                except BaseException:
                    pass  # queue gone too; the driver's watch covers it
        while segments:
            release_segment(segments.pop())
        result_queue.put(
            (rank, traceback.format_exc(), None, stats,
             obs.export() if obs else None)
        )


class LocalExecutor(Executor):
    """Execute jobs for real on ``n_workers`` OS processes.

    ``stall_seconds`` (optional, ``{rank: seconds}``) injects a sleep
    before each of that rank's chunk requests — a deliberate straggler
    for load-balancing tests and benchmarks.

    ``fault_plan`` (a :class:`~repro.core.faults.FaultPlan`) arms the
    recovery machinery: ranks it kills mid-map are detected by the
    driver's liveness watch, their un-posted grants are reclaimed into
    the pool, and a replacement process is respawned under the same
    rank id — the run completes with output bit-identical to a
    failure-free run.  ``speculate_after`` additionally re-executes
    straggling in-flight grants on idle ranks; receivers drop the
    duplicate map output by chunk-id provenance tags.  Without a plan,
    any worker death is a :class:`WorkerFailure` exactly as before.
    """

    name = "local"

    def __init__(
        self,
        n_workers: int,
        initial_distribution: str = "round_robin",
        start_method: Optional[str] = None,
        timeout_seconds: float = 300.0,
        exchange: str = "shm",
        stall_seconds: Optional[Mapping[int, float]] = None,
        fault_plan: Optional[FaultPlan] = None,
        obs: Optional[Observability] = None,
        trace_path: Optional[str] = None,
        prefetch_window: int = DEFAULT_PREFETCH_WINDOW,
        accel: Optional[str] = None,
        fused: Optional[bool] = None,
    ) -> None:
        super().__init__(
            n_workers, obs=obs, trace_path=trace_path, accel=accel, fused=fused
        )
        self.initial_distribution = initial_distribution
        self.start_method = start_method or _default_start_method()
        self.timeout_seconds = float(timeout_seconds)
        #: chunk requests each rank keeps in flight beyond the one it
        #: is mapping (grant prefetch); 0 disables the overlap
        self.prefetch_window = max(0, int(prefetch_window))
        if exchange not in EXCHANGE_TRANSPORTS:
            raise ValueError(
                f"unknown exchange transport {exchange!r}; "
                f"expected one of {EXCHANGE_TRANSPORTS}"
            )
        self.exchange = exchange
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.validate_for(n_workers)
            stall_seconds = fault_plan.merged_stalls(stall_seconds)
        self.stall_seconds: Dict[int, float] = dict(stall_seconds or {})

    def run(
        self,
        job: MapReduceJob,
        dataset: Optional[Dataset] = None,
        chunks: Optional[Sequence[Chunk]] = None,
        schedule: Optional[ScheduleTrace] = None,
    ) -> JobResult:
        self._check_open()
        # Stamp accel/fused into the job config before the job is
        # pickled to the worker processes — the children's MapRunners
        # read it straight off the config.
        job = self._configure_job(job)
        all_chunks = resolve_chunks(dataset, chunks)
        fault = self.fault_plan
        if fault is not None and schedule is not None:
            raise ValueError(
                "fault_plan and schedule replay are mutually exclusive: a "
                "recorded trace already fixes every grant, so there is "
                "nothing to reclaim or speculate"
            )
        if (
            fault is not None
            and fault.speculate_after is not None
            and (job.accumulator is not None or job.combiner is not None)
        ):
            raise ValueError(
                "speculate_after requires per-chunk map emissions; job "
                f"{job.name!r} uses an accumulator/combiner whose "
                "finish-time output cannot be deduplicated per chunk"
            )
        run_obs = self._begin_obs()
        # Replay validation happens here, in the driver, before any
        # process exists — a bad trace fails fast with full context.
        service = self._make_chunk_service(
            all_chunks,
            job,
            schedule=schedule,
            speculate_after=None if fault is None else fault.speculate_after,
            obs=run_obs,
        )
        ctx = mp.get_context(self.start_method)
        if self.exchange == "shm":
            # One tracker for the whole rank tree — see exchange docs.
            ensure_shared_tracker()
        # mp.Queue writes through a feeder thread, so puts never block
        # on pipe capacity — no exchange deadlock however large a batch
        # (and under "shm" the message is tiny regardless).
        shuffle_queues = [ctx.Queue() for _ in range(self.n_workers)]
        result_queue = ctx.Queue()
        request_queue = ctx.Queue()
        grant_queues = [ctx.Queue() for _ in range(self.n_workers)]

        stop_service = threading.Event()
        service_errors: List[BaseException] = []
        server = threading.Thread(
            target=_serve_chunks,
            args=(service, request_queue, grant_queues, stop_service,
                  service_errors),
            name="gpmr-chunk-service",
            daemon=True,
        )
        server.start()

        t_start = time.perf_counter()

        def spawn(rank: int, incarnation: int) -> mp.process.BaseProcess:
            # Only the first incarnation carries the scripted kill: the
            # replacement must survive to finish the reclaimed work.
            kill_at = (
                fault.kill_for(rank)
                if fault is not None and incarnation == 0
                else None
            )
            return ctx.Process(
                target=_worker_main,
                args=(
                    rank,
                    self.n_workers,
                    job,
                    _PullChunkSource(
                        rank,
                        request_queue,
                        grant_queues[rank],
                        self.stall_seconds.get(rank, 0.0),
                        kill_at,
                        self.prefetch_window,
                    ),
                    shuffle_queues,
                    result_queue,
                    self.exchange,
                    run_obs is not None,
                ),
                name=f"gpmr-local-r{rank}.{incarnation}",
                daemon=True,
            )

        procs = [spawn(rank, 0) for rank in range(self.n_workers)]
        respawns_left = {
            rank: (fault.max_respawns if fault is not None else 0)
            for rank in range(self.n_workers)
        }
        for p in procs:
            p.start()

        outputs: List[Optional[KeyValueSet]] = [None] * self.n_workers
        worker_stats: List[Optional[WorkerStats]] = [None] * self.n_workers
        failures: List[Tuple[int, str]] = []
        deadline = time.monotonic() + self.timeout_seconds
        pending = {rank for rank in range(self.n_workers)}
        silent_since: Optional[float] = None
        try:
            while pending:
                if service_errors:
                    raise service_errors[0]
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"local backend timed out after {self.timeout_seconds}s "
                        f"with {len(pending)} worker(s) outstanding"
                    )
                try:
                    rank, error, output, stats, obs_payload = result_queue.get(
                        timeout=min(remaining, 0.5)
                    )
                except queue_mod.Empty:
                    if fault is not None:
                        self._recover_dead_workers(
                            procs, pending, service, grant_queues,
                            respawns_left, spawn, ctx,
                        )
                    failure = dead_worker_failure(procs)
                    if failure is not None and result_queue.empty():
                        raise failure
                    # A worker that exited *cleanly* (code 0) without
                    # posting a result will never satisfy the loop:
                    # surface it as a failure instead of running out
                    # the full job timeout.  One extra empty poll cycle
                    # of grace covers a result still in flight through
                    # the queue's feeder pipe.
                    silent = sorted(
                        r for r in pending
                        if not procs[r].is_alive() and procs[r].exitcode == 0
                    )
                    if silent and result_queue.empty():
                        if silent_since is None:
                            silent_since = time.monotonic()
                        elif time.monotonic() - silent_since > 1.0:
                            raise WorkerFailure(
                                silent[0],
                                f"worker rank(s) {silent} exited cleanly "
                                "without posting a result",
                            )
                    else:
                        silent_since = None
                    continue
                pending.discard(rank)
                silent_since = None
                if run_obs is not None:
                    run_obs.absorb(obs_payload)
                if error is not None:
                    failures.append((rank, error))
                else:
                    outputs[rank] = output
                    worker_stats[rank] = stats
        finally:
            stop_service.set()
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=5.0)
            server.join(timeout=5.0)
            self._drain_undelivered(shuffle_queues)
            for q in shuffle_queues + grant_queues + [result_queue, request_queue]:
                q.cancel_join_thread()

        if failures:
            rank, detail = failures[0]
            raise WorkerFailure(rank, detail)
        # A service failure on the *last* grants can release every
        # worker with "done" before the in-loop check sees it; re-check
        # now so a run that silently dropped chunks can never return.
        if service_errors:
            raise service_errors[0]
        if service.remaining:
            raise RuntimeError(
                f"chunk service finished with {service.remaining} chunk(s) "
                "never granted"
            )

        # Workers report what they fetched; the service logged what it
        # granted.  The two ledgers must agree rank for rank.
        service.validate_ledgers([s for s in worker_stats if s is not None])
        service.record_outcomes()

        elapsed = time.perf_counter() - t_start
        stats = JobStats(
            job_name=job.name,
            n_gpus=self.n_workers,
            elapsed=elapsed,
            workers=[s if s is not None else WorkerStats(rank=r)
                     for r, s in enumerate(worker_stats)],
            chunks_reclaimed=service.chunks_reclaimed,
            speculative_wins=service.speculative_wins,
            retries_by_worker=list(service.retries_by_worker),
            clock="wall",
        )
        self._finish_obs(run_obs, stats)
        return JobResult(
            stats=stats,
            outputs=outputs,
            schedule=schedule if schedule is not None else service.trace,
            obs=run_obs,
        )

    def _recover_dead_workers(
        self,
        procs,
        pending: Set[int],
        service: ChunkService,
        grant_queues,
        respawns_left: Dict[int, int],
        spawn,
        ctx,
    ) -> None:
        """Reclaim and respawn every dead rank that is still recoverable.

        A rank qualifies when it died hard (nonzero exit), has respawn
        budget left, and never marked its map output posted (the unit
        of loss is the whole un-posted map phase — once batches may
        have shipped, reclaiming would double-count them).  Ranks that
        do not qualify are deliberately left for
        :func:`dead_worker_failure`, preserving the no-plan failure
        behavior.

        Under the service lock: swap in a *fresh* grant queue for the
        replacement (grants queued to the dead incarnation — consumed
        or not — die with the old queue; no racy drain of a feeder
        pipe), then ``reclaim`` so every grant the dead rank held goes
        back in the pool.  The service thread grants under the same
        lock, so no grant can slip onto the old queue afterwards.
        """
        for rank in sorted(pending):
            p = procs[rank]
            if p.is_alive() or p.exitcode in (0, None):
                continue
            if respawns_left.get(rank, 0) <= 0:
                continue
            if not service.can_recover(rank):
                continue
            if self.obs is not None:
                self.obs.tracer.event("rank_dead", rank=rank,
                                      exitcode=p.exitcode)
            with service.guard():
                grant_queues[rank] = ctx.Queue()
                service.reclaim(rank)
            respawns_left[rank] -= 1
            incarnation = self.fault_plan.max_respawns - respawns_left[rank]
            procs[rank] = spawn(rank, incarnation)
            procs[rank].start()
            if self.obs is not None:
                self.obs.tracer.event("respawn", rank=rank,
                                      incarnation=incarnation)
                self.obs.metrics.counter("respawns").inc()

    @staticmethod
    def _drain_undelivered(shuffle_queues: List[mp.Queue]) -> None:
        """Unlink segments behind messages no worker ever consumed.

        On the happy path the queues are empty; after a failure they
        may still hold batches whose shared-memory segments would
        otherwise outlive the run.  A worker killed or terminated
        mid-``put`` can leave a *partial* message in a queue's pipe;
        ``get_nowait`` then blocks in ``_recv_bytes`` (the poll sees
        bytes, the receive waits for the rest forever), so the drain
        runs in a daemon thread with a bounded join — leaking a
        segment beats hanging the run.
        """
        def _drain() -> None:
            for q in shuffle_queues:
                while True:
                    try:
                        item = q.get_nowait()
                    except (queue_mod.Empty, OSError, EOFError, ValueError):
                        break
                    try:
                        release_message(item[1])
                    except OSError:  # pragma: no cover - best-effort cleanup
                        pass

        t = threading.Thread(
            target=_drain, name="gpmr-drain-undelivered", daemon=True
        )
        t.start()
        t.join(timeout=5.0)


register_backend(LocalExecutor.name, LocalExecutor)

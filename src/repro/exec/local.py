"""Real parallel execution on ``multiprocessing`` workers.

One OS process per rank runs the full GPMR worker dataflow
(:mod:`repro.exec.dataflow`).  The "network fabric" is a
``multiprocessing.Queue`` per rank used as a *control* channel: after
its map phase a rank posts exactly one batch message — ``(source_rank,
message)`` — to every destination's queue (including none to its own),
then blocks until it has collected one batch from each source.  With
the default ``exchange="shm"`` transport the message carries only the
binary batch manifest plus the name of a shared-memory segment holding
the raw key/value bytes (:mod:`repro.exec.exchange`); receivers map the
arrays in place, so the shuffle no longer pickles or pipes the payload.
``exchange="pickle"`` keeps the original pickled-list messages as a
measurable baseline.  Receivers order batches by source rank, which
makes the shuffle canonical and the whole run deterministic regardless
of OS scheduling.

Failure handling: a worker that raises ships its traceback to the
driver over the result queue and still posts (empty) batches to every
peer it had not already posted to, so peers cannot deadlock and no peer
ever receives two batches from the same source; the driver re-raises as
:class:`WorkerFailure`.  A worker that dies hard (e.g. killed) is
caught by the driver's liveness watch; a worker that exits *cleanly*
without reporting a result is detected the same way instead of being
waited out.  After any run the driver drains the shuffle queues and
unlinks undelivered shared-memory segments.

Timing is real wall-clock: each worker buckets its map / exchange
(bin) / sort / reduce time into the same Figure-2 stages the sim
reports, so sim-modeled and measured breakdowns are directly
comparable.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from typing import List, Optional, Sequence, Set, Tuple

from .dataflow import map_worker, merge_incoming, reduce_worker
from .exchange import (
    EXCHANGE_TRANSPORTS,
    decode_batch,
    encode_batch,
    ensure_shared_tracker,
    release_message,
    release_segment,
)
from ..core.chunk import Chunk
from ..core.executor import Executor, register_backend
from ..core.job import MapReduceJob
from ..core.kvset import KeyValueSet
from ..core.runtime import JobResult, resolve_chunks, resolve_placement
from ..core.scheduler import ScheduleTrace
from ..core.stats import JobStats, WorkerStats
from ..workloads.base import Dataset

__all__ = ["LocalExecutor", "WorkerFailure", "dead_worker_failure"]


class WorkerFailure(RuntimeError):
    """A worker process failed; carries the rank and remote traceback."""

    def __init__(self, rank: int, detail: str) -> None:
        super().__init__(f"worker rank {rank} failed:\n{detail}")
        self.rank = rank
        self.detail = detail


def _default_start_method() -> str:
    # fork is dramatically cheaper and keeps the job object shared
    # copy-on-write; fall back to spawn where fork is unavailable.
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def dead_worker_failure(procs) -> Optional["WorkerFailure"]:
    """The liveness predicate shared by the local and cluster drivers:
    a :class:`WorkerFailure` naming every worker process that died with
    a nonzero exit code, or None while all are healthy."""
    dead = [p for p in procs if not p.is_alive() and p.exitcode not in (0, None)]
    if not dead:
        return None
    codes = {p.name: p.exitcode for p in dead}
    return WorkerFailure(-1, f"worker process(es) died without reporting: {codes}")


def _worker_main(
    rank: int,
    n_workers: int,
    job: MapReduceJob,
    chunks: List[Chunk],
    shuffle_queues: List[mp.Queue],
    result_queue: mp.Queue,
    exchange: str = "shm",
    chunks_stolen: int = 0,
) -> None:
    """Entry point of one rank's process: map, exchange, sort, reduce.

    ``chunks_stolen`` is the replayed steal ledger: when the driver
    distributes chunks from a recorded schedule, the rank reports how
    many of its chunks that schedule says it stole.
    """
    stats = WorkerStats(rank=rank)
    stats.chunks_stolen = chunks_stolen
    posted: Set[int] = set()
    segments = []
    try:
        t0 = time.perf_counter()
        mapped = map_worker(job, chunks, n_workers)
        stats.chunks_mapped = mapped.chunks_mapped
        stats.pairs_emitted_logical = mapped.pairs_emitted_logical
        stats.bytes_sent_network = mapped.bytes_remote(rank)
        stats.bytes_kept_local = mapped.bytes_self(rank)
        t1 = time.perf_counter()
        stats.add("map", t1 - t0)

        # Self-destined parts stay in-process; remote batches ride the
        # exchange transport.  Posted destinations are tracked one by
        # one so a failure mid-posting backfills only the peers that
        # never got this rank's batch.
        for dest in range(n_workers):
            if dest == rank:
                continue
            message = encode_batch(mapped.batch_for(dest), transport=exchange)
            try:
                shuffle_queues[dest].put((rank, message))
            except BaseException:
                release_message(message)  # never delivered; unlink now
                raise
            posted.add(dest)

        batches: List[Tuple[int, List[KeyValueSet]]] = [
            (rank, mapped.batch_for(rank))
        ]
        for _ in range(n_workers - 1):
            src, message = shuffle_queues[rank].get()
            parts, segment = decode_batch(message)
            if segment is not None:
                segments.append(segment)
            batches.append((src, parts))
        incoming = merge_incoming(batches)
        del batches
        t2 = time.perf_counter()
        stats.add("bin", t2 - t1)

        output = reduce_worker(job, incoming, stats=stats)
        # The reduce concatenated every incoming part into fresh
        # arrays; the zero-copy views are dead and the segments can go.
        del incoming
        while segments:
            release_segment(segments.pop())
        result_queue.put((rank, None, output, stats))
    except BaseException:
        # Unblock only the peers still waiting on this rank's batch —
        # re-posting to an already-served peer would make it count two
        # batches from one source and merge nondeterministically.
        for dest in range(n_workers):
            if dest != rank and dest not in posted:
                try:
                    shuffle_queues[dest].put(
                        (rank, encode_batch([], transport=exchange))
                    )
                except BaseException:
                    pass  # queue gone too; the driver's watch covers it
        while segments:
            release_segment(segments.pop())
        result_queue.put((rank, traceback.format_exc(), None, stats))


class LocalExecutor(Executor):
    """Execute jobs for real on ``n_workers`` OS processes."""

    name = "local"

    def __init__(
        self,
        n_workers: int,
        initial_distribution: str = "round_robin",
        start_method: Optional[str] = None,
        timeout_seconds: float = 300.0,
        exchange: str = "shm",
    ) -> None:
        super().__init__(n_workers)
        self.initial_distribution = initial_distribution
        self.start_method = start_method or _default_start_method()
        self.timeout_seconds = float(timeout_seconds)
        if exchange not in EXCHANGE_TRANSPORTS:
            raise ValueError(
                f"unknown exchange transport {exchange!r}; "
                f"expected one of {EXCHANGE_TRANSPORTS}"
            )
        self.exchange = exchange

    def run(
        self,
        job: MapReduceJob,
        dataset: Optional[Dataset] = None,
        chunks: Optional[Sequence[Chunk]] = None,
        schedule: Optional[ScheduleTrace] = None,
    ) -> JobResult:
        all_chunks = resolve_chunks(dataset, chunks)
        per_worker, stolen = resolve_placement(
            all_chunks, self.n_workers, self.initial_distribution, schedule
        )
        ctx = mp.get_context(self.start_method)
        if self.exchange == "shm":
            # One tracker for the whole rank tree — see exchange docs.
            ensure_shared_tracker()
        # mp.Queue writes through a feeder thread, so puts never block
        # on pipe capacity — no exchange deadlock however large a batch
        # (and under "shm" the message is tiny regardless).
        shuffle_queues = [ctx.Queue() for _ in range(self.n_workers)]
        result_queue = ctx.Queue()

        t_start = time.perf_counter()
        procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    rank,
                    self.n_workers,
                    job,
                    per_worker[rank],
                    shuffle_queues,
                    result_queue,
                    self.exchange,
                    stolen[rank],
                ),
                name=f"gpmr-local-r{rank}",
                daemon=True,
            )
            for rank in range(self.n_workers)
        ]
        for p in procs:
            p.start()

        outputs: List[Optional[KeyValueSet]] = [None] * self.n_workers
        worker_stats: List[Optional[WorkerStats]] = [None] * self.n_workers
        failures: List[Tuple[int, str]] = []
        deadline = time.monotonic() + self.timeout_seconds
        pending = {rank for rank in range(self.n_workers)}
        silent_since: Optional[float] = None
        try:
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"local backend timed out after {self.timeout_seconds}s "
                        f"with {len(pending)} worker(s) outstanding"
                    )
                try:
                    rank, error, output, stats = result_queue.get(
                        timeout=min(remaining, 0.5)
                    )
                except queue_mod.Empty:
                    failure = dead_worker_failure(procs)
                    if failure is not None and result_queue.empty():
                        raise failure
                    # A worker that exited *cleanly* (code 0) without
                    # posting a result will never satisfy the loop:
                    # surface it as a failure instead of running out
                    # the full job timeout.  One extra empty poll cycle
                    # of grace covers a result still in flight through
                    # the queue's feeder pipe.
                    silent = sorted(
                        r for r in pending
                        if not procs[r].is_alive() and procs[r].exitcode == 0
                    )
                    if silent and result_queue.empty():
                        if silent_since is None:
                            silent_since = time.monotonic()
                        elif time.monotonic() - silent_since > 1.0:
                            raise WorkerFailure(
                                silent[0],
                                f"worker rank(s) {silent} exited cleanly "
                                "without posting a result",
                            )
                    else:
                        silent_since = None
                    continue
                pending.discard(rank)
                silent_since = None
                if error is not None:
                    failures.append((rank, error))
                else:
                    outputs[rank] = output
                    worker_stats[rank] = stats
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=5.0)
            self._drain_undelivered(shuffle_queues)
            for q in shuffle_queues + [result_queue]:
                q.cancel_join_thread()

        if failures:
            rank, detail = failures[0]
            raise WorkerFailure(rank, detail)

        elapsed = time.perf_counter() - t_start
        stats = JobStats(
            job_name=job.name,
            n_gpus=self.n_workers,
            elapsed=elapsed,
            workers=[s if s is not None else WorkerStats(rank=r)
                     for r, s in enumerate(worker_stats)],
        )
        return JobResult(stats=stats, outputs=outputs, schedule=schedule)

    @staticmethod
    def _drain_undelivered(shuffle_queues: List[mp.Queue]) -> None:
        """Unlink segments behind messages no worker ever consumed.

        On the happy path the queues are empty; after a failure they
        may still hold batches whose shared-memory segments would
        otherwise outlive the run.
        """
        for q in shuffle_queues:
            while True:
                try:
                    _, message = q.get_nowait()
                except (queue_mod.Empty, OSError, EOFError, ValueError):
                    break
                try:
                    release_message(message)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass


register_backend(LocalExecutor.name, LocalExecutor)

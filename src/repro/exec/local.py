"""Real parallel execution on ``multiprocessing`` workers.

One OS process per rank runs the full GPMR worker dataflow
(:mod:`repro.exec.dataflow`).  The "network fabric" is pickle-over-pipe:
each rank owns an inbound :class:`multiprocessing.Queue`; after its map
phase a rank posts exactly one batch — ``(source_rank, parts)`` — to
every destination's queue (including its own), then blocks until it has
collected one batch from each source.  Receivers order batches by
source rank, which makes the shuffle canonical and the whole run
deterministic regardless of OS scheduling.

Failure handling: a worker that raises ships its traceback to the
driver over the result queue and still posts (empty) batches so peers
cannot deadlock; the driver re-raises as :class:`WorkerFailure`.  A
worker that dies hard (e.g. killed) is caught by the driver's liveness
watch, which terminates the rest and raises.

Timing is real wall-clock: each worker buckets its map / exchange
(bin) / sort / reduce time into the same Figure-2 stages the sim
reports, so sim-modeled and measured breakdowns are directly
comparable.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from typing import List, Optional, Sequence, Tuple

from .dataflow import map_worker, merge_incoming, reduce_worker
from ..core.chunk import Chunk
from ..core.executor import Executor, register_backend
from ..core.job import MapReduceJob
from ..core.kvset import KeyValueSet
from ..core.runtime import JobResult, distribute_chunks, resolve_chunks
from ..core.stats import JobStats, WorkerStats
from ..workloads.base import Dataset

__all__ = ["LocalExecutor", "WorkerFailure", "dead_worker_failure"]


class WorkerFailure(RuntimeError):
    """A worker process failed; carries the rank and remote traceback."""

    def __init__(self, rank: int, detail: str) -> None:
        super().__init__(f"worker rank {rank} failed:\n{detail}")
        self.rank = rank
        self.detail = detail


def _default_start_method() -> str:
    # fork is dramatically cheaper and keeps the job object shared
    # copy-on-write; fall back to spawn where fork is unavailable.
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def dead_worker_failure(procs) -> Optional["WorkerFailure"]:
    """The liveness predicate shared by the local and cluster drivers:
    a :class:`WorkerFailure` naming every worker process that died with
    a nonzero exit code, or None while all are healthy."""
    dead = [p for p in procs if not p.is_alive() and p.exitcode not in (0, None)]
    if not dead:
        return None
    codes = {p.name: p.exitcode for p in dead}
    return WorkerFailure(-1, f"worker process(es) died without reporting: {codes}")


def _worker_main(
    rank: int,
    n_workers: int,
    job: MapReduceJob,
    chunks: List[Chunk],
    shuffle_queues: List[mp.Queue],
    result_queue: mp.Queue,
) -> None:
    """Entry point of one rank's process: map, exchange, sort, reduce."""
    stats = WorkerStats(rank=rank)
    posted = False
    try:
        t0 = time.perf_counter()
        mapped = map_worker(job, chunks, n_workers)
        stats.chunks_mapped = mapped.chunks_mapped
        stats.pairs_emitted_logical = mapped.pairs_emitted_logical
        stats.bytes_sent_network = mapped.bytes_binned
        t1 = time.perf_counter()
        stats.add("map", t1 - t0)

        # Self-destined parts stay in-process; only remote batches ride
        # the pickle-over-pipe fabric.
        for dest in range(n_workers):
            if dest != rank:
                shuffle_queues[dest].put((rank, mapped.batch_for(dest)))
        posted = True

        batches: List[Tuple[int, List[KeyValueSet]]] = [
            (rank, mapped.batch_for(rank))
        ]
        for _ in range(n_workers - 1):
            batches.append(shuffle_queues[rank].get())
        incoming = merge_incoming(batches)
        t2 = time.perf_counter()
        stats.add("bin", t2 - t1)

        output = reduce_worker(job, incoming, stats=stats)
        result_queue.put((rank, None, output, stats))
    except BaseException:
        if not posted:
            # Unblock peers waiting on this rank's batch.
            for dest in range(n_workers):
                if dest != rank:
                    shuffle_queues[dest].put((rank, []))
        result_queue.put((rank, traceback.format_exc(), None, stats))


class LocalExecutor(Executor):
    """Execute jobs for real on ``n_workers`` OS processes."""

    name = "local"

    def __init__(
        self,
        n_workers: int,
        initial_distribution: str = "round_robin",
        start_method: Optional[str] = None,
        timeout_seconds: float = 300.0,
    ) -> None:
        super().__init__(n_workers)
        self.initial_distribution = initial_distribution
        self.start_method = start_method or _default_start_method()
        self.timeout_seconds = float(timeout_seconds)

    def run(
        self,
        job: MapReduceJob,
        dataset: Optional[Dataset] = None,
        chunks: Optional[Sequence[Chunk]] = None,
    ) -> JobResult:
        all_chunks = resolve_chunks(dataset, chunks)
        per_worker = distribute_chunks(
            all_chunks, self.n_workers, self.initial_distribution
        )
        ctx = mp.get_context(self.start_method)
        # mp.Queue writes through a feeder thread, so puts never block
        # on pipe capacity — no exchange deadlock however large a batch.
        shuffle_queues = [ctx.Queue() for _ in range(self.n_workers)]
        result_queue = ctx.Queue()

        t_start = time.perf_counter()
        procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    rank,
                    self.n_workers,
                    job,
                    per_worker[rank],
                    shuffle_queues,
                    result_queue,
                ),
                name=f"gpmr-local-r{rank}",
                daemon=True,
            )
            for rank in range(self.n_workers)
        ]
        for p in procs:
            p.start()

        outputs: List[Optional[KeyValueSet]] = [None] * self.n_workers
        worker_stats: List[Optional[WorkerStats]] = [None] * self.n_workers
        failures: List[Tuple[int, str]] = []
        deadline = time.monotonic() + self.timeout_seconds
        pending = self.n_workers
        try:
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"local backend timed out after {self.timeout_seconds}s "
                        f"with {pending} worker(s) outstanding"
                    )
                try:
                    rank, error, output, stats = result_queue.get(
                        timeout=min(remaining, 0.5)
                    )
                except queue_mod.Empty:
                    failure = dead_worker_failure(procs)
                    if failure is not None and result_queue.empty():
                        raise failure
                    continue
                pending -= 1
                if error is not None:
                    failures.append((rank, error))
                else:
                    outputs[rank] = output
                    worker_stats[rank] = stats
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=5.0)
            for q in shuffle_queues + [result_queue]:
                q.cancel_join_thread()

        if failures:
            rank, detail = failures[0]
            raise WorkerFailure(rank, detail)

        elapsed = time.perf_counter() - t_start
        stats = JobStats(
            job_name=job.name,
            n_gpus=self.n_workers,
            elapsed=elapsed,
            workers=[s if s is not None else WorkerStats(rank=r)
                     for r, s in enumerate(worker_stats)],
        )
        return JobResult(stats=stats, outputs=outputs)


register_backend(LocalExecutor.name, LocalExecutor)

"""Real distributed execution over the TCP cluster fabric.

``ClusterExecutor`` runs the same :mod:`repro.exec.dataflow` worker
code as the ``local`` backend, but every byte between ranks rides the
:mod:`repro.fabric` wire instead of ``multiprocessing`` queues: ranks
register with a driver-side :class:`~repro.fabric.Coordinator`, receive
the job as a framed message, *pull* their chunks one at a time from the
coordinator-hosted :class:`~repro.core.scheduler.ChunkService`
(``CHUNK_REQ``/``CHUNK_GRANT`` control frames — an idle rank steals
from the longest queue at runtime, and every run records the resulting
:class:`~repro.core.scheduler.ScheduleTrace` as ``JobResult.schedule``),
shuffle peer-to-peer over TCP sockets, and report results (or remote
tracebacks) back over their control connection.

By default the executor spawns one rank process per worker on this
host, all over ``127.0.0.1`` — the test and single-node configuration.
The wire protocol is host-agnostic, so the same driver serves a real
multi-host run: construct with ``spawn_ranks=False`` (and typically
``host="0.0.0.0"``), read the port from
:attr:`ClusterExecutor.coordinator_address`, and start each rank with
``python -m repro.fabric.launch --coordinator host:port --rank N`` —
no code changes.  (With a wildcard bind, ``--coordinator`` takes the
driver's *real* interface address; ``0.0.0.0`` is bindable, not
dialable.)

Failure handling matches the local backend's contract: a rank that
raises ships its traceback upstream and the driver re-raises
:class:`WorkerFailure`; a rank that dies hard is caught either by the
coordinator (its control socket hits EOF) or by the driver's process
liveness probe, never waited out.
"""

from __future__ import annotations

import multiprocessing as mp
import sys
import time
import traceback
from typing import Dict, List, Optional, Sequence

from .local import WorkerFailure, _default_start_method, dead_worker_failure
from ..core.chunk import Chunk
from ..core.executor import Executor, register_backend
from ..core.faults import FaultPlan
from ..core.job import MapReduceJob
from ..core.kvset import KeyValueSet
from ..core.runtime import JobResult, resolve_chunks
from ..core.scheduler import DEFAULT_PREFETCH_WINDOW, ScheduleTrace
from ..core.stats import JobStats, WorkerStats
from ..obs import Observability
from ..fabric import (
    DEFAULT_MAX_FRAME_BYTES,
    Coordinator,
    PeerDisconnected,
    RankFailure,
    run_rank,
)
from ..workloads.base import Dataset

__all__ = ["ClusterExecutor"]


def _rank_main(
    rank: int,
    host: str,
    port: int,
    timeout_seconds: float,
    max_frame_bytes: int,
    listen_port: int = 0,
    rejoin: bool = False,
    auth_key: Optional[bytes] = None,
) -> None:
    """Process target for one locally spawned rank."""
    try:
        run_rank(
            rank,
            (host, port),
            listen_host="127.0.0.1",
            timeout_seconds=timeout_seconds,
            max_frame_bytes=max_frame_bytes,
            listen_port=listen_port,
            rejoin=rejoin,
            auth_key=auth_key,
        )
    except Exception:
        # The endpoint could not ship its traceback over the control
        # link; put it on stderr and die visibly so the driver's
        # liveness probe attributes the failure instead of waiting for
        # a timeout.
        traceback.print_exc()
        sys.exit(1)


class ClusterExecutor(Executor):
    """Execute jobs on ``n_workers`` ranks joined by the TCP fabric."""

    name = "cluster"

    def __init__(
        self,
        n_workers: int,
        initial_distribution: str = "round_robin",
        start_method: Optional[str] = None,
        timeout_seconds: float = 300.0,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        spawn_ranks: bool = True,
        compress_exchange: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        obs: Optional[Observability] = None,
        trace_path: Optional[str] = None,
        auth_key: Optional[bytes] = None,
        prefetch_window: int = DEFAULT_PREFETCH_WINDOW,
        accel: Optional[str] = None,
        fused: Optional[bool] = None,
    ) -> None:
        super().__init__(
            n_workers, obs=obs, trace_path=trace_path, accel=accel, fused=fused
        )
        #: grant pipelining depth shipped to ranks via ASSIGN: each
        #: rank keeps up to ``1 + prefetch_window`` CHUNK_REQ frames in
        #: flight so the next grant's wire time hides under the current
        #: chunk's map (0 restores strict request/reply)
        self.prefetch_window = max(0, int(prefetch_window))
        #: shared HMAC key; when set the coordinator challenges every
        #: connection and spawned local ranks answer with the same key
        #: (externally launched ranks pass it via
        #: ``repro.fabric.launch --auth-key-env/--auth-key-file``)
        self.auth_key = auth_key
        self.initial_distribution = initial_distribution
        self.start_method = start_method or _default_start_method()
        self.timeout_seconds = float(timeout_seconds)
        self.host = host
        self.port = int(port)
        self.max_frame_bytes = int(max_frame_bytes)
        self.spawn_ranks = spawn_ranks
        #: scripted fault injection + recovery policy (see
        #: :class:`~repro.core.faults.FaultPlan`); requires
        #: ``spawn_ranks=True`` for respawn — externally launched ranks
        #: can still *rejoin* via ``repro.fabric.launch --rejoin``, but
        #: nobody restarts them automatically
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.validate_for(n_workers)
        #: zlib-deflate shuffle chunks on the wire (worth it only when
        #: a real NIC, not loopback, is the bottleneck)
        self.compress_exchange = bool(compress_exchange)
        #: (host, port) of the live coordinator; set for the duration of
        #: :meth:`run` — the address external ranks dial when
        #: ``spawn_ranks=False``.
        self.coordinator_address: Optional[tuple] = None

    def run(
        self,
        job: MapReduceJob,
        dataset: Optional[Dataset] = None,
        chunks: Optional[Sequence[Chunk]] = None,
        schedule: Optional[ScheduleTrace] = None,
    ) -> JobResult:
        self._check_open()
        # Stamp accel/fused into the job config before the coordinator
        # pickles the job into its ASSIGN payload — remote endpoints'
        # MapRunners read it straight off the config, no wire changes.
        job = self._configure_job(job)
        all_chunks = resolve_chunks(dataset, chunks)
        fault = self.fault_plan
        if fault is not None and schedule is not None:
            raise ValueError(
                "fault_plan and schedule replay are mutually exclusive: a "
                "recorded trace already fixes every grant, so there is "
                "nothing to reclaim or speculate"
            )
        if (
            fault is not None
            and fault.speculate_after is not None
            and (
                job.accumulator is not None
                or job.combiner is not None
                or (job.config.fused and job.fused is not None)
            )
        ):
            raise ValueError(
                "speculate_after requires per-chunk map emissions; job "
                f"{job.name!r} uses an accumulator/combiner/fused kernel "
                "whose finish-time output cannot be deduplicated per chunk"
            )
        run_obs = self._begin_obs()
        # The driver hosts the pull authority; ranks reach it through
        # the coordinator's CHUNK_REQ/CHUNK_GRANT control frames.
        service = self._make_chunk_service(
            all_chunks,
            job,
            schedule=schedule,
            speculate_after=None if fault is None else fault.speculate_after,
            obs=run_obs,
        )

        procs: Dict[int, mp.process.BaseProcess] = {}
        respawns_left = {
            rank: (0 if fault is None else fault.max_respawns)
            for rank in range(self.n_workers)
        }

        def _probe() -> None:
            # Under a fault plan a dead rank is not (yet) a failure:
            # the coordinator notices the broken control socket and
            # decides — reclaim + respawn, or raise RankFailure once
            # the budget/recoverability runs out.
            candidates = [
                p for rank, p in procs.items()
                if not (fault is not None and respawns_left[rank] > 0)
            ]
            failure = dead_worker_failure(candidates)
            if failure is not None:
                raise failure

        t_start = time.perf_counter()
        with Coordinator(
            self.n_workers,
            host=self.host,
            port=self.port,
            timeout_seconds=self.timeout_seconds,
            max_frame_bytes=self.max_frame_bytes,
            liveness_probe=_probe if self.spawn_ranks else None,
            compress_exchange=self.compress_exchange,
            obs=run_obs,
            auth_key=self.auth_key,
            prefetch_window=self.prefetch_window,
        ) as coordinator:
            self.coordinator_address = coordinator.address
            respawner = None
            if self.spawn_ranks:
                # A wildcard bind is not dialable; local ranks always
                # reach a wildcard-bound coordinator over loopback.
                dial_host = (
                    "127.0.0.1"
                    if coordinator.host in ("0.0.0.0", "::", "")
                    else coordinator.host
                )
                ctx = mp.get_context(self.start_method)

                def spawn(rank: int, incarnation: int, listen_port: int = 0):
                    return ctx.Process(
                        target=_rank_main,
                        args=(
                            rank,
                            dial_host,
                            coordinator.port,
                            self.timeout_seconds,
                            self.max_frame_bytes,
                            listen_port,
                            incarnation > 0,
                            self.auth_key,
                        ),
                        name=f"gpmr-cluster-r{rank}.{incarnation}",
                        daemon=True,
                    )

                for rank in range(self.n_workers):
                    procs[rank] = spawn(rank, 0)
                for p in procs.values():
                    p.start()

                def respawner(rank: int, listen_port: int) -> bool:
                    """Coordinator callback: restart a dead rank's
                    process as a rejoining replacement on the same
                    shuffle port.  False once the budget is spent."""
                    if respawns_left.get(rank, 0) <= 0 or fault is None:
                        return False
                    respawns_left[rank] -= 1
                    incarnation = fault.max_respawns - respawns_left[rank]
                    procs[rank] = spawn(rank, incarnation, listen_port)
                    procs[rank].start()
                    return True

            try:
                coordinator.wait_for_ranks()
                coordinator.broadcast_assignments(job, fault_plan=fault)
                coordinator.barrier("start")
                collected = coordinator.collect_results(
                    chunk_service=service,
                    respawner=respawner if fault is not None else None,
                )
            except RankFailure as exc:
                raise WorkerFailure(exc.rank, exc.detail) from exc
            except PeerDisconnected as exc:
                # Recv-side deaths become RankFailure inside the
                # coordinator; this catches the rare send-side races so
                # the documented contract (WorkerFailure or
                # TimeoutError) holds for every rank-death path.
                raise WorkerFailure(-1, f"a rank disconnected: {exc}") from exc
            finally:
                self.coordinator_address = None
                for p in procs.values():
                    if p.is_alive():
                        p.terminate()
                for p in procs.values():
                    p.join(timeout=5.0)

        outputs: List[Optional[KeyValueSet]] = [None] * self.n_workers
        worker_stats: List[WorkerStats] = []
        for rank, output, stats in collected:
            outputs[rank] = output
            worker_stats.append(
                stats if stats is not None else WorkerStats(rank=rank)
            )
        if run_obs is not None:
            for payload in coordinator.obs_payloads.values():
                run_obs.absorb(payload)

        # Every chunk must have been granted: a rank that reported a
        # result without draining the service would silently drop work.
        if service.remaining:
            raise WorkerFailure(
                -1,
                f"all ranks reported results but {service.remaining} "
                "chunk(s) were never granted",
            )
        # Ranks report the chunks/steals they pulled over the wire; the
        # service logged what it granted.  The ledgers must agree.
        service.validate_ledgers(worker_stats)
        service.record_outcomes()

        elapsed = time.perf_counter() - t_start
        job_stats = JobStats(
            job_name=job.name,
            n_gpus=self.n_workers,
            elapsed=elapsed,
            workers=worker_stats,
            chunks_reclaimed=service.chunks_reclaimed,
            speculative_wins=service.speculative_wins,
            retries_by_worker=list(service.retries_by_worker),
            clock="wall",
        )
        self._finish_obs(run_obs, job_stats)
        return JobResult(
            stats=job_stats,
            outputs=outputs,
            schedule=schedule if schedule is not None else service.trace,
            obs=run_obs,
        )


register_backend(ClusterExecutor.name, ClusterExecutor)

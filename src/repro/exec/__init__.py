"""Real execution backends (vs. the discrete-event sim in S6).

Importing this package registers the ``"local"`` (multiprocessing),
``"serial"`` (in-process), and ``"cluster"`` (TCP socket fabric)
backends with :func:`repro.core.executor.make_executor`; the ``"sim"``
backend is registered by :mod:`repro.core` itself.

    from repro.core import make_executor
    result = make_executor("local", 4).run(job, dataset)
    result = make_executor("cluster", 4).run(job, dataset)
"""

from .cluster import ClusterExecutor
from .dataflow import (
    MapPhaseOutput,
    MapRunner,
    map_worker,
    merge_incoming,
    reduce_worker,
)
from .local import LocalExecutor, WorkerFailure
from .serial import SerialExecutor

__all__ = [
    "ClusterExecutor",
    "LocalExecutor",
    "SerialExecutor",
    "WorkerFailure",
    "MapPhaseOutput",
    "MapRunner",
    "map_worker",
    "merge_incoming",
    "reduce_worker",
]

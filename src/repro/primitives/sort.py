"""LSD radix sort — the CUDPP/Satish-et-al. sort role.

This is a genuine least-significant-digit radix sort built from
counting-sort passes (histogram + exclusive scan + stable scatter), not
a call to ``np.sort``: the pass structure is what gives the cost model
its shape (cost scales with passes = ceil(key_bits / digit_bits), as in
Satish, Harris & Garland, IPDPS 2009, which the paper uses via CUDPP).

``radix_sort_pairs`` carries a value payload through the scatter, which
is how GPMR sorts its key-value sets.  Values may be any ndarray whose
first dimension matches the keys (e.g. ``(n, dims)`` float blocks).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .common import accel_namespace_for, as_1d_array, launch_1d
from ..hw.kernel import KernelLaunch

__all__ = [
    "radix_sort",
    "radix_sort_pairs",
    "radix_sort_cost",
    "bitonic_sort_cost",
    "significant_bits",
]

#: Digit width used by the GPU counting-sort passes.
DIGIT_BITS = 8


def significant_bits(keys: np.ndarray) -> int:
    """Number of key bits the sort must process (max over the array)."""
    k = as_1d_array(keys)
    if len(k) == 0:
        return 0
    if k.dtype.kind not in "iu":
        raise TypeError(f"radix sort requires integer keys, got {k.dtype}")
    mx = int(k.max(initial=0))
    mn = int(k.min(initial=0))
    if mn < 0:
        raise ValueError("radix sort requires non-negative keys")
    return max(int(mx).bit_length(), 1)


def _counting_pass(keys: np.ndarray, order: np.ndarray, shift: int) -> np.ndarray:
    """One stable counting-sort pass on the digit at ``shift``.

    NumPy's ``argsort(kind="stable")`` on a uint8 array *is* a counting
    sort internally (radix dispatch for small integer dtypes), so this
    delegates the histogram+scan+stable-scatter to one call while
    keeping the pass-per-digit structure explicit for the cost model.
    """
    digits = ((keys[order] >> shift) & ((1 << DIGIT_BITS) - 1)).astype(np.uint8)
    perm = np.argsort(digits, kind="stable")
    return order[perm]


def radix_sort(keys: np.ndarray, key_bits: Optional[int] = None) -> np.ndarray:
    """Return ``keys`` sorted ascending (stable), via LSD radix passes."""
    sorted_keys, _ = radix_sort_pairs(keys, None, key_bits=key_bits)
    return sorted_keys


def radix_sort_pairs(
    keys: np.ndarray,
    values: Optional[np.ndarray],
    key_bits: Optional[int] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Stable-sort ``keys`` carrying ``values``; returns sorted copies."""
    ns = accel_namespace_for(keys)
    if ns is not None:
        return ns.sort_pairs(keys, values, key_bits=key_bits)
    k = as_1d_array(keys)
    if k.dtype.kind not in "iu":
        raise TypeError(f"radix sort requires integer keys, got {k.dtype}")
    if values is not None and len(values) != len(k):
        raise ValueError("values must have the same length as keys")
    bits = significant_bits(k) if key_bits is None else int(key_bits)
    order = np.arange(len(k), dtype=np.int64)
    for shift in range(0, bits, DIGIT_BITS):
        order = _counting_pass(k, order, shift)
    sorted_keys = k[order]
    sorted_values = values[order] if values is not None else None
    return sorted_keys, sorted_values


def radix_sort_cost(
    n: int,
    key_bits: int = 32,
    value_bytes: int = 4,
    key_bytes: int = 4,
) -> List[KernelLaunch]:
    """Cost of sorting ``n`` (key, value) pairs: one launch per digit pass.

    Each pass histograms, scans the 256-bin table, and scatters keys and
    values.  Reads are coalesced; the scatter write is not (~0.4
    effective, matching measured GT200 radix throughput of roughly 1
    G-pairs/s for 32-bit keys).
    """
    passes = max(1, (max(key_bits, 1) + DIGIT_BITS - 1) // DIGIT_BITS)
    pair = key_bytes + value_bytes
    per_pass = launch_1d(
        "radix_pass",
        n,
        flops_per_item=4.0,
        read_bytes_per_item=pair + key_bytes,   # payload read + digit re-read
        write_bytes_per_item=float(pair),
        coalescing=0.4,                          # scatter-dominated
        syncs=2,                                 # histogram + scan sub-steps
    )
    return [per_pass] * passes


def bitonic_sort_cost(
    n: int,
    value_bytes: int = 4,
    key_bytes: int = 4,
) -> List[KernelLaunch]:
    """Cost of a bitonic sort of ``n`` pairs — Mars's sorter.

    Bitonic sort runs ``log2(n) * (log2(n) + 1) / 2`` compare-exchange
    stages, each streaming every pair through global memory once.  The
    O(n log^2 n) traffic (vs. radix's O(n)) is a large part of why GPMR
    beats Mars on sort-heavy jobs (Table 3); Mars's published design
    uses bitonic sort [He et al. 2008].
    """
    if n <= 1:
        return [launch_1d("bitonic_stage", max(n, 1), read_bytes_per_item=1.0)]
    log_n = int(np.ceil(np.log2(n)))
    stages = log_n * (log_n + 1) // 2
    pair = key_bytes + value_bytes
    per_stage = launch_1d(
        "bitonic_stage",
        n,
        flops_per_item=2.0,
        read_bytes_per_item=float(pair),
        write_bytes_per_item=float(pair),
        coalescing=0.5,  # strided partner access
        syncs=1,
    )
    return [per_stage] * stages

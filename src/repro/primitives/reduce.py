"""Reduction primitives: full and segmented reduces.

Segmented reduce is the workhorse of the GPMR Reduce stage: after the
sort, each key's values are contiguous, and a segmented reduction
produces one output per key.  The cost model is a single streaming pass
(tree reduction in shared memory is bandwidth-bound at these sizes)
plus a short second pass over per-block partials.
"""

from __future__ import annotations


import numpy as np

from .common import accel_namespace_for, as_1d_array, launch_1d
from ..hw.kernel import KernelLaunch

__all__ = ["reduce_array", "segmented_reduce", "reduce_cost", "segmented_reduce_cost"]

_UFUNCS = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
    "prod": np.multiply,
}


def reduce_array(values: np.ndarray, op: str = "sum"):
    """Full reduction of ``values`` with a named associative operator."""
    v = as_1d_array(values)
    if op not in _UFUNCS:
        raise ValueError(f"unknown reduction op {op!r}; choose from {sorted(_UFUNCS)}")
    if len(v) == 0:
        raise ValueError("cannot reduce an empty array")
    return _UFUNCS[op].reduce(v)


def segmented_reduce(
    values: np.ndarray,
    segment_offsets: np.ndarray,
    op: str = "sum",
) -> np.ndarray:
    """Reduce each contiguous segment of ``values``.

    ``segment_offsets`` holds each segment's start index (monotonically
    non-decreasing, first element 0); segment ``i`` spans
    ``values[offsets[i]:offsets[i+1]]`` (last runs to the end).
    Zero-length segments reduce to the operator's identity (0 for sum).
    """
    ns = accel_namespace_for(values)
    if ns is not None:
        return ns.segmented_reduce(values, segment_offsets, op=op)
    v = as_1d_array(values)
    offsets = as_1d_array(segment_offsets, dtype=np.int64)
    if op not in _UFUNCS:
        raise ValueError(f"unknown reduction op {op!r}")
    if len(offsets) == 0:
        return np.empty(0, dtype=v.dtype)
    if offsets[0] != 0:
        raise ValueError("segment_offsets[0] must be 0")
    if np.any(np.diff(offsets) < 0):
        raise ValueError("segment_offsets must be non-decreasing")
    if len(v) and offsets[-1] > len(v):
        raise ValueError("segment offset beyond end of values")

    if op == "sum":
        # reduceat mishandles empty segments (it repeats the next value),
        # so run it over the non-empty offsets only: consecutive non-empty
        # offsets span exactly one real segment (empties contribute no
        # elements).  This keeps summation *within* each segment — a
        # cumsum-difference formulation would leak floating-point error
        # across segment boundaries.
        ends = np.concatenate((offsets[1:], [len(v)]))
        lengths = ends - offsets
        out = np.zeros(len(offsets), dtype=v.dtype)
        nonempty = lengths > 0
        if np.any(nonempty):
            out[nonempty] = np.add.reduceat(v, offsets[nonempty])
        return out

    ufunc = _UFUNCS[op]
    ends = np.concatenate((offsets[1:], [len(v)]))
    lengths = ends - offsets
    if np.any(lengths == 0):
        raise ValueError(f"zero-length segment not supported for op {op!r}")
    return ufunc.reduceat(v, offsets)


def reduce_cost(n: int, itemsize: int = 4) -> KernelLaunch:
    """Cost of one full reduction pass over ``n`` items."""
    return launch_1d(
        "reduce",
        n,
        flops_per_item=1.0,
        read_bytes_per_item=float(itemsize),
        write_bytes_per_item=0.01 * itemsize,  # per-block partials
        items_per_thread=4,
        syncs=1,
    )


def segmented_reduce_cost(
    n_values: int,
    n_segments: int,
    itemsize: int = 4,
    coalescing: float = 1.0,
) -> KernelLaunch:
    """Cost of a segmented reduction (one streaming pass + outputs)."""
    n_segments = max(int(n_segments), 1)
    return launch_1d(
        "segmented_reduce",
        max(n_values, 1),
        flops_per_item=1.0,
        read_bytes_per_item=float(itemsize),
        write_bytes_per_item=itemsize * n_segments / max(n_values, 1),
        coalescing=coalescing,
        items_per_thread=4,
        syncs=1,
    )

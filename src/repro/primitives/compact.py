"""Stream compaction: keep the flagged elements, preserving order.

On the GPU this is scan + scatter (the canonical CUDPP compact); the
cost model reflects both passes.
"""

from __future__ import annotations


import numpy as np

from .common import as_1d_array, launch_1d
from ..hw.kernel import KernelLaunch

__all__ = ["compact", "compact_cost"]


def compact(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Return ``values[mask]`` (order-preserving compaction)."""
    v = np.asarray(values)
    m = as_1d_array(mask, dtype=bool)
    if len(v) != len(m):
        raise ValueError("values and mask must have equal length")
    return v[m]


def compact_cost(n: int, itemsize: int = 4, keep_fraction: float = 1.0) -> KernelLaunch:
    """Cost of compacting ``n`` items, writing ``keep_fraction`` of them."""
    if not (0.0 <= keep_fraction <= 1.0):
        raise ValueError("keep_fraction must be in [0, 1]")
    return launch_1d(
        "compact",
        n,
        flops_per_item=1.0,
        # scan pass (flag read/write) + scatter pass (payload).
        read_bytes_per_item=1.0 + itemsize,
        write_bytes_per_item=1.0 + itemsize * keep_fraction,
        coalescing=0.7,  # scatter writes are mostly-but-not-fully coalesced
        syncs=1,
    )

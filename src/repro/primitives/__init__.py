"""Data-parallel primitive library (substrate S5 — the CUDPP role).

Each primitive has two faces:

* a **functional** face — exact, vectorised NumPy computation;
* a **temporal** face — a ``*_cost(...)`` function returning
  :class:`~repro.hw.kernel.KernelLaunch` descriptors that the GPMR
  pipeline charges to the simulated GPU.

Primitives: scan (plain/segmented), reduce (full/segmented), LSD radix
sort (keys / key-value pairs), stream compaction, histogram, and
duplicate-key elimination over sorted keys.
"""

from .common import DEFAULT_BLOCK, grid_for, launch_1d
from .compact import compact, compact_cost
from .histogram import histogram, histogram_cost
from .reduce import reduce_array, reduce_cost, segmented_reduce, segmented_reduce_cost
from .scan import exclusive_scan, inclusive_scan, scan_cost, segmented_scan
from .sort import (
    bitonic_sort_cost,
    radix_sort,
    radix_sort_cost,
    radix_sort_pairs,
    significant_bits,
)
from .unique import KeyRuns, unique_segments, unique_segments_cost

__all__ = [
    "DEFAULT_BLOCK",
    "grid_for",
    "launch_1d",
    "exclusive_scan",
    "inclusive_scan",
    "segmented_scan",
    "scan_cost",
    "reduce_array",
    "segmented_reduce",
    "reduce_cost",
    "segmented_reduce_cost",
    "radix_sort",
    "radix_sort_pairs",
    "radix_sort_cost",
    "bitonic_sort_cost",
    "significant_bits",
    "compact",
    "compact_cost",
    "histogram",
    "histogram_cost",
    "KeyRuns",
    "unique_segments",
    "unique_segments_cost",
]

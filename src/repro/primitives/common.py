"""Shared helpers for the data-parallel primitive library."""

from __future__ import annotations

import numpy as np

from ..hw.kernel import KernelLaunch

__all__ = [
    "DEFAULT_BLOCK",
    "grid_for",
    "launch_1d",
    "as_1d_array",
    "accel_namespace_for",
]

#: Default CUDA block size used by the primitive cost models.
DEFAULT_BLOCK = 256


def grid_for(n_items: int, block: int = DEFAULT_BLOCK, items_per_thread: int = 1) -> int:
    """Number of blocks needed for ``n_items`` with the given geometry."""
    if n_items <= 0:
        return 1
    threads = (n_items + items_per_thread - 1) // items_per_thread
    return max(1, (threads + block - 1) // block)


def launch_1d(
    name: str,
    n_items: int,
    *,
    flops_per_item: float = 0.0,
    read_bytes_per_item: float = 0.0,
    write_bytes_per_item: float = 0.0,
    coalescing: float = 1.0,
    atomics_per_item: float = 0.0,
    atomic_conflict: float = 1.0,
    divergence: float = 1.0,
    items_per_thread: int = 1,
    block: int = DEFAULT_BLOCK,
    syncs: int = 0,
) -> KernelLaunch:
    """Build a 1-D elementwise :class:`KernelLaunch` from per-item rates."""
    n = max(int(n_items), 0)
    return KernelLaunch(
        name=name,
        grid_blocks=grid_for(n, block=block, items_per_thread=items_per_thread),
        block_threads=block,
        flops=flops_per_item * n,
        gmem_read=read_bytes_per_item * n,
        gmem_write=write_bytes_per_item * n,
        coalescing=coalescing,
        atomics=atomics_per_item * n,
        atomic_conflict=atomic_conflict,
        divergence=divergence,
        syncs=syncs,
    )


def as_1d_array(a, dtype=None) -> np.ndarray:
    """Validate/convert input to a contiguous 1-D ndarray."""
    arr = np.ascontiguousarray(a, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {arr.shape}")
    return arr


def accel_namespace_for(arr):
    """The *device* namespace owning ``arr``, or None for host inputs.

    The functional primitives call this first so a CuPy/Torch array
    flows to its library's implementation while ndarrays (and anything
    coercible — lists, scalars) keep taking the exact NumPy path the
    seed shipped with.  The import is lazy: accel sits above primitives
    in the layer order.
    """
    if isinstance(arr, np.ndarray) or not hasattr(arr, "dtype"):
        return None
    from ..accel.namespace import namespace_of  # noqa: PLC0415 - layer order

    ns = namespace_of(arr)
    if ns is None or ns.is_host:
        return None
    return ns

"""Histogramming: per-bin counts with an atomics-based cost model.

GPMR's default partitioner sizes its buckets with a histogram over
destination reducer indices; WO's accumulated map is effectively a
histogram with atomic increments.  The functional result comes from
``np.bincount``; the cost model prices per-item atomics with a conflict
factor that grows as bins get fewer (more same-address contention).
"""

from __future__ import annotations

import numpy as np

from .common import as_1d_array, launch_1d
from ..hw.kernel import KernelLaunch

__all__ = ["histogram", "histogram_cost"]


def histogram(keys: np.ndarray, n_bins: int) -> np.ndarray:
    """Counts per bin for integer ``keys`` in ``[0, n_bins)``."""
    k = as_1d_array(keys)
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    if len(k):
        if k.dtype.kind not in "iu":
            raise TypeError("histogram requires integer keys")
        if int(k.min(initial=0)) < 0 or int(k.max(initial=0)) >= n_bins:
            raise ValueError("keys out of range for histogram bins")
    return np.bincount(k, minlength=n_bins).astype(np.int64)


def atomic_conflict_factor(n_items: int, n_bins: int) -> float:
    """Expected same-address serialisation for random keys.

    With many more items than bins, warps repeatedly hit the same bin:
    conflict grows toward warp width; with ample bins it stays ~1.
    """
    if n_items <= 0 or n_bins <= 0:
        return 1.0
    per_warp = 32.0
    expected_collisions = per_warp / max(n_bins, 1)
    return float(min(per_warp, max(1.0, expected_collisions)))


def histogram_cost(n: int, n_bins: int, itemsize: int = 4) -> KernelLaunch:
    """Cost of an atomics-based histogram over ``n`` keys."""
    return launch_1d(
        "histogram",
        n,
        flops_per_item=1.0,
        read_bytes_per_item=float(itemsize),
        write_bytes_per_item=0.0,
        atomics_per_item=1.0,
        atomic_conflict=atomic_conflict_factor(n, n_bins),
    )

"""Parallel prefix-sum (scan) primitives — the CUDPP scan role.

Functional results are exact (NumPy cumulative sums); the cost model
follows the work-efficient Blelloch scan of Harris et al. (GPU Gems 3,
ch. 39), which GPMR uses via CUDPP: an up-sweep and a down-sweep, each
streaming the array once, so ~4 n element transfers end to end plus a
small recursive block-sums term (folded into a 1.1x factor).
"""

from __future__ import annotations


import numpy as np

from .common import accel_namespace_for, as_1d_array, launch_1d
from ..hw.kernel import KernelLaunch

__all__ = [
    "exclusive_scan",
    "inclusive_scan",
    "segmented_scan",
    "scan_cost",
]


def exclusive_scan(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: ``out[i] = sum(values[:i])``."""
    ns = accel_namespace_for(values)
    if ns is not None:
        return ns.exclusive_scan(values)
    v = as_1d_array(values)
    out = np.empty_like(v)
    if len(v):
        out[0] = 0
        np.cumsum(v[:-1], out=out[1:])
    return out


def inclusive_scan(values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum: ``out[i] = sum(values[:i + 1])``."""
    ns = accel_namespace_for(values)
    if ns is not None:
        return ns.inclusive_scan(values)
    return np.cumsum(as_1d_array(values))


def segmented_scan(values: np.ndarray, segment_heads: np.ndarray) -> np.ndarray:
    """Inclusive scan that restarts at every ``segment_heads`` flag.

    ``segment_heads`` is a boolean array; ``True`` marks the first
    element of a segment.  Implemented with the standard
    subtract-segment-offset trick so it stays fully vectorised.
    """
    v = as_1d_array(values)
    heads = as_1d_array(segment_heads, dtype=bool)
    if v.shape != heads.shape:
        raise ValueError("values and segment_heads must have equal length")
    if len(v) == 0:
        return v.copy()
    if not heads[0]:
        raise ValueError("segment_heads[0] must be True (first segment start)")
    total = np.cumsum(v)
    # Total just before each segment start, broadcast over the segment.
    seg_index = np.cumsum(heads) - 1
    head_positions = np.flatnonzero(heads)
    base = np.concatenate(([0], total[head_positions[1:] - 1]))
    return total - base[seg_index]


def scan_cost(n: int, itemsize: int = 4) -> KernelLaunch:
    """Cost of a work-efficient scan over ``n`` items of ``itemsize`` bytes."""
    # Up-sweep reads+writes n, down-sweep reads+writes n => 4 n moves;
    # 1.1x covers the recursive scan of per-block sums.
    return launch_1d(
        "cudpp_scan",
        n,
        flops_per_item=2.0,
        read_bytes_per_item=2.2 * itemsize,
        write_bytes_per_item=2.2 * itemsize,
        syncs=2,
    )

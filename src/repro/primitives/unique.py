"""Duplicate-key elimination over sorted keys (GPMR Sort-stage epilogue).

After the radix sort, GPMR "discards duplicate keys.  Because of the
sort, each key's value is stored contiguously.  Hence, we only need the
number of values and the index of the first value to describe each
sequence" (paper Section 4.2).  That is exactly what
:func:`unique_segments` computes: unique keys, the start offset of each
key's value run, and the run length.

On the GPU this is a head-flags pass + scan + compact; the cost model
charges those passes.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from .common import accel_namespace_for, as_1d_array, launch_1d
from .compact import compact_cost
from .scan import scan_cost

__all__ = ["KeyRuns", "unique_segments", "unique_segments_cost"]


class KeyRuns(NamedTuple):
    """Run-length description of a sorted key array."""

    unique_keys: np.ndarray   #: one entry per distinct key, ascending
    offsets: np.ndarray       #: start index of each key's value run
    counts: np.ndarray        #: run length per key

    @property
    def n_keys(self) -> int:
        return len(self.unique_keys)


def unique_segments(sorted_keys: np.ndarray) -> KeyRuns:
    """Run-length encode a *sorted* key array.

    Raises if the keys are not in non-decreasing order (the GPU code
    would silently produce garbage; we check because we can).
    """
    ns = accel_namespace_for(sorted_keys)
    if ns is not None:
        return ns.unique_segments(sorted_keys)
    k = as_1d_array(sorted_keys)
    if len(k) == 0:
        empty_off = np.empty(0, dtype=np.int64)
        return KeyRuns(k.copy(), empty_off, empty_off.copy())
    # Compare rather than diff: unsigned dtypes wrap under subtraction.
    if np.any(k[1:] < k[:-1]):
        raise ValueError("unique_segments requires sorted keys")
    heads = np.empty(len(k), dtype=bool)
    heads[0] = True
    np.not_equal(k[1:], k[:-1], out=heads[1:])
    offsets = np.flatnonzero(heads).astype(np.int64)
    counts = np.diff(np.concatenate((offsets, [len(k)])))
    return KeyRuns(k[offsets], offsets, counts)


def unique_segments_cost(n: int, n_unique: int, key_bytes: int = 4) -> list:
    """Cost: head-flag pass, scan, and compaction of three output arrays."""
    flags = launch_1d(
        "head_flags",
        n,
        flops_per_item=1.0,
        read_bytes_per_item=2.0 * key_bytes,  # key[i] and key[i-1]
        write_bytes_per_item=1.0,
    )
    keep = n_unique / max(n, 1)
    return [
        flags,
        scan_cost(n, itemsize=4),
        compact_cost(n, itemsize=key_bytes + 8, keep_fraction=keep),
    ]

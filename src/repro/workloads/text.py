"""Word Occurrence workload: synthetic corpus over a 43,000-word dictionary.

The paper: "we used randomly generated text from a forty-three thousand
word dictionary ... separated at line boundaries.  Each chunk contains
millions of bytes."  We build the dictionary deterministically from
syllables (pronounceable, unique, 4–16 characters) and generate chunks
of space/newline-separated words drawn uniformly.

Also provides :func:`tokenize`, the vectorised word splitter both the
GPMR WO mapper and the baselines share.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from .base import Dataset, WorkItem
from ..util.rng import generator
from ..util.validation import check_positive

__all__ = ["build_dictionary", "TextDataset", "tokenize", "DICTIONARY_WORDS"]

#: Size of the paper's corpus dictionary.
DICTIONARY_WORDS = 43_000

_ONSETS = ["b", "br", "c", "ch", "cr", "d", "dr", "f", "fl", "g", "gr",
           "h", "j", "k", "kl", "l", "m", "n", "p", "pl", "pr", "qu",
           "r", "s", "sk", "sl", "sm", "sn", "sp", "st", "str", "t",
           "th", "tr", "v", "w", "z"]
_VOWELS = ["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"]
_CODAS = ["", "b", "ck", "d", "g", "l", "m", "n", "nd", "ng", "nk",
          "p", "r", "rd", "rk", "rm", "rn", "s", "st", "t", "x"]


def _syllable(i: int) -> str:
    o = _ONSETS[i % len(_ONSETS)]
    v = _VOWELS[(i // len(_ONSETS)) % len(_VOWELS)]
    c = _CODAS[(i // (len(_ONSETS) * len(_VOWELS))) % len(_CODAS)]
    return o + v + c


@lru_cache(maxsize=4)
def build_dictionary(n_words: int = DICTIONARY_WORDS) -> Tuple[bytes, ...]:
    """``n_words`` unique deterministic pronounceable words, as bytes."""
    check_positive(n_words, "n_words")
    n_syll = len(_ONSETS) * len(_VOWELS) * len(_CODAS)
    words: List[bytes] = []
    seen = set()
    i = 0
    while len(words) < n_words:
        # Two-syllable words first, then three-syllable.
        if i < n_syll * n_syll:
            a, b = divmod(i, n_syll)
            w = (_syllable(a) + _syllable(b)).encode()
        else:  # pragma: no cover - dictionary sizes never reach this
            j = i - n_syll * n_syll
            a, rest = divmod(j, n_syll * n_syll)
            b, c = divmod(rest, n_syll)
            w = (_syllable(a) + _syllable(b) + _syllable(c)).encode()
        if w not in seen:
            seen.add(w)
            words.append(w)
        i += 1
    return tuple(words)


def tokenize(text: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split a uint8 text buffer into words (vectorised).

    Returns ``(starts, lengths)`` for every maximal run of
    non-separator bytes; separators are space (0x20) and newline (0x0A).
    """
    t = np.asarray(text, dtype=np.uint8)
    if t.ndim != 1:
        raise ValueError("tokenize expects a 1-D byte array")
    if len(t) == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy()
    is_sep = (t == 0x20) | (t == 0x0A)
    # Word starts: non-sep preceded by sep (or buffer start).
    prev_sep = np.empty(len(t), dtype=bool)
    prev_sep[0] = True
    prev_sep[1:] = is_sep[:-1]
    starts = np.flatnonzero(~is_sep & prev_sep).astype(np.int64)
    # Word ends: non-sep followed by sep (or buffer end).
    next_sep = np.empty(len(t), dtype=bool)
    next_sep[-1] = True
    next_sep[:-1] = is_sep[1:]
    ends = np.flatnonzero(~is_sep & next_sep).astype(np.int64)
    return starts, ends - starts + 1


class TextDataset(Dataset):
    """Chunked random text over the dictionary (1-byte elements)."""

    def __init__(
        self,
        n_chars: int,
        chunk_chars: int = 32 << 20,
        n_words: int = DICTIONARY_WORDS,
        line_words: int = 12,
        seed: int = 0,
        sample_factor: int = 1,
    ) -> None:
        super().__init__(seed, sample_factor)
        check_positive(n_chars, "n_chars")
        check_positive(chunk_chars, "chunk_chars")
        check_positive(line_words, "line_words")
        self.n_chars = int(n_chars)
        self.chunk_chars = int(chunk_chars)
        self.line_words = int(line_words)
        self.dictionary = build_dictionary(n_words)
        # Pre-pack the dictionary into one blob for vectorised assembly.
        self._word_lens = np.array([len(w) for w in self.dictionary], dtype=np.int64)
        self._blob = np.frombuffer(b"".join(self.dictionary), dtype=np.uint8)
        self._blob_offsets = np.concatenate(
            ([0], np.cumsum(self._word_lens[:-1]))
        ).astype(np.int64)
        self._mean_word = float(self._word_lens.mean()) + 1.0  # + separator

    @property
    def n_chunks(self) -> int:
        return (self.n_chars + self.chunk_chars - 1) // self.chunk_chars

    def _logical_chars(self, index: int) -> int:
        lo = index * self.chunk_chars
        return min(self.chunk_chars, self.n_chars - lo)

    def chunk_meta(self, index: int):
        # Replays chunk()'s first (and size-determining) RNG draw to
        # compute the exact generated byte count without assembling the
        # payload — a streamed descriptor must carry the same logical
        # sizes the materialised chunk would.
        self._check_index(index)
        logical = self._logical_chars(index)
        actual_target = max(16, logical // self.sample_factor)
        rng = generator(self.seed, stream=(index,))
        n_words_est = max(1, int(actual_target / self._mean_word))
        ids = rng.integers(0, len(self.dictionary), size=n_words_est)
        total = int(self._word_lens[ids].sum()) + n_words_est
        logical_exact = total * self.sample_factor
        return logical_exact, logical_exact

    def chunk(self, index: int) -> WorkItem:
        self._check_index(index)
        logical = self._logical_chars(index)
        actual_target = max(16, logical // self.sample_factor)
        rng = generator(self.seed, stream=(index,))

        n_words_est = max(1, int(actual_target / self._mean_word))
        ids = rng.integers(0, len(self.dictionary), size=n_words_est)
        lens = self._word_lens[ids]
        # Separator: newline every `line_words` words, else space.
        seps = np.where(
            (np.arange(n_words_est) + 1) % self.line_words == 0, 0x0A, 0x20
        ).astype(np.uint8)
        # Vectorised gather/scatter assembly: copy every word's bytes
        # from the dictionary blob into its output slot in one shot.
        out_starts = (np.cumsum(lens + 1) - (lens + 1)).astype(np.int64)
        total = int(lens.sum()) + n_words_est
        buf = np.empty(total, dtype=np.uint8)
        within = np.arange(int(lens.sum())) - np.repeat(
            np.cumsum(lens) - lens, lens
        )
        src = np.repeat(self._blob_offsets[ids], lens) + within
        dst = np.repeat(out_starts, lens) + within
        buf[dst] = self._blob[src]
        buf[out_starts + lens] = seps
        # Logical size tracks the generated bytes exactly so every chunk
        # carries the same integer scale (sample_factor); the nominal
        # n_chars is a target, as in the paper's "millions of bytes".
        logical_exact = total * self.sample_factor
        del logical
        return WorkItem(
            index=index,
            data=buf,
            logical_items=logical_exact,
            logical_bytes=logical_exact,  # 1-byte elements (Table 1)
        )

    def words_in_logical_chars(self, n_chars: int) -> int:
        """Expected word count in ``n_chars`` of corpus."""
        return max(1, int(n_chars / self._mean_word))

"""Chunk readers: materialise map input lazily, at grant time.

Before streaming ingest every dataset was materialised in driver
memory before chunk 0 was granted, which caps job size at driver RAM.
A :class:`ChunkReader` inverts that: it describes a chunked input —
how many chunks, each chunk's logical size — and materialises any
chunk's payload *on demand*.  :func:`repro.core.scheduler.resolve_chunks`
turns a reader-backed dataset into descriptor-backed
:class:`~repro.core.chunk.Chunk` objects, so the driver schedules on
descriptors and only worker ranks ever hold payload arrays (one or
two chunks at a time with grant prefetch).

Three reader kinds:

* :class:`DatasetReader` — wraps any synthetic :class:`Dataset`: chunks
  re-materialise deterministically from ``(seed, chunk_index)``, the
  property ``workloads.base`` has always guaranteed.
* :class:`NpySpanReader` — row spans of an on-disk ``.npy`` array,
  opened ``mmap_mode="r"`` so only the touched span is ever resident.
* :class:`TextSpanReader` — byte spans of a text file, split on line
  boundaries (the paper's "separated at line boundaries"), scanned
  once at open without loading the body.

Readers pickle by *key*, not by state: ``__reduce__`` ships the few
scalars needed to rebuild the reader, and a per-process cache rebuilds
at most once per worker — so a grant that crosses a process or socket
boundary carries bytes, not gigabytes, and kill -9 recovery works for
free (the respawned rank's fresh process rebuilds the reader from the
descriptor it is re-granted).

:func:`streamed` wraps a dataset factory into a
:class:`StreamedDataset` — a drop-in :class:`Dataset` whose
``chunk_reader`` attribute routes ``resolve_chunks`` down the
streaming path while every app-facing attribute (``start_centers``,
``key_space``, ``dictionary``, the MM task plan...) delegates to the
wrapped instance, keeping runners oblivious.
"""

from __future__ import annotations

import functools
import importlib
import os
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .base import Dataset, WorkItem
from ..util.validation import check_positive

__all__ = [
    "ChunkReader",
    "DatasetReader",
    "NpySpanReader",
    "TextSpanReader",
    "StreamedDataset",
    "streamed",
]

_SCALARS = (type(None), bool, int, float, str, bytes)

#: One reader instance per (type, key) per process: unpickling a
#: granted descriptor rebuilds the reader at most once per worker, and
#: every later grant reuses it (mmap handle, boundary scan, built
#: dataset and all).
_CACHE: Dict[Tuple[type, Any], "ChunkReader"] = {}
_CACHE_LOCK = threading.Lock()


def _cached(cls: type, key: Any) -> "ChunkReader":
    """Pickle target: the process's one reader for ``(cls, key)``."""
    cache_key = (cls, key)
    with _CACHE_LOCK:
        inst = _CACHE.get(cache_key)
    if inst is not None:
        return inst
    inst = cls._from_key(key)
    with _CACHE_LOCK:
        return _CACHE.setdefault(cache_key, inst)


class ChunkReader:
    """A chunked input whose payloads materialise on demand.

    Subclasses implement the descriptor half (:attr:`n_chunks`,
    :meth:`chunk_meta`) without touching payload bytes, the
    materialisation half (:meth:`materialize`), and a :meth:`_key` of
    scalars sufficient to rebuild the reader in another process.
    """

    @property
    def n_chunks(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def chunk_meta(self, index: int) -> Tuple[int, int]:
        """``(logical_items, logical_bytes)`` of chunk ``index``,
        computed without materialising the payload."""
        raise NotImplementedError  # pragma: no cover - abstract

    def materialize(self, index: int) -> WorkItem:  # pragma: no cover
        raise NotImplementedError

    def _key(self) -> Tuple:  # pragma: no cover - abstract
        raise NotImplementedError

    @classmethod
    def _from_key(cls, key: Tuple) -> "ChunkReader":  # pragma: no cover
        raise NotImplementedError

    def __reduce__(self):
        return (_cached, (type(self), self._key()))

    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.n_chunks):
            raise IndexError(
                f"chunk index {index} out of range [0, {self.n_chunks})"
            )


class DatasetReader(ChunkReader):
    """Reader over a synthetic dataset factory and its scalar spec.

    Chunks re-materialise from ``(seed, chunk_index)`` — the
    determinism contract every :class:`Dataset` already keeps — so the
    "file" this reader streams from is the RNG.  The key is the
    factory's import path plus the spec, which is why spec values must
    be scalars: the key must round-trip through pickle byte-identically.
    """

    def __init__(self, factory: Any, spec: Dict[str, Any]) -> None:
        for k, v in spec.items():
            if not isinstance(v, _SCALARS):
                raise TypeError(
                    f"streamed spec value {k}={v!r} is not a scalar; "
                    "reader keys must rebuild the dataset in another "
                    "process from scalars alone"
                )
        self.factory = factory
        self.spec = dict(spec)
        #: the built dataset — resident in whichever process owns this
        #: reader, built lazily so the driver-side copy can stay cheap
        self._dataset: Optional[Dataset] = None
        self._build_lock = threading.Lock()

    @property
    def dataset(self) -> Dataset:
        if self._dataset is None:
            with self._build_lock:
                if self._dataset is None:
                    self._dataset = self.factory(**self.spec)
        return self._dataset

    @property
    def n_chunks(self) -> int:
        return self.dataset.n_chunks

    def chunk_meta(self, index: int) -> Tuple[int, int]:
        return self.dataset.chunk_meta(index)

    def materialize(self, index: int) -> WorkItem:
        return self.dataset.chunk(index)

    def _key(self) -> Tuple:
        return (
            self.factory.__module__,
            self.factory.__qualname__,
            tuple(sorted(self.spec.items())),
        )

    @classmethod
    def _from_key(cls, key: Tuple) -> "DatasetReader":
        module, qualname, spec_items = key
        obj: Any = importlib.import_module(module)
        obj = functools.reduce(getattr, qualname.split("."), obj)
        return cls(obj, dict(spec_items))


class NpySpanReader(ChunkReader):
    """Row spans of an on-disk ``.npy`` array, mmap'd read-only.

    Only the rows of a materialised span are ever faulted into memory;
    :meth:`materialize` copies the span out of the map so the payload
    owns its bytes (safe to release the map, ship the array, mutate).
    """

    def __init__(self, path: Any, rows_per_chunk: int) -> None:
        check_positive(rows_per_chunk, "rows_per_chunk")
        self.path = os.fspath(path)
        self.rows_per_chunk = int(rows_per_chunk)
        self._mmap = np.load(self.path, mmap_mode="r")
        if self._mmap.ndim < 1:
            raise ValueError("NpySpanReader needs an array with rows")
        self._rows = int(self._mmap.shape[0])
        self._row_bytes = int(self._mmap.dtype.itemsize)
        for dim in self._mmap.shape[1:]:
            self._row_bytes *= int(dim)

    @property
    def n_chunks(self) -> int:
        return (self._rows + self.rows_per_chunk - 1) // self.rows_per_chunk

    def _span(self, index: int) -> Tuple[int, int]:
        self._check_index(index)
        lo = index * self.rows_per_chunk
        return lo, min(self._rows, lo + self.rows_per_chunk)

    def chunk_meta(self, index: int) -> Tuple[int, int]:
        lo, hi = self._span(index)
        return hi - lo, (hi - lo) * self._row_bytes

    def materialize(self, index: int) -> WorkItem:
        lo, hi = self._span(index)
        data = np.array(self._mmap[lo:hi])
        return WorkItem(
            index=index,
            data=data,
            logical_items=hi - lo,
            logical_bytes=(hi - lo) * self._row_bytes,
        )

    def _key(self) -> Tuple:
        return (self.path, self.rows_per_chunk)

    @classmethod
    def _from_key(cls, key: Tuple) -> "NpySpanReader":
        path, rows_per_chunk = key
        return cls(path, rows_per_chunk)


class TextSpanReader(ChunkReader):
    """Byte spans of a text file, split at line boundaries.

    The boundary scan at open reads forward from each ``chunk_bytes``
    target to the next newline, so spans always hold whole lines (no
    word is ever split across chunks) and the scan touches a few KB per
    boundary, not the file body.  Payloads are uint8 arrays, the same
    shape :class:`~repro.workloads.text.TextDataset` chunks take.
    """

    def __init__(self, path: Any, chunk_bytes: int) -> None:
        check_positive(chunk_bytes, "chunk_bytes")
        self.path = os.fspath(path)
        self.chunk_bytes = int(chunk_bytes)
        self._offsets = self._scan_boundaries()

    def _scan_boundaries(self) -> Tuple[int, ...]:
        offsets = [0]
        with open(self.path, "rb") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            while size - offsets[-1] > self.chunk_bytes:
                target = offsets[-1] + self.chunk_bytes
                fh.seek(target)
                boundary = size
                scanned = target
                while scanned < size:
                    blob = fh.read(1 << 16)
                    if not blob:
                        break
                    nl = blob.find(b"\n")
                    if nl >= 0:
                        boundary = scanned + nl + 1
                        break
                    scanned += len(blob)
                if boundary >= size:
                    break
                offsets.append(boundary)
        offsets.append(size)
        if size == 0:
            raise ValueError(f"text file {self.path!r} is empty")
        return tuple(offsets)

    @property
    def n_chunks(self) -> int:
        return len(self._offsets) - 1

    def _span(self, index: int) -> Tuple[int, int]:
        self._check_index(index)
        return self._offsets[index], self._offsets[index + 1]

    def chunk_meta(self, index: int) -> Tuple[int, int]:
        lo, hi = self._span(index)
        return hi - lo, hi - lo  # 1-byte elements, as in Table 1

    def materialize(self, index: int) -> WorkItem:
        lo, hi = self._span(index)
        with open(self.path, "rb") as fh:
            fh.seek(lo)
            blob = fh.read(hi - lo)
        data = np.frombuffer(blob, dtype=np.uint8)
        return WorkItem(
            index=index,
            data=data,
            logical_items=hi - lo,
            logical_bytes=hi - lo,
        )

    def _key(self) -> Tuple:
        return (self.path, self.chunk_bytes)

    @classmethod
    def _from_key(cls, key: Tuple) -> "TextSpanReader":
        path, chunk_bytes = key
        return cls(path, chunk_bytes)


class StreamedDataset(Dataset):
    """A :class:`Dataset` facade over a :class:`ChunkReader`.

    ``resolve_chunks`` spots the :attr:`chunk_reader` attribute and
    builds descriptor-backed chunks instead of materialising; every
    other attribute access falls through to the wrapped base dataset
    (when there is one), so app runners that read ``start_centers()``
    or the MM task plan never know the difference.
    """

    def __init__(
        self, reader: ChunkReader, base: Optional[Dataset] = None
    ) -> None:
        super().__init__(
            getattr(base, "seed", 0), getattr(base, "sample_factor", 1)
        )
        self.chunk_reader = reader
        self._base = base

    @property
    def n_chunks(self) -> int:
        return self.chunk_reader.n_chunks

    def chunk(self, index: int) -> WorkItem:
        return self.chunk_reader.materialize(index)

    def chunk_meta(self, index: int) -> Tuple[int, int]:
        return self.chunk_reader.chunk_meta(index)

    def __getattr__(self, name: str) -> Any:
        # Only called when normal lookup fails; delegate app-facing
        # attributes to the wrapped dataset.  Dunder/private lookups
        # must fail normally (pickle, copy, hasattr probes).
        if name.startswith("_"):
            raise AttributeError(name)
        base = self.__dict__.get("_base")
        if base is None:
            raise AttributeError(name)
        return getattr(base, name)


def streamed(factory: Any, **spec: Any) -> StreamedDataset:
    """A streaming drop-in for ``factory(**spec)``.

    The returned dataset runs the exact same job bit-identically, but
    ``resolve_chunks`` schedules descriptors and payloads materialise
    lazily — on workers, at grant time — instead of up front in the
    driver.
    """
    reader = DatasetReader(factory, spec)
    return StreamedDataset(reader, base=reader.dataset)

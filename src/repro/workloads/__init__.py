"""Workload generators (substrate S11) for the five paper benchmarks."""

from .base import Dataset, WorkItem
from .integers import IntegerDataset
from .matrices import MatrixDataset, PanelTask
from .points import KMeansDataset, RegressionDataset
from .readers import (
    ChunkReader,
    DatasetReader,
    NpySpanReader,
    StreamedDataset,
    TextSpanReader,
    streamed,
)
from .text import DICTIONARY_WORDS, TextDataset, build_dictionary, tokenize

__all__ = [
    "Dataset",
    "WorkItem",
    "IntegerDataset",
    "MatrixDataset",
    "PanelTask",
    "KMeansDataset",
    "RegressionDataset",
    "TextDataset",
    "build_dictionary",
    "tokenize",
    "DICTIONARY_WORDS",
    "ChunkReader",
    "DatasetReader",
    "NpySpanReader",
    "TextSpanReader",
    "StreamedDataset",
    "streamed",
]

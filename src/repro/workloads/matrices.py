"""Matrix Multiplication workload: square matrices + tile-panel task plan.

The paper's MM is a hierarchical tiled multiply (Section 5.3.1): the
matrices are tiled cache-obliviously until a GPU block's share fits in
shared memory; each GPMR map chunk multiplies an A panel (one tile row
over a k-range) with a B panel (the k-range over one tile column),
producing one *partial* output tile; a second MapReduce ("we bypass
Sort and Reduce and implement another Map in a separate MapReduce")
sums the partial tiles per output position — needed because "a
single-key reduction must be entirely in-core" and large matrices
exceed that.

:class:`MatrixDataset` owns the input matrices at the *sampled*
dimension and enumerates the *logical* panel tasks, so scheduling and
communication keep full-size shape while the arithmetic runs on the
sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Dataset, WorkItem
from ..util.rng import generator
from ..util.validation import check_positive

__all__ = ["PanelTask", "MatrixDataset"]


@dataclass(frozen=True)
class PanelTask:
    """One A-panel x B-panel partial-tile multiplication."""

    i: int        #: output tile row
    j: int        #: output tile column
    k0: int       #: first k tile of the panel
    kspan: int    #: number of k tiles in the panel

    @property
    def out_key(self) -> int:
        """Will be combined with grid at the app level."""
        return -1  # computed by the dataset, which knows the grid


class MatrixDataset(Dataset):
    """Two dense square float32 matrices and their panel decomposition.

    Parameters
    ----------
    m:
        Logical matrix dimension (e.g. 16384).
    tile:
        Logical tile edge (the paper uses >= 1024^2 tiles).
    kspan:
        Tiles of the k dimension each map chunk covers.  Each output
        tile (i, j) receives ``ceil(grid / kspan)`` partial tiles that
        phase 2 sums.
    """

    def __init__(
        self,
        m: int,
        tile: int = 1024,
        kspan: int = 8,
        seed: int = 0,
        sample_factor: int = 1,
    ) -> None:
        super().__init__(seed, sample_factor)
        check_positive(m, "m")
        check_positive(tile, "tile")
        check_positive(kspan, "kspan")
        if m % tile:
            raise ValueError(f"matrix dim {m} must be a multiple of tile {tile}")
        if sample_factor > 1 and tile % sample_factor:
            raise ValueError("tile must be divisible by sample_factor")
        self.m = int(m)
        self.tile = int(tile)
        self.grid = self.m // self.tile                       # tiles per side
        self.kspan = min(int(kspan), self.grid)
        self.k_groups = -(-self.grid // self.kspan)           # ceil
        self.tile_actual = max(1, self.tile // self.sample_factor)
        self.m_actual = self.grid * self.tile_actual
        rng = generator(self.seed, stream=(1,))
        self.a = rng.random((self.m_actual, self.m_actual), dtype=np.float32)
        self.b = rng.random((self.m_actual, self.m_actual), dtype=np.float32)

    # -- task plan -------------------------------------------------------
    @property
    def n_chunks(self) -> int:
        """Phase-1 map tasks: (i, j) output tiles x k groups."""
        return self.grid * self.grid * self.k_groups

    def task(self, index: int) -> PanelTask:
        self._check_index(index)
        per_out = self.k_groups
        out_idx, kg = divmod(index, per_out)
        i, j = divmod(out_idx, self.grid)
        k0 = kg * self.kspan
        kspan = min(self.kspan, self.grid - k0)
        return PanelTask(i=i, j=j, k0=k0, kspan=kspan)

    def out_key(self, task: PanelTask) -> int:
        """Phase-2 key of a task's output tile."""
        return task.i * self.grid + task.j

    def a_panel(self, task: PanelTask) -> np.ndarray:
        """A[i, k0:k0+kspan] as one (t x t*kspan) sampled block."""
        t = self.tile_actual
        return self.a[
            task.i * t : (task.i + 1) * t,
            task.k0 * t : (task.k0 + task.kspan) * t,
        ]

    def b_panel(self, task: PanelTask) -> np.ndarray:
        """B[k0:k0+kspan, j] as one (t*kspan x t) sampled block."""
        t = self.tile_actual
        return self.b[
            task.k0 * t : (task.k0 + task.kspan) * t,
            task.j * t : (task.j + 1) * t,
        ]

    # -- logical sizes ------------------------------------------------------
    @property
    def tile_elems(self) -> int:
        return self.tile * self.tile

    @property
    def tile_bytes(self) -> int:
        """Logical bytes of one float32 tile."""
        return self.tile_elems * 4

    def panel_bytes(self, task: PanelTask) -> int:
        """Logical input bytes of a task (A panel + B panel)."""
        return 2 * task.kspan * self.tile_bytes

    def panel_flops(self, task: PanelTask) -> float:
        """Logical FLOPs of a task (2 m n k for the panel product)."""
        return 2.0 * self.tile * self.tile * (task.kspan * self.tile)

    # -- Dataset interface -------------------------------------------------
    def chunk_meta(self, index: int):
        task = self.task(index)
        return self.tile_elems, self.panel_bytes(task)

    def chunk(self, index: int) -> WorkItem:
        task = self.task(index)
        data = (self.a_panel(task), self.b_panel(task))
        return WorkItem(
            index=index,
            data=data,
            logical_items=self.tile_elems,       # one output tile's elements
            logical_bytes=self.panel_bytes(task),
        )

    def reference_product(self) -> np.ndarray:
        """Oracle: the sampled matrices' exact product."""
        return (self.a.astype(np.float64) @ self.b.astype(np.float64)).astype(
            np.float32
        )

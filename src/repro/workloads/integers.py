"""Sparse Integer Occurrence workload (SIO).

"SIO counts the number of occurrences of each integer in a sequence
with a random distribution" (paper Section 5.3.2).  Keys are sparse:
drawn uniformly from a key space much larger than the element count,
so most keys occur a handful of times — the property that defeats
compaction (no Partial Reduce / Accumulate gains) and stresses the
sort and the network.
"""

from __future__ import annotations

import numpy as np

from .base import Dataset, WorkItem
from ..util.rng import generator
from ..util.validation import check_positive

__all__ = ["IntegerDataset"]

#: 4-byte elements, as in the paper's Table 1.
ELEMENT_BYTES = 4


class IntegerDataset(Dataset):
    """Uniform random uint32 keys in ``[0, key_space)``, chunked."""

    def __init__(
        self,
        n_elements: int,
        chunk_elements: int = 16 << 20,
        key_space: int = 1 << 28,
        seed: int = 0,
        sample_factor: int = 1,
    ) -> None:
        super().__init__(seed, sample_factor)
        check_positive(n_elements, "n_elements")
        check_positive(chunk_elements, "chunk_elements")
        check_positive(key_space, "key_space")
        if key_space > 1 << 31:
            raise ValueError("key_space must fit in a signed 32-bit key")
        self.n_elements = int(n_elements)
        self.chunk_elements = int(chunk_elements)
        self.key_space = int(key_space)

    @property
    def n_chunks(self) -> int:
        return (self.n_elements + self.chunk_elements - 1) // self.chunk_elements

    def _logical_items(self, index: int) -> int:
        lo = index * self.chunk_elements
        return min(self.chunk_elements, self.n_elements - lo)

    def chunk_meta(self, index: int):
        self._check_index(index)
        logical = self._logical_items(index)
        return logical, logical * ELEMENT_BYTES

    def chunk(self, index: int) -> WorkItem:
        self._check_index(index)
        logical = self._logical_items(index)
        actual = max(1, logical // self.sample_factor)
        rng = generator(self.seed, stream=(index,))
        data = rng.integers(0, self.key_space, size=actual, dtype=np.uint32)
        return WorkItem(
            index=index,
            data=data,
            logical_items=logical,
            logical_bytes=logical * ELEMENT_BYTES,
        )

"""Workload dataset base: logical scale vs sampled functional payload.

The paper's evaluation reaches 512 million input elements per job.  The
reproduction prices every kernel, PCI-e copy, and network message at
that *logical* scale, while the *functional* arrays that flow through
the pipeline may be a deterministic 1/``sample_factor`` sample so that
a laptop can execute the full sweep.  With ``sample_factor == 1`` (the
default everywhere in the test suite) the two coincide and results are
bit-exact; benches use larger factors and validate on the sample.

Every dataset yields :class:`WorkItem` chunks deterministically from
``(seed, chunk_index)``, so chunks can be re-materialised anywhere —
the property GPMR needs to move (serialise) chunks between workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Tuple

from ..util.validation import check_positive

__all__ = ["WorkItem", "Dataset"]


@dataclass
class WorkItem:
    """One chunk of input data.

    ``data`` is the sampled functional payload; ``logical_items`` and
    ``logical_bytes`` describe the full-scale chunk for the cost model.
    """

    index: int
    data: Any
    logical_items: int
    logical_bytes: int

    @property
    def scale(self) -> float:
        """Logical items per functional item in this chunk."""
        actual = self.actual_items
        return self.logical_items / actual if actual else 1.0

    @property
    def actual_items(self) -> int:
        data = self.data
        if hasattr(data, "__len__"):
            return len(data)
        return self.logical_items


class Dataset:
    """Base class: a deterministic, chunked, samplable input."""

    def __init__(self, seed: int, sample_factor: int = 1) -> None:
        check_positive(sample_factor, "sample_factor")
        self.seed = int(seed)
        self.sample_factor = int(sample_factor)

    @property
    def n_chunks(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def chunk(self, index: int) -> WorkItem:  # pragma: no cover - abstract
        raise NotImplementedError

    def chunks(self) -> Iterator[WorkItem]:
        for i in range(self.n_chunks):
            yield self.chunk(i)

    def chunk_meta(self, index: int) -> Tuple[int, int]:
        """``(logical_items, logical_bytes)`` of chunk ``index``.

        The *descriptor* a streamed run schedules and prices steals on,
        exact by contract (the scheduler's ledgers and the cost model
        must see the same sizes streamed or materialised).  Subclasses
        override with a payload-free computation; this default
        materialises the chunk and reads the sizes off it, correct for
        any dataset but paying the build.
        """
        item = self.chunk(index)
        return item.logical_items, item.logical_bytes

    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.n_chunks):
            raise IndexError(f"chunk index {index} out of range [0, {self.n_chunks})")

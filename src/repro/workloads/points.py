"""Point-cloud workloads for K-Means Clustering and Linear Regression.

KMC (Table 1: 16-byte elements => 2-D double points, plus the fixed
random cluster centres chosen at job startup) and LR (8-byte elements
=> (x, y) float pairs from a noisy linear model).
"""

from __future__ import annotations


import numpy as np

from .base import Dataset, WorkItem
from ..util.rng import generator
from ..util.validation import check_positive

__all__ = ["KMeansDataset", "RegressionDataset"]


class KMeansDataset(Dataset):
    """Random points around ``n_centers`` true cluster centres.

    Elements are 2-D float64 points (16 bytes, per Table 1).  The job's
    *starting* centres are a separate fixed random draw, exactly as the
    paper does ("a fixed-size random set of cluster centers at job
    startup").
    """

    def __init__(
        self,
        n_points: int,
        n_centers: int = 32,
        dims: int = 2,
        chunk_points: int = 4 << 20,
        spread: float = 0.05,
        seed: int = 0,
        sample_factor: int = 1,
    ) -> None:
        super().__init__(seed, sample_factor)
        check_positive(n_points, "n_points")
        check_positive(n_centers, "n_centers")
        check_positive(dims, "dims")
        check_positive(chunk_points, "chunk_points")
        self.n_points = int(n_points)
        self.n_centers = int(n_centers)
        self.dims = int(dims)
        self.chunk_points = int(chunk_points)
        self.spread = float(spread)
        rng = generator(self.seed, stream=(0xC0,))
        #: ground-truth generating centres (not the job's start centres)
        self.true_centers = rng.random((self.n_centers, self.dims))

    @property
    def element_bytes(self) -> int:
        return 8 * self.dims

    @property
    def n_chunks(self) -> int:
        return (self.n_points + self.chunk_points - 1) // self.chunk_points

    def start_centers(self) -> np.ndarray:
        """The fixed random centres the job starts from."""
        rng = generator(self.seed, stream=(0xC1,))
        return rng.random((self.n_centers, self.dims))

    def chunk_meta(self, index: int):
        self._check_index(index)
        lo = index * self.chunk_points
        logical = min(self.chunk_points, self.n_points - lo)
        return logical, logical * self.element_bytes

    def chunk(self, index: int) -> WorkItem:
        self._check_index(index)
        lo = index * self.chunk_points
        logical = min(self.chunk_points, self.n_points - lo)
        actual = max(1, logical // self.sample_factor)
        rng = generator(self.seed, stream=(index,))
        which = rng.integers(0, self.n_centers, size=actual)
        pts = self.true_centers[which] + rng.normal(
            0.0, self.spread, size=(actual, self.dims)
        )
        return WorkItem(
            index=index,
            data=pts,
            logical_items=logical,
            logical_bytes=logical * self.element_bytes,
        )


class RegressionDataset(Dataset):
    """(x, y) float32 pairs from ``y = slope * x + intercept + noise``.

    8-byte elements per Table 1 (two float32 values).
    """

    ELEMENT_BYTES = 8

    def __init__(
        self,
        n_points: int,
        slope: float = 2.5,
        intercept: float = -1.0,
        noise: float = 0.1,
        chunk_points: int = 8 << 20,
        seed: int = 0,
        sample_factor: int = 1,
    ) -> None:
        super().__init__(seed, sample_factor)
        check_positive(n_points, "n_points")
        check_positive(chunk_points, "chunk_points")
        self.n_points = int(n_points)
        self.slope = float(slope)
        self.intercept = float(intercept)
        self.noise = float(noise)
        self.chunk_points = int(chunk_points)

    @property
    def n_chunks(self) -> int:
        return (self.n_points + self.chunk_points - 1) // self.chunk_points

    def chunk_meta(self, index: int):
        self._check_index(index)
        lo = index * self.chunk_points
        logical = min(self.chunk_points, self.n_points - lo)
        return logical, logical * self.ELEMENT_BYTES

    def chunk(self, index: int) -> WorkItem:
        self._check_index(index)
        lo = index * self.chunk_points
        logical = min(self.chunk_points, self.n_points - lo)
        actual = max(1, logical // self.sample_factor)
        rng = generator(self.seed, stream=(index,))
        x = rng.random(actual, dtype=np.float32)
        y = (
            self.slope * x
            + self.intercept
            + rng.normal(0.0, self.noise, size=actual).astype(np.float32)
        )
        return WorkItem(
            index=index,
            data=np.column_stack((x, y)).astype(np.float32),
            logical_items=logical,
            logical_bytes=logical * self.ELEMENT_BYTES,
        )

"""Serial reference oracles (substrate S9).

Plain, obviously-correct NumPy implementations of each benchmark's
answer, used by the test suite and the harness to verify every GPMR
and baseline result bit-for-bit (at ``sample_factor=1``) or
sample-exactly (otherwise).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..workloads import (
    IntegerDataset,
    KMeansDataset,
    MatrixDataset,
    RegressionDataset,
    TextDataset,
    tokenize,
)
from ..hashing import MinimalPerfectHash, segmented_poly_hashes

__all__ = [
    "integer_counts",
    "word_counts",
    "kmeans_step",
    "regression_sums",
    "regression_fit",
    "matrix_product",
]


def integer_counts(dataset: IntegerDataset) -> np.ndarray:
    """SIO oracle: occurrence count per integer key (dense array)."""
    counts = np.zeros(dataset.key_space, dtype=np.int64)
    for chunk in dataset.chunks():
        counts += np.bincount(chunk.data, minlength=dataset.key_space)
    return counts


def word_counts(dataset: TextDataset, mph: MinimalPerfectHash) -> np.ndarray:
    """WO oracle: occurrence count per MPH slot over the sampled corpus."""
    counts = np.zeros(mph.n, dtype=np.int64)
    for chunk in dataset.chunks():
        starts, lengths = tokenize(chunk.data)
        if len(starts) == 0:
            continue
        hashes = segmented_poly_hashes(chunk.data, starts, lengths)
        slots = mph.lookup_hashes(hashes)
        counts += np.bincount(slots, minlength=mph.n)
    return counts


def kmeans_step(dataset: KMeansDataset, centers: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """KMC oracle: one Lloyd iteration from ``centers``.

    Returns ``(new_centers, member_counts)``; empty clusters keep their
    old centre (the paper's benchmark runs a single iteration).
    """
    k, dims = centers.shape
    sums = np.zeros((k, dims), dtype=np.float64)
    counts = np.zeros(k, dtype=np.int64)
    for chunk in dataset.chunks():
        pts = chunk.data
        d2 = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        nearest = d2.argmin(axis=1)
        np.add.at(sums, nearest, pts)
        counts += np.bincount(nearest, minlength=k)
    new_centers = centers.copy()
    nonzero = counts > 0
    new_centers[nonzero] = sums[nonzero] / counts[nonzero, None]
    return new_centers, counts


def regression_sums(dataset: RegressionDataset) -> Dict[str, float]:
    """LR oracle: the six aggregate sums the paper's mapper emits."""
    out = {"n": 0.0, "sx": 0.0, "sy": 0.0, "sxx": 0.0, "syy": 0.0, "sxy": 0.0}
    for chunk in dataset.chunks():
        x = chunk.data[:, 0].astype(np.float64)
        y = chunk.data[:, 1].astype(np.float64)
        out["n"] += len(x)
        out["sx"] += float(x.sum())
        out["sy"] += float(y.sum())
        out["sxx"] += float((x * x).sum())
        out["syy"] += float((y * y).sum())
        out["sxy"] += float((x * y).sum())
    return out


def regression_fit(sums: Dict[str, float]) -> Tuple[float, float]:
    """Least-squares slope and intercept from the six sums."""
    n, sx, sy, sxx, sxy = sums["n"], sums["sx"], sums["sy"], sums["sxx"], sums["sxy"]
    denom = n * sxx - sx * sx
    if denom == 0:
        raise ValueError("degenerate regression input")
    slope = (n * sxy - sx * sy) / denom
    intercept = (sy - slope * sx) / n
    return slope, intercept


def matrix_product(dataset: MatrixDataset) -> np.ndarray:
    """MM oracle: exact product of the (sampled) input matrices."""
    return dataset.reference_product()

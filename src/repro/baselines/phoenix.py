"""Phoenix baseline (substrate S7): multicore CPU MapReduce model.

Phoenix [Ranger et al., HPCA 2007] is the optimised shared-memory C++
MapReduce the paper compares against in Table 2.  We model its
published execution structure on the Accelerator node's CPUs
(2 x dual-core Opteron):

* **split + map**: worker threads pull splits; per-item cost is a
  node-level roofline over scalar FLOP throughput and memory bandwidth,
  with a per-app ``flops_efficiency`` capturing how cache-friendly the
  app's inner loop is (Phoenix's naive triple-loop MM achieves ~1% of
  peak — the paper observes 1024^2 MM takes "almost twenty seconds").
* **group**: emitted pairs go through per-worker hash tables and a
  merge; cost is a per-pair constant (hash + pointer chasing is
  latency-, not bandwidth-, bound).
* **reduce**: roofline over the grouped pairs.

The model is closed-form (no DES needed: one shared-memory node, no
overlap tricks in Phoenix's pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.specs import CPUSpec, OPTERON_2216_2P
from ..util.validation import check_in_range, check_positive

__all__ = ["PhoenixWorkload", "PhoenixBreakdown", "PhoenixModel"]


@dataclass(frozen=True)
class PhoenixWorkload:
    """Roofline description of one Phoenix MapReduce execution."""

    name: str
    n_items: int                    #: map input items
    map_flops_per_item: float
    map_bytes_per_item: float
    emits_per_item: float           #: intermediate pairs per input item
    pair_bytes: int
    n_unique_keys: int
    reduce_flops_per_pair: float = 1.0
    #: fraction of peak scalar FLOP/s the map inner loop achieves
    flops_efficiency: float = 0.35
    #: fraction of stream memory bandwidth achieved
    mem_efficiency: float = 0.7
    #: per-pair grouping cost (hash insert + merge), seconds
    group_cost_per_pair: float = 6e-8

    def __post_init__(self) -> None:
        check_positive(self.n_items, "n_items")
        check_in_range(self.flops_efficiency, 1e-4, 1.0, "flops_efficiency")
        check_in_range(self.mem_efficiency, 1e-4, 1.0, "mem_efficiency")

    @property
    def n_pairs(self) -> float:
        return self.n_items * self.emits_per_item


@dataclass(frozen=True)
class PhoenixBreakdown:
    """Per-phase runtime of a Phoenix execution (seconds)."""

    map: float
    group: float
    reduce: float

    @property
    def total(self) -> float:
        return self.map + self.group + self.reduce


class PhoenixModel:
    """Prices Phoenix workloads on a CPU spec."""

    def __init__(self, cpu: CPUSpec = OPTERON_2216_2P) -> None:
        self.cpu = cpu

    def runtime(self, w: PhoenixWorkload) -> PhoenixBreakdown:
        cores = self.cpu.core_count

        flops_rate = self.cpu.peak_flops * w.flops_efficiency
        mem_rate = self.cpu.mem_bandwidth * w.mem_efficiency
        t_map = max(
            w.n_items * w.map_flops_per_item / flops_rate,
            w.n_items * w.map_bytes_per_item / mem_rate,
        )

        # Grouping parallelises across workers but contends on the
        # shared last-level cache; a mild 0.7 scaling factor.
        t_group = w.n_pairs * w.group_cost_per_pair / (cores * 0.7)

        t_reduce = max(
            w.n_pairs * w.reduce_flops_per_pair / flops_rate,
            w.n_pairs * w.pair_bytes / mem_rate,
        )
        return PhoenixBreakdown(map=t_map, group=t_group, reduce=t_reduce)

"""Mars baseline (substrate S8): single-GPU, in-core MapReduce model.

Mars [He et al., PACT 2008] is the GPU MapReduce the paper compares
against in Table 3.  Its documented design decisions — the ones GPMR
exists to fix — are modelled structurally:

* **single GPU, in-core only**: the input, the intermediate pairs, and
  sort workspace must all fit in device memory simultaneously;
  :meth:`MarsModel.check_in_core` enforces it (Table 3 uses "the
  largest problems that can meet the in-core memory requirements of
  Mars").
* **two-pass map**: because GPU kernels cannot dynamically allocate,
  Mars runs every map kernel twice — a *count* pass sizing each
  thread's output, a prefix sum over the counts, then the *emit* pass.
* **library-scheduled one-thread-per-item**: no persistent threads, no
  block-level cooperation, no accumulation — so every emitted pair is
  materialised and the whole pair set is **bitonic/radix sorted** before
  reduction, even when the final key set is tiny (this is why GPMR's
  accumulated KMC beats Mars by ~37x).
* single h2d of the input, d2h of the results.

Closed-form pricing on the kernel cost model (one device, no overlap:
Mars's pipeline is strictly sequential).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..hw.kernel import KernelLaunch, kernel_duration
from ..hw.specs import GPUSpec, GT200, PCIeSpec
from ..primitives import bitonic_sort_cost, scan_cost
from ..util.validation import check_positive

__all__ = ["MarsWorkload", "MarsBreakdown", "MarsModel", "MarsOutOfCore"]


class MarsOutOfCore(MemoryError):
    """The workload violates Mars's in-core requirement."""


@dataclass(frozen=True)
class MarsWorkload:
    """Description of one Mars execution."""

    name: str
    input_bytes: int
    n_items: int
    #: emit-pass kernels (the count pass is derived from these)
    map_launches: List[KernelLaunch]
    n_pairs: int
    pair_bytes: int
    key_bits: int = 32
    #: whether the pair set goes through Mars's group (bitonic sort);
    #: map-only jobs like MM write results in place and skip it.
    sorts_pairs: bool = True
    #: reduce kernels over the sorted pair set
    reduce_launches: List[KernelLaunch] = None  # type: ignore[assignment]
    output_bytes: int = 0

    def __post_init__(self) -> None:
        check_positive(self.input_bytes, "input_bytes")
        check_positive(self.n_items, "n_items")
        if self.reduce_launches is None:
            object.__setattr__(self, "reduce_launches", [])


@dataclass(frozen=True)
class MarsBreakdown:
    """Per-phase runtime of a Mars execution (seconds)."""

    h2d: float
    map_count: float
    scan: float
    map_emit: float
    sort: float
    reduce: float
    d2h: float

    @property
    def total(self) -> float:
        return (
            self.h2d + self.map_count + self.scan + self.map_emit
            + self.sort + self.reduce + self.d2h
        )


class MarsModel:
    """Prices Mars workloads on a GPU + PCI-e spec.

    Mars runs with the board's full 4 GB: the paper's 1 GB cap applied
    "for testing purposes" to GPMR's own runs; Table 3's inputs are the
    largest fitting Mars in-core, which requires the full memory.
    """

    #: the count pass reads the input and writes one int per thread,
    #: but skips the emit traffic: a fraction of the emit pass cost.
    COUNT_PASS_FACTOR = 0.6

    def __init__(self, gpu: GPUSpec = None, pcie: PCIeSpec = None) -> None:
        from ..hw.specs import PCIE_GEN2_X16
        from ..util.units import GIB

        self.gpu = gpu if gpu is not None else GT200.with_memory(4 * GIB)
        self.pcie = pcie if pcie is not None else PCIE_GEN2_X16

    # -- in-core requirement -------------------------------------------------
    def required_bytes(self, w: MarsWorkload) -> int:
        """Input + pairs (+ sort double-buffer), all resident at once."""
        pairs_bytes = w.n_pairs * w.pair_bytes
        buffers = 2 if w.sorts_pairs else 1
        return int(w.input_bytes + buffers * pairs_bytes)

    def check_in_core(self, w: MarsWorkload) -> None:
        need = self.required_bytes(w)
        if need > self.gpu.mem_capacity:
            raise MarsOutOfCore(
                f"{w.name}: Mars needs {need} B resident but the device has "
                f"{self.gpu.mem_capacity} B"
            )

    # -- pricing ------------------------------------------------------------
    def runtime(self, w: MarsWorkload) -> MarsBreakdown:
        self.check_in_core(w)

        t_h2d = self.pcie.latency + w.input_bytes / self.pcie.bandwidth_h2d
        t_emit = sum(kernel_duration(self.gpu, k) for k in w.map_launches)
        t_count = t_emit * self.COUNT_PASS_FACTOR
        t_scan = kernel_duration(self.gpu, scan_cost(w.n_items, itemsize=4))
        # Mars sorts with bitonic sort (its published design), paying
        # O(n log^2 n) memory traffic where GPMR's radix pays O(n).
        t_sort = 0.0
        if w.sorts_pairs:
            t_sort = sum(
                kernel_duration(self.gpu, k)
                for k in bitonic_sort_cost(
                    w.n_pairs,
                    key_bytes=4,
                    value_bytes=max(w.pair_bytes - 4, 0),
                )
            )
        t_reduce = sum(kernel_duration(self.gpu, k) for k in w.reduce_launches)
        t_d2h = self.pcie.latency + w.output_bytes / self.pcie.bandwidth_d2h
        return MarsBreakdown(
            h2d=t_h2d,
            map_count=t_count,
            scan=t_scan,
            map_emit=t_emit,
            sort=t_sort,
            reduce=t_reduce,
            d2h=t_d2h,
        )

"""Comparison baselines (S7–S9): Phoenix, Mars, and serial oracles."""

from .mars import MarsBreakdown, MarsModel, MarsOutOfCore, MarsWorkload
from .phoenix import PhoenixBreakdown, PhoenixModel, PhoenixWorkload
from . import serial

__all__ = [
    "PhoenixWorkload",
    "PhoenixBreakdown",
    "PhoenixModel",
    "MarsWorkload",
    "MarsBreakdown",
    "MarsModel",
    "MarsOutOfCore",
    "serial",
]

"""Mapper interface: the user-written half of the Map stage.

GPMR's mappers are CUDA kernels with full GPU access and a free
item-to-thread mapping; here a mapper supplies the *functional* result
(:meth:`map_chunk`, vectorised NumPy) and the *temporal* price
(:meth:`map_cost`, a list of :class:`~repro.hw.kernel.KernelLaunch`
priced at the chunk's logical size).  The pair is the Python analogue
of "the user writes the kernels, the library streams the chunks".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

from .chunk import Chunk
from .kvset import KeyValueSet
from ..hw.kernel import KernelLaunch

__all__ = ["Mapper"]


class Mapper(ABC):
    """Base class for map tasks."""

    #: bytes of device memory the mapper needs beyond input + emitted
    #: pairs (scratch buffers etc.); checked against the allocator.
    scratch_bytes: int = 0

    @abstractmethod
    def map_chunk(self, chunk: Chunk) -> KeyValueSet:
        """Produce the chunk's key-value pairs (functional, exact)."""

    @abstractmethod
    def map_cost(self, chunk: Chunk) -> List[KernelLaunch]:
        """Kernel launches this chunk costs, priced at logical scale."""

    def input_bytes(self, chunk: Chunk) -> int:
        """Bytes copied host-to-device for this chunk (logical)."""
        return chunk.logical_bytes

    def output_bytes_estimate(self, chunk: Chunk) -> int:
        """Device-memory reservation for emitted pairs (logical bytes).

        Defaults to the input size; mappers with expansion (multiple
        emits per item) should override so the allocator reserves
        enough.
        """
        return chunk.logical_bytes

"""Fault injection and recovery policy: the ``FaultPlan``.

The pull protocol makes failure recovery a *scheduling* problem: the
driver-side :class:`~repro.core.scheduler.ChunkService` owns every
chunk, knows which grants each worker still holds un-posted, and can
return them to the pool (:meth:`~repro.core.scheduler.ChunkService.
reclaim`) the moment a worker dies.  A :class:`FaultPlan` is the one
object that configures all of it — what to break (deterministic kill
and stall injection, so tests and benchmarks can script a failure) and
how to recover (respawn budget, straggler speculation):

* ``kill_rank_at_chunk`` — ``{rank: n}``: the rank SIGKILLs itself (or,
  on the sim/serial mirrors, models its death) upon receiving its
  ``n``-th chunk grant, i.e. genuinely mid-map with ``n`` grants
  outstanding.  The backend reclaims those grants and respawns a
  replacement with the same rank id, so the job completes with output
  bit-identical to a failure-free run.
* ``stall_seconds`` — ``{rank: seconds}``: sleep before each of that
  rank's chunk requests (modeled time on the sim), making it a
  straggler whose queued chunks get stolen — and, with speculation on,
  whose in-flight chunks get re-executed.
* ``speculate_after`` — age in seconds after which a grant still held
  by an un-posted worker may be *speculatively* re-granted to an idle
  worker.  Both copies map the chunk; receivers keep exactly one
  (first in canonical source-major order), so duplicate map output
  never double-counts.
* ``max_respawns`` — per-rank replacement budget; a rank that dies
  more often, or dies after posting its shuffle batches (nothing left
  to reclaim — the unit of loss is the whole un-posted map phase), is
  a terminal :class:`~repro.exec.local.WorkerFailure` as before.

Merely *constructing* a plan changes nothing: recovery machinery
activates only on runs whose executor received a ``fault_plan``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """Scripted failures plus the recovery policy for one run."""

    #: rank -> 1-based grant ordinal at which the rank kills itself
    kill_rank_at_chunk: Mapping[int, int] = field(default_factory=dict)
    #: rank -> seconds slept before each of its chunk requests
    stall_seconds: Mapping[int, float] = field(default_factory=dict)
    #: grant age (seconds) that triggers speculative re-execution;
    #: None disables speculation
    speculate_after: Optional[float] = None
    #: how many times each rank may be replaced before the run fails
    max_respawns: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "kill_rank_at_chunk",
            {int(r): int(n) for r, n in dict(self.kill_rank_at_chunk).items()},
        )
        object.__setattr__(
            self, "stall_seconds",
            {int(r): float(s) for r, s in dict(self.stall_seconds).items()},
        )
        for rank, n in self.kill_rank_at_chunk.items():
            if rank < 0:
                raise ValueError(f"kill_rank_at_chunk names rank {rank} < 0")
            if n < 1:
                raise ValueError(
                    f"kill_rank_at_chunk[{rank}] = {n}; the grant ordinal "
                    "is 1-based and must be >= 1"
                )
        for rank, seconds in self.stall_seconds.items():
            if rank < 0:
                raise ValueError(f"stall_seconds names rank {rank} < 0")
            if seconds < 0:
                raise ValueError(
                    f"stall_seconds[{rank}] = {seconds}; must be >= 0"
                )
        if self.speculate_after is not None and self.speculate_after <= 0:
            raise ValueError(
                f"speculate_after = {self.speculate_after}; must be > 0 "
                "(or None to disable speculation)"
            )
        if self.max_respawns < 0:
            raise ValueError(f"max_respawns = {self.max_respawns}; must be >= 0")

    # -- per-rank accessors --------------------------------------------------
    def kill_for(self, rank: int) -> Optional[int]:
        """The grant ordinal at which ``rank`` dies, or None."""
        return self.kill_rank_at_chunk.get(rank)

    def stall_for(self, rank: int) -> float:
        """Seconds ``rank`` sleeps before each chunk request."""
        return self.stall_seconds.get(rank, 0.0)

    def validate_for(self, n_workers: int) -> None:
        """Reject plans naming ranks the run does not have."""
        for mapping, what in (
            (self.kill_rank_at_chunk, "kill_rank_at_chunk"),
            (self.stall_seconds, "stall_seconds"),
        ):
            for rank in mapping:
                if rank >= n_workers:
                    raise ValueError(
                        f"{what} names rank {rank}, but the run has only "
                        f"{n_workers} worker(s)"
                    )

    def merged_stalls(
        self, extra: Optional[Mapping[int, float]] = None
    ) -> Dict[int, float]:
        """This plan's stalls merged over ``extra`` (plan wins)."""
        merged = {int(r): float(s) for r, s in (extra or {}).items()}
        merged.update(self.stall_seconds)
        return merged

"""The GPMR worker pipeline: one process per GPU.

Executes the paper's Figure-1 work flow:

``[fetch chunk] -> Map (+ Partial Reduce | Accumulate) -> Partition ->
d2h -> Bin (async, CPU thread) -> ... -> Sort -> Reduce``

with the documented overlap structure: chunk h2d double-buffers against
the previous map; binning runs on a host core concurrently with
subsequent maps; Combine/Accumulate defer binning until all maps are
done.  Every step charges simulated time (kernel costs, PCI-e, network)
and records it into the Figure-2 stage buckets.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from .binner import Binner
from .chunk import Chunk
from ..accel.namespace import resolve_namespace
from .job import MapReduceJob
from .kvset import KeyValueSet
from .scheduler import Assignment, ChunkService
from .stats import WorkerStats
from ..obs import NULL_TRACER
from ..hw.gpu import GPU
from ..hw.node import Node
from ..net.mpi import Communicator
from ..primitives import unique_segments, unique_segments_cost
from ..sim import Environment

__all__ = ["Worker"]


class Worker:
    """One GPMR worker: a GPU, its host resources, and a rank."""

    def __init__(
        self,
        env: Environment,
        rank: int,
        gpu: GPU,
        node: Node,
        comm: Communicator,
        job: MapReduceJob,
        scheduler: ChunkService,
        kill_at_chunk: Optional[int] = None,
        stall_seconds: float = 0.0,
        respawns_left: int = 0,
        obs=None,
    ) -> None:
        self.env = env
        #: span recording in modeled time (no-op when the run is
        #: untraced); the runtime points the tracer's clock at env.now
        self.tracer = obs.tracer if obs is not None else NULL_TRACER
        self.rank = rank
        self.gpu = gpu
        self.node = node
        self.comm = comm
        self.job = job
        #: the map phase's array namespace (job-config driven, like the
        #: real backends) and whether the fused kernel replaces the
        #: staged map substages this run
        self.ns = resolve_namespace(job.config.accel)
        self._use_fused = job.config.fused and job.fused is not None
        self.scheduler = scheduler
        self.stats = WorkerStats(rank=rank)
        self.binner = Binner(env, comm, node.cpu, rank)
        self.result: Optional[KeyValueSet] = None
        #: scripted fault injection, mirroring the real backends: die
        #: (lose all un-posted map state, chunks reclaimed, continue as
        #: the respawned replacement) upon the Nth grant / stall this
        #: long in modeled time before every chunk request
        self.kill_at_chunk = kill_at_chunk
        self.stall_seconds = float(stall_seconds)
        self.respawns_left = int(respawns_left)
        self._killed = False
        #: when set, partitioned parts buffer here instead of reaching
        #: the binner mid-map — a faulted rank must be able to discard
        #: everything it has not posted, so nothing leaves early
        self._deferred_parts: Optional[List[List[KeyValueSet]]] = None

    # ------------------------------------------------------------------
    # Fetch: steal pricing + h2d copy (double-buffered by the caller)
    # ------------------------------------------------------------------
    def _fetch_proc(self, assignment: Assignment) -> Generator:
        chunk = assignment.chunk
        if assignment.stolen_by(self.rank):
            self.stats.chunks_stolen += 1
            if self.job.config.price_steal_serialisation:
                # Victim serialises, wire moves it, thief deserialises.
                yield from self.node.cpu.process_bytes(chunk.wire_bytes, tag="steal")
            victim_node = self.comm.node_of(assignment.victim)
            my_node = self.comm.node_of(self.rank)
            if victim_node != my_node:
                yield from self.comm.fabric.send(victim_node, my_node, chunk.wire_bytes)
        nbytes = self.job.mapper.input_bytes(chunk)
        alloc = self.gpu.alloc(nbytes, tag=f"chunk{chunk.index}")
        yield from self.gpu.copy_h2d(nbytes)
        self.stats.bytes_h2d += nbytes
        return alloc

    # ------------------------------------------------------------------
    # Map phase
    # ------------------------------------------------------------------
    def _map_one(self, chunk: Chunk, accum_state: Optional[KeyValueSet]) -> Generator:
        """Map + on-GPU substages for one resident chunk.

        Returns ``(kv_for_transfer, accum_state)``; ``kv_for_transfer``
        is None on the accumulate path (nothing leaves the GPU yet).
        """
        job = self.job
        out_bytes = job.mapper.output_bytes_estimate(chunk) + job.mapper.scratch_bytes
        out_alloc = self.gpu.alloc(out_bytes, tag="map-out") if out_bytes else None

        if self._use_fused:
            # One fused call covers map + partial reduce; the cost model
            # still charges the mapper's kernels (a dedicated fused cost
            # model is a ROADMAP follow-up — today's sim prices fused
            # runs as map-cost only, which is the fusion's upper bound).
            if accum_state is None:
                accum_state = job.fused.initial_state(self.ns)
            accum_state, emission = job.fused.map_reduce_chunk(
                chunk, accum_state, self.ns
            )
            for launch in job.mapper.map_cost(chunk):
                yield from self.gpu.run_kernel(launch)
            self.stats.chunks_mapped += 1
            if emission is not None and len(emission):
                emission = emission.to_host(self.ns)
                self.stats.pairs_emitted_logical += emission.logical_pairs
            else:
                emission = None
            if out_alloc:
                self.gpu.free(out_alloc)
            return emission, accum_state

        kv = job.mapper.map_chunk(chunk)
        for launch in job.mapper.map_cost(chunk):
            yield from self.gpu.run_kernel(launch)
        self.stats.pairs_emitted_logical += kv.logical_pairs
        self.stats.chunks_mapped += 1

        if job.accumulator is not None:
            if accum_state is None:
                accum_state = job.accumulator.initial_state(kv.scale)
                self.gpu.alloc(
                    job.accumulator.state_bytes(job.pair_bytes), tag="accum-state"
                )
            n_state = int(round(len(accum_state) * accum_state.scale))
            for launch in job.accumulator.accumulate_cost(
                kv.logical_pairs, n_state, job.pair_bytes
            ):
                yield from self.gpu.run_kernel(launch)
            accum_state = job.accumulator.accumulate(accum_state, kv)
            if out_alloc:
                self.gpu.free(out_alloc)
            return None, accum_state

        if job.partial_reducer is not None:
            reduced = job.partial_reducer.partial_reduce(kv)
            for launch in job.partial_reducer.partial_reduce_cost(
                kv.logical_pairs, reduced.logical_pairs, job.pair_bytes
            ):
                yield from self.gpu.run_kernel(launch)
            kv = reduced

        if out_alloc:
            self.gpu.free(out_alloc)
        return kv, accum_state

    def _transfer_and_bin(self, kv: KeyValueSet, defer_bin: bool) -> Generator:
        """Partition on GPU, copy pairs to host, hand to the binner.

        When ``defer_bin`` (combiner path) the pairs stay in host memory
        and the caller bins later; we only pay the d2h here.
        Returns the partitioned parts (or the raw kv when deferring).
        """
        job = self.job
        if len(kv) == 0:
            return [] if not defer_bin else kv

        parts: List[KeyValueSet]
        if not defer_bin:
            if job.partitioner is not None:
                for launch in job.partitioner.partition_cost(
                    kv.logical_pairs, kv.nbytes_logical
                ):
                    yield from self.gpu.run_kernel(launch)
            parts = job.partition_parts(kv, self.comm.size)
        else:
            parts = [kv]

        nbytes = kv.nbytes_logical
        yield from self.gpu.copy_d2h(nbytes)
        self.stats.bytes_d2h += nbytes

        if defer_bin:
            return kv
        if self._deferred_parts is not None:
            self._deferred_parts.append(parts)
        else:
            self.binner.submit(parts)
        return parts

    def _map_loop(self) -> Generator:
        """The normal double-buffered pull loop; returns
        ``(accum_state, combine_buffer)``."""
        job = self.job
        accum_state: Optional[KeyValueSet] = None
        combine_buffer: List[KeyValueSet] = []

        t_phase = self.env.now
        assignment = self.scheduler.request(self.rank)
        fetch = (
            self.env.process(self._fetch_proc(assignment)) if assignment else None
        )
        while assignment is not None:
            in_alloc = yield fetch
            t_chunk = self.env.now

            # Prefetch the next chunk while this one maps (double buffer).
            next_assignment = self.scheduler.request(self.rank)
            next_fetch = None
            if next_assignment is not None and job.config.double_buffer:
                next_fetch = self.env.process(self._fetch_proc(next_assignment))

            kv, accum_state = yield from self._map_one(assignment.chunk, accum_state)
            if kv is not None:
                if job.combiner is not None:
                    buffered = yield from self._transfer_and_bin(kv, defer_bin=True)
                    if isinstance(buffered, KeyValueSet) and len(buffered):
                        combine_buffer.append(buffered)
                else:
                    yield from self._transfer_and_bin(kv, defer_bin=False)

            self.gpu.free(in_alloc)
            # Streamed (descriptor-backed) chunks drop their payload
            # once mapped, so a whole-dataset sim run stays bounded by
            # the in-flight window, not the logical dataset size.
            assignment.chunk.release()
            self.tracer.add_span(
                "chunk_map", t_chunk, self.env.now,
                rank=self.rank, chunk=assignment.chunk.index,
            )
            assignment = next_assignment
            if assignment is not None and next_fetch is None:
                next_fetch = self.env.process(self._fetch_proc(assignment))
            fetch = next_fetch
        self.stats.add("map", self.env.now - t_phase)
        return accum_state, combine_buffer

    def _map_loop_faulted(self) -> Generator:
        """Sequential pull loop for a fault-injected rank.

        No prefetch and no mid-map binning (submissions buffer in
        ``_deferred_parts``), so at its scripted death ordinal the rank
        can lose *everything* un-posted — exactly like SIGKILL on a
        real backend — reclaim its grants, and carry on as its own
        respawned replacement.  Modeled time keeps flowing; only the
        replacement's life lands in this worker's stats.
        """
        job = self.job
        accum_state: Optional[KeyValueSet] = None
        combine_buffer: List[KeyValueSet] = []
        grants = 0

        t_phase = self.env.now
        while True:
            if self.stall_seconds:
                yield self.env.timeout(self.stall_seconds)
            assignment = self.scheduler.request(self.rank)
            if assignment is None:
                break
            grants += 1
            if (
                self.kill_at_chunk is not None
                and not self._killed
                and grants >= self.kill_at_chunk
            ):
                self._killed = True
                if self.respawns_left <= 0 or not self.scheduler.can_recover(
                    self.rank
                ):
                    raise RuntimeError(
                        f"rank {self.rank} killed at grant {grants} with no "
                        "respawn budget left"
                    )
                self.respawns_left -= 1
                self.scheduler.reclaim(self.rank)
                # The replacement starts clean: un-posted map output,
                # accumulated state, buffered bins, and the dead
                # incarnation's stats all die with the process.
                accum_state = None
                combine_buffer = []
                self._deferred_parts = []
                self.stats = WorkerStats(rank=self.rank)
                t_phase = self.env.now
                continue
            t_chunk = self.env.now
            in_alloc = yield self.env.process(self._fetch_proc(assignment))
            kv, accum_state = yield from self._map_one(assignment.chunk, accum_state)
            if kv is not None:
                if job.combiner is not None:
                    buffered = yield from self._transfer_and_bin(kv, defer_bin=True)
                    if isinstance(buffered, KeyValueSet) and len(buffered):
                        combine_buffer.append(buffered)
                else:
                    yield from self._transfer_and_bin(kv, defer_bin=False)
            self.gpu.free(in_alloc)
            assignment.chunk.release()  # streamed payloads re-materialise
            self.tracer.add_span(
                "chunk_map", t_chunk, self.env.now,
                rank=self.rank, chunk=assignment.chunk.index,
            )
        self.stats.add("map", self.env.now - t_phase)
        return accum_state, combine_buffer

    def map_phase(self) -> Generator:
        """Process the worker's entire map workload."""
        job = self.job
        if self.kill_at_chunk is not None or self.stall_seconds:
            self._deferred_parts = []
            accum_state, combine_buffer = yield from self._map_loop_faulted()
        else:
            accum_state, combine_buffer = yield from self._map_loop()

        # -- post-map paths ------------------------------------------------
        if self._use_fused:
            # Flush the fused per-rank state; zero-chunk ranks flush the
            # initial state, mirroring the accumulator contract.
            t0 = self.env.now
            state = accum_state
            if state is None:
                state = job.fused.initial_state(self.ns)
            emission = job.fused.finish_state(state, self.ns)
            if emission is not None and len(emission):
                emission = emission.to_host(self.ns)
                self.stats.pairs_emitted_logical += emission.logical_pairs
                yield from self._transfer_and_bin(emission, defer_bin=False)
            self.stats.add("map", self.env.now - t0)
        elif job.accumulator is not None:
            t0 = self.env.now
            state = accum_state if accum_state is not None else (
                job.accumulator.initial_state(1.0)
            )
            yield from self._transfer_and_bin(state, defer_bin=False)
            self.stats.add("map", self.env.now - t0)

        if job.combiner is not None and combine_buffer:
            t0 = self.env.now
            merged = KeyValueSet.concat(combine_buffer)
            # Stream the buffered pairs back through the GPU to combine.
            yield from self.gpu.copy_h2d(merged.nbytes_logical)
            combined = job.combiner.combine(merged)
            for launch in job.combiner.combine_cost(
                merged.logical_pairs, combined.logical_pairs, job.pair_bytes
            ):
                yield from self.gpu.run_kernel(launch)
            yield from self._transfer_and_bin(combined, defer_bin=False)
            self.stats.add("map", self.env.now - t0)

        # A faulted rank's buffered submissions post together, here —
        # the first moment its output leaves the process.  From this
        # point its grants are complete and its death would be fatal,
        # which is exactly what mark_posted records.
        if self._deferred_parts is not None:
            for parts in self._deferred_parts:
                self.binner.submit(parts)
            self._deferred_parts = None
        self.scheduler.mark_posted(self.rank)

        # "Complete Binning": exposed network time after the maps.
        t0 = self.env.now
        yield self.binner.drain()
        flushes = self.binner.flush()
        yield self.env.all_of(flushes)
        self.stats.add("bin", self.env.now - t0)
        self.tracer.add_span("bin", t0, self.env.now, rank=self.rank)

    # ------------------------------------------------------------------
    # Sort + Reduce phases
    # ------------------------------------------------------------------
    def _sort_phase(self, incoming: List[KeyValueSet]) -> Generator:
        job = self.job
        nonempty = [kv for kv in incoming if len(kv)]
        if not nonempty:
            return None
        kv_all = KeyValueSet.concat(nonempty)

        t0 = self.env.now
        budget = int(self.gpu.spec.mem_capacity * job.config.sort_in_core_fraction)
        total_bytes = kv_all.nbytes_logical
        n_pairs_logical = kv_all.logical_pairs
        passes = max(1, -(-total_bytes // budget))  # ceil division

        per_pass_pairs = -(-n_pairs_logical // passes)
        per_pass_bytes = -(-total_bytes // passes)
        for _ in range(passes):
            alloc = self.gpu.alloc(min(per_pass_bytes, budget), tag="sort")
            yield from self.gpu.copy_h2d(per_pass_bytes)
            for launch in job.sorter.sort_cost(
                per_pass_pairs, job.key_bits, job.pair_bytes
            ):
                yield from self.gpu.run_kernel(launch)
            if passes > 1:
                yield from self.gpu.copy_d2h(per_pass_bytes)
            self.gpu.free(alloc)
        if passes > 1:
            # Host-side multiway merge of the sorted runs.
            merge_factor = float(np.ceil(np.log2(passes))) or 1.0
            yield from self.node.cpu.process_bytes(
                total_bytes * merge_factor, tag="sort-merge"
            )
            # The merged set streams back for the reduce.
            yield from self.gpu.copy_h2d(min(total_bytes, budget))

        sorted_kv = job.sorter.sort(kv_all)
        runs = unique_segments(sorted_kv.keys)
        for launch in unique_segments_cost(
            n_pairs_logical, int(round(runs.n_keys * sorted_kv.scale)), job.key_bytes
        ):
            yield from self.gpu.run_kernel(launch)
        self.stats.add("sort", self.env.now - t0)
        self.tracer.add_span("sort", t0, self.env.now, rank=self.rank)
        return sorted_kv, runs

    def _reduce_phase(self, sorted_kv: KeyValueSet, runs) -> Generator:
        job = self.job
        t0 = self.env.now
        n_keys = runs.n_keys
        if n_keys == 0 or job.reducer is None:
            self.stats.add("reduce", self.env.now - t0)
            return sorted_kv

        # GPMR's reduce-chunking callback: how many value sets per chunk?
        avg_set_bytes = max(
            1, int(sorted_kv.nbytes_logical / max(n_keys, 1))
        )
        sets_per_chunk = job.reducer.value_sets_per_chunk(
            self.gpu.allocator.free_bytes, avg_set_bytes
        )
        sets_per_chunk = max(1, min(sets_per_chunk, n_keys))
        n_chunks = -(-n_keys // sets_per_chunk)

        scale = sorted_kv.scale
        values_per_chunk_logical = int(round(len(sorted_kv) * scale / n_chunks))
        keys_per_chunk_logical = int(round(n_keys * scale / n_chunks))
        for _ in range(n_chunks):
            for launch in job.reducer.reduce_cost(
                max(values_per_chunk_logical, 1), max(keys_per_chunk_logical, 1)
            ):
                yield from self.gpu.run_kernel(launch)

        output = job.reducer.reduce_segments(
            runs.unique_keys, sorted_kv.values, runs.offsets, runs.counts, scale
        )
        yield from self.gpu.copy_d2h(output.nbytes_logical)
        self.stats.bytes_d2h += output.nbytes_logical
        self.stats.add("reduce", self.env.now - t0)
        self.tracer.add_span("reduce", t0, self.env.now, rank=self.rank)
        return output

    # ------------------------------------------------------------------
    # Whole pipeline
    # ------------------------------------------------------------------
    def run(self) -> Generator:
        """The worker's full MapReduce pipeline (one sim process)."""
        setup = self.job.config.job_setup_seconds
        if setup:
            yield self.env.timeout(setup)
            self.stats.add("scheduler", setup)

        yield from self.map_phase()

        # Gather this rank's shuffled pairs (wait time = scheduler bucket).
        t0 = self.env.now
        incoming = yield from self.binner.receive_all()
        self.stats.bytes_sent_network += self.binner.bytes_sent
        self.stats.bytes_kept_local += self.binner.bytes_kept_local
        self.stats.add("scheduler", self.env.now - t0)
        self.tracer.add_span("shuffle_recv", t0, self.env.now, rank=self.rank)

        if self.job.config.skip_sort_reduce:
            nonempty = [kv for kv in incoming if len(kv)]
            self.result = KeyValueSet.concat(nonempty) if nonempty else None
            return self.result

        sorted_and_runs = yield from self._sort_phase(incoming)
        if sorted_and_runs is None:
            self.result = None
            return None
        sorted_kv, runs = sorted_and_runs
        self.result = yield from self._reduce_phase(sorted_kv, runs)
        return self.result

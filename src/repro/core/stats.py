"""Per-stage time accounting: the data behind the paper's Figure 2.

Figure 2 decomposes runtime into **Map**, **Complete Binning** (network
transmission exposed after the maps finish), **Sort**, **Reduce**, and
**GPMR Internal / Scheduler**.  Each worker records wall-time intervals
into those buckets; the job aggregates them into fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["STAGES", "WorkerStats", "JobStats"]

#: Figure-2 stage buckets, in display order.
STAGES = ("map", "bin", "sort", "reduce", "scheduler")


@dataclass
class WorkerStats:
    """One worker's (one GPU's) accounting."""

    rank: int
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    chunks_mapped: int = 0
    chunks_stolen: int = 0
    pairs_emitted_logical: int = 0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    bytes_sent_network: int = 0
    #: logical shuffle bytes binned to this worker's own rank — they
    #: never leave the process, so they are accounted separately from
    #: the network traffic (the real backends fill this in)
    bytes_kept_local: int = 0
    #: wire frames the worker's outbound shuffle used (cluster backend:
    #: BATCH + coalesced BATCH_DATA frames summed over destinations);
    #: 0 on backends whose exchange is not framed
    shuffle_frames_sent: int = 0

    def add(self, stage: str, seconds: float) -> None:
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}; expected one of {STAGES}")
        if seconds < 0:
            raise ValueError(f"negative stage time {seconds} for {stage!r}")
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.stage_seconds.values())

    def fraction(self, stage: str) -> float:
        total = self.total
        return self.stage_seconds.get(stage, 0.0) / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank,
            "stage_seconds": dict(self.stage_seconds),
            "chunks_mapped": self.chunks_mapped,
            "chunks_stolen": self.chunks_stolen,
            "pairs_emitted_logical": self.pairs_emitted_logical,
            "bytes_h2d": self.bytes_h2d,
            "bytes_d2h": self.bytes_d2h,
            "bytes_sent_network": self.bytes_sent_network,
            "bytes_kept_local": self.bytes_kept_local,
            "shuffle_frames_sent": self.shuffle_frames_sent,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "WorkerStats":
        return cls(**d)


@dataclass
class JobStats:
    """Aggregated statistics of one GPMR job execution."""

    job_name: str
    n_gpus: int
    #: job time in seconds — *modeled* cluster time on the sim backend,
    #: *measured* wall-clock on the real backends (see :attr:`clock`)
    elapsed: float
    workers: List[WorkerStats]
    #: chunks the scheduler re-queued after worker deaths (0 on a
    #: failure-free run)
    chunks_reclaimed: int = 0
    #: speculated chunks whose duplicate copy is the one the reducers
    #: kept (first-in-canonical-order wins; see FaultPlan.speculate_after)
    speculative_wins: int = 0
    #: per-worker count of re-executed grants — reclaimed re-grants
    #: plus speculative duplicates — in rank order; empty when the
    #: backend ran without a fault plan's machinery engaged
    retries_by_worker: List[int] = field(default_factory=list)
    #: what :attr:`elapsed` measures: ``"simulated"`` (the sim backend's
    #: modeled clock) or ``"wall"`` (real backends' wall-clock)
    clock: str = "simulated"

    @property
    def stage_totals(self) -> Dict[str, float]:
        out = {s: 0.0 for s in STAGES}
        for w in self.workers:
            for s, v in w.stage_seconds.items():
                out[s] += v
        return out

    @property
    def stage_fractions(self) -> Dict[str, float]:
        """Cluster-wide share of each Figure-2 bucket."""
        totals = self.stage_totals
        denom = sum(totals.values())
        if denom == 0:
            return {s: 0.0 for s in STAGES}
        return {s: v / denom for s, v in totals.items()}

    @property
    def total_pairs_logical(self) -> int:
        return sum(w.pairs_emitted_logical for w in self.workers)

    @property
    def total_network_bytes(self) -> int:
        return sum(w.bytes_sent_network for w in self.workers)

    @property
    def total_local_exchange_bytes(self) -> int:
        """Shuffle bytes that stayed on their own rank (no wire cost)."""
        return sum(w.bytes_kept_local for w in self.workers)

    @property
    def total_shuffle_frames(self) -> int:
        """Wire frames the exchange used across all workers (framed
        backends only); with batch coalescing this stays small even
        when batches hold many tiny parts."""
        return sum(w.shuffle_frames_sent for w in self.workers)

    @property
    def total_chunks(self) -> int:
        return sum(w.chunks_mapped for w in self.workers)

    @property
    def total_steals(self) -> int:
        return sum(w.chunks_stolen for w in self.workers)

    @property
    def steals_by_worker(self) -> List[int]:
        """Per-worker steal ledger, in rank order — the per-GPU view of
        the scheduler's load balancing (matches a recorded
        :class:`~repro.core.scheduler.ScheduleTrace` grant-for-grant)."""
        return [w.chunks_stolen for w in sorted(self.workers, key=lambda w: w.rank)]

    def describe(self) -> str:
        """One-paragraph human summary."""
        fr = self.stage_fractions
        pieces = ", ".join(f"{s}={fr[s]:.1%}" for s in STAGES)
        clock = "simulated" if self.clock == "simulated" else "wall-clock"
        return (
            f"{self.job_name}: {self.n_gpus} GPU(s), {self.elapsed:.4f}s "
            f"{clock}; breakdown {pieces}; {self.total_chunks} chunks "
            f"({self.total_steals} stolen), "
            f"{self.total_network_bytes / 1e6:.1f} MB shuffled"
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable export (see :meth:`from_dict`) so traces
        and benchmark scripts can persist stats without pickle."""
        return {
            "job_name": self.job_name,
            "n_gpus": self.n_gpus,
            "elapsed": self.elapsed,
            "clock": self.clock,
            "chunks_reclaimed": self.chunks_reclaimed,
            "speculative_wins": self.speculative_wins,
            "retries_by_worker": list(self.retries_by_worker),
            "workers": [w.to_dict() for w in self.workers],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobStats":
        d = dict(d)
        d["workers"] = [WorkerStats.from_dict(w) for w in d["workers"]]
        return cls(**d)

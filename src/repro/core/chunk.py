"""Chunks: the unit of map work, scheduling, and load balancing.

"GPMR tracks the per-GPU work in a dynamic queue.  If one GPU finishes
its work ... we shift chunks between the local queues.  Due to this
requirement, chunks must implement a serialization method."  A
:class:`Chunk` therefore provides ``to_bytes``/``from_bytes`` (NumPy
``save``-based, not pickle, so the format is explicit), and the
scheduler prices a steal as serialise + wire transfer + deserialise.

Chunks come in two flavours:

* **materialised** — the payload arrays are resident (``data=`` at
  construction), as every chunk was before streaming ingest;
* **descriptor-backed** — built from a
  :class:`~repro.workloads.readers.ChunkReader` source via
  :meth:`from_descriptor`: the payload is materialised lazily on first
  :attr:`data` access and can be dropped again with :meth:`release`.
  Pickling a descriptor-backed chunk ships only the tiny
  ``(reader, index)`` descriptor — grants stay small on the wire, the
  receiving worker re-materialises locally, and a reclaimed chunk
  re-granted to a respawned rank rebuilds from the same descriptor.

Everything the scheduler touches while routing work — ``index``,
``logical_items``, ``logical_bytes``, ``wire_bytes``, ``meta`` — is
carried on the descriptor and never materialises the payload.
Payload-dependent properties (``data``, ``actual_items``, ``scale``,
``to_bytes``) materialise on demand, so the bit-parity contract is
unchanged: a streamed chunk maps to exactly the arrays its
materialised twin holds.
"""

from __future__ import annotations

import io
from typing import Any, Optional, Tuple

import numpy as np

from ..workloads.base import WorkItem

__all__ = ["Chunk"]


class Chunk:
    """One map-input chunk (wraps a workload :class:`WorkItem`)."""

    __slots__ = (
        "index", "logical_items", "logical_bytes", "meta", "_data", "_source"
    )

    def __init__(
        self,
        index: int,
        data: Any = None,
        logical_items: int = 0,
        logical_bytes: int = 0,
        meta: Any = None,
        source: Optional[Tuple[Any, int]] = None,
    ) -> None:
        self.index = index                  #: chunk id (scheduling key)
        self.logical_items = logical_items  #: full-scale element count
        self.logical_bytes = logical_bytes  #: full-scale bytes (steal pricing)
        self.meta = meta                    #: app-specific tag (e.g. a TileTask)
        #: resident functional payload (array or tuple of arrays); None
        #: while a descriptor-backed chunk is unmaterialised
        self._data = data
        #: lazy re-materialisation handle: ``(reader, index)``, or None
        #: for a chunk that was built with its payload resident
        self._source = source

    @classmethod
    def from_work_item(cls, item: WorkItem, meta: Any = None) -> "Chunk":
        return cls(
            index=item.index,
            data=item.data,
            logical_items=item.logical_items,
            logical_bytes=item.logical_bytes,
            meta=meta,
        )

    @classmethod
    def from_descriptor(
        cls,
        reader: Any,
        index: int,
        logical_items: int,
        logical_bytes: int,
        meta: Any = None,
    ) -> "Chunk":
        """A lazy chunk: payload re-materialised from ``reader`` on
        first :attr:`data` access (and again after :meth:`release`)."""
        return cls(
            index=index,
            logical_items=logical_items,
            logical_bytes=logical_bytes,
            meta=meta,
            source=(reader, index),
        )

    # -- lazy payload ------------------------------------------------------
    @property
    def data(self) -> Any:
        """The functional payload, materialising from source if needed."""
        if self._data is None and self._source is not None:
            reader, index = self._source
            self._data = reader.materialize(index).data
        return self._data

    @property
    def materialized(self) -> bool:
        """True when the payload is resident right now."""
        return self._data is not None

    def release(self) -> None:
        """Drop a descriptor-backed chunk's resident payload.

        The descriptor stays, so the payload comes back on the next
        :attr:`data` access.  No-op for chunks built with their payload
        (there is nowhere to rebuild from).
        """
        if self._source is not None:
            self._data = None

    # -- pickling ----------------------------------------------------------
    # Descriptor-backed chunks ship *only* the descriptor (readers
    # themselves pickle to a tiny key and rebuild once per process, see
    # repro.workloads.readers), so a CHUNK_GRANT or mp.Queue grant stays
    # bytes-sized no matter the payload; the receiver re-materialises.
    def __getstate__(self):
        return {
            "index": self.index,
            "logical_items": self.logical_items,
            "logical_bytes": self.logical_bytes,
            "meta": self.meta,
            "data": None if self._source is not None else self._data,
            "source": self._source,
        }

    def __setstate__(self, state) -> None:
        self.index = state["index"]
        self.logical_items = state["logical_items"]
        self.logical_bytes = state["logical_bytes"]
        self.meta = state["meta"]
        self._data = state["data"]
        self._source = state["source"]

    @property
    def scale(self) -> float:
        """Logical items per functional item."""
        n = self.actual_items
        return self.logical_items / n if n else 1.0

    @property
    def actual_items(self) -> int:
        data = self.data
        if isinstance(data, np.ndarray):
            return len(data)
        if isinstance(data, (tuple, list)) and data and isinstance(
            data[0], np.ndarray
        ):
            return len(data[0])
        return self.logical_items

    # -- serialisation (the load-balancing requirement) --------------------
    def _arrays(self) -> Tuple[np.ndarray, ...]:
        data = self.data
        if isinstance(data, np.ndarray):
            return (data,)
        if isinstance(data, (tuple, list)):
            return tuple(a for a in data if isinstance(a, np.ndarray))
        return ()

    def to_bytes(self) -> bytes:
        """Serialise the chunk payload (npz container, explicit format)."""
        buf = io.BytesIO()
        arrays = {f"arr{i}": a for i, a in enumerate(self._arrays())}
        np.savez(
            buf,
            __index=np.int64(self.index),
            __logical_items=np.int64(self.logical_items),
            __logical_bytes=np.int64(self.logical_bytes),
            **arrays,
        )
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes, meta: Any = None) -> "Chunk":
        """Rebuild a chunk serialised by :meth:`to_bytes`.

        Multi-array payloads come back as a tuple of arrays; non-array
        metadata must be re-attached by the caller via ``meta``.
        """
        with np.load(io.BytesIO(blob)) as z:
            # Keys sort on their numeric suffix: lexicographic order
            # would interleave arr10 before arr2 and scramble any
            # payload of 11+ arrays.
            keys = sorted(
                (k for k in z.files if k.startswith("arr")),
                key=lambda k: int(k[3:]),
            )
            arrays = [z[k] for k in keys]
            data: Any = arrays[0] if len(arrays) == 1 else tuple(arrays)
            return cls(
                index=int(z["__index"]),
                data=data,
                logical_items=int(z["__logical_items"]),
                logical_bytes=int(z["__logical_bytes"]),
                meta=meta,
            )

    @property
    def wire_bytes(self) -> int:
        """Bytes a steal moves over the network (logical payload)."""
        return self.logical_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "resident" if self._data is not None else "descriptor"
        return (
            f"<Chunk {self.index} {state} "
            f"logical_items={self.logical_items}>"
        )

"""Chunks: the unit of map work, scheduling, and load balancing.

"GPMR tracks the per-GPU work in a dynamic queue.  If one GPU finishes
its work ... we shift chunks between the local queues.  Due to this
requirement, chunks must implement a serialization method."  A
:class:`Chunk` therefore provides ``to_bytes``/``from_bytes`` (NumPy
``save``-based, not pickle, so the format is explicit), and the
scheduler prices a steal as serialise + wire transfer + deserialise.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np

from ..workloads.base import WorkItem

__all__ = ["Chunk"]


@dataclass
class Chunk:
    """One map-input chunk (wraps a workload :class:`WorkItem`)."""

    index: int
    data: Any                 #: functional payload (array or tuple of arrays)
    logical_items: int        #: full-scale element count (cost model)
    logical_bytes: int        #: full-scale bytes (PCI-e / steal pricing)
    meta: Any = None          #: app-specific tag (e.g. a TileTask)

    @classmethod
    def from_work_item(cls, item: WorkItem, meta: Any = None) -> "Chunk":
        return cls(
            index=item.index,
            data=item.data,
            logical_items=item.logical_items,
            logical_bytes=item.logical_bytes,
            meta=meta,
        )

    @property
    def scale(self) -> float:
        """Logical items per functional item."""
        n = self.actual_items
        return self.logical_items / n if n else 1.0

    @property
    def actual_items(self) -> int:
        if isinstance(self.data, np.ndarray):
            return len(self.data)
        if isinstance(self.data, (tuple, list)) and self.data and isinstance(
            self.data[0], np.ndarray
        ):
            return len(self.data[0])
        return self.logical_items

    # -- serialisation (the load-balancing requirement) --------------------
    def _arrays(self) -> Tuple[np.ndarray, ...]:
        if isinstance(self.data, np.ndarray):
            return (self.data,)
        if isinstance(self.data, (tuple, list)):
            return tuple(a for a in self.data if isinstance(a, np.ndarray))
        return ()

    def to_bytes(self) -> bytes:
        """Serialise the chunk payload (npz container, explicit format)."""
        buf = io.BytesIO()
        arrays = {f"arr{i}": a for i, a in enumerate(self._arrays())}
        np.savez(
            buf,
            __index=np.int64(self.index),
            __logical_items=np.int64(self.logical_items),
            __logical_bytes=np.int64(self.logical_bytes),
            **arrays,
        )
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes, meta: Any = None) -> "Chunk":
        """Rebuild a chunk serialised by :meth:`to_bytes`.

        Multi-array payloads come back as a tuple of arrays; non-array
        metadata must be re-attached by the caller via ``meta``.
        """
        with np.load(io.BytesIO(blob)) as z:
            arrays = [z[k] for k in sorted(k for k in z.files if k.startswith("arr"))]
            data: Any = arrays[0] if len(arrays) == 1 else tuple(arrays)
            return cls(
                index=int(z["__index"]),
                data=data,
                logical_items=int(z["__logical_items"]),
                logical_bytes=int(z["__logical_bytes"]),
                meta=meta,
            )

    @property
    def wire_bytes(self) -> int:
        """Bytes a steal moves over the network (logical payload)."""
        return self.logical_bytes

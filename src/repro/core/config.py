"""Pipeline configuration knobs.

These are the tunables the paper's Section 4.4 tells users to spend
time on ("GPMR users should devote at least some time to deciding what
stages of the pipeline are suitable for their jobs").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """Runtime behaviour flags for a GPMR job."""

    #: Overlap the h2d copy of chunk i+1 with the map of chunk i
    #: (GPMR's streaming double-buffer; requires 2x chunk residency).
    double_buffer: bool = True

    #: Dynamic load balancing: idle workers steal chunks from the
    #: longest queue (chunks are serialised over the wire).
    enable_stealing: bool = True

    #: Fraction of device memory the Sort stage may use for pairs
    #: (the rest is radix workspace); received sets larger than this
    #: sort out-of-core in multiple passes.
    sort_in_core_fraction: float = 0.45

    #: Skip Sort and Reduce entirely; the job's result is the shuffled
    #: map output per rank (the paper's MM does this, feeding a second
    #: MapReduce).
    skip_sort_reduce: bool = False

    #: Charge chunk (de)serialisation to the host CPU on steals.
    price_steal_serialisation: bool = True

    #: Fixed per-worker job coordination cost (pinned-buffer setup, MPI
    #: wire-up, queue registration) charged to the Scheduler bucket.
    #: This is the paper's "GPMR Internal / Scheduler" share, which
    #: Figure 2 shows growing with GPU count as per-GPU work shrinks.
    job_setup_seconds: float = 0.008

    #: Array namespace the per-rank dataflow runs on: "numpy" (always
    #: available, bit-identical to seed), "cupy", or "torch" (optional
    #: imports).  Travels with the job pickle, so remote ranks resolve
    #: their own namespace instance locally.
    accel: str = "numpy"

    #: Run the job's fused map+partial-reduce kernel (``job.fused``)
    #: instead of the staged map_chunk → accumulate/partial-reduce →
    #: partition path.  Ignored for jobs without a fused kernel.
    fused: bool = False

    def __post_init__(self) -> None:
        if not (0.05 <= self.sort_in_core_fraction <= 0.95):
            raise ValueError("sort_in_core_fraction must be in [0.05, 0.95]")
        if self.job_setup_seconds < 0:
            raise ValueError("job_setup_seconds must be non-negative")
        from ..accel.namespace import ACCEL_TIERS  # noqa: PLC0415 - cycle guard

        if self.accel not in ACCEL_TIERS:
            raise ValueError(
                f"accel must be one of {ACCEL_TIERS}, got {self.accel!r}"
            )

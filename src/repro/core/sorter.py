"""Sorters for the GPMR Sort stage.

The default is the CUDPP-style radix sort ("when possible (with keys
that are integer-based), we used radix sort from CUDPP (GPMR's default
Sorter)"); a comparison-based fallback exists for keys wider than the
radix budget, and the interface is user-replaceable like every GPMR
stage.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from .kvset import KeyValueSet
from ..hw.kernel import KernelLaunch
from ..primitives import launch_1d, radix_sort_cost, radix_sort_pairs, significant_bits

__all__ = ["Sorter", "RadixSorter", "ComparisonSorter"]


class Sorter(ABC):
    """Base class: stable sort of a KVSet by key."""

    @abstractmethod
    def sort(self, kv: KeyValueSet) -> KeyValueSet:
        """Functional: return the KVSet sorted ascending by key."""

    @abstractmethod
    def sort_cost(self, n_pairs: int, key_bits: int, pair_bytes: int) -> List[KernelLaunch]:
        """Temporal: launches for sorting ``n_pairs`` (logical)."""


class RadixSorter(Sorter):
    """LSD radix sort via the primitive library (GPMR default).

    ``key_bits`` may be pinned at construction (apps that know their
    key range, like WO's 43k MPH slots, pay fewer digit passes — the
    kind of tuning the paper encourages).
    """

    def __init__(self, key_bits: Optional[int] = None) -> None:
        if key_bits is not None and not (1 <= key_bits <= 64):
            raise ValueError("key_bits must be in [1, 64]")
        self.key_bits = key_bits

    def effective_bits(self, kv_or_bits) -> int:
        if self.key_bits is not None:
            return self.key_bits
        if isinstance(kv_or_bits, int):
            return kv_or_bits
        return significant_bits(kv_or_bits.keys)

    def sort(self, kv: KeyValueSet) -> KeyValueSet:
        keys, values = radix_sort_pairs(kv.keys, kv.values, key_bits=self.effective_bits(kv))
        return KeyValueSet(keys=keys, values=values, scale=kv.scale)

    def sort_cost(self, n_pairs: int, key_bits: int, pair_bytes: int) -> List[KernelLaunch]:
        bits = self.key_bits if self.key_bits is not None else key_bits
        return radix_sort_cost(
            n_pairs,
            key_bits=bits,
            key_bytes=4,
            value_bytes=max(pair_bytes - 4, 0),
        )


class ComparisonSorter(Sorter):
    """Merge-sort-style comparison sorter ("when not, we implemented
    our own") — O(n log n) cost, for non-radix-friendly keys."""

    def sort(self, kv: KeyValueSet) -> KeyValueSet:
        order = np.argsort(kv.keys, kind="stable")
        return kv.select(order)

    def sort_cost(self, n_pairs: int, key_bits: int, pair_bytes: int) -> List[KernelLaunch]:
        n = max(n_pairs, 2)
        log_n = float(np.ceil(np.log2(n)))
        return [
            launch_1d(
                "merge_sort_pass",
                n,
                flops_per_item=2.0,
                read_bytes_per_item=float(pair_bytes),
                write_bytes_per_item=float(pair_bytes),
                coalescing=0.6,
                syncs=1,
            )
        ] * int(log_n)

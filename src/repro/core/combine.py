"""The communication-reducing map substages: Combine, Partial Reduce,
Accumulate.

These are the paper's core pipeline extensions (Section 3):

* **PartialReducer** — runs on the GPU right after each chunk's map,
  merging like-keyed pairs *within the chunk* before the PCI-e
  transfer.  Best when the final key set is large.
* **Accumulator** — a persistent on-GPU key-value state each map kernel
  merges into; only transferred once, after all maps.  Best when the
  final key set is small.  Mutually exclusive with PartialReducer.
* **Combiner** — after *all* maps complete, like-keyed pairs buffered
  in CPU memory are streamed back through the GPU and combined so each
  node sends one value per key ("unlike in Hadoop, Combine happens only
  when all Maps complete in order to minimize network traffic").

Concrete associative-operator implementations (sum et al.) are provided
since every paper benchmark combines with addition.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

import numpy as np

from .kvset import KeyValueSet
from ..hw.kernel import KernelLaunch
from ..primitives import (
    launch_1d,
    radix_sort_cost,
    radix_sort_pairs,
    segmented_reduce,
    segmented_reduce_cost,
    unique_segments,
)

__all__ = [
    "PartialReducer",
    "Combiner",
    "Accumulator",
    "SumPartialReducer",
    "SumCombiner",
    "SumAccumulator",
    "combine_by_key_sum",
]


def combine_by_key_sum(kv: KeyValueSet) -> KeyValueSet:
    """Merge like-keyed pairs by summing values (vectorised oracle).

    Works for scalar values and fixed-width records; output keys are
    ascending.
    """
    if len(kv) == 0:
        return kv
    keys, values = radix_sort_pairs(kv.keys, kv.values)
    runs = unique_segments(keys)
    if values.ndim == 1:
        summed = segmented_reduce(values, runs.offsets)
    else:
        cols = [segmented_reduce(values[:, c], runs.offsets) for c in range(values.shape[1])]
        summed = np.column_stack(cols)
    return KeyValueSet(keys=runs.unique_keys, values=summed, scale=kv.scale)


# ---------------------------------------------------------------------------
# Partial Reduce
# ---------------------------------------------------------------------------

class PartialReducer(ABC):
    """On-GPU, per-chunk merge of like-keyed pairs before the transfer."""

    @abstractmethod
    def partial_reduce(self, kv: KeyValueSet) -> KeyValueSet:
        """Functional merge of one chunk's pairs."""

    @abstractmethod
    def partial_reduce_cost(self, n_pairs: int, n_unique: int, pair_bytes: int) -> List[KernelLaunch]:
        """Launches, priced at logical pair counts."""


class SumPartialReducer(PartialReducer):
    """Partial reduction with addition (sort + segmented sum on GPU)."""

    def partial_reduce(self, kv: KeyValueSet) -> KeyValueSet:
        return combine_by_key_sum(kv)

    def partial_reduce_cost(self, n_pairs: int, n_unique: int, pair_bytes: int) -> List[KernelLaunch]:
        key_bits = max(int(np.ceil(np.log2(max(n_unique, 2)))) + 1, 8)
        launches = radix_sort_cost(
            n_pairs, key_bits=key_bits, key_bytes=4, value_bytes=max(pair_bytes - 4, 0)
        )
        launches.append(
            segmented_reduce_cost(n_pairs, max(n_unique, 1), itemsize=max(pair_bytes - 4, 4))
        )
        return launches


# ---------------------------------------------------------------------------
# Combine
# ---------------------------------------------------------------------------

class Combiner(ABC):
    """Post-map, pre-partition merge of all buffered pairs on one rank."""

    @abstractmethod
    def combine(self, kv: KeyValueSet) -> KeyValueSet:
        """Functional merge of the rank's full buffered pair set."""

    @abstractmethod
    def combine_cost(self, n_pairs: int, n_unique: int, pair_bytes: int) -> List[KernelLaunch]:
        """Launches for combining (priced at logical counts)."""


class SumCombiner(Combiner):
    """Combine with addition (the classic word-count combiner)."""

    def combine(self, kv: KeyValueSet) -> KeyValueSet:
        return combine_by_key_sum(kv)

    def combine_cost(self, n_pairs: int, n_unique: int, pair_bytes: int) -> List[KernelLaunch]:
        key_bits = max(int(np.ceil(np.log2(max(n_unique, 2)))) + 1, 8)
        launches = radix_sort_cost(
            n_pairs, key_bits=key_bits, key_bytes=4, value_bytes=max(pair_bytes - 4, 0)
        )
        launches.append(
            segmented_reduce_cost(n_pairs, max(n_unique, 1), itemsize=max(pair_bytes - 4, 4))
        )
        return launches


# ---------------------------------------------------------------------------
# Accumulate
# ---------------------------------------------------------------------------

class Accumulator(ABC):
    """Persistent on-GPU key-value state merged into by every map.

    The pipeline calls :meth:`initial_state` once per worker ("an
    initial Map task emits all keys with the value 0" in WO), then
    :meth:`accumulate` after each chunk's map, and transfers the state
    once after the last map.
    """

    @abstractmethod
    def initial_state(self, fresh_scale: float) -> KeyValueSet:
        """The resident pair set before the first map.

        ``fresh_scale`` is the sampling scale of incoming map output.
        Dense-table accumulators represent their state *exactly* (one
        slot per key of a known universe), so they return ``scale=1``:
        the table's byte counts are full-scale no matter how the input
        stream was sampled.  Value magnitudes then reflect the sampled
        stream; apps rescale on output where it matters.
        """

    @abstractmethod
    def accumulate(self, state: KeyValueSet, fresh: KeyValueSet) -> KeyValueSet:
        """Merge one chunk's emissions into the resident state."""

    @abstractmethod
    def accumulate_cost(self, n_fresh: int, n_state: int, pair_bytes: int) -> List[KernelLaunch]:
        """Launches for one accumulate step (logical counts)."""

    def state_bytes(self, pair_bytes: int) -> int:
        """Device memory the resident state occupies (for the allocator)."""
        raise NotImplementedError


class SumAccumulator(Accumulator):
    """Dense accumulation over a known key universe ``[0, n_keys)``.

    This is the paper's WO/KMC/LR pattern: the key space is small and
    indexable, so fresh pairs are scatter-added into a dense table
    ("we simply index into the emit space and use a fire-and-forget
    atomic instruction to increment the associated value").
    """

    def __init__(self, n_keys: int, value_width: int = 1, value_dtype=np.float64,
                 use_atomics: bool = True) -> None:
        if n_keys <= 0:
            raise ValueError("n_keys must be positive")
        self.n_keys = int(n_keys)
        self.value_width = int(value_width)
        self.value_dtype = value_dtype
        self.use_atomics = use_atomics

    def initial_state(self, fresh_scale: float) -> KeyValueSet:
        del fresh_scale  # dense tables are exact regardless of sampling
        shape = (self.n_keys,) if self.value_width == 1 else (self.n_keys, self.value_width)
        return KeyValueSet(
            keys=np.arange(self.n_keys, dtype=np.uint32),
            values=np.zeros(shape, dtype=self.value_dtype),
            scale=1.0,
        )

    def accumulate(self, state: KeyValueSet, fresh: KeyValueSet) -> KeyValueSet:
        if len(fresh) == 0:
            return state
        if fresh.keys.max(initial=0) >= self.n_keys:
            raise ValueError("fresh key outside the accumulator's key universe")
        np.add.at(state.values, fresh.keys, fresh.values)
        return state

    def accumulate_cost(self, n_fresh: int, n_state: int, pair_bytes: int) -> List[KernelLaunch]:
        value_bytes = max(pair_bytes - 4, 4)
        if self.use_atomics:
            # Fire-and-forget atomic adds; conflicts grow as keys shrink.
            conflict = min(32.0, max(1.0, 32.0 * 4 / max(self.n_keys, 1)))
            return [
                launch_1d(
                    "accumulate_atomic",
                    n_fresh,
                    flops_per_item=1.0,
                    read_bytes_per_item=4.0,
                    atomics_per_item=float(self.value_width),
                    atomic_conflict=conflict,
                )
            ]
        # GT200 float path: block-level reduction + per-block pools, then
        # a short second kernel folds the pools (paper Section 5.3.4).
        return [
            launch_1d(
                "accumulate_block_reduce",
                n_fresh,
                flops_per_item=2.0 * self.value_width,
                read_bytes_per_item=float(value_bytes),
                write_bytes_per_item=0.05 * value_bytes,
                syncs=1,
            ),
            launch_1d(
                "accumulate_pool_fold",
                max(self.n_keys * 64, 1),
                flops_per_item=1.0,
                read_bytes_per_item=float(value_bytes),
                write_bytes_per_item=value_bytes / 64.0,
            ),
        ]

    def state_bytes(self, pair_bytes: int) -> int:
        return self.n_keys * pair_bytes

"""GPMR runtime: build the simulated cluster, run a job, collect stats.

"Each GPU is controlled by a separate process and each process executes
the MapReduce pipeline."  :class:`GPMRRuntime` instantiates the nodes,
the network fabric, the MPI communicator (one rank per GPU, packed onto
nodes fill-first like the paper's launcher), distributes the dataset's
chunks round-robin, runs every :class:`~repro.core.pipeline.Worker` to
completion on the discrete-event engine, and returns a
:class:`JobResult` holding per-rank outputs and the Figure-2 stats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .chunk import Chunk
from .faults import FaultPlan
from .job import MapReduceJob
from .kvset import KeyValueSet
from .pipeline import Worker
from .scheduler import (
    DISTRIBUTIONS,
    ChunkService,
    ScheduleTrace,
    distribute_chunks,
    resolve_chunks,
)
from .stats import JobStats
from ..hw.node import build_nodes
from ..obs import Observability
from ..hw.specs import ACCELERATOR, ClusterSpec
from ..net.fabric import Fabric
from ..net.mpi import Communicator
from ..net.topology import FatTreeTopology, StarTopology
from ..sim import Environment
from ..workloads.base import Dataset

__all__ = [
    "JobResult",
    "GPMRRuntime",
    "DISTRIBUTIONS",
    "resolve_chunks",
    "distribute_chunks",
]


@dataclass
class JobResult:
    """Outcome of one GPMR job execution."""

    stats: JobStats
    outputs: List[Optional[KeyValueSet]]   #: per-rank reduce output
    #: the chunk schedule this run followed.  Every backend records one
    #: — the sim from its modeled scheduler, the real backends from the
    #: live pull service (steals included); a replayed run carries the
    #: trace it was given.
    schedule: Optional[ScheduleTrace] = None
    #: the run's merged :class:`~repro.obs.Observability` bundle —
    #: spans, events, and metrics from every rank — when the executor
    #: was built with ``obs=`` / ``trace_path=``; None otherwise.
    obs: Optional[Observability] = None

    @property
    def elapsed(self) -> float:
        return self.stats.elapsed

    def merged(self) -> Optional[KeyValueSet]:
        """All ranks' outputs concatenated (None if nothing was produced)."""
        parts = [kv for kv in self.outputs if kv is not None and len(kv)]
        return KeyValueSet.concat(parts) if parts else None


class GPMRRuntime:
    """Configured entry point for running GPMR jobs."""

    def __init__(
        self,
        n_gpus: int,
        cluster: ClusterSpec = ACCELERATOR,
        initial_distribution: str = "round_robin",
        network: str = "star",
        oversubscription: float = 1.0,
        fat_tree_radix: int = 2,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        if n_gpus > cluster.total_gpus:
            raise ValueError(
                f"cluster {cluster.name!r} has {cluster.total_gpus} GPUs, "
                f"requested {n_gpus}"
            )
        if initial_distribution not in DISTRIBUTIONS:
            raise ValueError(
                "initial_distribution must be 'round_robin', 'blocks', or "
                "'single' (all chunks start on rank 0, as when one node "
                "ingested the data)"
            )
        if network not in ("star", "fat-tree"):
            raise ValueError("network must be 'star' or 'fat-tree'")
        self.n_gpus = n_gpus
        self.cluster = cluster
        self.initial_distribution = initial_distribution
        self.network = network
        self.oversubscription = float(oversubscription)
        self.fat_tree_radix = int(fat_tree_radix)
        #: scripted fault injection, mirrored from the real backends so
        #: recovery schedules can be studied (and replayed) in modeled
        #: time: kills lose a rank's un-posted map phase and reclaim
        #: its chunks, stalls slow its requests.  ``speculate_after``
        #: is rejected — the sim's modeled clock has no stragglers to
        #: hedge against that a recorded schedule would not already
        #: show.
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.validate_for(n_gpus)
            if fault_plan.speculate_after is not None:
                raise ValueError(
                    "speculate_after is not supported on the sim backend: "
                    "speculation hedges real-world nondeterminism, which "
                    "modeled time does not have"
                )

    # -- assembly ----------------------------------------------------------
    def _build(self):
        env = Environment()
        n_nodes = self.cluster.nodes_used(self.n_gpus)
        nodes = build_nodes(env, self.cluster, n_nodes)
        if self.network == "star":
            topo = StarTopology(n_nodes, self.cluster.node.nic)
        else:
            topo = FatTreeTopology(
                n_nodes,
                self.cluster.node.nic,
                radix=self.fat_tree_radix,
                oversubscription=self.oversubscription,
            )
        fabric = Fabric(env, topo, self.cluster.node.cpu)
        placement = self.cluster.placement(self.n_gpus)
        rank_to_node = [node_i for node_i, _ in placement]
        comm = Communicator(
            env, fabric, rank_to_node,
            message_overhead=self.cluster.node.nic.message_overhead,
        )
        gpus = [nodes[n_i].gpus[g_i] for n_i, g_i in placement]
        return env, nodes, fabric, comm, gpus, rank_to_node

    # -- execution -----------------------------------------------------------
    def run(
        self,
        job: MapReduceJob,
        dataset: Optional[Dataset] = None,
        chunks: Optional[Sequence[Chunk]] = None,
        schedule: Optional[ScheduleTrace] = None,
        obs: Optional[Observability] = None,
        service: Optional[ChunkService] = None,
    ) -> JobResult:
        """Execute ``job`` over ``dataset`` (or explicit ``chunks``).

        Chunk handout goes through the shared
        :class:`~repro.core.scheduler.ChunkService` — the same pull
        authority every real backend uses.  With ``schedule`` the
        service replays the recorded trace instead of stealing live:
        chunks are granted in exactly the traced order (steals,
        victims, and all), so a recorded load-balanced run reproduces
        decision-for-decision.

        ``obs`` observes the run: spans and events are stamped with
        the *modeled* clock (``env.now``), so the trace timeline is
        the simulated cluster's, not this process's wall-clock.

        ``service`` supplies a pre-built pull authority (an executor's
        :meth:`~repro.core.executor.Executor._make_chunk_service`
        product, possibly a job-scoped namespace on a shared
        :class:`~repro.core.scheduler.JobChunkAuthority`); when omitted
        the runtime builds its own private one, as before.
        """
        chunks = resolve_chunks(dataset, chunks)
        fault = self.fault_plan
        if fault is not None and schedule is not None:
            raise ValueError(
                "fault_plan and schedule replay are mutually exclusive: a "
                "recorded trace already fixes every grant, so there is "
                "nothing to reclaim"
            )

        env, nodes, fabric, comm, gpus, rank_to_node = self._build()
        if obs is not None:
            # Trace in modeled time: every span/event is stamped with
            # the simulated cluster's clock.
            obs.tracer.clock = lambda: env.now
        if service is None:
            service = ChunkService(
                chunks,
                self.n_gpus,
                initial_distribution=self.initial_distribution,
                enable_stealing=job.config.enable_stealing,
                schedule=schedule,
                context=job.name,
                obs=obs,
            )

        workers = [
            Worker(
                env=env,
                rank=r,
                gpu=gpus[r],
                node=nodes[rank_to_node[r]],
                comm=comm,
                job=job,
                scheduler=service,
                kill_at_chunk=None if fault is None else fault.kill_for(r),
                stall_seconds=0.0 if fault is None else fault.stall_for(r),
                respawns_left=0 if fault is None else fault.max_respawns,
                obs=obs,
            )
            for r in range(self.n_gpus)
        ]
        procs = [env.process(w.run(), name=f"worker{w.rank}") for w in workers]
        done = env.all_of(procs)
        env.run(until=done)

        # The service's grant ledger and the pipeline's fetch ledger
        # are written independently; they must agree per worker, or the
        # recorded trace would not describe the run it came from.
        service.validate_ledgers([w.stats for w in workers])
        service.record_outcomes()

        stats = JobStats(
            job_name=job.name,
            n_gpus=self.n_gpus,
            elapsed=env.now,
            workers=[w.stats for w in workers],
            chunks_reclaimed=service.chunks_reclaimed,
            speculative_wins=service.speculative_wins,
            retries_by_worker=list(service.retries_by_worker),
        )
        return JobResult(
            stats=stats,
            outputs=[w.result for w in workers],
            schedule=service.trace,
            obs=obs,
        )

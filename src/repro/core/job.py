"""Job specification: mapper + optional substages, validated.

The legal pipeline shapes follow the paper's Section 4.1 "Map
Pipeline" summary:

* Accumulation excludes Partial Reduce *and* Combine;
* Partial Reduce and Combine may coexist (partial per chunk, combine
  at the end), but Combine defers binning until all maps finish;
* no Partitioner means a single reducer (rank 0) receives everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..accel.fused import FusedMapper
from .combine import Accumulator, Combiner, PartialReducer
from .config import PipelineConfig
from .kvset import KeyValueSet
from .mapper import Mapper
from .partitioner import Partitioner
from .reducer import Reducer
from .sorter import RadixSorter, Sorter

__all__ = ["MapReduceJob"]


@dataclass
class MapReduceJob:
    """A complete GPMR job description."""

    name: str
    mapper: Mapper
    reducer: Optional[Reducer] = None
    partitioner: Optional[Partitioner] = None
    combiner: Optional[Combiner] = None
    partial_reducer: Optional[PartialReducer] = None
    accumulator: Optional[Accumulator] = None
    sorter: Sorter = field(default_factory=RadixSorter)
    #: optional fused map+partial-reduce kernel; the staged stages above
    #: remain attached and stay the bit-parity reference.  Runs only
    #: when the executor (or config) asks for ``fused=True``.
    fused: Optional[FusedMapper] = None
    config: PipelineConfig = field(default_factory=PipelineConfig)
    #: key width on the wire (GPMR keys are 4-byte integers by default)
    key_bytes: int = 4
    #: value width on the wire per pair
    value_bytes: int = 4
    #: maximum significant key bits (drives radix pass count)
    key_bits: int = 32

    def __post_init__(self) -> None:
        if self.accumulator is not None and self.partial_reducer is not None:
            raise ValueError(
                "Accumulation and Partial Reduction are mutually exclusive "
                "(paper Section 3)"
            )
        if self.accumulator is not None and self.combiner is not None:
            raise ValueError(
                "Accumulation eliminates the need for Combine and they cannot "
                "be used together (paper Section 4.1)"
            )
        if self.key_bytes <= 0 or self.value_bytes <= 0:
            raise ValueError("key/value byte widths must be positive")
        if not (1 <= self.key_bits <= 64):
            raise ValueError("key_bits must be in [1, 64]")
        if self.config.skip_sort_reduce and self.reducer is not None:
            raise ValueError("skip_sort_reduce jobs must not declare a reducer")
        if self.fused is not None and self.combiner is not None:
            raise ValueError(
                "a fused kernel subsumes Combine (it already reduces before "
                "partitioning); attach one or the other"
            )
        if self.config.fused and self.fused is None:
            raise ValueError(
                "config.fused=True but the job has no fused kernel attached"
            )

    @property
    def pair_bytes(self) -> int:
        return self.key_bytes + self.value_bytes

    def partition_parts(self, kv: KeyValueSet, n_parts: int) -> List[KeyValueSet]:
        """The functional half of Partition: one part per reducer rank.

        This is the single definition of pair routing shared by every
        execution backend: with a partitioner, pairs split by per-pair
        destination; without one, everything goes to rank 0 ("all pairs
        are sent to a single Reducer", paper Section 4.1).
        """
        if self.partitioner is not None:
            dest = self.partitioner.partition(kv, n_parts)
            return kv.split_by(dest, n_parts)
        return [
            kv if d == 0 else KeyValueSet.empty(scale=kv.scale)
            for d in range(n_parts)
        ]

    def with_config(self, **changes) -> "MapReduceJob":
        """A copy of this job with ``PipelineConfig`` fields replaced."""
        return replace(self, config=replace(self.config, **changes))

    @property
    def bins_during_map(self) -> bool:
        """Whether Bin overlaps the map loop.

        "Not using Accumulation or Combination allows for Binning to
        take place concurrently with Maps.  Conversely, using
        Accumulation or Combination mandates that Binning only happens
        once all Maps finish."
        """
        return self.accumulator is None and self.combiner is None

"""Pluggable execution backends: *how* a GPMR job runs.

The GPMR dataflow — chunk scheduling, Map (+ Combine / Partial Reduce /
Accumulate), Partition, Bin/exchange, Sort, Reduce — is described by a
:class:`~repro.core.job.MapReduceJob`.  An :class:`Executor` decides how
that dataflow executes:

* :class:`SimExecutor` (``"sim"``) — the discrete-event simulation.
  Every stage charges modeled time (kernels, PCI-e, network) and the
  result carries the paper's Figure-2 stage accounting.
* ``LocalExecutor`` (``"local"``, in :mod:`repro.exec.local`) — real
  execution on ``multiprocessing`` workers with NumPy-vectorized
  kernels; the network fabric becomes a zero-copy shared-memory
  exchange (binary KVSet codec, :mod:`repro.exec.exchange`).
* ``SerialExecutor`` (``"serial"``, in :mod:`repro.exec.serial`) — the
  same real dataflow, run rank-by-rank in the current process.
* ``ClusterExecutor`` (``"cluster"``, in :mod:`repro.exec.cluster`) —
  the same real dataflow on rank processes joined by the
  :mod:`repro.fabric` TCP socket shuffle (host-agnostic wire; spawns
  local ranks by default, or accepts remote ranks started with
  ``python -m repro.fabric.launch``).

Every backend implements the same canonical semantics (pull-based
chunk distribution through one shared
:class:`~repro.core.scheduler.ChunkService`, source-major shuffle
order, identical sort/reduce maths), so a job produces
**bit-identical** per-rank outputs on all of them — the
cross-validation contract ``tests/test_exec_parity.py`` enforces, and
``tests/test_dynamic_steal.py`` extends to natively load-balanced runs
via record-on-real / replay-on-sim.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Sequence, Tuple

from .chunk import Chunk
from .job import MapReduceJob
from .runtime import (
    DISTRIBUTIONS,
    GPMRRuntime,
    JobResult,
    distribute_chunks,
    resolve_chunks,
)
from .scheduler import ScheduleTrace
from ..obs import Observability
from ..workloads.base import Dataset

__all__ = [
    "Executor",
    "SimExecutor",
    "DISTRIBUTIONS",
    "available_backends",
    "make_executor",
    "register_backend",
    "resolve_chunks",
    "distribute_chunks",
]


class Executor(ABC):
    """One way of executing :class:`MapReduceJob` dataflows."""

    #: registry name of the backend ("sim", "local", ...)
    name: str = "abstract"

    def __init__(
        self,
        n_workers: int,
        obs: Optional[Observability] = None,
        trace_path: Optional[str] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        #: where to write the run's JSONL trace (tracing implied when set)
        self.trace_path = trace_path
        if obs is None and trace_path is not None:
            obs = Observability()
        #: the run's :class:`~repro.obs.Observability` bundle, or None
        #: when tracing is off (the default).  Instrumentation is
        #: passive — timestamps and counters only — so traced runs stay
        #: bit-identical to untraced runs.
        self.obs = obs

    # -- observability hooks (shared by every backend) --------------------

    def _begin_obs(self) -> Optional[Observability]:
        """Fresh observation state for one run (None when tracing is
        off).  One executor observes one run at a time: re-running
        resets the bundle, after the previous run's trace was written."""
        if self.obs is not None:
            self.obs.reset()
        return self.obs

    def _finish_obs(self, obs: Optional[Observability], stats) -> None:
        """Stamp run metadata and write the JSONL trace, if requested."""
        if obs is None:
            return
        obs.finish(backend=self.name, stats=stats, clock=stats.clock)
        if self.trace_path:
            obs.write_jsonl(self.trace_path)

    @abstractmethod
    def run(
        self,
        job: MapReduceJob,
        dataset: Optional[Dataset] = None,
        chunks: Optional[Sequence[Chunk]] = None,
        schedule: Optional[ScheduleTrace] = None,
    ) -> JobResult:
        """Execute ``job`` over ``dataset`` (or explicit ``chunks``).

        Chunk distribution is pull-based on every backend: workers
        request chunks at runtime from a shared
        :class:`~repro.core.scheduler.ChunkService`, so idle workers
        steal from the longest queue and the run records the resulting
        :class:`~repro.core.scheduler.ScheduleTrace` as
        ``JobResult.schedule``.  ``schedule`` replays a recorded trace
        instead: every backend grants the same chunks to the same ranks
        in the same per-rank order the trace dictates, which extends
        the bit-parity contract to load-balanced runs in both
        directions (record on sim / replay on real, and vice versa).
        """

    def close(self) -> None:
        """Release any resources the executor holds between runs.

        A no-op by default — today's backends acquire everything per
        :meth:`run` and release it there — but part of the contract so
        callers can treat every backend uniformly (and future
        persistent-pool executors have a hook).
        """

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} n_workers={self.n_workers}>"


class SimExecutor(Executor):
    """The discrete-event simulation backend (the seed's engine).

    Accepts every :class:`~repro.core.runtime.GPMRRuntime` knob
    (cluster spec, network topology, initial distribution, ...) and
    preserves all Figure-2 / Table-1 accounting.
    """

    name = "sim"

    def __init__(
        self,
        n_workers: int,
        obs: Optional[Observability] = None,
        trace_path: Optional[str] = None,
        **runtime_kwargs,
    ) -> None:
        super().__init__(n_workers, obs=obs, trace_path=trace_path)
        self.runtime = GPMRRuntime(n_gpus=n_workers, **runtime_kwargs)

    def run(
        self,
        job: MapReduceJob,
        dataset: Optional[Dataset] = None,
        chunks: Optional[Sequence[Chunk]] = None,
        schedule: Optional[ScheduleTrace] = None,
    ) -> JobResult:
        obs = self._begin_obs()
        result = self.runtime.run(
            job, dataset=dataset, chunks=chunks, schedule=schedule, obs=obs
        )
        self._finish_obs(obs, result.stats)
        return result


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

_BACKENDS: Dict[str, Callable[..., Executor]] = {}

#: Backends that live outside core and register on first import.
_LAZY_BACKENDS: Tuple[str, ...] = ("local", "serial", "cluster")


def register_backend(name: str, factory: Callable[..., Executor]) -> None:
    """Register an executor factory under ``name`` (last wins)."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _BACKENDS[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Registered backend names (triggers registration of lazy ones)."""
    for name in _LAZY_BACKENDS:
        if name not in _BACKENDS:
            _import_lazy(name)
    return tuple(sorted(_BACKENDS))


def _import_lazy(name: str) -> None:
    # Imported for the registration side effect; core cannot import
    # repro.exec at module load without creating a cycle.
    import repro.exec  # noqa: F401


def make_executor(backend: str, n_workers: int, **kwargs) -> Executor:
    """Build the executor registered as ``backend``.

    ``kwargs`` go to the backend factory verbatim (e.g. ``cluster=`` /
    ``network=`` for ``"sim"``, ``start_method=`` for ``"local"``).
    Every built-in backend also accepts the observability knobs
    ``obs=`` (an :class:`~repro.obs.Observability` bundle) and
    ``trace_path=`` (write the run's JSONL span/event trace there;
    implies tracing) — both off by default, and passive when on, so
    traced runs stay bit-identical to untraced runs.
    """
    if backend not in _BACKENDS and backend in _LAZY_BACKENDS:
        _import_lazy(backend)
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; "
            f"available: {available_backends()}"
        )
    return _BACKENDS[backend](n_workers, **kwargs)


register_backend(SimExecutor.name, SimExecutor)

"""Pluggable execution backends: *how* a GPMR job runs.

The GPMR dataflow — chunk scheduling, Map (+ Combine / Partial Reduce /
Accumulate), Partition, Bin/exchange, Sort, Reduce — is described by a
:class:`~repro.core.job.MapReduceJob`.  An :class:`Executor` decides how
that dataflow executes:

* :class:`SimExecutor` (``"sim"``) — the discrete-event simulation.
  Every stage charges modeled time (kernels, PCI-e, network) and the
  result carries the paper's Figure-2 stage accounting.
* ``LocalExecutor`` (``"local"``, in :mod:`repro.exec.local`) — real
  execution on ``multiprocessing`` workers with NumPy-vectorized
  kernels; the network fabric becomes a zero-copy shared-memory
  exchange (binary KVSet codec, :mod:`repro.exec.exchange`).
* ``SerialExecutor`` (``"serial"``, in :mod:`repro.exec.serial`) — the
  same real dataflow, run rank-by-rank in the current process.
* ``ClusterExecutor`` (``"cluster"``, in :mod:`repro.exec.cluster`) —
  the same real dataflow on rank processes joined by the
  :mod:`repro.fabric` TCP socket shuffle (host-agnostic wire; spawns
  local ranks by default, or accepts remote ranks started with
  ``python -m repro.fabric.launch``).

Every backend implements the same canonical semantics (pull-based
chunk distribution through one shared
:class:`~repro.core.scheduler.ChunkService`, source-major shuffle
order, identical sort/reduce maths), so a job produces
**bit-identical** per-rank outputs on all of them — the
cross-validation contract ``tests/test_exec_parity.py`` enforces, and
``tests/test_dynamic_steal.py`` extends to natively load-balanced runs
via record-on-real / replay-on-sim.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Sequence, Tuple

from .chunk import Chunk
from .job import MapReduceJob
from .runtime import (
    DISTRIBUTIONS,
    GPMRRuntime,
    JobResult,
    distribute_chunks,
    resolve_chunks,
)
from .scheduler import ChunkService, ScheduleTrace
from ..obs import Observability
from ..workloads.base import Dataset

__all__ = [
    "Executor",
    "SimExecutor",
    "DISTRIBUTIONS",
    "available_backends",
    "make_executor",
    "register_backend",
    "resolve_chunks",
    "distribute_chunks",
]


class Executor(ABC):
    """One way of executing :class:`MapReduceJob` dataflows."""

    #: registry name of the backend ("sim", "local", ...)
    name: str = "abstract"

    def __init__(
        self,
        n_workers: int,
        obs: Optional[Observability] = None,
        trace_path: Optional[str] = None,
        accel: Optional[str] = None,
        fused: Optional[bool] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        #: acceleration-tier overrides for every run: ``accel`` names
        #: the array namespace ("numpy" | "cupy" | "torch"), ``fused``
        #: turns the fused map+partial-reduce path on/off.  ``None``
        #: (default) respects whatever the job's own PipelineConfig
        #: says; a non-None value is stamped into each run's job config
        #: (which travels in the job pickle, so remote ranks see it).
        if accel is not None:
            from ..accel.namespace import resolve_namespace  # noqa: PLC0415

            resolve_namespace(accel)  # fail fast on unknown/missing tiers
        self.accel = accel
        self.fused = fused
        #: where to write the run's JSONL trace (tracing implied when set)
        self.trace_path = trace_path
        if obs is None and trace_path is not None:
            obs = Observability()
        #: the run's :class:`~repro.obs.Observability` bundle, or None
        #: when tracing is off (the default).  Instrumentation is
        #: passive — timestamps and counters only — so traced runs stay
        #: bit-identical to untraced runs.
        self.obs = obs
        #: True once :meth:`close` ran; a closed executor refuses to run
        self._closed = False
        #: shared multi-job pull authority (see
        #: :class:`~repro.core.scheduler.JobChunkAuthority`).  ``None``
        #: outside a job service: each run builds its own private
        #: :class:`~repro.core.scheduler.ChunkService`.  A pool-managed
        #: executor gets the daemon's shared authority here, so every
        #: concurrent job's chunk queues live behind one front.
        self.chunk_authority = None
        #: namespace for the *next* run's chunk service and trace meta
        #: (set per lease by the job service; ``None`` for one-shot runs)
        self.job_id: Optional[str] = None

    # -- observability hooks (shared by every backend) --------------------

    def _begin_obs(self) -> Optional[Observability]:
        """Fresh observation state for one run (None when tracing is
        off).  One executor observes one run at a time: re-running
        resets the bundle, after the previous run's trace was written."""
        if self.obs is not None:
            self.obs.reset()
            # Namespace the fresh bundle under the lease's job (no-op
            # outside a job service, where job_id is None).
            self.obs.set_job(self.job_id)
        return self.obs

    def _finish_obs(self, obs: Optional[Observability], stats) -> None:
        """Stamp run metadata and write the JSONL trace, if requested."""
        if obs is None:
            return
        obs.finish(backend=self.name, stats=stats, clock=stats.clock)
        if self.trace_path:
            obs.write_jsonl(self.trace_path)

    @abstractmethod
    def run(
        self,
        job: MapReduceJob,
        dataset: Optional[Dataset] = None,
        chunks: Optional[Sequence[Chunk]] = None,
        schedule: Optional[ScheduleTrace] = None,
    ) -> JobResult:
        """Execute ``job`` over ``dataset`` (or explicit ``chunks``).

        Chunk distribution is pull-based on every backend: workers
        request chunks at runtime from a shared
        :class:`~repro.core.scheduler.ChunkService`, so idle workers
        steal from the longest queue and the run records the resulting
        :class:`~repro.core.scheduler.ScheduleTrace` as
        ``JobResult.schedule``.  ``schedule`` replays a recorded trace
        instead: every backend grants the same chunks to the same ranks
        in the same per-rank order the trace dictates, which extends
        the bit-parity contract to load-balanced runs in both
        directions (record on sim / replay on real, and vice versa).
        """

    # -- reusable lifecycle ------------------------------------------------
    #
    # Executors are pool-managed by the job service (repro.service): one
    # instance runs many jobs back to back, so the lifecycle is part of
    # the backend contract — close() is idempotent on every backend,
    # run() after close() raises RuntimeError, and reset() returns a
    # used executor to a runnable state between leases.

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; a closed executor never runs again."""
        return self._closed

    def close(self) -> None:
        """Release any resources the executor holds between runs.

        Idempotent on every backend: the first call runs the
        :meth:`_release` hook, later calls are no-ops.  After close the
        executor is permanently retired — :meth:`run` raises
        ``RuntimeError`` — so pools can retire instances without
        tracking whether a given one was already closed.
        """
        if self._closed:
            return
        self._closed = True
        self._release()

    def _release(self) -> None:
        """Subclass hook, called exactly once by the first :meth:`close`.

        Today's backends acquire everything per :meth:`run` and release
        it there, so the default is a no-op; persistent-resource
        backends override this.
        """

    def reset(self) -> None:
        """Return a used (but open) executor to a runnable state.

        The pool calls this between leases so one instance serves many
        jobs.  Per-run state on the built-in backends is already scoped
        to :meth:`run`; reset clears the cross-run knobs a job service
        sets per lease (``job_id``) and recorded observability, and
        refuses on a closed executor.
        """
        self._check_open("reset")
        self.job_id = None
        if self.obs is not None:
            self.obs.reset()

    def _configure_job(self, job: MapReduceJob) -> MapReduceJob:
        """Apply the executor's accel/fused overrides to one run's job.

        Called by every backend at the top of :meth:`run`; the
        configured copy is what gets pickled to workers, so the choice
        rides the existing job plumbing with no wire changes.
        Validation (unknown tier, ``fused=True`` on a job without a
        fused kernel) happens here, driver-side, not on a remote rank.
        """
        changes = {}
        if self.accel is not None and job.config.accel != self.accel:
            changes["accel"] = self.accel
        if self.fused is not None and job.config.fused != bool(self.fused):
            changes["fused"] = bool(self.fused)
        return job.with_config(**changes) if changes else job

    def _check_open(self, action: str = "run") -> None:
        """Raise clearly when a closed executor is asked to work again."""
        if self._closed:
            raise RuntimeError(
                f"cannot {action} on a closed {type(self).__name__}: "
                "close() already released this executor; build a new one "
                "(or lease from a pool) instead"
            )

    def _make_chunk_service(
        self,
        chunks: Sequence[Chunk],
        job: MapReduceJob,
        *,
        schedule: Optional[ScheduleTrace] = None,
        speculate_after: Optional[float] = None,
        obs: Optional[Observability] = None,
    ) -> ChunkService:
        """Build (or borrow) the run's pull authority.

        Standalone executors build a private
        :class:`~repro.core.scheduler.ChunkService`; a pool-managed
        executor with a :attr:`chunk_authority` opens a *job-scoped
        namespace* on the shared authority instead, so concurrent jobs'
        chunk queues coexist behind one front and the daemon can
        inspect/close them by :attr:`job_id`.
        """
        initial = getattr(self, "initial_distribution", "round_robin")
        context = (
            f"{job.name}@{self.job_id}" if self.job_id else job.name
        )
        # Prefetching backends (local, cluster) pipeline requests, so
        # the service must not treat a rank's newest grants as mapped
        # on its next request — see ChunkScheduler(prefetch=).
        prefetch = getattr(self, "prefetch_window", 0)
        if self.chunk_authority is not None:
            return self.chunk_authority.open_job(
                chunks,
                self.n_workers,
                job_id=self.job_id,
                initial_distribution=initial,
                enable_stealing=job.config.enable_stealing,
                schedule=schedule,
                context=context,
                speculate_after=speculate_after,
                prefetch=prefetch,
                obs=obs,
            )
        return ChunkService(
            chunks,
            self.n_workers,
            initial_distribution=initial,
            enable_stealing=job.config.enable_stealing,
            schedule=schedule,
            context=context,
            speculate_after=speculate_after,
            prefetch=prefetch,
            obs=obs,
            job_id=self.job_id,
        )

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} n_workers={self.n_workers}>"


class SimExecutor(Executor):
    """The discrete-event simulation backend (the seed's engine).

    Accepts every :class:`~repro.core.runtime.GPMRRuntime` knob
    (cluster spec, network topology, initial distribution, ...) and
    preserves all Figure-2 / Table-1 accounting.
    """

    name = "sim"

    def __init__(
        self,
        n_workers: int,
        obs: Optional[Observability] = None,
        trace_path: Optional[str] = None,
        accel: Optional[str] = None,
        fused: Optional[bool] = None,
        **runtime_kwargs,
    ) -> None:
        super().__init__(
            n_workers, obs=obs, trace_path=trace_path, accel=accel, fused=fused
        )
        self.runtime = GPMRRuntime(n_gpus=n_workers, **runtime_kwargs)
        #: mirrored from the runtime so :meth:`_make_chunk_service`
        #: sees the same initial-placement policy the sim models
        self.initial_distribution = self.runtime.initial_distribution

    def run(
        self,
        job: MapReduceJob,
        dataset: Optional[Dataset] = None,
        chunks: Optional[Sequence[Chunk]] = None,
        schedule: Optional[ScheduleTrace] = None,
    ) -> JobResult:
        self._check_open()
        job = self._configure_job(job)
        obs = self._begin_obs()
        all_chunks = resolve_chunks(dataset, chunks)
        # Built here (not inside the runtime) so a pool-managed
        # executor can route the run through a shared multi-job
        # authority.  Safe before the runtime swaps the tracer onto
        # the modeled clock: service construction stamps no
        # timestamps, only gauges.
        service = self._make_chunk_service(
            all_chunks, job, schedule=schedule, obs=obs
        )
        result = self.runtime.run(
            job,
            chunks=all_chunks,
            schedule=schedule,
            obs=obs,
            service=service,
        )
        self._finish_obs(obs, result.stats)
        return result


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

_BACKENDS: Dict[str, Callable[..., Executor]] = {}

#: Backends that live outside core and register on first import.
_LAZY_BACKENDS: Tuple[str, ...] = ("local", "serial", "cluster")


def register_backend(name: str, factory: Callable[..., Executor]) -> None:
    """Register an executor factory under ``name`` (last wins)."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _BACKENDS[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Registered backend names (triggers registration of lazy ones)."""
    for name in _LAZY_BACKENDS:
        if name not in _BACKENDS:
            _import_lazy(name)
    return tuple(sorted(_BACKENDS))


def _import_lazy(name: str) -> None:
    # Imported for the registration side effect; core cannot import
    # repro.exec at module load without creating a cycle.
    import repro.exec  # noqa: F401


def make_executor(backend: str, n_workers: int, **kwargs) -> Executor:
    """Build the executor registered as ``backend``.

    ``kwargs`` go to the backend factory verbatim (e.g. ``cluster=`` /
    ``network=`` for ``"sim"``, ``start_method=`` for ``"local"``).
    Every built-in backend also accepts the observability knobs
    ``obs=`` (an :class:`~repro.obs.Observability` bundle) and
    ``trace_path=`` (write the run's JSONL span/event trace there;
    implies tracing) — both off by default, and passive when on, so
    traced runs stay bit-identical to untraced runs — plus the
    acceleration knobs ``accel=`` ("numpy" | "cupy" | "torch"; numpy is
    the always-available bit-parity tier) and ``fused=`` (run the job's
    fused map+partial-reduce kernel when it has one).  Both default to
    ``None`` = respect the job's own :class:`~repro.core.config.PipelineConfig`.

    ``executor=`` short-circuits construction with a pre-built
    instance — the job service's warm-pool path: every app's ``run_*``
    convenience funnels through here, so a pool lease passed as
    ``executor=`` reuses the warm instance while one-shot callers keep
    building fresh ones.  The instance must match ``backend`` and
    ``n_workers``; no other kwargs may accompany it (they would be
    silently ignored otherwise).
    """
    pre_built = kwargs.pop("executor", None)
    if pre_built is not None:
        if kwargs:
            raise ValueError(
                "executor= supplies a fully configured instance; "
                f"conflicting kwargs {sorted(kwargs)} would be ignored"
            )
        if pre_built.name != backend or pre_built.n_workers != int(n_workers):
            raise ValueError(
                f"pre-built executor is {pre_built.name!r}×"
                f"{pre_built.n_workers}, caller asked for "
                f"{backend!r}×{n_workers}"
            )
        return pre_built
    if backend not in _BACKENDS and backend in _LAZY_BACKENDS:
        _import_lazy(backend)
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; "
            f"available: {available_backends()}"
        )
    return _BACKENDS[backend](n_workers, **kwargs)


register_backend(SimExecutor.name, SimExecutor)

"""Key-value sets: the currency of the GPMR pipeline.

A :class:`KeyValueSet` is structure-of-arrays — an integer key array
and a parallel value array (1-D scalars or 2-D fixed-width records) —
because that is the only layout a GPU emits efficiently (the paper's
WO/KMC discussions are largely about forcing data into this shape).

Like the workload chunks, a KVSet carries a ``scale``: each stored pair
stands for ``scale`` logical pairs, so PCI-e and network byte
accounting stays at paper scale when the functional payload is sampled
(``scale == 1.0`` in all correctness tests).

Because the layout is already two flat arrays, a KVSet also has a
**versioned binary codec** — :meth:`KeyValueSet.to_buffers` /
:meth:`KeyValueSet.from_buffers` plus the batch-level
:func:`pack_parts` / :func:`unpack_parts` — a small struct header
(dtypes, shape, scale) followed by the raw array bytes.  Every real
backend's exchange hot path (shared-memory local shuffle, streamed
cluster fabric frames) rides this codec; pickle never touches payload
bytes.

The arrays need not be NumPy: a KVSet may hold any acceleration-tier
array (CuPy, Torch — see :mod:`repro.accel`) as long as keys are
integer-typed.  The binary codec is deliberately **host-only**: shuffle
parts cross the device→host boundary exactly once, via
:meth:`KeyValueSet.to_host` when the map phase posts its parts, and the
codec refuses device arrays so an accidental second crossing is an
error, not a silent sync.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "KeyValueSet",
    "CODEC_VERSION",
    "CodecError",
    "pack_parts",
    "unpack_parts",
]

#: Version byte of the binary KVSet codec; bump on any layout change.
CODEC_VERSION = 1

#: magic(2s) version(B) ndim(B) key_dtype_len(H) value_dtype_len(H)
#: n_pairs(Q) value_width(Q) scale(d) — dtype strings follow.
_KV_HEADER = struct.Struct("!2sBBHHQQd")
_KV_MAGIC = b"KV"

#: manifest: magic(4s) version(B) reserved(3x) n_parts(I) — then one
#: ``u32 header_len + header`` record per part.
_MANIFEST_HEADER = struct.Struct("!4sB3xI")
_MANIFEST_MAGIC = b"KVPK"
_U32 = struct.Struct("!I")


class CodecError(ValueError):
    """A byte stream violated the binary KVSet codec."""


def _is_foreign(arr) -> bool:
    """An acceleration-tier array (CuPy/Torch): has dtype+shape but
    is not an ndarray.  Lists/scalars are not foreign — they coerce."""
    return (
        not isinstance(arr, np.ndarray)
        and hasattr(arr, "dtype")
        and hasattr(arr, "shape")
    )


def _coerce_array(arr):
    return arr if _is_foreign(arr) else np.asarray(arr)


def _is_integer_dtype(dtype) -> bool:
    kind = getattr(dtype, "kind", None)
    if kind is not None:
        return kind in "iu"
    # torch dtypes have no .kind; their str() spells the kind out
    # ("torch.int64", "torch.uint8").
    return "int" in str(dtype)


def _foreign_namespace(arr):
    from ..accel.namespace import namespace_of  # noqa: PLC0415 - cycle guard

    ns = namespace_of(arr)
    if ns is None:
        raise TypeError(
            f"no acceleration namespace owns arrays of type {type(arr)!r}"
        )
    return ns


def _nbytes(arr) -> int:
    n = getattr(arr, "nbytes", None)
    if n is not None:
        return int(n)
    # torch tensors before .nbytes: numel * element_size
    return int(arr.numel() * arr.element_size())


@dataclass
class KeyValueSet:
    """SoA key-value pairs with logical-scale byte accounting."""

    keys: np.ndarray
    values: np.ndarray
    scale: float = 1.0

    def __post_init__(self) -> None:
        self.keys = _coerce_array(self.keys)
        self.values = _coerce_array(self.values)
        if self.keys.ndim != 1:
            raise ValueError(f"keys must be 1-D, got shape {self.keys.shape}")
        if not _is_integer_dtype(self.keys.dtype):
            raise TypeError(f"keys must be integers, got {self.keys.dtype}")
        if len(self.values) != len(self.keys):
            raise ValueError(
                f"values length {len(self.values)} != keys length {len(self.keys)}"
            )
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    # -- construction -----------------------------------------------------
    @classmethod
    def empty(
        cls,
        key_dtype=np.uint32,
        value_dtype=np.float64,
        value_width: int = 1,
        scale: float = 1.0,
    ) -> "KeyValueSet":
        shape = (0,) if value_width == 1 else (0, value_width)
        return cls(
            keys=np.empty(0, dtype=key_dtype),
            values=np.empty(shape, dtype=value_dtype),
            scale=scale,
        )

    @classmethod
    def concat(cls, parts: Sequence["KeyValueSet"]) -> "KeyValueSet":
        """Concatenate KVSets (must agree on value rank and scale)."""
        parts = [p for p in parts if p is not None]
        if not parts:
            raise ValueError("cannot concat zero KeyValueSets")
        nonempty = [p for p in parts if len(p)] or [parts[0]]
        scales = {p.scale for p in nonempty}
        if len(scales) > 1:
            raise ValueError(f"cannot concat KVSets with mixed scales {scales}")
        if not all(p.is_host for p in nonempty):
            ns = _foreign_namespace(nonempty[0].keys)
            return cls(
                keys=ns.concatenate([p.keys for p in nonempty]),
                values=ns.concatenate([p.values for p in nonempty]),
                scale=nonempty[0].scale,
            )
        return cls(
            keys=np.concatenate([p.keys for p in nonempty]),
            values=np.concatenate([p.values for p in nonempty]),
            scale=nonempty[0].scale,
        )

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.keys)

    @property
    def value_width(self) -> int:
        """Scalars per value record."""
        return 1 if self.values.ndim == 1 else int(self.values.shape[1])

    @property
    def pair_bytes(self) -> int:
        """Bytes of one (key, value) pair."""
        return int(self.keys.dtype.itemsize + self.values.dtype.itemsize * self.value_width)

    @property
    def nbytes_actual(self) -> int:
        """Bytes physically held in the sample."""
        return int(_nbytes(self.keys) + _nbytes(self.values))

    @property
    def nbytes_logical(self) -> int:
        """Full-scale bytes this set represents (drives the cost model)."""
        return int(round(self.nbytes_actual * self.scale))

    @property
    def logical_pairs(self) -> int:
        return int(round(len(self) * self.scale))

    # -- device residency --------------------------------------------------
    @property
    def is_host(self) -> bool:
        """Whether both arrays are plain host ndarrays."""
        return isinstance(self.keys, np.ndarray) and isinstance(
            self.values, np.ndarray
        )

    def to_host(self, ns=None) -> "KeyValueSet":
        """This set with host ndarrays (identity when already host).

        This is *the* device→host crossing of the pipeline: the map
        runner calls it once per shuffle part at post time, right
        before the binary codec takes over.
        """
        if self.is_host:
            return self
        if ns is None:
            ns = _foreign_namespace(self.keys)
        return KeyValueSet(
            keys=ns.to_host(self.keys),
            values=ns.to_host(self.values),
            scale=self.scale,
        )

    def to_device(self, ns) -> "KeyValueSet":
        """This set with ``ns``-native arrays (identity on host tiers)."""
        if ns.is_host:
            return self.to_host(ns)
        return KeyValueSet(
            keys=self.keys if ns.owns(self.keys) else ns.from_host(self.keys),
            values=(
                self.values if ns.owns(self.values) else ns.from_host(self.values)
            ),
            scale=self.scale,
        )

    # -- transforms --------------------------------------------------------
    def select(self, mask_or_index: np.ndarray) -> "KeyValueSet":
        """Sub-set by boolean mask or index array (scale preserved)."""
        return KeyValueSet(
            keys=self.keys[mask_or_index],
            values=self.values[mask_or_index],
            scale=self.scale,
        )

    def with_scale(self, scale: float) -> "KeyValueSet":
        return KeyValueSet(keys=self.keys, values=self.values, scale=scale)

    def split_by(self, part_ids: np.ndarray, n_parts: int) -> List["KeyValueSet"]:
        """Partition into ``n_parts`` KVSets by per-pair part id.

        Pairs for each part stay in their original relative order (the
        partitioner "arranges all key-value pairs for a specific
        Reducer consecutively").
        """
        if not self.is_host:
            # Same routing, expressed in the owning namespace's ops;
            # only the per-part counts come back to host (they size the
            # slices — a few ints, not payload).
            ns = _foreign_namespace(self.keys)
            if not ns.owns(part_ids):
                part_ids = ns.asarray(part_ids, dtype=np.int64)
            if len(part_ids) != len(self):
                raise ValueError("need one part id per pair")
            order = ns.stable_argsort(part_ids)
            counts = ns.to_host(ns.bincount(part_ids, minlength=n_parts))
            if counts.sum() != len(self) or len(counts) > n_parts:
                raise ValueError("part id out of range")
            bounds = np.concatenate(([0], np.cumsum(counts)))
            return [
                self.select(order[bounds[p] : bounds[p + 1]])
                for p in range(n_parts)
            ]
        part_ids = np.asarray(part_ids)
        if len(part_ids) != len(self):
            raise ValueError("need one part id per pair")
        if len(self) and (part_ids.min() < 0 or part_ids.max() >= n_parts):
            raise ValueError("part id out of range")
        order = np.argsort(part_ids, kind="stable")
        counts = np.bincount(part_ids, minlength=n_parts)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        return [
            self.select(order[bounds[p] : bounds[p + 1]]) for p in range(n_parts)
        ]

    # -- binary codec ------------------------------------------------------
    def to_buffers(self) -> Tuple[bytes, List[memoryview]]:
        """Encode as ``(header, [key_bytes, value_bytes])`` — no pickle.

        The header is a small versioned struct (dtypes, shape, scale);
        the buffers are the raw C-contiguous array bytes, exposed as
        ``uint8`` memoryviews so senders can splice them into shared
        memory or a wire stream without copying.  The exchange hot path
        of every real backend rides this codec.
        """
        if not self.is_host:
            raise TypeError(
                "the binary codec is host-only; export device parts with "
                "KeyValueSet.to_host() exactly once, at post time"
            )
        keys = np.ascontiguousarray(self.keys)
        values = np.ascontiguousarray(self.values)
        key_dtype = keys.dtype.str.encode("ascii")
        value_dtype = values.dtype.str.encode("ascii")
        header = _KV_HEADER.pack(
            _KV_MAGIC,
            CODEC_VERSION,
            values.ndim,
            len(key_dtype),
            len(value_dtype),
            len(self),
            self.value_width,
            self.scale,
        ) + key_dtype + value_dtype
        # ravel() first: a 0 x k view cannot be cast to bytes, and on a
        # contiguous array it is free.
        return header, [
            memoryview(keys.ravel()).cast("B"),
            memoryview(values.ravel()).cast("B"),
        ]

    @classmethod
    def from_buffers(cls, header: bytes, buffers: Sequence) -> "KeyValueSet":
        """Rebuild from :meth:`to_buffers` output, zero-copy.

        The returned arrays are *views* into ``buffers`` — the caller
        owns the backing memory's lifetime (e.g. a shared-memory
        segment must outlive the views, or the data must be copied out
        before the segment is released).
        """
        key_dtype, value_dtype, ndim, n, width, scale = _parse_kv_header(header)
        if len(buffers) != 2:
            raise CodecError(f"expected 2 buffers, got {len(buffers)}")
        key_buf, value_buf = buffers
        key_nbytes = n * key_dtype.itemsize
        value_nbytes = n * width * value_dtype.itemsize
        if memoryview(key_buf).nbytes != key_nbytes:
            raise CodecError(
                f"key buffer holds {memoryview(key_buf).nbytes} B, "
                f"header declares {key_nbytes}"
            )
        if memoryview(value_buf).nbytes != value_nbytes:
            raise CodecError(
                f"value buffer holds {memoryview(value_buf).nbytes} B, "
                f"header declares {value_nbytes}"
            )
        keys = np.frombuffer(key_buf, dtype=key_dtype, count=n)
        values = np.frombuffer(value_buf, dtype=value_dtype, count=n * width)
        if ndim != 1:
            values = values.reshape(n, width)
        return cls(keys=keys, values=values, scale=scale)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<KeyValueSet n={len(self)} width={self.value_width} "
            f"scale={self.scale:g}>"
        )


def _parse_kv_header(header: bytes):
    """Decode one codec header -> (key_dtype, value_dtype, ndim, n, width, scale)."""
    header = bytes(header)
    if len(header) < _KV_HEADER.size:
        raise CodecError(f"KVSet header truncated at {len(header)} B")
    magic, version, ndim, kd_len, vd_len, n, width, scale = _KV_HEADER.unpack_from(
        header
    )
    if magic != _KV_MAGIC:
        raise CodecError(f"bad KVSet header magic {magic!r}")
    if version != CODEC_VERSION:
        raise CodecError(
            f"KVSet codec v{version} not supported (this build speaks "
            f"v{CODEC_VERSION})"
        )
    if ndim not in (1, 2):
        raise CodecError(f"unsupported value rank {ndim}")
    offset = _KV_HEADER.size
    if len(header) != offset + kd_len + vd_len:
        raise CodecError("KVSet header length disagrees with dtype fields")
    key_dtype = np.dtype(header[offset : offset + kd_len].decode("ascii"))
    value_dtype = np.dtype(
        header[offset + kd_len : offset + kd_len + vd_len].decode("ascii")
    )
    return key_dtype, value_dtype, ndim, n, width, scale


def pack_parts(
    parts: Sequence[KeyValueSet],
) -> Tuple[bytes, List[memoryview], int]:
    """Encode a batch (list of KVSets) as ``(manifest, chunks, nbytes)``.

    ``manifest`` is a small self-describing bytes blob (per-part codec
    headers, order-preserving); ``chunks`` are the raw buffers to lay
    end-to-end after it (shared-memory segment, wire stream, ...);
    ``nbytes`` is their total size.  Nothing is pickled.
    """
    records = [bytearray(_MANIFEST_HEADER.pack(_MANIFEST_MAGIC, CODEC_VERSION,
                                               len(parts)))]
    chunks: List[memoryview] = []
    nbytes = 0
    for part in parts:
        header, buffers = part.to_buffers()
        records.append(_U32.pack(len(header)))
        records.append(header)
        for buf in buffers:
            chunks.append(buf)
            nbytes += buf.nbytes
    return b"".join(bytes(r) for r in records), chunks, nbytes


def unpack_parts(manifest: bytes, data) -> List[KeyValueSet]:
    """Decode :func:`pack_parts` output; arrays are views into ``data``.

    ``data`` is any buffer holding the concatenated chunks.  The caller
    keeps it alive until the parts are consumed (concatenation by the
    reduce path copies them out).
    """
    manifest = bytes(manifest)
    if len(manifest) < _MANIFEST_HEADER.size:
        raise CodecError(f"batch manifest truncated at {len(manifest)} B")
    magic, version, n_parts = _MANIFEST_HEADER.unpack_from(manifest)
    if magic != _MANIFEST_MAGIC:
        raise CodecError(f"bad batch manifest magic {magic!r}")
    if version != CODEC_VERSION:
        raise CodecError(f"batch manifest codec v{version} not supported")
    view = memoryview(data).cast("B")
    parts: List[KeyValueSet] = []
    read = _MANIFEST_HEADER.size
    offset = 0
    for _ in range(n_parts):
        if read + _U32.size > len(manifest):
            raise CodecError("batch manifest ends inside a part record")
        (header_len,) = _U32.unpack_from(manifest, read)
        read += _U32.size
        header = manifest[read : read + header_len]
        read += header_len
        key_dtype, value_dtype, _ndim, n, width, _scale = _parse_kv_header(header)
        key_nbytes = n * key_dtype.itemsize
        value_nbytes = n * width * value_dtype.itemsize
        if offset + key_nbytes + value_nbytes > view.nbytes:
            raise CodecError(
                f"batch data holds {view.nbytes} B, manifest promises more"
            )
        buffers = [
            view[offset : offset + key_nbytes],
            view[offset + key_nbytes : offset + key_nbytes + value_nbytes],
        ]
        offset += key_nbytes + value_nbytes
        parts.append(KeyValueSet.from_buffers(header, buffers))
    if read != len(manifest):
        raise CodecError("trailing bytes after the last manifest record")
    return parts

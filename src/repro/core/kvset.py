"""Key-value sets: the currency of the GPMR pipeline.

A :class:`KeyValueSet` is structure-of-arrays — an integer key array
and a parallel value array (1-D scalars or 2-D fixed-width records) —
because that is the only layout a GPU emits efficiently (the paper's
WO/KMC discussions are largely about forcing data into this shape).

Like the workload chunks, a KVSet carries a ``scale``: each stored pair
stands for ``scale`` logical pairs, so PCI-e and network byte
accounting stays at paper scale when the functional payload is sampled
(``scale == 1.0`` in all correctness tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["KeyValueSet"]


@dataclass
class KeyValueSet:
    """SoA key-value pairs with logical-scale byte accounting."""

    keys: np.ndarray
    values: np.ndarray
    scale: float = 1.0

    def __post_init__(self) -> None:
        self.keys = np.asarray(self.keys)
        self.values = np.asarray(self.values)
        if self.keys.ndim != 1:
            raise ValueError(f"keys must be 1-D, got shape {self.keys.shape}")
        if self.keys.dtype.kind not in "iu":
            raise TypeError(f"keys must be integers, got {self.keys.dtype}")
        if len(self.values) != len(self.keys):
            raise ValueError(
                f"values length {len(self.values)} != keys length {len(self.keys)}"
            )
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    # -- construction -----------------------------------------------------
    @classmethod
    def empty(
        cls,
        key_dtype=np.uint32,
        value_dtype=np.float64,
        value_width: int = 1,
        scale: float = 1.0,
    ) -> "KeyValueSet":
        shape = (0,) if value_width == 1 else (0, value_width)
        return cls(
            keys=np.empty(0, dtype=key_dtype),
            values=np.empty(shape, dtype=value_dtype),
            scale=scale,
        )

    @classmethod
    def concat(cls, parts: Sequence["KeyValueSet"]) -> "KeyValueSet":
        """Concatenate KVSets (must agree on value rank and scale)."""
        parts = [p for p in parts if p is not None]
        if not parts:
            raise ValueError("cannot concat zero KeyValueSets")
        nonempty = [p for p in parts if len(p)] or [parts[0]]
        scales = {p.scale for p in nonempty}
        if len(scales) > 1:
            raise ValueError(f"cannot concat KVSets with mixed scales {scales}")
        return cls(
            keys=np.concatenate([p.keys for p in nonempty]),
            values=np.concatenate([p.values for p in nonempty]),
            scale=nonempty[0].scale,
        )

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.keys)

    @property
    def value_width(self) -> int:
        """Scalars per value record."""
        return 1 if self.values.ndim == 1 else int(self.values.shape[1])

    @property
    def pair_bytes(self) -> int:
        """Bytes of one (key, value) pair."""
        return int(self.keys.dtype.itemsize + self.values.dtype.itemsize * self.value_width)

    @property
    def nbytes_actual(self) -> int:
        """Bytes physically held in the sample."""
        return int(self.keys.nbytes + self.values.nbytes)

    @property
    def nbytes_logical(self) -> int:
        """Full-scale bytes this set represents (drives the cost model)."""
        return int(round(self.nbytes_actual * self.scale))

    @property
    def logical_pairs(self) -> int:
        return int(round(len(self) * self.scale))

    # -- transforms --------------------------------------------------------
    def select(self, mask_or_index: np.ndarray) -> "KeyValueSet":
        """Sub-set by boolean mask or index array (scale preserved)."""
        return KeyValueSet(
            keys=self.keys[mask_or_index],
            values=self.values[mask_or_index],
            scale=self.scale,
        )

    def with_scale(self, scale: float) -> "KeyValueSet":
        return KeyValueSet(keys=self.keys, values=self.values, scale=scale)

    def split_by(self, part_ids: np.ndarray, n_parts: int) -> List["KeyValueSet"]:
        """Partition into ``n_parts`` KVSets by per-pair part id.

        Pairs for each part stay in their original relative order (the
        partitioner "arranges all key-value pairs for a specific
        Reducer consecutively").
        """
        part_ids = np.asarray(part_ids)
        if len(part_ids) != len(self):
            raise ValueError("need one part id per pair")
        if len(self) and (part_ids.min() < 0 or part_ids.max() >= n_parts):
            raise ValueError("part id out of range")
        order = np.argsort(part_ids, kind="stable")
        counts = np.bincount(part_ids, minlength=n_parts)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        return [
            self.select(order[bounds[p] : bounds[p + 1]]) for p in range(n_parts)
        ]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<KeyValueSet n={len(self)} width={self.value_width} "
            f"scale={self.scale:g}>"
        )

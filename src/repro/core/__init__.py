"""GPMR core (S6): the paper's contribution, reimplemented.

Public API surface::

    from repro.core import (
        MapReduceJob, GPMRRuntime, PipelineConfig,
        Mapper, Reducer, Partitioner, RoundRobinPartitioner,
        Combiner, PartialReducer, Accumulator,
        SumCombiner, SumPartialReducer, SumAccumulator,
        KeyValueSet, Chunk,
    )

A job is a :class:`MapReduceJob` (mapper + optional substages); an
:class:`Executor` runs it and returns a :class:`JobResult` with
per-rank outputs and per-stage timing (`JobStats`).  Backends are
pluggable via :func:`make_executor`: ``"sim"`` (the simulated cluster,
:class:`GPMRRuntime` underneath), ``"local"`` (real ``multiprocessing``
workers), and ``"serial"`` (in-process real execution).
"""

from .binner import TAG_DATA, TAG_FLUSH, Binner
from .chunk import Chunk
from .combine import (
    Accumulator,
    Combiner,
    PartialReducer,
    SumAccumulator,
    SumCombiner,
    SumPartialReducer,
    combine_by_key_sum,
)
from .config import PipelineConfig
from .faults import FaultPlan
from .executor import (
    Executor,
    SimExecutor,
    available_backends,
    distribute_chunks,
    make_executor,
    register_backend,
    resolve_chunks,
)
from .job import MapReduceJob
from .kvset import KeyValueSet
from .mapper import Mapper
from .partitioner import (
    BlockPartitioner,
    HashPartitioner,
    Partitioner,
    RoundRobinPartitioner,
)
from .pipeline import Worker
from .reducer import Reducer
from .runtime import GPMRRuntime, JobResult
from .scheduler import (
    RETRY,
    Assignment,
    ChunkScheduler,
    ChunkService,
    ReplayScheduler,
    ScheduleGrant,
    ScheduleTrace,
)
from .sorter import ComparisonSorter, RadixSorter, Sorter
from .stats import STAGES, JobStats, WorkerStats

__all__ = [
    "MapReduceJob",
    "FaultPlan",
    "GPMRRuntime",
    "JobResult",
    "PipelineConfig",
    "Executor",
    "SimExecutor",
    "make_executor",
    "register_backend",
    "available_backends",
    "resolve_chunks",
    "distribute_chunks",
    "Mapper",
    "Reducer",
    "Partitioner",
    "RoundRobinPartitioner",
    "BlockPartitioner",
    "HashPartitioner",
    "Combiner",
    "PartialReducer",
    "Accumulator",
    "SumCombiner",
    "SumPartialReducer",
    "SumAccumulator",
    "combine_by_key_sum",
    "Sorter",
    "RadixSorter",
    "ComparisonSorter",
    "KeyValueSet",
    "Chunk",
    "ChunkScheduler",
    "ChunkService",
    "RETRY",
    "ReplayScheduler",
    "ScheduleGrant",
    "ScheduleTrace",
    "Assignment",
    "Worker",
    "Binner",
    "TAG_DATA",
    "TAG_FLUSH",
    "STAGES",
    "JobStats",
    "WorkerStats",
]

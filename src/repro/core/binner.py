"""The Bin substage: CPU-threaded network transmission of pairs.

"Bin is the only stage of the pipeline executed on the CPU ... GPMR
takes advantage of modern multicore processors by running it in a
separate thread, yielding a more thorough overlap of communication with
the mapping computation."  Here each bin is a simulation process: it
charges buffer packing to a host core, then ships each reducer's bucket
with one MPI send ("requiring only one network send per Reducer").

Completion protocol: receivers cannot know how many data messages to
expect, so after its last bin each worker sends a FLUSH message to
every rank carrying the count of DATA messages it sent there.

Every DATA payload is wrapped as ``(seq, KeyValueSet)``, where ``seq``
counts this sender's submissions to that destination.  Receivers order
the gathered payloads by ``(source rank, seq)`` — a *canonical* shuffle
order that does not depend on simulated arrival times, so the sim
backend produces bit-identical reductions to the real execution
backends (see :mod:`repro.exec`).
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from .kvset import KeyValueSet
from ..hw.cpu import HostCPU
from ..net.mpi import Communicator
from ..sim import Environment, Event

__all__ = ["TAG_DATA", "TAG_FLUSH", "Binner"]

TAG_DATA = 10
TAG_FLUSH = 11


class Binner:
    """Per-worker bin bookkeeping and transmission."""

    def __init__(
        self,
        env: Environment,
        comm: Communicator,
        cpu: HostCPU,
        rank: int,
    ) -> None:
        self.env = env
        self.comm = comm
        self.cpu = cpu
        self.rank = rank
        self.sent_counts = [0] * comm.size
        #: logical bytes binned to *other* ranks (real network traffic)
        self.bytes_sent = 0
        #: logical bytes binned to this rank itself (loopback, not wire)
        self.bytes_kept_local = 0
        self._inflight: List[Event] = []

    # -- transmission ------------------------------------------------------
    def _bin_proc(self, sends_planned: List[Tuple[int, int, KeyValueSet]]) -> Generator:
        total_bytes = sum(p.nbytes_logical for _, _, p in sends_planned)
        if total_bytes:
            # Host-side packing of the send buffers on one core.
            yield from self.cpu.process_bytes(total_bytes, tag="bin-pack")
        sends = [
            self.comm.isend(
                self.rank, dest, (seq, part), part.nbytes_logical, tag=TAG_DATA
            )
            for dest, seq, part in sends_planned
        ]
        if sends:
            yield self.env.all_of(sends)

    def submit(self, parts: List[KeyValueSet]) -> Event:
        """Launch an asynchronous bin of one chunk's partitioned pairs.

        Sequence numbers are assigned here, in submission order, so the
        canonical shuffle order matches the order chunks were mapped
        regardless of how the asynchronous bins interleave.
        """
        planned: List[Tuple[int, int, KeyValueSet]] = []
        for dest, part in enumerate(parts):
            if len(part) == 0:
                continue
            planned.append((dest, self.sent_counts[dest], part))
            self.sent_counts[dest] += 1
            # Self-destined parts ride the loopback, not the network —
            # keep the byte ledgers split the same way the real
            # backends split bytes_sent_network / bytes_kept_local.
            if dest == self.rank:
                self.bytes_kept_local += part.nbytes_logical
            else:
                self.bytes_sent += part.nbytes_logical
        proc = self.env.process(self._bin_proc(planned), name=f"bin:r{self.rank}")
        self._inflight.append(proc)
        return proc

    def drain(self) -> Event:
        """Event firing once every submitted bin has completed."""
        return self.env.all_of(list(self._inflight))

    def flush(self) -> List[Event]:
        """Send FLUSH (with DATA-message counts) to every rank."""
        return [
            self.comm.isend(self.rank, dest, self.sent_counts[dest], 16, tag=TAG_FLUSH)
            for dest in range(self.comm.size)
        ]

    # -- reception ---------------------------------------------------------
    def receive_all(self) -> Generator:
        """Process: gather this rank's incoming DATA payloads.

        Completes once a FLUSH has arrived from every rank and every
        promised DATA message has been received.  Returns the received
        :class:`KeyValueSet` payloads in canonical ``(source, seq)``
        order, independent of simulated arrival times.
        """
        flushes_seen = 0
        promised = 0
        received: List[Tuple[int, int, KeyValueSet]] = []
        while flushes_seen < self.comm.size or len(received) < promised:
            msg = yield self.comm.recv(self.rank)
            if msg.tag == TAG_FLUSH:
                flushes_seen += 1
                promised += msg.payload
            elif msg.tag == TAG_DATA:
                seq, part = msg.payload
                received.append((msg.source, seq, part))
            else:  # pragma: no cover - protocol violation
                raise RuntimeError(f"unexpected message tag {msg.tag}")
        received.sort(key=lambda item: (item[0], item[1]))
        return [part for _, _, part in received]

"""The Bin substage: CPU-threaded network transmission of pairs.

"Bin is the only stage of the pipeline executed on the CPU ... GPMR
takes advantage of modern multicore processors by running it in a
separate thread, yielding a more thorough overlap of communication with
the mapping computation."  Here each bin is a simulation process: it
charges buffer packing to a host core, then ships each reducer's bucket
with one MPI send ("requiring only one network send per Reducer").

Completion protocol: receivers cannot know how many data messages to
expect, so after its last bin each worker sends a FLUSH message to
every rank carrying the count of DATA messages it sent there.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from .kvset import KeyValueSet
from ..hw.cpu import HostCPU
from ..net.mpi import Communicator
from ..sim import Environment, Event

__all__ = ["TAG_DATA", "TAG_FLUSH", "Binner"]

TAG_DATA = 10
TAG_FLUSH = 11


class Binner:
    """Per-worker bin bookkeeping and transmission."""

    def __init__(
        self,
        env: Environment,
        comm: Communicator,
        cpu: HostCPU,
        rank: int,
    ) -> None:
        self.env = env
        self.comm = comm
        self.cpu = cpu
        self.rank = rank
        self.sent_counts = [0] * comm.size
        self.bytes_sent = 0
        self._inflight: List[Event] = []

    # -- transmission ------------------------------------------------------
    def _bin_proc(self, parts: List[KeyValueSet]) -> Generator:
        total_bytes = sum(p.nbytes_logical for p in parts if len(p))
        if total_bytes:
            # Host-side packing of the send buffers on one core.
            yield from self.cpu.process_bytes(total_bytes, tag="bin-pack")
        sends = []
        for dest, part in enumerate(parts):
            if len(part) == 0:
                continue
            sends.append(
                self.comm.isend(
                    self.rank, dest, part, part.nbytes_logical, tag=TAG_DATA
                )
            )
            self.sent_counts[dest] += 1
            self.bytes_sent += part.nbytes_logical
        if sends:
            yield self.env.all_of(sends)

    def submit(self, parts: List[KeyValueSet]) -> Event:
        """Launch an asynchronous bin of one chunk's partitioned pairs."""
        proc = self.env.process(self._bin_proc(parts), name=f"bin:r{self.rank}")
        self._inflight.append(proc)
        return proc

    def drain(self) -> Event:
        """Event firing once every submitted bin has completed."""
        return self.env.all_of(list(self._inflight))

    def flush(self) -> List[Event]:
        """Send FLUSH (with DATA-message counts) to every rank."""
        return [
            self.comm.isend(self.rank, dest, self.sent_counts[dest], 16, tag=TAG_FLUSH)
            for dest in range(self.comm.size)
        ]

    # -- reception ---------------------------------------------------------
    def receive_all(self) -> Generator:
        """Process: gather this rank's incoming DATA payloads.

        Completes once a FLUSH has arrived from every rank and every
        promised DATA message has been received.  Returns the list of
        received :class:`KeyValueSet` payloads.
        """
        flushes_seen = 0
        promised = 0
        received: List[KeyValueSet] = []
        while flushes_seen < self.comm.size or len(received) < promised:
            msg = yield self.comm.recv(self.rank)
            if msg.tag == TAG_FLUSH:
                flushes_seen += 1
                promised += msg.payload
            elif msg.tag == TAG_DATA:
                received.append(msg.payload)
            else:  # pragma: no cover - protocol violation
                raise RuntimeError(f"unexpected message tag {msg.tag}")
        return received

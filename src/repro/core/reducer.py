"""Reducer interface: consumes grouped values per key.

After the Sort stage each key's values are contiguous; GPMR describes a
key's run by (first-value index, count) and asks the Reducer, via a
callback, how many value sets to copy to the GPU per reduction chunk
(paper Section 4.3).  :meth:`value_sets_per_chunk` is that callback.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

import numpy as np

from .kvset import KeyValueSet
from ..hw.kernel import KernelLaunch

__all__ = ["Reducer"]


class Reducer(ABC):
    """Base class for reduce tasks."""

    @abstractmethod
    def reduce_segments(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        offsets: np.ndarray,
        counts: np.ndarray,
        scale: float,
    ) -> KeyValueSet:
        """Reduce each key's contiguous value run to output pairs.

        ``keys[i]``'s values are ``values[offsets[i] : offsets[i] +
        counts[i]]``; ``scale`` is the logical pairs per stored pair
        (needed e.g. by counting reducers to report logical counts).
        """

    @abstractmethod
    def reduce_cost(self, n_values: int, n_keys: int) -> List[KernelLaunch]:
        """Kernel launches for reducing ``n_values`` over ``n_keys`` keys
        (both logical counts)."""

    def value_sets_per_chunk(self, free_device_bytes: int, value_bytes: int) -> int:
        """GPMR's reduce-chunking callback: value sets per GPU chunk.

        Default: fill half the free device memory, assuming the average
        run length the sort observed; reducers with big per-key state
        should override.
        """
        per_set = max(value_bytes, 1)
        return max(1, int(free_device_bytes // (2 * per_set)))

"""Partitioners: route key-value pairs to reducer ranks.

"The Partition substage divides key-value pairs into buckets to be
sent to each Reducer ... We supply a default round-robin Partitioner
for integer keys.  But we made the Partitioner extensible" (paper
Section 4.1).  Omitting the partitioner sends everything to rank 0,
matching "if the user omits Partition, all pairs are sent to a single
Reducer".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

import numpy as np

from .kvset import KeyValueSet
from ..hw.kernel import KernelLaunch
from ..primitives import launch_1d

__all__ = ["Partitioner", "RoundRobinPartitioner", "BlockPartitioner", "HashPartitioner"]


class Partitioner(ABC):
    """Base class: assigns each pair a destination reducer rank."""

    @abstractmethod
    def partition(self, kv: KeyValueSet, n_parts: int) -> np.ndarray:
        """Per-pair destination rank in ``[0, n_parts)`` (functional)."""

    def partition_cost(self, n_pairs: int, total_bytes: float) -> List[KernelLaunch]:
        """Default temporal price: one bucketing pass over the pair set.

        Priced per 4-byte word of ``total_bytes`` moved, not per pair: a
        pair may be a multi-megabyte record (MM's tile values), and the
        GPU parallelises the scatter over words regardless of where the
        record boundaries fall.
        """
        words = max(1, int(total_bytes / 4))
        dest_flops = 2.0 * n_pairs / words  # one dest computation per pair
        return [
            launch_1d(
                "partition",
                words,
                flops_per_item=dest_flops,
                read_bytes_per_item=4.0,
                write_bytes_per_item=4.0,
                coalescing=0.5,  # scatter into buckets
            )
        ]


class RoundRobinPartitioner(Partitioner):
    """The paper's default for integer keys: ``key % n_parts``."""

    def partition(self, kv: KeyValueSet, n_parts: int) -> np.ndarray:
        return (kv.keys % np.uint64(n_parts)).astype(np.int64)


class BlockPartitioner(Partitioner):
    """Consecutive key blocks: rank = key * n_parts // key_space.

    The alternative distribution the paper mentions ("round-robin vs.
    consecutive blocks") — better when reduction work is range-local.
    """

    def __init__(self, key_space: int) -> None:
        if key_space <= 0:
            raise ValueError("key_space must be positive")
        self.key_space = int(key_space)

    def partition(self, kv: KeyValueSet, n_parts: int) -> np.ndarray:
        k = kv.keys.astype(np.uint64)
        dest = (k * np.uint64(n_parts)) // np.uint64(self.key_space)
        return np.minimum(dest, n_parts - 1).astype(np.int64)


class HashPartitioner(Partitioner):
    """Multiplicative-hash partitioner for clustered/skewed key sets."""

    _MULT = np.uint64(0x9E3779B97F4A7C15)

    def partition(self, kv: KeyValueSet, n_parts: int) -> np.ndarray:
        with np.errstate(over="ignore"):
            mixed = (kv.keys.astype(np.uint64) * self._MULT) >> np.uint64(32)
        return (mixed % np.uint64(n_parts)).astype(np.int64)

"""Dynamic chunk scheduler with work stealing.

"GPMR tracks the per-GPU work in a dynamic queue.  If one GPU finishes
its work in its local queue and other GPUs have much more work to do,
we shift chunks between the local queues."  The scheduler keeps one
deque per worker, hands out local work first, and otherwise steals from
the *longest* queue.  The sim's caller (pipeline) prices the steal:
chunk serialisation on the victim's CPU plus the wire transfer when
victim and thief live on different nodes.

:class:`ChunkService` is the backend-agnostic face of all of this: one
thread-safe driver-side pull authority wrapping either the dynamic
:class:`ChunkScheduler` or a trace-replaying :class:`ReplayScheduler`,
serving the sim's event loop, the serial backend's interleaved rank
loop, the local backend's service thread, and the cluster
coordinator's ``CHUNK_REQ`` frames alike — with every grant recorded
into a replayable :class:`ScheduleTrace`.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple

from .chunk import Chunk
from ..obs import NULL_OBS
from ..workloads.base import Dataset

__all__ = [
    "Assignment",
    "ChunkScheduler",
    "ChunkService",
    "JobChunkAuthority",
    "DISTRIBUTIONS",
    "DEFAULT_PREFETCH_WINDOW",
    "RETRY",
    "ReplayScheduler",
    "ScheduleGrant",
    "ScheduleTrace",
    "resolve_chunks",
    "distribute_chunks",
]

#: Deterministic initial chunk distributions shared by all backends.
DISTRIBUTIONS = ("round_robin", "blocks", "single")


#: Default pull-ahead window: each worker keeps this many chunk
#: requests in flight beyond the one it is mapping, so the grant
#: round-trip (and the payload materialisation behind it) overlaps map
#: compute — the real backends' analogue of the sim's double buffer.
#: 0 disables prefetch (request/map strictly alternate, the pre-PR-9
#: behaviour).
DEFAULT_PREFETCH_WINDOW = 1


def resolve_chunks(
    dataset: Optional[Dataset], chunks: Optional[Sequence[Chunk]]
) -> List[Chunk]:
    """The job's input chunks from exactly one source.

    A dataset exposing a ``chunk_reader``
    (:class:`~repro.workloads.readers.StreamedDataset`) resolves to
    *descriptor-backed* chunks: the scheduler routes and prices them on
    ``chunk_meta`` sizes alone, and payload arrays materialise lazily —
    on worker ranks, at grant time — instead of here in the driver.
    Any other dataset materialises every chunk up front, as always.
    """
    if (dataset is None) == (chunks is None):
        raise ValueError("provide exactly one of dataset or chunks")
    if chunks is None:
        reader = getattr(dataset, "chunk_reader", None)
        if reader is not None:
            return [
                Chunk.from_descriptor(reader, i, *reader.chunk_meta(i))
                for i in range(reader.n_chunks)
            ]
        return [Chunk.from_work_item(item) for item in dataset.chunks()]
    return list(chunks)


def distribute_chunks(
    chunks: Sequence[Chunk], n_workers: int, how: str = "round_robin"
) -> List[List[Chunk]]:
    """Initial chunk placement, identical on every backend.

    ``round_robin``: chunk i to worker ``i % n``; ``blocks``:
    contiguous runs of ``ceil(n_chunks / n_workers)``; ``single``:
    everything on worker 0 (as when one node ingested the data).

    This is the single definition of placement the bit-parity contract
    rests on; the sim scheduler's ``assign_*`` helpers delegate here.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if how not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown distribution {how!r}; expected one of {DISTRIBUTIONS}"
        )
    out: List[List[Chunk]] = [[] for _ in range(n_workers)]
    if how == "round_robin":
        for i, chunk in enumerate(chunks):
            out[i % n_workers].append(chunk)
    elif how == "blocks":
        per = (len(chunks) + n_workers - 1) // n_workers
        for w in range(n_workers):
            out[w].extend(chunks[w * per : (w + 1) * per])
    else:  # "single"
        out[0].extend(chunks)
    return out


class _Retry:
    """Singleton "ask again shortly" answer to a chunk request.

    Returned (only on speculation-enabled runs) to an idle worker while
    other un-posted workers still hold in-flight grants that may age
    into speculative re-execution — ``None`` would end the worker's
    pull loop before the straggler's chunks became stealable.
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RETRY"


#: the tri-state pull answer: Assignment | RETRY | None (done)
RETRY = _Retry()


class Assignment(NamedTuple):
    """A unit of work handed to a worker."""

    chunk: Chunk
    #: rank the chunk was queued on (== thief's rank when local)
    victim: int

    def stolen_by(self, worker: int) -> bool:
        """Whether this assignment was robbed from another worker."""
        return self.victim != worker


class ScheduleGrant(NamedTuple):
    """One scheduler decision: ``chunk_id`` went to ``worker``.

    ``was_steal`` is always ``victim != worker``; the victim rank is
    kept as well because the sim prices a steal by where the chunk
    lived (same-node vs. cross-node wire transfer).
    """

    worker: int
    chunk_id: int
    was_steal: bool
    victim: int


class ScheduleTrace:
    """An ordered log of chunk grants — a replayable schedule.

    Every backend's :class:`ChunkService` grows one of these as it
    hands out work — live :class:`ChunkScheduler` grants on a native
    run, re-issued :class:`ReplayScheduler` grants on a replay — so a
    load-balanced run on *any* backend reproduces
    decision-for-decision on any other.  The trace is small (three
    ints and a bool per chunk), picklable, and wire-friendly via
    :meth:`to_records`/:meth:`from_records`.
    """

    def __init__(self, grants: Iterable[ScheduleGrant] = ()) -> None:
        self.grants: List[ScheduleGrant] = [ScheduleGrant(*g) for g in grants]

    # -- recording ---------------------------------------------------------
    def record(self, worker: int, chunk_id: int, victim: int) -> ScheduleGrant:
        grant = ScheduleGrant(
            worker=int(worker),
            chunk_id=int(chunk_id),
            was_steal=victim != worker,
            victim=int(victim),
        )
        self.grants.append(grant)
        return grant

    # -- container protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self.grants)

    def __iter__(self) -> Iterator[ScheduleGrant]:
        return iter(self.grants)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduleTrace):
            return NotImplemented
        return self.grants == other.grants

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ScheduleTrace {len(self.grants)} grants, {self.total_steals} steals>"

    # -- ledgers -----------------------------------------------------------
    @property
    def total_steals(self) -> int:
        return sum(1 for g in self.grants if g.was_steal)

    def for_worker(self, worker: int) -> List[ScheduleGrant]:
        """This worker's grants, in its map order."""
        return [g for g in self.grants if g.worker == worker]

    def chunk_counts(self, n_workers: int) -> List[int]:
        """Chunks mapped per worker under this schedule."""
        counts = [0] * n_workers
        for g in self.grants:
            counts[g.worker] += 1
        return counts

    def steals_by_worker(self, n_workers: int) -> List[int]:
        """Chunks each worker obtained by stealing under this schedule."""
        steals = [0] * n_workers
        for g in self.grants:
            if g.was_steal:
                steals[g.worker] += 1
        return steals

    # -- wire form ---------------------------------------------------------
    def to_records(self) -> List[Tuple[int, int, bool, int]]:
        """Plain-tuple form (for persistence or non-pickle transports)."""
        return [tuple(g) for g in self.grants]

    @classmethod
    def from_records(cls, records: Iterable[Sequence]) -> "ScheduleTrace":
        return cls(ScheduleGrant(*r) for r in records)

    # -- replay ------------------------------------------------------------
    def _index_chunks(
        self,
        chunks: Sequence[Chunk],
        n_workers: int,
        context: Optional[str] = None,
    ) -> Dict[int, Chunk]:
        """Validate the trace against a chunk set; map id -> chunk.

        The trace must cover exactly the given chunks (each granted
        once) and name only in-range workers/victims — anything else
        means the caller is replaying the wrong job's schedule.
        ``context`` (app/job name plus phase) prefixes every error, and
        each grant complaint carries the offending grant *index*, so a
        trace/backend mismatch is debuggable from the message alone.
        """
        where = f"replaying schedule for {context}: " if context else ""
        by_id: Dict[int, Chunk] = {}
        for chunk in chunks:
            if chunk.index in by_id:
                raise ValueError(
                    f"{where}chunk ids must be unique to replay a schedule; "
                    f"id {chunk.index} appears twice"
                )
            by_id[chunk.index] = chunk
        seen: Dict[int, int] = {}
        for i, g in enumerate(self.grants):
            if not 0 <= g.worker < n_workers or not 0 <= g.victim < n_workers:
                raise ValueError(
                    f"{where}trace grant #{i} {g} names a rank outside "
                    f"0..{n_workers - 1}"
                )
            if g.was_steal != (g.victim != g.worker):
                raise ValueError(
                    f"{where}trace grant #{i} {g} has an inconsistent steal flag"
                )
            if g.chunk_id not in by_id:
                raise ValueError(
                    f"{where}trace grant #{i} grants chunk {g.chunk_id}, "
                    "which is not in the job"
                )
            if g.chunk_id in seen:
                raise ValueError(
                    f"{where}trace grant #{i} grants chunk {g.chunk_id} twice "
                    f"(first granted by grant #{seen[g.chunk_id]})"
                )
            seen[g.chunk_id] = i
        if len(seen) != len(by_id):
            missing = sorted(set(by_id) - set(seen))
            raise ValueError(
                f"{where}trace does not cover chunk(s) {missing}; a replayed "
                "schedule must grant every chunk exactly once"
            )
        return by_id

class ChunkScheduler:
    """Per-worker chunk queues with longest-queue-first stealing.

    Every grant is recorded into :attr:`trace`, so any run — load
    balanced or not — leaves behind a schedule the other backends can
    replay bit-for-bit.

    The scheduler also tracks chunk *ownership*: a granted chunk stays
    **outstanding** against its worker until the worker posts its
    shuffle batches (:meth:`mark_posted`), because until that moment
    nothing of the worker's map phase has left its process — the unit
    of loss under a worker death is every un-posted grant.
    :meth:`reclaim` returns a dead worker's outstanding grants to the
    pool (and erases that incarnation from the trace and ledgers), so
    survivors or a respawned replacement re-pull them.

    ``speculate_after`` (seconds) additionally enables straggler
    speculation: an idle worker's request may be answered with a
    *duplicate* grant of a chunk another un-posted worker has held for
    longer than the threshold (and the steal threshold drops to one
    queued chunk, so a straggler's queue drains completely).  At most
    two copies of a chunk are ever granted; receivers keep exactly one
    (see :func:`repro.exec.dataflow.merge_incoming`), and the recorded
    trace keeps only the kept copy's grant, so it still grants every
    chunk exactly once.
    """

    #: a victim must have at least this many chunks queued to be robbed
    #: ("other GPUs have much more work to do").
    MIN_VICTIM_QUEUE = 2

    def __init__(
        self,
        n_workers: int,
        enable_stealing: bool = True,
        speculate_after: Optional[float] = None,
        prefetch: int = 0,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self.enable_stealing = enable_stealing
        self.speculate_after = speculate_after
        #: grants per worker that may still be *unmapped* when its next
        #: request arrives.  A prefetching worker keeps ``1 + prefetch``
        #: requests pipelined, so its k-th request only proves grants
        #: older than the newest ``prefetch`` have been mapped — those
        #: newest grants must stay speculation-eligible.
        self.prefetch = max(0, int(prefetch))
        self._queues: List[Deque[Chunk]] = [deque() for _ in range(n_workers)]
        self.steals = 0
        self.steals_by_worker: List[int] = [0] * n_workers
        self.trace = ScheduleTrace()
        #: grants per worker including speculative losers (what each
        #: worker really mapped — the ledger-validation ground truth)
        self.granted_by_worker: List[int] = [0] * n_workers
        #: re-granted chunks per worker: reclaimed re-grants + duplicates
        self.retries_by_worker: List[int] = [0] * n_workers
        #: chunks returned to the pool by :meth:`reclaim`, total
        self.chunks_reclaimed = 0
        #: worker -> {chunk_id: (chunk, grant_monotonic)} granted and
        #: *in flight*: the worker has not requested again since, so it
        #: may still be mid-map on these — the speculation candidates
        self._outstanding: List[Dict[int, Tuple[Chunk, float]]] = [
            {} for _ in range(n_workers)
        ]
        #: worker -> {chunk_id: chunk} mapped (the worker requested
        #: again, and its pull loop is sequential) but not yet posted —
        #: still reclaimable on death, no longer speculation bait
        self._mapped: List[Dict[int, Chunk]] = [{} for _ in range(n_workers)]
        #: worker -> chunk ids it posted shuffle output for
        self._completed: List[Set[int]] = [set() for _ in range(n_workers)]
        self._posted: List[bool] = [False] * n_workers
        #: chunk_id -> grantee workers, in grant order (len 2 == speculated)
        self._grantees: Dict[int, List[int]] = {}
        #: chunk ids that went back to the pool at least once
        self._reclaimed_ids: Set[int] = set()

    # -- loading ---------------------------------------------------------
    def assign_round_robin(self, chunks: Sequence[Chunk]) -> None:
        """Initial distribution: chunk i goes to worker i mod n."""
        self.assign(chunks, "round_robin")

    def assign_blocks(self, chunks: Sequence[Chunk]) -> None:
        """Initial distribution: contiguous blocks of chunks per worker."""
        self.assign(chunks, "blocks")

    def assign(self, chunks: Sequence[Chunk], how: str = "round_robin") -> None:
        """Load queues via the canonical placement policy."""
        for worker, assigned in enumerate(
            distribute_chunks(chunks, self.n_workers, how)
        ):
            self._queues[worker].extend(assigned)

    def push(self, worker: int, chunk: Chunk) -> None:
        self._queues[worker].append(chunk)

    # -- inspection ------------------------------------------------------
    def queue_len(self, worker: int) -> int:
        return len(self._queues[worker])

    @property
    def remaining(self) -> int:
        return sum(len(q) for q in self._queues)

    # -- dispatch -----------------------------------------------------------
    def _grant(self, worker: int, chunk: Chunk, victim: int) -> Assignment:
        """Record one grant in every ledger and hand the chunk out."""
        if victim != worker:
            self.steals += 1
            self.steals_by_worker[worker] += 1
        self.trace.record(worker, chunk.index, victim)
        self.granted_by_worker[worker] += 1
        grantees = self._grantees.setdefault(chunk.index, [])
        if grantees or chunk.index in self._reclaimed_ids:
            # A duplicate (speculative) copy or a reclaimed re-grant:
            # either way this worker is re-executing lost/late work.
            self.retries_by_worker[worker] += 1
        grantees.append(worker)
        self._outstanding[worker][chunk.index] = (chunk, time.monotonic())
        return Assignment(chunk=chunk, victim=victim)

    def request(self, worker: int):
        """Next chunk for ``worker``: local first, else steal, else a
        speculative duplicate of an aged in-flight grant (when
        ``speculate_after`` is set — possibly :data:`RETRY`), else None.
        """
        if not (0 <= worker < self.n_workers):
            raise ValueError(f"worker {worker} out of range")
        # A worker's pull loop answers grants in order, so a new
        # request proves it has mapped everything except the newest
        # ``prefetch`` grants (those may still sit in its pipeline
        # buffer).  The proven-mapped ones stop being speculation
        # candidates (duplicating finished work is pure waste) but stay
        # reclaimable until the worker posts; the buffered tail stays
        # in-flight — a stalled prefetcher's buffered chunk is exactly
        # what speculation must be allowed to duplicate.
        if self._outstanding[worker]:
            entries = list(self._outstanding[worker].items())
            mapped = entries[: len(entries) - self.prefetch] \
                if self.prefetch else entries
            for cid, (chunk, _t) in mapped:
                self._mapped[worker][cid] = chunk
                del self._outstanding[worker][cid]
        q = self._queues[worker]
        if q:
            return self._grant(worker, q.popleft(), worker)
        if not self.enable_stealing:
            return None
        victim = max(
            range(self.n_workers), key=lambda w: len(self._queues[w])
        )
        # With speculation armed a single queued chunk is stealable
        # too: a straggler's queue must drain, not just shrink.
        min_queue = 1 if self.speculate_after is not None else self.MIN_VICTIM_QUEUE
        if len(self._queues[victim]) >= min_queue:
            # Steal from the tail: the victim is about to work the head.
            return self._grant(worker, self._queues[victim].pop(), victim)
        if self.speculate_after is None:
            return None
        return self._speculate(worker)

    def _speculate(self, worker: int):
        """Duplicate the oldest over-age in-flight grant, or RETRY/None.

        Only chunks held by *other, un-posted* workers qualify, each at
        most once (two copies total).  While any such worker still
        holds un-duplicated work the answer is :data:`RETRY` — the
        requester asks again rather than leaving — and only when no
        speculative grant can ever materialise does the worker get its
        final ``None``.
        """
        now = time.monotonic()
        best: Optional[Tuple[float, int, Chunk]] = None
        more_later = False
        for w in range(self.n_workers):
            if w == worker or self._posted[w]:
                continue
            if self._queues[w]:
                more_later = True
            for cid, (chunk, granted_at) in self._outstanding[w].items():
                if len(self._grantees.get(cid, ())) > 1:
                    continue  # already double-granted
                if now - granted_at < self.speculate_after:
                    more_later = True
                    continue
                if best is None or granted_at < best[0]:
                    best = (granted_at, w, chunk)
        if best is not None:
            _, holder, chunk = best
            return self._grant(worker, chunk, holder)
        return RETRY if more_later else None

    # -- ownership / completion ---------------------------------------------
    def outstanding(self, worker: int) -> List[int]:
        """Chunk ids granted to ``worker`` and not yet posted (both
        in-flight and mapped-but-unposted), in grant order."""
        return list(self._mapped[worker]) + list(self._outstanding[worker])

    def can_recover(self, worker: int) -> bool:
        """Whether a death of ``worker`` right now is recoverable.

        True until the worker posts its shuffle batches: up to that
        point nothing has left its process, so its entire map phase can
        be re-executed.  After posting, peers may already have consumed
        its batches and a silent re-execution could double-count.
        """
        return not self._posted[worker]

    def mark_posted(self, worker: int) -> None:
        """The worker's shuffle batches are on their way: its grants
        move from outstanding to completed and it leaves the pool of
        recoverable / speculation-eligible workers."""
        self._posted[worker] = True
        self._completed[worker].update(self._mapped[worker])
        self._completed[worker].update(self._outstanding[worker])
        self._mapped[worker].clear()
        self._outstanding[worker].clear()

    def reclaim(self, worker: int) -> int:
        """Return a dead worker's outstanding grants to the pool.

        Re-queues the lost chunks (in grant order) on the worker's own
        queue — its replacement pulls them back, or survivors steal
        them — and erases the dead incarnation from the trace and
        per-worker ledgers, since none of its map output survived.
        Chunks that also have a live speculative copy elsewhere are
        *not* re-queued (the surviving copy covers them).  Returns the
        number of chunks re-queued.
        """
        if self._posted[worker]:
            raise RuntimeError(
                f"cannot reclaim worker {worker}: it already posted its "
                "shuffle batches"
            )
        lost = list(self._mapped[worker].values()) + [
            chunk for chunk, _t in self._outstanding[worker].values()
        ]
        self._mapped[worker].clear()
        self._outstanding[worker].clear()
        requeued = 0
        for chunk in lost:
            grantees = self._grantees.get(chunk.index, [])
            if worker in grantees:
                grantees.remove(worker)
            self._reclaimed_ids.add(chunk.index)
            if grantees:
                continue  # a speculative copy is still in flight
            self._queues[worker].append(chunk)
            requeued += 1
        # The dead incarnation mapped nothing durable; drop its grants
        # so the trace stays a grants-every-chunk-once schedule.
        self.trace.grants = [g for g in self.trace.grants if g.worker != worker]
        self.steals -= self.steals_by_worker[worker]
        self.steals_by_worker[worker] = 0
        self.granted_by_worker[worker] = 0
        self.retries_by_worker[worker] = 0
        self.chunks_reclaimed += requeued
        return requeued

    # -- speculation outcome -------------------------------------------------
    def _winners(self) -> Dict[int, int]:
        """chunk_id -> kept worker, for every double-granted chunk.

        The kept copy is the first in canonical source-major order
        among grantees that completed — exactly the copy
        :func:`repro.exec.dataflow.merge_incoming` keeps at the
        reducers, so the effective trace and the data agree.
        """
        winners: Dict[int, int] = {}
        for cid, grantees in self._grantees.items():
            if len(grantees) < 2:
                continue
            completers = [w for w in grantees if cid in self._completed[w]]
            winners[cid] = min(completers if completers else grantees)
        return winners

    @property
    def speculative_wins(self) -> int:
        """Speculated chunks whose *duplicate* copy is the kept one."""
        wins = 0
        for cid, winner in self._winners().items():
            if winner != self._grantees[cid][0]:
                wins += 1
        return wins

    @property
    def effective_trace(self) -> ScheduleTrace:
        """The trace with speculation losers filtered out — grants
        every chunk exactly once, so it replays on any backend."""
        winners = self._winners()
        if not winners:
            return self.trace
        return ScheduleTrace(
            g for g in self.trace.grants
            if g.chunk_id not in winners or g.worker == winners[g.chunk_id]
        )


class ReplayScheduler:
    """Hand out chunks in exactly the order a recorded trace dictates.

    Drop-in for :class:`ChunkScheduler` in the sim runtime: the same
    ``assign``/``request`` surface and the same ``steals`` ledgers, but
    every decision comes from the trace instead of queue state.  Each
    ``request(worker)`` returns that worker's next traced grant — with
    the recorded victim, so steal pricing replays identically — and
    ``None`` once its traced grants are exhausted.  All chunks are
    resident from ``assign`` time on, so a worker's next grant is
    always ready and a request never has to block.
    """

    def __init__(
        self,
        n_workers: int,
        schedule: ScheduleTrace,
        context: Optional[str] = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self.schedule = schedule
        #: label (app name / phase) prefixed onto validation errors
        self.context = context
        #: the grants actually re-issued (== ``schedule`` after a full run)
        self.trace = ScheduleTrace()
        self.steals = 0
        self.steals_by_worker: List[int] = [0] * n_workers
        self.granted_by_worker: List[int] = [0] * n_workers
        self.retries_by_worker: List[int] = [0] * n_workers
        self.chunks_reclaimed = 0
        self.speculative_wins = 0
        self._pending: List[Deque[ScheduleGrant]] = [
            deque() for _ in range(n_workers)
        ]
        self._chunks: Dict[int, Chunk] = {}
        self._assigned = False

    # -- loading ---------------------------------------------------------
    def assign(self, chunks: Sequence[Chunk], how: str = "round_robin") -> None:
        """Validate and index the chunk set; ``how`` is ignored — the
        trace, not a placement policy, decides who maps what."""
        self._chunks = self.schedule._index_chunks(
            chunks, self.n_workers, self.context
        )
        for w in range(self.n_workers):
            self._pending[w].clear()
        for grant in self.schedule:
            self._pending[grant.worker].append(grant)
        self._assigned = True

    # -- inspection ------------------------------------------------------
    def queue_len(self, worker: int) -> int:
        return len(self._pending[worker])

    @property
    def remaining(self) -> int:
        return sum(len(q) for q in self._pending)

    # -- dispatch --------------------------------------------------------
    def request(self, worker: int) -> Optional[Assignment]:
        """The worker's next traced grant, or None when it is done."""
        if not (0 <= worker < self.n_workers):
            raise ValueError(f"worker {worker} out of range")
        if not self._assigned:
            raise RuntimeError("request() before assign()")
        if not self._pending[worker]:
            return None
        grant = self._pending[worker].popleft()
        if grant.was_steal:
            self.steals += 1
            self.steals_by_worker[worker] += 1
        self.trace.record(worker, grant.chunk_id, grant.victim)
        self.granted_by_worker[worker] += 1
        return Assignment(chunk=self._chunks[grant.chunk_id], victim=grant.victim)

    # -- ownership / completion ---------------------------------------------
    # A replay re-issues a schedule that already survived its run;
    # fault recovery (which would *change* the schedule) is undefined
    # under replay, so recovery is never offered and reclaim refuses.
    def can_recover(self, worker: int) -> bool:
        return False

    def mark_posted(self, worker: int) -> None:
        pass

    def reclaim(self, worker: int) -> int:
        raise RuntimeError(
            "cannot reclaim chunks while replaying a recorded schedule; "
            "recovery would diverge from the trace"
        )

    @property
    def effective_trace(self) -> ScheduleTrace:
        return self.trace


class ChunkService:
    """Driver-side authority over a job's chunks: the pull server.

    Every backend's chunk distribution goes through one of these.  The
    service owns the pending/owned chunk queues and answers each
    worker's "next chunk?" request at runtime — local work first, then
    a steal from the longest queue (:class:`ChunkScheduler`), or, when
    a recorded ``schedule`` is supplied, exactly the traced grants
    (:class:`ReplayScheduler`).  Either way every grant lands in a live
    :class:`ScheduleTrace`, so any run — sim, serial, local, or cluster
    — leaves behind a schedule the other backends can replay
    bit-for-bit.

    Requests are serialised under a lock: the sim calls :meth:`request`
    from its single-threaded event loop, the serial backend from its
    interleaved rank loop, the local backend from a driver-side service
    thread answering worker queues, and the cluster backend from the
    coordinator answering ``CHUNK_REQ`` control frames — all against
    the same instance semantics.
    """

    def __init__(
        self,
        chunks: Sequence[Chunk],
        n_workers: int,
        initial_distribution: str = "round_robin",
        enable_stealing: bool = True,
        schedule: Optional[ScheduleTrace] = None,
        context: Optional[str] = None,
        speculate_after: Optional[float] = None,
        prefetch: int = 0,
        obs=None,
        job_id: Optional[str] = None,
    ) -> None:
        self.n_workers = int(n_workers)
        self.context = context
        #: namespace this service serves under a multi-job authority;
        #: None for standalone one-shot runs.  When set, every traced
        #: grant/steal/reclaim event carries ``job=<job_id>`` so
        #: interleaved multi-job traces stay attributable.
        self.job_id = job_id
        self._job_kw = {"job": job_id} if job_id is not None else {}
        #: the run's observability bundle; grants/steals/reclaims are
        #: recorded as point events and counters (no-ops when untraced)
        self.obs = obs or NULL_OBS
        self.obs.metrics.gauge("chunks_total").set(len(chunks))
        #: True when grants come from a recorded trace, not live stealing
        self.replaying = schedule is not None
        if schedule is not None:
            if speculate_after is not None:
                raise ValueError(
                    "speculation cannot run under a replayed schedule; "
                    "the trace already fixes every grant"
                )
            self._scheduler = ReplayScheduler(n_workers, schedule, context=context)
        else:
            self._scheduler = ChunkScheduler(
                n_workers,
                enable_stealing=enable_stealing,
                speculate_after=speculate_after,
                prefetch=prefetch,
            )
        self._scheduler.assign(chunks, initial_distribution)
        # Re-entrant: recovery needs to drain a dead worker's pending
        # grants and reclaim atomically w.r.t. the serving thread, so
        # guard() must be holdable around (and by) request().
        self._lock = threading.RLock()

    # -- dispatch ----------------------------------------------------------
    def request(self, worker: int):
        """The worker's next chunk (with its victim rank), None when
        the worker is done, or :data:`RETRY` when a speculation-enabled
        run wants the idle worker to ask again shortly.  Thread-safe;
        grant order is total."""
        with self._lock:
            a = self._scheduler.request(worker)
            if isinstance(a, Assignment) and self.obs.enabled:
                self._record_grant(worker, a)
            return a

    def _record_grant(self, worker: int, a: Assignment) -> None:
        """Trace one grant (caller holds the lock and checked enabled)."""
        tracer = self.obs.tracer
        metrics = self.obs.metrics
        cid = a.chunk.index
        # More than one live grantee means this grant is a speculative
        # duplicate of an aged in-flight chunk, not a queue steal.
        grantees = getattr(self._scheduler, "_grantees", {})
        speculative = len(grantees.get(cid, ())) > 1
        if speculative:
            tracer.event("grant", rank=worker, chunk=cid,
                         victim=a.victim, speculative=True, **self._job_kw)
            tracer.event("speculate", rank=worker, chunk=cid,
                         holder=a.victim, **self._job_kw)
            metrics.counter("speculative_grants").inc()
        elif a.victim != worker:
            tracer.event("grant", rank=worker, chunk=cid,
                         victim=a.victim, steal=True, **self._job_kw)
            tracer.event("steal", rank=worker, chunk=cid,
                         victim=a.victim, **self._job_kw)
            metrics.counter("steals").inc()
        else:
            tracer.event("grant", rank=worker, chunk=cid, **self._job_kw)
        metrics.counter("chunks_granted").inc()

    @contextlib.contextmanager
    def guard(self):
        """Hold the service lock across several operations.

        Recovery uses this to make "drain the dead rank's in-flight
        grants, then reclaim" atomic against the backend's serving
        thread — no grant can slip out between the two steps.
        """
        with self._lock:
            yield self

    # -- ownership / recovery ----------------------------------------------
    def can_recover(self, worker: int) -> bool:
        """Whether ``worker`` dying now is survivable (never during
        replay, and never after the worker posted its batches)."""
        with self._lock:
            return self._scheduler.can_recover(worker)

    def mark_posted(self, worker: int) -> None:
        """Record that ``worker`` shipped its shuffle batches: its
        grants complete and it stops being recoverable/speculable."""
        with self._lock:
            self._scheduler.mark_posted(worker)

    def reclaim(self, worker: int) -> int:
        """Return a dead worker's un-posted grants to the pool; returns
        the number of chunks re-queued (see
        :meth:`ChunkScheduler.reclaim`)."""
        with self._lock:
            requeued = self._scheduler.reclaim(worker)
            self.obs.tracer.event("reclaim", rank=worker,
                                  requeued=requeued, **self._job_kw)
            self.obs.metrics.counter("chunks_reclaimed").inc(requeued)
            return requeued

    def record_outcomes(self) -> None:
        """Trace end-of-run speculation outcomes (no-op when untraced).

        Emits one ``speculation_win``/``speculation_loss`` event per
        double-granted chunk, attributed to the kept copy's rank —
        known only once the run completes, hence recorded here rather
        than at grant time.  Executors call this right before they
        build :class:`~repro.core.stats.JobStats`.
        """
        if not self.obs.enabled:
            return
        with self._lock:
            winners = getattr(self._scheduler, "_winners", None)
            grantees = getattr(self._scheduler, "_grantees", None)
            if winners is None or grantees is None:
                return
            for cid, winner in winners().items():
                first = grantees[cid][0] if grantees.get(cid) else winner
                name = ("speculation_win" if winner != first
                        else "speculation_loss")
                self.obs.tracer.event(name, rank=winner, chunk=cid,
                                      **self._job_kw)

    # -- ledgers -------------------------------------------------------------
    @property
    def trace(self) -> ScheduleTrace:
        """The run's recorded schedule: every chunk granted exactly
        once (speculation losers filtered, reclaimed incarnations
        erased) — the replayable effective schedule."""
        return self._scheduler.effective_trace

    @property
    def raw_trace(self) -> ScheduleTrace:
        """Every grant as issued, speculation duplicates included."""
        return self._scheduler.trace

    @property
    def chunks_reclaimed(self) -> int:
        return getattr(self._scheduler, "chunks_reclaimed", 0)

    @property
    def speculative_wins(self) -> int:
        return self._scheduler.speculative_wins

    @property
    def retries_by_worker(self) -> List[int]:
        return list(self._scheduler.retries_by_worker)

    @property
    def steals(self) -> int:
        return self._scheduler.steals

    @property
    def steals_by_worker(self) -> List[int]:
        return list(self._scheduler.steals_by_worker)

    @property
    def remaining(self) -> int:
        with self._lock:
            return self._scheduler.remaining

    def chunk_counts(self) -> List[int]:
        """Chunks granted per worker so far."""
        return self.trace.chunk_counts(self.n_workers)

    def validate_ledgers(self, worker_stats: Iterable) -> None:
        """Cross-check workers' reported ledgers against the grant log.

        The service's trace and the workers' fetch ledgers are written
        independently; they must agree per worker, or the recorded
        trace would not describe the run it came from.  ``worker_stats``
        is any iterable of objects with ``rank`` / ``chunks_mapped`` /
        ``chunks_stolen`` (the backends' ``WorkerStats``).
        """
        where = f" [{self.context}]" if self.context else ""
        # The granted ledger, not the effective trace: a speculation
        # loser really mapped its duplicate chunk even though the
        # effective schedule drops that grant.
        counts = list(self._scheduler.granted_by_worker)
        steals = self.steals_by_worker
        for w in worker_stats:
            if w.chunks_mapped != counts[w.rank]:
                raise RuntimeError(
                    f"chunk ledgers disagree for worker {w.rank}{where}: "
                    f"service granted {counts[w.rank]} chunk(s), worker "
                    f"mapped {w.chunks_mapped}"
                )
            if w.chunks_stolen != steals[w.rank]:
                raise RuntimeError(
                    f"steal ledgers disagree for worker {w.rank}{where}: "
                    f"service granted {steals[w.rank]} steal(s), worker "
                    f"fetched {w.chunks_stolen}"
                )


class JobChunkAuthority:
    """One pull front over many concurrent jobs' chunk queues.

    The job service (:mod:`repro.service`) runs many jobs at once, each
    with its own chunks, workers, and schedule — but operators want one
    place to see and manage all in-flight chunk state.  The authority
    is that place: a registry of *job-scoped* :class:`ChunkService`
    namespaces keyed by ``job_id``.  A pool-managed executor whose
    :attr:`~repro.core.executor.Executor.chunk_authority` is set routes
    its run's service construction here (see
    :meth:`~repro.core.executor.Executor._make_chunk_service`), so the
    daemon can enumerate :attr:`active_jobs`, inspect a job's
    :attr:`~ChunkService.remaining` count mid-flight, and retire its
    queues with :meth:`close_job` once results are collected.

    Chunk queues are deliberately *not* shared between jobs: stealing
    never crosses a job boundary (a thief finishing job A's queue must
    not drain job B's), which is exactly what per-job namespaces give
    us for free while keeping every existing parity/replay contract
    per job.  Thread-safe: open/close/get may race with job-runner
    threads.
    """

    def __init__(self, obs=None) -> None:
        self.obs = obs or NULL_OBS
        self._lock = threading.Lock()
        self._jobs: Dict[str, ChunkService] = {}
        self._seq = 0

    def open_job(
        self,
        chunks: Sequence[Chunk],
        n_workers: int,
        *,
        job_id: Optional[str] = None,
        initial_distribution: str = "round_robin",
        enable_stealing: bool = True,
        schedule: Optional[ScheduleTrace] = None,
        context: Optional[str] = None,
        speculate_after: Optional[float] = None,
        prefetch: int = 0,
        obs=None,
    ) -> ChunkService:
        """Open a job-scoped :class:`ChunkService` namespace.

        ``job_id`` defaults to a fresh ``job<N>`` when the caller has
        none.  Re-opening an id whose chunks are all drained supersedes
        the old namespace (multi-phase apps like MM run several
        ``ex.run`` calls under one job id, one phase at a time);
        re-opening an id with chunks still in flight is an error — two
        live services under one name would make the registry ambiguous.
        """
        with self._lock:
            if job_id is None:
                self._seq += 1
                job_id = f"job{self._seq}"
            existing = self._jobs.get(job_id)
            if existing is not None and existing.remaining > 0:
                raise ValueError(
                    f"job {job_id!r} still has {existing.remaining} chunks "
                    "in flight on this authority; close_job() it before "
                    "reusing the id"
                )
            service = ChunkService(
                chunks,
                n_workers,
                initial_distribution=initial_distribution,
                enable_stealing=enable_stealing,
                schedule=schedule,
                context=context,
                speculate_after=speculate_after,
                prefetch=prefetch,
                obs=obs,
                job_id=job_id,
            )
            self._jobs[job_id] = service
            self.obs.metrics.counter("jobs_opened").inc()
            self.obs.metrics.gauge("jobs_active").set(len(self._jobs))
            return service

    def get(self, job_id: str) -> ChunkService:
        """The live service for ``job_id`` (KeyError when not open)."""
        with self._lock:
            return self._jobs[job_id]

    def close_job(self, job_id: str) -> ChunkService:
        """Retire a job's namespace and return its (final) service.

        The service object stays valid for post-run ledger reads
        (``trace``, ``steals``, ...); only the registry entry goes.
        """
        with self._lock:
            service = self._jobs.pop(job_id)
            self.obs.metrics.gauge("jobs_active").set(len(self._jobs))
            return service

    @property
    def active_jobs(self) -> Tuple[str, ...]:
        """Ids of jobs with live chunk namespaces, sorted."""
        with self._lock:
            return tuple(sorted(self._jobs))

    @property
    def remaining(self) -> int:
        """Undelivered chunks across every open job."""
        with self._lock:
            return sum(s.remaining for s in self._jobs.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JobChunkAuthority jobs={len(self._jobs)}>"

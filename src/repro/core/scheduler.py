"""Dynamic chunk scheduler with work stealing.

"GPMR tracks the per-GPU work in a dynamic queue.  If one GPU finishes
its work in its local queue and other GPUs have much more work to do,
we shift chunks between the local queues."  The scheduler keeps one
deque per worker, hands out local work first, and otherwise steals from
the *longest* queue.  The sim's caller (pipeline) prices the steal:
chunk serialisation on the victim's CPU plus the wire transfer when
victim and thief live on different nodes.

:class:`ChunkService` is the backend-agnostic face of all of this: one
thread-safe driver-side pull authority wrapping either the dynamic
:class:`ChunkScheduler` or a trace-replaying :class:`ReplayScheduler`,
serving the sim's event loop, the serial backend's interleaved rank
loop, the local backend's service thread, and the cluster
coordinator's ``CHUNK_REQ`` frames alike — with every grant recorded
into a replayable :class:`ScheduleTrace`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from .chunk import Chunk
from ..workloads.base import Dataset

__all__ = [
    "Assignment",
    "ChunkScheduler",
    "ChunkService",
    "DISTRIBUTIONS",
    "ReplayScheduler",
    "ScheduleGrant",
    "ScheduleTrace",
    "resolve_chunks",
    "distribute_chunks",
]

#: Deterministic initial chunk distributions shared by all backends.
DISTRIBUTIONS = ("round_robin", "blocks", "single")


def resolve_chunks(
    dataset: Optional[Dataset], chunks: Optional[Sequence[Chunk]]
) -> List[Chunk]:
    """Materialise the job's input chunks from exactly one source."""
    if (dataset is None) == (chunks is None):
        raise ValueError("provide exactly one of dataset or chunks")
    if chunks is None:
        return [Chunk.from_work_item(item) for item in dataset.chunks()]
    return list(chunks)


def distribute_chunks(
    chunks: Sequence[Chunk], n_workers: int, how: str = "round_robin"
) -> List[List[Chunk]]:
    """Initial chunk placement, identical on every backend.

    ``round_robin``: chunk i to worker ``i % n``; ``blocks``:
    contiguous runs of ``ceil(n_chunks / n_workers)``; ``single``:
    everything on worker 0 (as when one node ingested the data).

    This is the single definition of placement the bit-parity contract
    rests on; the sim scheduler's ``assign_*`` helpers delegate here.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if how not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown distribution {how!r}; expected one of {DISTRIBUTIONS}"
        )
    out: List[List[Chunk]] = [[] for _ in range(n_workers)]
    if how == "round_robin":
        for i, chunk in enumerate(chunks):
            out[i % n_workers].append(chunk)
    elif how == "blocks":
        per = (len(chunks) + n_workers - 1) // n_workers
        for w in range(n_workers):
            out[w].extend(chunks[w * per : (w + 1) * per])
    else:  # "single"
        out[0].extend(chunks)
    return out


class Assignment(NamedTuple):
    """A unit of work handed to a worker."""

    chunk: Chunk
    #: rank the chunk was queued on (== thief's rank when local)
    victim: int

    def stolen_by(self, worker: int) -> bool:
        """Whether this assignment was robbed from another worker."""
        return self.victim != worker


class ScheduleGrant(NamedTuple):
    """One scheduler decision: ``chunk_id`` went to ``worker``.

    ``was_steal`` is always ``victim != worker``; the victim rank is
    kept as well because the sim prices a steal by where the chunk
    lived (same-node vs. cross-node wire transfer).
    """

    worker: int
    chunk_id: int
    was_steal: bool
    victim: int


class ScheduleTrace:
    """An ordered log of chunk grants — a replayable schedule.

    Every backend's :class:`ChunkService` grows one of these as it
    hands out work — live :class:`ChunkScheduler` grants on a native
    run, re-issued :class:`ReplayScheduler` grants on a replay — so a
    load-balanced run on *any* backend reproduces
    decision-for-decision on any other.  The trace is small (three
    ints and a bool per chunk), picklable, and wire-friendly via
    :meth:`to_records`/:meth:`from_records`.
    """

    def __init__(self, grants: Iterable[ScheduleGrant] = ()) -> None:
        self.grants: List[ScheduleGrant] = [ScheduleGrant(*g) for g in grants]

    # -- recording ---------------------------------------------------------
    def record(self, worker: int, chunk_id: int, victim: int) -> ScheduleGrant:
        grant = ScheduleGrant(
            worker=int(worker),
            chunk_id=int(chunk_id),
            was_steal=victim != worker,
            victim=int(victim),
        )
        self.grants.append(grant)
        return grant

    # -- container protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self.grants)

    def __iter__(self) -> Iterator[ScheduleGrant]:
        return iter(self.grants)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduleTrace):
            return NotImplemented
        return self.grants == other.grants

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ScheduleTrace {len(self.grants)} grants, {self.total_steals} steals>"

    # -- ledgers -----------------------------------------------------------
    @property
    def total_steals(self) -> int:
        return sum(1 for g in self.grants if g.was_steal)

    def for_worker(self, worker: int) -> List[ScheduleGrant]:
        """This worker's grants, in its map order."""
        return [g for g in self.grants if g.worker == worker]

    def chunk_counts(self, n_workers: int) -> List[int]:
        """Chunks mapped per worker under this schedule."""
        counts = [0] * n_workers
        for g in self.grants:
            counts[g.worker] += 1
        return counts

    def steals_by_worker(self, n_workers: int) -> List[int]:
        """Chunks each worker obtained by stealing under this schedule."""
        steals = [0] * n_workers
        for g in self.grants:
            if g.was_steal:
                steals[g.worker] += 1
        return steals

    # -- wire form ---------------------------------------------------------
    def to_records(self) -> List[Tuple[int, int, bool, int]]:
        """Plain-tuple form (for persistence or non-pickle transports)."""
        return [tuple(g) for g in self.grants]

    @classmethod
    def from_records(cls, records: Iterable[Sequence]) -> "ScheduleTrace":
        return cls(ScheduleGrant(*r) for r in records)

    # -- replay ------------------------------------------------------------
    def _index_chunks(
        self,
        chunks: Sequence[Chunk],
        n_workers: int,
        context: Optional[str] = None,
    ) -> Dict[int, Chunk]:
        """Validate the trace against a chunk set; map id -> chunk.

        The trace must cover exactly the given chunks (each granted
        once) and name only in-range workers/victims — anything else
        means the caller is replaying the wrong job's schedule.
        ``context`` (app/job name plus phase) prefixes every error, and
        each grant complaint carries the offending grant *index*, so a
        trace/backend mismatch is debuggable from the message alone.
        """
        where = f"replaying schedule for {context}: " if context else ""
        by_id: Dict[int, Chunk] = {}
        for chunk in chunks:
            if chunk.index in by_id:
                raise ValueError(
                    f"{where}chunk ids must be unique to replay a schedule; "
                    f"id {chunk.index} appears twice"
                )
            by_id[chunk.index] = chunk
        seen: Dict[int, int] = {}
        for i, g in enumerate(self.grants):
            if not 0 <= g.worker < n_workers or not 0 <= g.victim < n_workers:
                raise ValueError(
                    f"{where}trace grant #{i} {g} names a rank outside "
                    f"0..{n_workers - 1}"
                )
            if g.was_steal != (g.victim != g.worker):
                raise ValueError(
                    f"{where}trace grant #{i} {g} has an inconsistent steal flag"
                )
            if g.chunk_id not in by_id:
                raise ValueError(
                    f"{where}trace grant #{i} grants chunk {g.chunk_id}, "
                    "which is not in the job"
                )
            if g.chunk_id in seen:
                raise ValueError(
                    f"{where}trace grant #{i} grants chunk {g.chunk_id} twice "
                    f"(first granted by grant #{seen[g.chunk_id]})"
                )
            seen[g.chunk_id] = i
        if len(seen) != len(by_id):
            missing = sorted(set(by_id) - set(seen))
            raise ValueError(
                f"{where}trace does not cover chunk(s) {missing}; a replayed "
                "schedule must grant every chunk exactly once"
            )
        return by_id

class ChunkScheduler:
    """Per-worker chunk queues with longest-queue-first stealing.

    Every grant is recorded into :attr:`trace`, so any run — load
    balanced or not — leaves behind a schedule the other backends can
    replay bit-for-bit.
    """

    #: a victim must have at least this many chunks queued to be robbed
    #: ("other GPUs have much more work to do").
    MIN_VICTIM_QUEUE = 2

    def __init__(self, n_workers: int, enable_stealing: bool = True) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self.enable_stealing = enable_stealing
        self._queues: List[Deque[Chunk]] = [deque() for _ in range(n_workers)]
        self.steals = 0
        self.steals_by_worker: List[int] = [0] * n_workers
        self.trace = ScheduleTrace()

    # -- loading ---------------------------------------------------------
    def assign_round_robin(self, chunks: Sequence[Chunk]) -> None:
        """Initial distribution: chunk i goes to worker i mod n."""
        self.assign(chunks, "round_robin")

    def assign_blocks(self, chunks: Sequence[Chunk]) -> None:
        """Initial distribution: contiguous blocks of chunks per worker."""
        self.assign(chunks, "blocks")

    def assign(self, chunks: Sequence[Chunk], how: str = "round_robin") -> None:
        """Load queues via the canonical placement policy."""
        for worker, assigned in enumerate(
            distribute_chunks(chunks, self.n_workers, how)
        ):
            self._queues[worker].extend(assigned)

    def push(self, worker: int, chunk: Chunk) -> None:
        self._queues[worker].append(chunk)

    # -- inspection ------------------------------------------------------
    def queue_len(self, worker: int) -> int:
        return len(self._queues[worker])

    @property
    def remaining(self) -> int:
        return sum(len(q) for q in self._queues)

    # -- dispatch -----------------------------------------------------------
    def request(self, worker: int) -> Optional[Assignment]:
        """Next chunk for ``worker``: local first, else steal, else None."""
        if not (0 <= worker < self.n_workers):
            raise ValueError(f"worker {worker} out of range")
        q = self._queues[worker]
        if q:
            chunk = q.popleft()
            self.trace.record(worker, chunk.index, worker)
            return Assignment(chunk=chunk, victim=worker)
        if not self.enable_stealing:
            return None
        victim = max(
            range(self.n_workers), key=lambda w: len(self._queues[w])
        )
        if len(self._queues[victim]) >= self.MIN_VICTIM_QUEUE:
            self.steals += 1
            self.steals_by_worker[worker] += 1
            # Steal from the tail: the victim is about to work the head.
            chunk = self._queues[victim].pop()
            self.trace.record(worker, chunk.index, victim)
            return Assignment(chunk=chunk, victim=victim)
        return None


class ReplayScheduler:
    """Hand out chunks in exactly the order a recorded trace dictates.

    Drop-in for :class:`ChunkScheduler` in the sim runtime: the same
    ``assign``/``request`` surface and the same ``steals`` ledgers, but
    every decision comes from the trace instead of queue state.  Each
    ``request(worker)`` returns that worker's next traced grant — with
    the recorded victim, so steal pricing replays identically — and
    ``None`` once its traced grants are exhausted.  All chunks are
    resident from ``assign`` time on, so a worker's next grant is
    always ready and a request never has to block.
    """

    def __init__(
        self,
        n_workers: int,
        schedule: ScheduleTrace,
        context: Optional[str] = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self.schedule = schedule
        #: label (app name / phase) prefixed onto validation errors
        self.context = context
        #: the grants actually re-issued (== ``schedule`` after a full run)
        self.trace = ScheduleTrace()
        self.steals = 0
        self.steals_by_worker: List[int] = [0] * n_workers
        self._pending: List[Deque[ScheduleGrant]] = [
            deque() for _ in range(n_workers)
        ]
        self._chunks: Dict[int, Chunk] = {}
        self._assigned = False

    # -- loading ---------------------------------------------------------
    def assign(self, chunks: Sequence[Chunk], how: str = "round_robin") -> None:
        """Validate and index the chunk set; ``how`` is ignored — the
        trace, not a placement policy, decides who maps what."""
        self._chunks = self.schedule._index_chunks(
            chunks, self.n_workers, self.context
        )
        for w in range(self.n_workers):
            self._pending[w].clear()
        for grant in self.schedule:
            self._pending[grant.worker].append(grant)
        self._assigned = True

    # -- inspection ------------------------------------------------------
    def queue_len(self, worker: int) -> int:
        return len(self._pending[worker])

    @property
    def remaining(self) -> int:
        return sum(len(q) for q in self._pending)

    # -- dispatch --------------------------------------------------------
    def request(self, worker: int) -> Optional[Assignment]:
        """The worker's next traced grant, or None when it is done."""
        if not (0 <= worker < self.n_workers):
            raise ValueError(f"worker {worker} out of range")
        if not self._assigned:
            raise RuntimeError("request() before assign()")
        if not self._pending[worker]:
            return None
        grant = self._pending[worker].popleft()
        if grant.was_steal:
            self.steals += 1
            self.steals_by_worker[worker] += 1
        self.trace.record(worker, grant.chunk_id, grant.victim)
        return Assignment(chunk=self._chunks[grant.chunk_id], victim=grant.victim)


class ChunkService:
    """Driver-side authority over a job's chunks: the pull server.

    Every backend's chunk distribution goes through one of these.  The
    service owns the pending/owned chunk queues and answers each
    worker's "next chunk?" request at runtime — local work first, then
    a steal from the longest queue (:class:`ChunkScheduler`), or, when
    a recorded ``schedule`` is supplied, exactly the traced grants
    (:class:`ReplayScheduler`).  Either way every grant lands in a live
    :class:`ScheduleTrace`, so any run — sim, serial, local, or cluster
    — leaves behind a schedule the other backends can replay
    bit-for-bit.

    Requests are serialised under a lock: the sim calls :meth:`request`
    from its single-threaded event loop, the serial backend from its
    interleaved rank loop, the local backend from a driver-side service
    thread answering worker queues, and the cluster backend from the
    coordinator answering ``CHUNK_REQ`` control frames — all against
    the same instance semantics.
    """

    def __init__(
        self,
        chunks: Sequence[Chunk],
        n_workers: int,
        initial_distribution: str = "round_robin",
        enable_stealing: bool = True,
        schedule: Optional[ScheduleTrace] = None,
        context: Optional[str] = None,
    ) -> None:
        self.n_workers = int(n_workers)
        self.context = context
        #: True when grants come from a recorded trace, not live stealing
        self.replaying = schedule is not None
        if schedule is not None:
            self._scheduler = ReplayScheduler(n_workers, schedule, context=context)
        else:
            self._scheduler = ChunkScheduler(
                n_workers, enable_stealing=enable_stealing
            )
        self._scheduler.assign(chunks, initial_distribution)
        self._lock = threading.Lock()

    # -- dispatch ----------------------------------------------------------
    def request(self, worker: int) -> Optional[Assignment]:
        """The worker's next chunk (with its victim rank), or None when
        the worker is done.  Thread-safe; grant order is total."""
        with self._lock:
            return self._scheduler.request(worker)

    # -- ledgers -------------------------------------------------------------
    @property
    def trace(self) -> ScheduleTrace:
        """The grants issued so far (the run's recorded schedule)."""
        return self._scheduler.trace

    @property
    def steals(self) -> int:
        return self._scheduler.steals

    @property
    def steals_by_worker(self) -> List[int]:
        return list(self._scheduler.steals_by_worker)

    @property
    def remaining(self) -> int:
        with self._lock:
            return self._scheduler.remaining

    def chunk_counts(self) -> List[int]:
        """Chunks granted per worker so far."""
        return self.trace.chunk_counts(self.n_workers)

    def validate_ledgers(self, worker_stats: Iterable) -> None:
        """Cross-check workers' reported ledgers against the grant log.

        The service's trace and the workers' fetch ledgers are written
        independently; they must agree per worker, or the recorded
        trace would not describe the run it came from.  ``worker_stats``
        is any iterable of objects with ``rank`` / ``chunks_mapped`` /
        ``chunks_stolen`` (the backends' ``WorkerStats``).
        """
        where = f" [{self.context}]" if self.context else ""
        counts = self.chunk_counts()
        steals = self.steals_by_worker
        for w in worker_stats:
            if w.chunks_mapped != counts[w.rank]:
                raise RuntimeError(
                    f"chunk ledgers disagree for worker {w.rank}{where}: "
                    f"service granted {counts[w.rank]} chunk(s), worker "
                    f"mapped {w.chunks_mapped}"
                )
            if w.chunks_stolen != steals[w.rank]:
                raise RuntimeError(
                    f"steal ledgers disagree for worker {w.rank}{where}: "
                    f"service granted {steals[w.rank]} steal(s), worker "
                    f"fetched {w.chunks_stolen}"
                )

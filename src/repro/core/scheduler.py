"""Dynamic chunk scheduler with work stealing.

"GPMR tracks the per-GPU work in a dynamic queue.  If one GPU finishes
its work in its local queue and other GPUs have much more work to do,
we shift chunks between the local queues."  The scheduler keeps one
deque per worker, hands out local work first, and otherwise steals from
the *longest* queue.  The caller (pipeline) prices the steal: chunk
serialisation on the victim's CPU plus the wire transfer when victim
and thief live on different nodes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, NamedTuple, Optional, Sequence

from .chunk import Chunk
from ..workloads.base import Dataset

__all__ = [
    "Assignment",
    "ChunkScheduler",
    "DISTRIBUTIONS",
    "resolve_chunks",
    "distribute_chunks",
]

#: Deterministic initial chunk distributions shared by all backends.
DISTRIBUTIONS = ("round_robin", "blocks", "single")


def resolve_chunks(
    dataset: Optional[Dataset], chunks: Optional[Sequence[Chunk]]
) -> List[Chunk]:
    """Materialise the job's input chunks from exactly one source."""
    if (dataset is None) == (chunks is None):
        raise ValueError("provide exactly one of dataset or chunks")
    if chunks is None:
        return [Chunk.from_work_item(item) for item in dataset.chunks()]
    return list(chunks)


def distribute_chunks(
    chunks: Sequence[Chunk], n_workers: int, how: str = "round_robin"
) -> List[List[Chunk]]:
    """Initial chunk placement, identical on every backend.

    ``round_robin``: chunk i to worker ``i % n``; ``blocks``:
    contiguous runs of ``ceil(n_chunks / n_workers)``; ``single``:
    everything on worker 0 (as when one node ingested the data).

    This is the single definition of placement the bit-parity contract
    rests on; the sim scheduler's ``assign_*`` helpers delegate here.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if how not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown distribution {how!r}; expected one of {DISTRIBUTIONS}"
        )
    out: List[List[Chunk]] = [[] for _ in range(n_workers)]
    if how == "round_robin":
        for i, chunk in enumerate(chunks):
            out[i % n_workers].append(chunk)
    elif how == "blocks":
        per = (len(chunks) + n_workers - 1) // n_workers
        for w in range(n_workers):
            out[w].extend(chunks[w * per : (w + 1) * per])
    else:  # "single"
        out[0].extend(chunks)
    return out


class Assignment(NamedTuple):
    """A unit of work handed to a worker."""

    chunk: Chunk
    #: rank the chunk was queued on (== thief's rank when local)
    victim: int

    def stolen_by(self, worker: int) -> bool:
        """Whether this assignment was robbed from another worker."""
        return self.victim != worker


class ChunkScheduler:
    """Per-worker chunk queues with longest-queue-first stealing."""

    #: a victim must have at least this many chunks queued to be robbed
    #: ("other GPUs have much more work to do").
    MIN_VICTIM_QUEUE = 2

    def __init__(self, n_workers: int, enable_stealing: bool = True) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self.enable_stealing = enable_stealing
        self._queues: List[Deque[Chunk]] = [deque() for _ in range(n_workers)]
        self.steals = 0

    # -- loading ---------------------------------------------------------
    def assign_round_robin(self, chunks: Sequence[Chunk]) -> None:
        """Initial distribution: chunk i goes to worker i mod n."""
        self.assign(chunks, "round_robin")

    def assign_blocks(self, chunks: Sequence[Chunk]) -> None:
        """Initial distribution: contiguous blocks of chunks per worker."""
        self.assign(chunks, "blocks")

    def assign(self, chunks: Sequence[Chunk], how: str = "round_robin") -> None:
        """Load queues via the canonical placement policy."""
        for worker, assigned in enumerate(
            distribute_chunks(chunks, self.n_workers, how)
        ):
            self._queues[worker].extend(assigned)

    def push(self, worker: int, chunk: Chunk) -> None:
        self._queues[worker].append(chunk)

    # -- inspection ------------------------------------------------------
    def queue_len(self, worker: int) -> int:
        return len(self._queues[worker])

    @property
    def remaining(self) -> int:
        return sum(len(q) for q in self._queues)

    # -- dispatch -----------------------------------------------------------
    def request(self, worker: int) -> Optional[Assignment]:
        """Next chunk for ``worker``: local first, else steal, else None."""
        if not (0 <= worker < self.n_workers):
            raise ValueError(f"worker {worker} out of range")
        q = self._queues[worker]
        if q:
            return Assignment(chunk=q.popleft(), victim=worker)
        if not self.enable_stealing:
            return None
        victim = max(
            range(self.n_workers), key=lambda w: len(self._queues[w])
        )
        if len(self._queues[victim]) >= self.MIN_VICTIM_QUEUE:
            self.steals += 1
            # Steal from the tail: the victim is about to work the head.
            return Assignment(chunk=self._queues[victim].pop(), victim=victim)
        return None

"""Matrix Multiplication (MM) — paper Section 5.3.1.

Two-phase tiled matrix multiply:

* **Phase 1**: each map chunk multiplies an A panel by a B panel
  (cache-oblivious tiling down to shared-memory blocks), emitting one
  *partial output tile* keyed by its (i, j) position.  The round-robin
  partitioner shuffles each partial tile to its owning rank.  Sort and
  Reduce are **bypassed** ("we bypass Sort and Reduce and implement
  another Map in a separate MapReduce") because a single-key reduction
  would have to hold all of a tile's partials in-core at once.
* **Phase 2**: a second MapReduce whose chunks are the groups of
  partial tiles per output position; its map sums them.  Keys are
  already owner-local after the phase-1 shuffle, so phase 2's
  round-robin partition sends every pair to its own rank.

MM is the paper's only embarrassingly-compute-bound benchmark: its
panel products run at matrix-multiply arithmetic intensity, so it is
the scaling yardstick (near-perfect efficiency at 64 GPUs for 16384^2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..accel import ArrayNamespace, FusedMapper
from ..baselines.mars import MarsWorkload
from ..baselines.phoenix import PhoenixWorkload
from ..core import (
    Chunk,
    KeyValueSet,
    MapReduceJob,
    Mapper,
    PipelineConfig,
    RoundRobinPartitioner,
    ScheduleTrace,
    make_executor,
)
from ..core.runtime import JobResult
from ..core.stats import JobStats, WorkerStats
from ..hw.kernel import KernelLaunch
from ..primitives import launch_1d
from ..workloads import MatrixDataset

__all__ = [
    "MMPhase1Mapper",
    "MMPhase2Mapper",
    "FusedMMPhase1Mapper",
    "FusedMMPhase2Mapper",
    "mm_phase1_job",
    "mm_phase2_job",
    "mm_dataset",
    "run_matmul",
    "MMResult",
    "mm_validate",
    "mm_phoenix_workload",
    "mm_mars_workload",
]


class MMPhase1Mapper(Mapper):
    """Panel x panel -> one partial output tile per chunk."""

    def __init__(self, dataset: MatrixDataset) -> None:
        self.dataset = dataset
        # Shared-memory staging for the 16x16 sub-tiles.
        self.scratch_bytes = 64 << 10

    def map_chunk(self, chunk: Chunk) -> KeyValueSet:
        ds = self.dataset
        task = ds.task(chunk.index)
        a_panel, b_panel = chunk.data
        partial = (a_panel.astype(np.float64) @ b_panel.astype(np.float64)).astype(
            np.float32
        )
        # One pair: key = output position, value = the flattened tile.
        # Each stored float stands for sample_factor^2 logical floats.
        scale = float(ds.sample_factor) ** 2
        return KeyValueSet(
            keys=np.array([ds.out_key(task)], dtype=np.uint32),
            values=partial.reshape(1, -1),
            scale=scale,
        )

    def map_cost(self, chunk: Chunk) -> List[KernelLaunch]:
        ds = self.dataset
        task = ds.task(chunk.index)
        return [
            launch_1d(
                "mm_panel_multiply",
                ds.tile_elems,
                flops_per_item=ds.panel_flops(task) / ds.tile_elems,
                read_bytes_per_item=ds.panel_bytes(task) / ds.tile_elems,
                write_bytes_per_item=4.0,
                coalescing=1.0,      # 16x16 shared-memory tiles, coalesced
                items_per_thread=1,
                block=256,
                syncs=2,             # tile-loop barriers
            )
        ]

    def output_bytes_estimate(self, chunk: Chunk) -> int:
        return self.dataset.tile_bytes


class MMPhase2Mapper(Mapper):
    """Sum the partial tiles of one output position."""

    def __init__(self, dataset: MatrixDataset) -> None:
        self.dataset = dataset

    def map_chunk(self, chunk: Chunk) -> KeyValueSet:
        partials = chunk.data  # (p, tile_actual^2) float32
        total = partials.astype(np.float64).sum(axis=0).astype(np.float32)
        scale = float(self.dataset.sample_factor) ** 2
        return KeyValueSet(
            keys=np.array([chunk.meta], dtype=np.uint32),
            values=total.reshape(1, -1),
            scale=scale,
        )

    def map_cost(self, chunk: Chunk) -> List[KernelLaunch]:
        ds = self.dataset
        p = len(chunk.data)
        return [
            launch_1d(
                "mm_partial_sum",
                ds.tile_elems,
                flops_per_item=float(p),
                read_bytes_per_item=4.0 * p,
                write_bytes_per_item=4.0,
                coalescing=1.0,
            )
        ]

    def input_bytes(self, chunk: Chunk) -> int:
        return chunk.logical_bytes

    def output_bytes_estimate(self, chunk: Chunk) -> int:
        return self.dataset.tile_bytes


class FusedMMPhase1Mapper(FusedMapper):
    """Panel product fused into the namespace: on a device tier the A/B
    panels upload once and the f64-accumulated product stays resident
    until the rank's parts export.  The host path delegates to the
    staged mapper verbatim — identical arithmetic, bit-identical tiles.
    """

    def __init__(self, mapper: MMPhase1Mapper) -> None:
        self.mapper = mapper

    def map_reduce_chunk(self, chunk: Chunk, state, ns: ArrayNamespace):
        if ns.is_host:
            return state, self.mapper.map_chunk(chunk)
        ds = self.mapper.dataset
        task = ds.task(chunk.index)
        a_panel, b_panel = chunk.data
        a = ns.astype(ns.from_host(a_panel), np.float64)
        b = ns.astype(ns.from_host(b_panel), np.float64)
        partial = ns.astype(ns.matmul(a, b), np.float32)
        return state, KeyValueSet(
            keys=ns.from_host(np.array([ds.out_key(task)], dtype=np.uint32)),
            values=partial.reshape(1, -1),
            scale=float(ds.sample_factor) ** 2,
        )


class FusedMMPhase2Mapper(FusedMapper):
    """Partial-tile accumulation fused into the namespace; host path
    delegates to the staged mapper (bit-identical sums)."""

    def __init__(self, mapper: MMPhase2Mapper) -> None:
        self.mapper = mapper

    def map_reduce_chunk(self, chunk: Chunk, state, ns: ArrayNamespace):
        if ns.is_host:
            return state, self.mapper.map_chunk(chunk)
        partials = ns.astype(ns.from_host(chunk.data), np.float64)
        total = ns.astype(partials.sum(axis=0), np.float32)
        return state, KeyValueSet(
            keys=ns.from_host(np.array([chunk.meta], dtype=np.uint32)),
            values=total.reshape(1, -1),
            scale=float(self.mapper.dataset.sample_factor) ** 2,
        )


def mm_dataset(
    m: int,
    tile: int = 1024,
    kspan: int = 8,
    seed: int = 0,
    sample_factor: int = 1,
) -> MatrixDataset:
    return MatrixDataset(m=m, tile=tile, kspan=kspan, seed=seed, sample_factor=sample_factor)


def mm_phase1_job(dataset: MatrixDataset) -> MapReduceJob:
    mapper = MMPhase1Mapper(dataset)
    return MapReduceJob(
        name="matmul-phase1",
        mapper=mapper,
        reducer=None,
        partitioner=RoundRobinPartitioner(),
        fused=FusedMMPhase1Mapper(mapper),
        config=PipelineConfig(skip_sort_reduce=True),
        key_bytes=4,
        value_bytes=dataset.tile_bytes,
        key_bits=max(int(np.ceil(np.log2(max(dataset.grid**2, 2)))), 1),
    )


def mm_phase2_job(dataset: MatrixDataset) -> MapReduceJob:
    mapper = MMPhase2Mapper(dataset)
    return MapReduceJob(
        name="matmul-phase2",
        mapper=mapper,
        reducer=None,
        partitioner=RoundRobinPartitioner(),  # keys are already owner-local
        fused=FusedMMPhase2Mapper(mapper),
        config=PipelineConfig(skip_sort_reduce=True),
        key_bytes=4,
        value_bytes=dataset.tile_bytes,
        key_bits=max(int(np.ceil(np.log2(max(dataset.grid**2, 2)))), 1),
    )


@dataclass
class MMResult:
    """Outcome of a two-phase MM run."""

    product: np.ndarray          #: assembled (sampled) output matrix
    elapsed: float               #: phase-1 + phase-2 simulated seconds
    phase1: JobResult
    phase2: JobResult

    @property
    def stats(self) -> JobStats:
        """Merged two-phase stats (Figure-2 buckets summed)."""
        merged_workers = []
        for w1, w2 in zip(self.phase1.stats.workers, self.phase2.stats.workers):
            m = WorkerStats(rank=w1.rank)
            for src in (w1, w2):
                for stage, secs in src.stage_seconds.items():
                    m.add(stage, secs)
                m.chunks_mapped += src.chunks_mapped
                m.chunks_stolen += src.chunks_stolen
                m.pairs_emitted_logical += src.pairs_emitted_logical
                m.bytes_h2d += src.bytes_h2d
                m.bytes_d2h += src.bytes_d2h
                m.bytes_sent_network += src.bytes_sent_network
                m.bytes_kept_local += src.bytes_kept_local
                m.shuffle_frames_sent += src.shuffle_frames_sent
            merged_workers.append(m)
        return JobStats(
            job_name="matmul",
            n_gpus=self.phase1.stats.n_gpus,
            elapsed=self.elapsed,
            workers=merged_workers,
            clock=self.phase1.stats.clock,
        )


def _phase2_chunks(dataset: MatrixDataset, phase1: JobResult) -> List[Chunk]:
    """Group phase-1 partial tiles by output key into phase-2 chunks.

    Chunks are emitted in key order so the runtime's round-robin
    distribution lands key ``k`` on rank ``k % P`` — where its partials
    already live after the phase-1 shuffle.
    """
    grid = dataset.grid
    partials: Dict[int, List[np.ndarray]] = {}
    for kv in phase1.outputs:
        if kv is None:
            continue
        for row in range(len(kv)):
            partials.setdefault(int(kv.keys[row]), []).append(kv.values[row])
    chunks = []
    p_per_key = dataset.k_groups
    for key in sorted(partials):
        stack = np.vstack(partials[key])
        chunks.append(
            Chunk(
                index=key,
                data=stack,
                logical_items=dataset.tile_elems,
                logical_bytes=p_per_key * dataset.tile_bytes,
                meta=key,
            )
        )
    assert len(chunks) == grid * grid, "every output tile needs partials"
    return chunks


def run_matmul(
    n_gpus: int,
    dataset: MatrixDataset,
    *,
    backend: str = "sim",
    schedule=None,
    **executor_kwargs,
) -> MMResult:
    """Run the full two-phase MM job; returns the assembled product.

    MM runs two MapReduce jobs, so its replay knob takes a *pair* of
    traces — ``schedule=(phase1_trace, phase2_trace)`` (either may be
    None to fall back to static placement for that phase).
    """
    if schedule is None:
        sched1 = sched2 = None
    elif isinstance(schedule, ScheduleTrace):
        # A bare trace would silently unpack as grants; fail loudly.
        raise TypeError(
            "MM runs two MapReduce jobs; pass "
            "schedule=(phase1_trace, phase2_trace), not a single trace"
        )
    else:
        sched1, sched2 = schedule
    ex = make_executor(backend, n_gpus, **executor_kwargs)
    phase1 = ex.run(mm_phase1_job(dataset), dataset, schedule=sched1)
    chunks = _phase2_chunks(dataset, phase1)
    phase2 = ex.run(mm_phase2_job(dataset), chunks=chunks, schedule=sched2)

    t = dataset.tile_actual
    grid = dataset.grid
    product = np.zeros((dataset.m_actual, dataset.m_actual), dtype=np.float32)
    for kv in phase2.outputs:
        if kv is None:
            continue
        for row in range(len(kv)):
            key = int(kv.keys[row])
            i, j = divmod(key, grid)
            product[i * t : (i + 1) * t, j * t : (j + 1) * t] = kv.values[row].reshape(
                t, t
            )
    return MMResult(
        product=product,
        elapsed=phase1.elapsed + phase2.elapsed,
        phase1=phase1,
        phase2=phase2,
    )


def mm_validate(result: MMResult, dataset: MatrixDataset) -> None:
    """Check the assembled product against the NumPy oracle."""
    np.testing.assert_allclose(
        result.product.astype(np.float64),
        dataset.reference_product().astype(np.float64),
        rtol=1e-4,
        atol=1e-4,
    )


# -- baseline descriptors ---------------------------------------------------

def mm_phoenix_workload(dataset: MatrixDataset) -> PhoenixWorkload:
    """Phoenix MM: one vector-vector map per output element with a naive
    triple loop — the paper observes "almost twenty seconds to multiply
    two 1024x1024 matrices" (~0.1 GFLOP/s, ~1% of node peak)."""
    m = dataset.m
    return PhoenixWorkload(
        name="mm",
        n_items=m * m,
        map_flops_per_item=2.0 * m,
        map_bytes_per_item=8.0 * m,     # row + column touched per element
        emits_per_item=1.0,
        pair_bytes=12,
        n_unique_keys=m * m,
        reduce_flops_per_pair=0.0,
        flops_efficiency=0.011,          # cache-hostile column walks
        mem_efficiency=0.12,
        group_cost_per_pair=1e-8,        # MM has no real grouping phase
    )


def mm_mars_workload(dataset: MatrixDataset) -> MarsWorkload:
    """Mars MM: library-scheduled thread-per-element map — no
    shared-memory tiling is expressible under Mars's one-thread-per-item
    model, so each thread walks a row and a column from global memory
    (texture cache gives partial reuse).  MM results are written in
    place: no pair sort ("there is no Sort or Reduce")."""
    m = dataset.m
    return MarsWorkload(
        name="mm",
        input_bytes=2 * m * m * 4,
        n_items=m * m,
        map_launches=[
            launch_1d(
                "mars_mm_map",
                m * m,
                flops_per_item=2.0 * m,
                # texture-cache reuse softens but cannot fix untiled reads
                read_bytes_per_item=4.0 * m * 0.25,
                write_bytes_per_item=4.0,
                coalescing=0.5,
                divergence=0.45,   # no MAD pipelining without tiling
            )
        ],
        n_pairs=m * m,
        pair_bytes=4,
        key_bits=32,
        sorts_pairs=False,
        reduce_launches=[],
        output_bytes=m * m * 4,
    )

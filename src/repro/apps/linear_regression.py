"""Linear Regression (LR) — paper Section 5.3.5.

Fits ``y = a*x + b`` over (x, y) pairs.  "LR is similar to KMC in many
ways and the same optimizations work well": persistent threads compute
the running relationship sums, accumulated atomic-free on the GPU; "the
Mapper emits only six keys upon completion, and thus we do not use
Partitioning (the network overhead is minimal in both cases)"; the
default sort and a key-per-thread reduce finish the job ("reduction
time is virtually nil").

The six keys are the classic sufficient statistics:
``n, sum(x), sum(y), sum(x^2), sum(y^2), sum(x*y)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..accel import ArrayNamespace, FusedMapper
from ..baselines.mars import MarsWorkload
from ..baselines.phoenix import PhoenixWorkload
from ..core import (
    KeyValueSet,
    MapReduceJob,
    Mapper,
    Reducer,
    SumAccumulator,
    make_executor,
)
from ..core.chunk import Chunk
from ..core.runtime import JobResult
from ..core.sorter import RadixSorter
from ..hw.kernel import KernelLaunch
from ..primitives import launch_1d, segmented_reduce
from ..workloads import RegressionDataset

__all__ = [
    "LRMapper",
    "FusedLRMapper",
    "NaiveLRMapper",
    "LRReducer",
    "LR_KEYS",
    "lr_job",
    "lr_dataset",
    "lr_extract_sums",
    "lr_fit",
    "lr_validate",
    "lr_phoenix_workload",
    "lr_mars_workload",
]

#: The six emitted keys, in key order.
LR_KEYS = ("n", "sx", "sy", "sxx", "syy", "sxy")


def _chunk_stats(data: np.ndarray) -> np.ndarray:
    """The six per-chunk sufficient statistics, in key order.

    Shared by the staged mapper and the fused host path so both fold
    the exact same float64 values — the bit-parity contract.
    """
    x = data[:, 0].astype(np.float64)
    y = data[:, 1].astype(np.float64)
    return np.array(
        [
            float(len(x)),
            float(x.sum()),
            float(y.sum()),
            float((x * x).sum()),
            float((y * y).sum()),
            float((x * y).sum()),
        ],
        dtype=np.float64,
    )


class LRMapper(Mapper):
    """Persistent-thread sums of the six regression statistics."""

    scratch_bytes = 1 << 20  # per-block pools

    def map_chunk(self, chunk: Chunk) -> KeyValueSet:
        return KeyValueSet(
            keys=np.arange(6, dtype=np.uint32),
            values=_chunk_stats(chunk.data),
            scale=1.0,
        )

    def map_cost(self, chunk: Chunk) -> List[KernelLaunch]:
        n = chunk.logical_items
        return [
            launch_1d(
                "lr_map_persistent",
                n,
                flops_per_item=9.0,          # 3 mults + 5 adds + count
                read_bytes_per_item=8.0,      # x, y float32
                write_bytes_per_item=0.01,    # per-block pools
                items_per_thread=8,
                coalescing=1.0,
                syncs=1,
            )
        ]

    def output_bytes_estimate(self, chunk: Chunk) -> int:
        return 6 * 12


class FusedLRMapper(FusedMapper):
    """Map + accumulate in one call: the six-sum table never leaves
    the rank until finish.

    The host path folds :func:`_chunk_stats` into the resident table
    with the same element-wise add the accumulator performs
    (``np.add.at`` over the distinct keys 0..5), so it is bit-identical
    to the staged ``LRMapper + SumAccumulator`` pipeline.  The device
    path keeps the (x, y) reductions namespace-resident.
    """

    def initial_state(self, ns: ArrayNamespace):
        return ns.zeros(6, dtype=np.float64)

    def map_reduce_chunk(self, chunk: Chunk, state, ns: ArrayNamespace):
        if ns.is_host:
            state += _chunk_stats(chunk.data)
            return state, None
        data = ns.from_host(chunk.data)
        x = ns.astype(data[:, 0], np.float64)
        y = ns.astype(data[:, 1], np.float64)
        stats = ns.concatenate(
            [
                ns.ones(1, dtype=np.float64) * float(len(chunk.data)),
                x.sum().reshape(1),
                y.sum().reshape(1),
                (x * x).sum().reshape(1),
                (y * y).sum().reshape(1),
                (x * y).sum().reshape(1),
            ]
        )
        return state + stats, None

    def finish_state(self, state, ns: ArrayNamespace):
        return KeyValueSet(
            keys=ns.arange(6, dtype=np.uint32), values=state, scale=1.0
        )


class NaiveLRMapper(Mapper):
    """The paper's straightforward LR port, kept for ablation A1.

    The direct CPU port: no persistent threads, no accumulation — each
    warp computes local sums and emits the six statistic pairs, so the
    intermediate pair set scales with the input (6 pairs per 32 points)
    and every pair crosses PCI-e and lands on the single reducer.  The
    paper reports "an almost order-of-magnitude speedup over a direct
    port of the typical CPU implementation".
    """

    scratch_bytes = 0
    WARP = 32

    def map_chunk(self, chunk: Chunk) -> KeyValueSet:
        x = chunk.data[:, 0].astype(np.float64)
        y = chunk.data[:, 1].astype(np.float64)
        n = len(x)
        n_warps = max(1, (n + self.WARP - 1) // self.WARP)
        stats = np.zeros((n_warps, 6), dtype=np.float64)
        warp_of = np.arange(n) // self.WARP
        np.add.at(stats[:, 0], warp_of, 1.0)
        np.add.at(stats[:, 1], warp_of, x)
        np.add.at(stats[:, 2], warp_of, y)
        np.add.at(stats[:, 3], warp_of, x * x)
        np.add.at(stats[:, 4], warp_of, y * y)
        np.add.at(stats[:, 5], warp_of, x * y)
        keys = np.tile(np.arange(6, dtype=np.uint32), n_warps)
        return KeyValueSet(keys=keys, values=stats.reshape(-1), scale=chunk.scale)

    def map_cost(self, chunk: Chunk) -> List[KernelLaunch]:
        n = chunk.logical_items
        return [
            launch_1d(
                "lr_map_naive",
                n,
                flops_per_item=9.0,
                read_bytes_per_item=8.0,
                write_bytes_per_item=12.0 * 6 / self.WARP,  # per-warp emits
                coalescing=0.3,                              # scattered emits
            )
        ]

    def output_bytes_estimate(self, chunk: Chunk) -> int:
        return chunk.logical_items * 12 * 6 // self.WARP


class LRReducer(Reducer):
    """Key-per-thread sums; six keys — 'reduction time is virtually nil'."""

    def reduce_segments(self, keys, values, offsets, counts, scale) -> KeyValueSet:
        sums = segmented_reduce(values, offsets)
        return KeyValueSet(keys=keys, values=sums, scale=scale)

    def reduce_cost(self, n_values: int, n_keys: int) -> List[KernelLaunch]:
        return [
            launch_1d(
                "lr_reduce",
                n_values,
                flops_per_item=1.0,
                read_bytes_per_item=12.0,
                write_bytes_per_item=12.0 * n_keys / max(n_values, 1),
                coalescing=0.5,
            )
        ]


def lr_dataset(
    n_points: int,
    chunk_points: int = 8 << 20,
    seed: int = 0,
    sample_factor: int = 1,
    slope: float = 2.5,
    intercept: float = -1.0,
) -> RegressionDataset:
    """The paper's LR input: 8-byte (x, y) float pairs."""
    return RegressionDataset(
        n_points=n_points,
        chunk_points=chunk_points,
        seed=seed,
        sample_factor=sample_factor,
        slope=slope,
        intercept=intercept,
    )


def lr_job(use_accumulation: bool = True) -> MapReduceJob:
    """The LR pipeline: accumulate on-GPU, no partitioner (six keys).

    ``use_accumulation=False`` selects the straightforward
    emit-per-point port for ablation A1.
    """
    return MapReduceJob(
        name="linear-regression" if use_accumulation else "linear-regression-naive",
        mapper=LRMapper() if use_accumulation else NaiveLRMapper(),
        reducer=LRReducer(),
        partitioner=None,   # all six keys to one reducer, per the paper
        accumulator=(
            SumAccumulator(6, value_dtype=np.float64, use_atomics=False)
            if use_accumulation
            else None
        ),
        # Fused analogue of the accumulation pipeline only; the naive
        # per-warp port has none.
        fused=FusedLRMapper() if use_accumulation else None,
        sorter=RadixSorter(key_bits=4),
        key_bytes=4,
        value_bytes=8,
        key_bits=4,
    )


def lr_extract_sums(result: JobResult) -> Dict[str, float]:
    """The six reduced statistics as a named dict."""
    merged = result.merged()
    table = np.zeros(6, dtype=np.float64)
    np.add.at(table, merged.keys.astype(np.int64), merged.values)
    return dict(zip(LR_KEYS, table.tolist()))


def lr_fit(result: JobResult) -> Tuple[float, float]:
    """Slope and intercept from a finished LR job."""
    from ..baselines.serial import regression_fit

    return regression_fit(lr_extract_sums(result))


def lr_validate(result: JobResult, dataset: RegressionDataset) -> None:
    """Check the six sums against the serial oracle (exact arithmetic)."""
    from ..baselines.serial import regression_sums

    expected = regression_sums(dataset)
    got = lr_extract_sums(result)
    for key in LR_KEYS:
        np.testing.assert_allclose(got[key], expected[key], rtol=1e-9)


# -- baseline descriptors ---------------------------------------------------

def lr_phoenix_workload(dataset: RegressionDataset) -> PhoenixWorkload:
    """Phoenix LR: per-point statistics with per-split local combine —
    emitted pair volume is tiny, the map loop dominates.  The paper
    measures GPMR at only ~1.3x: LR has so little math per byte that
    the CPU is nearly bandwidth-competitive."""
    return PhoenixWorkload(
        name="lr",
        n_items=dataset.n_points,
        map_flops_per_item=9.0,
        map_bytes_per_item=8.0,
        emits_per_item=24.0 / dataset.n_points,  # per-worker aggregates
        pair_bytes=12,
        n_unique_keys=6,
        reduce_flops_per_pair=1.0,
        flops_efficiency=0.22,   # scalar doubles, loop-carried sums
        group_cost_per_pair=5e-8,
    )


def lr_mars_workload(dataset: RegressionDataset) -> MarsWorkload:
    """Mars LR: per-point emit of the five products + count, bitonic
    sort over all of them (no accumulation)."""
    n = dataset.n_points
    pair = 12 + 8  # key + double + directory
    return MarsWorkload(
        name="lr",
        input_bytes=n * 8,
        n_items=n,
        map_launches=[
            launch_1d(
                "mars_lr_map",
                n,
                flops_per_item=9.0,
                read_bytes_per_item=8.0,
                write_bytes_per_item=float(pair),
                coalescing=0.3,
            )
        ],
        n_pairs=n,
        pair_bytes=pair,
        key_bits=8,
        reduce_launches=[
            launch_1d(
                "mars_lr_reduce",
                n,
                flops_per_item=1.0,
                read_bytes_per_item=12.0,
                coalescing=0.5,
            )
        ],
        output_bytes=6 * 12,
    )


def run_lr(
    n_gpus: int,
    dataset: RegressionDataset,
    *,
    backend: str = "sim",
    schedule=None,
    use_accumulation: bool = True,
    **executor_kwargs,
) -> JobResult:
    """Convenience: run LR on ``n_gpus`` workers of ``backend``."""
    return make_executor(backend, n_gpus, **executor_kwargs).run(
        lr_job(use_accumulation=use_accumulation), dataset, schedule=schedule
    )

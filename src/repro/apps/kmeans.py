"""K-Means Clustering (KMC) — paper Section 5.3.4.

One Lloyd iteration over random points with a fixed random start-centre
set.  The paper's optimised GPU pipeline, reproduced here:

* **persistent threads**: the block reads points coalesced, each thread
  finds the closest centre, and the block performs per-centre
  reductions — "these optimizations reduced Map times by almost 8x"
  over the emit-per-point port;
* **atomic-free Accumulation**: GT200 has no floating-point atomics, so
  each block accumulates into a per-block global-memory pool and a
  second kernel folds the pools (``SumAccumulator(use_atomics=False)``
  prices exactly that);
* the emitted keys are ``<C, P_dim>`` per dimension **plus one count
  key per centre** — ``K * (dims + 1)`` keys total, allowing coalesced
  writes;
* the **partitioner sends all keys of a centre to one GPU**;
* reduce is one key per thread (negligible time at these key counts).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..accel import ArrayNamespace, FusedMapper
from ..baselines.mars import MarsWorkload
from ..baselines.phoenix import PhoenixWorkload
from ..core import (
    KeyValueSet,
    MapReduceJob,
    Mapper,
    Partitioner,
    Reducer,
    SumAccumulator,
    make_executor,
)
from ..core.chunk import Chunk
from ..core.runtime import JobResult
from ..core.sorter import RadixSorter
from ..hw.kernel import KernelLaunch
from ..primitives import launch_1d, segmented_reduce
from ..workloads import KMeansDataset

__all__ = [
    "KMCMapper",
    "NaiveKMCMapper",
    "FusedKMCMapper",
    "KMCReducer",
    "CenterPartitioner",
    "kmc_job",
    "kmc_dataset",
    "kmc_extract_centers",
    "kmc_validate",
    "kmc_phoenix_workload",
    "kmc_mars_workload",
]


def _key_of(center: int, field: int, dims: int) -> int:
    """Key layout: centre-major, fields = dims coordinates then count."""
    return center * (dims + 1) + field


def _chunk_table(
    pts: np.ndarray, centers: np.ndarray, k: int, dims: int
) -> Tuple[np.ndarray, np.ndarray]:
    """One chunk's block-accumulated ``<key, partial>`` table.

    Shared by the staged mapper and the fused kernel's host path, so
    fused and unfused runs perform the *same* float operations in the
    same order — the bit-parity contract rests on this sharing, not on
    two implementations happening to agree.
    """
    d2 = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    nearest = d2.argmin(axis=1).astype(np.int64)

    sums = np.zeros((k, dims), dtype=np.float64)
    np.add.at(sums, nearest, pts)
    counts = np.bincount(nearest, minlength=k).astype(np.float64)

    keys = np.empty(k * (dims + 1), dtype=np.uint32)
    values = np.empty(k * (dims + 1), dtype=np.float64)
    for c in range(k):
        for d in range(dims):
            keys[_key_of(c, d, dims)] = _key_of(c, d, dims)
            values[_key_of(c, d, dims)] = sums[c, d]
        keys[_key_of(c, dims, dims)] = _key_of(c, dims, dims)
        values[_key_of(c, dims, dims)] = counts[c]
    return keys, values


class KMCMapper(Mapper):
    """Persistent-thread distance map with block-level accumulation."""

    def __init__(self, centers: np.ndarray) -> None:
        self.centers = np.asarray(centers, dtype=np.float64)
        self.k, self.dims = self.centers.shape
        # Centres live in constant/shared memory; per-block pools in global.
        self.scratch_bytes = self.centers.nbytes + (1 << 20)

    def map_chunk(self, chunk: Chunk) -> KeyValueSet:
        keys, values = _chunk_table(chunk.data, self.centers, self.k, self.dims)
        # Block-reduced emissions are exact per chunk: scale=1 pair-wise
        # byte accounting happens at the accumulator table level.
        return KeyValueSet(keys=keys, values=values, scale=1.0)

    def map_cost(self, chunk: Chunk) -> List[KernelLaunch]:
        n = chunk.logical_items
        # Distance + argmin per point, plus the paper's "series of
        # reductions of all points belonging to C": K sequential
        # block-wide tree reductions (log2(block) steps each) in which
        # most warps idle — hence the heavy divergence de-rating.  This
        # matches the paper's observation that even after an ~8x map
        # optimisation, KMC map time (not transfer) dominates.
        block = 256
        flops_per_point = (
            3.0 * self.k * self.dims            # squared distances
            + self.k                             # argmin compares
            + 2.0 * self.k * np.log2(block)      # per-centre block reductions
        )
        return [
            launch_1d(
                "kmc_map_persistent",
                n,
                flops_per_item=flops_per_point,
                read_bytes_per_item=8.0 * self.dims,
                write_bytes_per_item=0.02,   # per-block pool writes
                items_per_thread=8,           # persistent threads
                coalescing=1.0,               # block-cooperative loads
                divergence=0.25,              # idle warps in the reduction series
                syncs=1,
            ),
            # Fold the per-block pools into the accumulator table.
            launch_1d(
                "kmc_pool_fold",
                self.k * (self.dims + 1) * 64,
                flops_per_item=1.0,
                read_bytes_per_item=8.0,
                write_bytes_per_item=8.0 / 64,
            ),
        ]

    def output_bytes_estimate(self, chunk: Chunk) -> int:
        return self.k * (self.dims + 1) * 12


class NaiveKMCMapper(Mapper):
    """The paper's *first* KMC port, kept for ablation A1.

    "The typical CPU implementation of the Map kernel reads one point
    P, finds the index of the closest center C, and emits
    <index(C), P>.  We implemented this in GPMR and saw poor results":
    thread-private point loads (uncoalesced), emitted pairs per point
    (far too much intermediate data), uncoalesced writes.  Emits
    ``<key(C, field), coordinate-or-count>`` so the same reducer and
    validation as the optimised pipeline apply.
    """

    def __init__(self, centers: np.ndarray) -> None:
        self.centers = np.asarray(centers, dtype=np.float64)
        self.k, self.dims = self.centers.shape
        self.scratch_bytes = self.centers.nbytes

    def map_chunk(self, chunk: Chunk) -> KeyValueSet:
        pts = chunk.data
        d2 = ((pts[:, None, :] - self.centers[None, :, :]) ** 2).sum(axis=2)
        nearest = d2.argmin(axis=1).astype(np.int64)
        dims = self.dims
        n = len(pts)
        # (dims + 1) pairs per point: the coordinates and a count of 1.
        keys = np.empty(n * (dims + 1), dtype=np.uint32)
        values = np.empty(n * (dims + 1), dtype=np.float64)
        for f in range(dims + 1):
            keys[f :: dims + 1] = (nearest * (dims + 1) + f).astype(np.uint32)
            values[f :: dims + 1] = pts[:, f] if f < dims else 1.0
        return KeyValueSet(keys=keys, values=values, scale=chunk.scale)

    def map_cost(self, chunk: Chunk) -> List[KernelLaunch]:
        n = chunk.logical_items
        return [
            launch_1d(
                "kmc_map_naive",
                n,
                flops_per_item=3.0 * self.k * self.dims + self.k,
                read_bytes_per_item=8.0 * self.dims,
                write_bytes_per_item=12.0 * (self.dims + 1),
                coalescing=0.25,   # thread-private loads, scattered emits
            )
        ]

    def output_bytes_estimate(self, chunk: Chunk) -> int:
        return chunk.logical_items * 12 * (self.dims + 1)


class FusedKMCMapper(FusedMapper):
    """Fused Lloyd step: distances, argmin, per-centre partial sums and
    the accumulator's scatter-add collapse into one call per chunk.

    The per-rank state is the accumulator table's value vector
    (``k * (dims + 1)`` float64), kept namespace-resident across
    chunks; nothing is emitted until :meth:`finish_state`, which posts
    the same ``<arange key, total>`` table the staged
    ``KMCMapper + SumAccumulator`` pipeline posts.  On the host tier
    the per-chunk table comes from the same :func:`_chunk_table` the
    staged mapper uses and folds in with the same ``np.add.at``, so
    fused output is bit-identical to unfused.
    """

    def __init__(self, centers: np.ndarray) -> None:
        self.centers = np.asarray(centers, dtype=np.float64)
        self.k, self.dims = self.centers.shape
        self.n_keys = self.k * (self.dims + 1)
        self._device_centers = None

    def initial_state(self, ns: ArrayNamespace):
        return ns.zeros(self.n_keys, dtype=np.float64)

    def map_reduce_chunk(self, chunk: Chunk, state, ns: ArrayNamespace):
        if ns.is_host:
            keys, values = _chunk_table(
                chunk.data, self.centers, self.k, self.dims
            )
            # Exactly SumAccumulator.accumulate's fold.
            ns.add_at(state, keys, values)
            return state, None
        if self._device_centers is None:
            self._device_centers = ns.from_host(self.centers)
        pts = ns.from_host(np.asarray(chunk.data, dtype=np.float64))
        centers = self._device_centers
        d2 = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        nearest = ns.argmin(d2, axis=1)
        sums = ns.zeros((self.k, self.dims), dtype=np.float64)
        ns.add_at(sums, nearest, pts)
        counts = ns.astype(
            ns.bincount(nearest, minlength=self.k), np.float64
        )
        table = ns.concatenate([sums, counts.reshape(self.k, 1)], axis=1)
        return state + table.reshape(-1), None

    def finish_state(self, state, ns: ArrayNamespace):
        return KeyValueSet(
            keys=ns.arange(self.n_keys, dtype=np.uint32),
            values=state,
            scale=1.0,
        )


class KMCReducer(Reducer):
    """Thread-per-key sum of the per-GPU partial values."""

    def reduce_segments(self, keys, values, offsets, counts, scale) -> KeyValueSet:
        sums = segmented_reduce(values, offsets)
        return KeyValueSet(keys=keys, values=sums, scale=scale)

    def reduce_cost(self, n_values: int, n_keys: int) -> List[KernelLaunch]:
        return [
            launch_1d(
                "kmc_reduce",
                n_values,
                flops_per_item=1.0,
                read_bytes_per_item=12.0,
                write_bytes_per_item=12.0 * n_keys / max(n_values, 1),
                coalescing=0.5,
            )
        ]


class CenterPartitioner(Partitioner):
    """All keys of a centre go to one GPU (paper's KMC partitioner)."""

    def __init__(self, dims: int) -> None:
        self.dims = dims

    def partition(self, kv: KeyValueSet, n_parts: int) -> np.ndarray:
        centers = kv.keys // np.uint32(self.dims + 1)
        return (centers % np.uint32(n_parts)).astype(np.int64)


def kmc_dataset(
    n_points: int,
    n_centers: int = 32,
    dims: int = 2,
    chunk_points: int = 4 << 20,
    seed: int = 0,
    sample_factor: int = 1,
) -> KMeansDataset:
    """The paper's KMC input: 16-byte elements (2-D double points)."""
    return KMeansDataset(
        n_points=n_points,
        n_centers=n_centers,
        dims=dims,
        chunk_points=chunk_points,
        seed=seed,
        sample_factor=sample_factor,
    )


def kmc_job(
    dataset: KMeansDataset,
    centers: np.ndarray = None,
    use_accumulation: bool = True,
) -> MapReduceJob:
    """One KMC MapReduce iteration from ``centers`` (default: the fixed
    random start centres, as the paper's benchmark does).

    ``use_accumulation=False`` selects the paper's first emit-per-point
    port (ablation A1: "dramatically worse performance ... before
    implementing Accumulation; all three had similar characteristics to
    SIO").
    """
    if centers is None:
        centers = dataset.start_centers()
    k, dims = centers.shape
    n_keys = k * (dims + 1)
    key_bits = max(int(np.ceil(np.log2(n_keys))) + 1, 8)
    if use_accumulation:
        mapper = KMCMapper(centers)
        accumulator = SumAccumulator(
            n_keys, value_dtype=np.float64, use_atomics=False  # no FP atomics
        )
        fused = FusedKMCMapper(centers)
    else:
        mapper = NaiveKMCMapper(centers)
        accumulator = None
        # The fused kernel is the accumulation pipeline collapsed into
        # one call; the naive per-point port has no fused analogue.
        fused = None
    return MapReduceJob(
        name="k-means" if use_accumulation else "k-means-naive",
        mapper=mapper,
        reducer=KMCReducer(),
        partitioner=CenterPartitioner(dims),
        accumulator=accumulator,
        fused=fused,
        sorter=RadixSorter(key_bits=key_bits),
        key_bytes=4,
        value_bytes=8,
        key_bits=key_bits,
    )


def kmc_extract_centers(
    result: JobResult, k: int, dims: int, old_centers: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Rebuild the new centres (and member counts) from reduce output."""
    table = np.zeros(k * (dims + 1), dtype=np.float64)
    merged = result.merged()
    np.add.at(table, merged.keys.astype(np.int64), merged.values)
    sums = table.reshape(k, dims + 1)[:, :dims]
    counts = table.reshape(k, dims + 1)[:, dims]
    new_centers = old_centers.copy()
    nonzero = counts > 0
    new_centers[nonzero] = sums[nonzero] / counts[nonzero, None]
    return new_centers, counts.astype(np.int64)


def kmc_validate(result: JobResult, dataset: KMeansDataset) -> None:
    """Check one GPMR iteration against the serial Lloyd step."""
    from ..baselines.serial import kmeans_step

    start = dataset.start_centers()
    expected_centers, expected_counts = kmeans_step(dataset, start)
    got_centers, got_counts = kmc_extract_centers(
        result, dataset.n_centers, dataset.dims, start
    )
    np.testing.assert_allclose(got_centers, expected_centers, rtol=1e-9)
    np.testing.assert_array_equal(got_counts, expected_counts)


# -- baseline descriptors ---------------------------------------------------

def kmc_phoenix_workload(dataset: KMeansDataset) -> PhoenixWorkload:
    """Phoenix KMC: distance loop per point (SSE-friendly), per-point
    emit of <centre, point> through the runtime."""
    k, dims = dataset.n_centers, dataset.dims
    return PhoenixWorkload(
        name="kmc",
        n_items=dataset.n_points,
        map_flops_per_item=3.0 * k * dims + k,
        map_bytes_per_item=8.0 * dims,
        # Phoenix KMC accumulates into thread-local tables and
        # merges at the end: grouped pair volume is per-worker, tiny.
        emits_per_item=16.0 * k / dataset.n_points,
        pair_bytes=4 + 8 * dims,
        n_unique_keys=k,
        reduce_flops_per_pair=float(dims),
        flops_efficiency=0.45,
        group_cost_per_pair=5e-8,
    )


def kmc_mars_workload(dataset: KMeansDataset) -> MarsWorkload:
    """Mars KMC: thread-per-point map emitting <centre, point>, then a
    bitonic sort of every point-sized pair — the design GPMR's
    accumulation makes unnecessary (hence the ~37x in Table 3)."""
    n = dataset.n_points
    k, dims = dataset.n_centers, dataset.dims
    pair = 4 + 8 * dims + 8  # key + point + Mars directory entry
    return MarsWorkload(
        name="kmc",
        input_bytes=n * 8 * dims,
        n_items=n,
        map_launches=[
            launch_1d(
                "mars_kmc_map",
                n,
                flops_per_item=3.0 * k * dims + k,
                read_bytes_per_item=8.0 * dims,
                write_bytes_per_item=float(pair),
                coalescing=0.3,      # thread-private point loads
            )
        ],
        n_pairs=n,
        pair_bytes=pair,
        key_bits=32,
        reduce_launches=[
            launch_1d(
                "mars_kmc_reduce",
                n,
                flops_per_item=float(dims),
                read_bytes_per_item=float(pair - 16),
                coalescing=0.5,
            )
        ],
        output_bytes=k * (dims + 1) * 12,
    )


def run_kmc(
    n_gpus: int,
    dataset: KMeansDataset,
    *,
    backend: str = "sim",
    schedule=None,
    use_accumulation: bool = True,
    **executor_kwargs,
) -> JobResult:
    """Convenience: run one KMC iteration on ``n_gpus`` workers."""
    return make_executor(backend, n_gpus, **executor_kwargs).run(
        kmc_job(dataset, use_accumulation=use_accumulation),
        dataset,
        schedule=schedule,
    )

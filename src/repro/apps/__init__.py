"""The paper's five benchmark applications (S12), on the GPMR public API.

Each app module provides: the Mapper/Reducer implementations with their
kernel cost descriptors, a ``*_job`` factory, a ``*_dataset`` factory,
a ``*_validate`` oracle check, ``run_*`` conveniences, and the Phoenix
and Mars workload descriptors used by Tables 2 and 3.

Every ``run_*`` convenience shares one uniform signature —
``run_x(n_gpus, dataset, *, backend="sim", schedule=None,
<app-specific keywords>, **executor_kwargs)`` — and :data:`APPS` maps
the paper's app names to those runners so harness code dispatches by
registry instead of if/elif chains.
"""

from dataclasses import dataclass
from typing import Callable

from .kmeans import (
    CenterPartitioner,
    KMCMapper,
    NaiveKMCMapper,
    KMCReducer,
    kmc_dataset,
    kmc_extract_centers,
    kmc_job,
    kmc_mars_workload,
    kmc_phoenix_workload,
    kmc_validate,
    run_kmc,
)
from .linear_regression import (
    LR_KEYS,
    LRMapper,
    NaiveLRMapper,
    LRReducer,
    lr_dataset,
    lr_extract_sums,
    lr_fit,
    lr_job,
    lr_mars_workload,
    lr_phoenix_workload,
    lr_validate,
    run_lr,
)
from .matmul import (
    MMPhase1Mapper,
    MMPhase2Mapper,
    MMResult,
    mm_dataset,
    mm_mars_workload,
    mm_phase1_job,
    mm_phase2_job,
    mm_phoenix_workload,
    mm_validate,
    run_matmul,
)
from .sparse_int_occurrence import (
    SIOMapper,
    SIOReducer,
    run_sio,
    sio_dataset,
    sio_job,
    sio_mars_workload,
    sio_phoenix_workload,
    sio_validate,
)
from .word_occurrence import (
    PARTITIONER_THRESHOLD,
    WOMapper,
    WOThreadReducer,
    WOWarpReducer,
    run_wo,
    wo_dataset,
    wo_job,
    wo_mars_workload,
    wo_mph,
    wo_phoenix_workload,
    wo_validate,
)



@dataclass(frozen=True)
class AppSpec:
    """One registry entry: how to run, size, and feed a benchmark app."""

    #: the uniform ``run_*`` convenience for this app
    runner: Callable
    #: dataset -> problem size (the scaling plots' x-axis)
    size_of: Callable
    #: the app's ``*_dataset`` factory (deterministic: same keyword
    #: spec, same data) — the job service builds and caches datasets
    #: through this, keyed on ``(app, spec)``, so repeat traffic
    #: skips ingest
    dataset: Callable


#: The paper's five apps, by their Table-1 names.  Harness code
#: dispatches through this instead of hard-coding the app list; adding
#: an app means registering it here.
APPS = {
    "SIO": AppSpec(run_sio, lambda ds: ds.n_elements, sio_dataset),
    "WO": AppSpec(run_wo, lambda ds: ds.n_chars, wo_dataset),
    "KMC": AppSpec(run_kmc, lambda ds: ds.n_points, kmc_dataset),
    "LR": AppSpec(run_lr, lambda ds: ds.n_points, lr_dataset),
    "MM": AppSpec(run_matmul, lambda ds: ds.m, mm_dataset),
}

__all__ = [
    "APPS", "AppSpec",
    # SIO
    "SIOMapper", "SIOReducer", "sio_job", "sio_dataset", "sio_validate",
    "sio_phoenix_workload", "sio_mars_workload", "run_sio",
    # WO
    "WOMapper", "WOWarpReducer", "WOThreadReducer", "wo_job", "wo_dataset",
    "wo_validate", "wo_mph", "wo_phoenix_workload", "wo_mars_workload",
    "run_wo", "PARTITIONER_THRESHOLD",
    # KMC
    "KMCMapper", "NaiveKMCMapper", "KMCReducer", "CenterPartitioner", "kmc_job", "kmc_dataset",
    "kmc_extract_centers", "kmc_validate", "kmc_phoenix_workload",
    "kmc_mars_workload", "run_kmc",
    # LR
    "LRMapper", "NaiveLRMapper", "LRReducer", "LR_KEYS", "lr_job", "lr_dataset",
    "lr_extract_sums", "lr_fit", "lr_validate", "lr_phoenix_workload",
    "lr_mars_workload", "run_lr",
    # MM
    "MMPhase1Mapper", "MMPhase2Mapper", "MMResult", "mm_dataset",
    "mm_phase1_job", "mm_phase2_job", "run_matmul", "mm_validate",
    "mm_phoenix_workload", "mm_mars_workload",
]

"""Word Occurrence (WO) — paper Section 5.3.3.

Counts word occurrences in random dictionary text.  The paper's design
decisions, all reproduced here:

* strings must not be GPU keys: a **minimal perfect hash** maps each of
  the 43k dictionary words to a unique 4-byte integer;
* the mapper gives each thread one line of text, scans for words, and
  emits ``<hash(W), 1>`` — with **Accumulation**: an initial map emits
  all 43k keys with value 0, then every emission is a "fire-and-forget
  atomic" increment into the resident table, almost eliminating
  communication;
* **no partitioner below a GPU-count threshold** (a single reduce
  kernel handles 43k keys), switching to the default round-robin
  partitioner "once the number of GPUs crosses a certain threshold";
* the reducer assigns each key to a **warp** (not a thread): the warp
  reads its value run coalesced and finishes with a warp-wide
  reduction, an order of magnitude faster than thread-per-key — both
  variants are implemented for the ablation bench.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

import numpy as np

from ..accel import ArrayNamespace, FusedMapper
from ..baselines.mars import MarsWorkload
from ..baselines.phoenix import PhoenixWorkload
from ..core import (
    KeyValueSet,
    MapReduceJob,
    Mapper,
    Reducer,
    RoundRobinPartitioner,
    SumAccumulator,
    make_executor,
)
from ..core.chunk import Chunk
from ..core.runtime import JobResult
from ..core.sorter import RadixSorter
from ..hashing import MinimalPerfectHash, segmented_poly_hashes
from ..hw.kernel import KernelLaunch
from ..primitives import launch_1d, segmented_reduce
from ..workloads import DICTIONARY_WORDS, TextDataset, build_dictionary, tokenize

__all__ = [
    "WOMapper",
    "FusedWOMapper",
    "WOWarpReducer",
    "WOThreadReducer",
    "wo_mph",
    "wo_job",
    "wo_dataset",
    "wo_validate",
    "wo_phoenix_workload",
    "wo_mars_workload",
    "PARTITIONER_THRESHOLD",
]

PAIR_BYTES = 8          # 4-byte hash key + 4-byte count
MEAN_WORD_CHARS = 6.7   # dictionary average word length + separator

#: GPU count beyond which the round-robin partitioner is enabled
#: ("once the number of GPUs crosses a certain threshold, key-value
#: pair communication bottlenecks the job").
PARTITIONER_THRESHOLD = 8


@lru_cache(maxsize=2)
def wo_mph(n_words: int = DICTIONARY_WORDS) -> MinimalPerfectHash:
    """The job's minimal perfect hash over the corpus dictionary."""
    return MinimalPerfectHash.build(list(build_dictionary(n_words)))


class WOMapper(Mapper):
    """Line-per-thread scan, MPH hash, atomic-increment emissions."""

    def __init__(self, mph: MinimalPerfectHash) -> None:
        self.mph = mph
        # The displacement table ships to the GPU once per chunk batch.
        self.scratch_bytes = mph.table_bytes

    def map_chunk(self, chunk: Chunk) -> KeyValueSet:
        text = chunk.data
        starts, lengths = tokenize(text)
        if len(starts) == 0:
            return KeyValueSet.empty(value_dtype=np.int64, scale=chunk.scale)
        hashes = segmented_poly_hashes(text, starts, lengths)
        slots = self.mph.lookup_hashes(hashes)
        return KeyValueSet(
            keys=slots.astype(np.uint32),
            values=np.ones(len(slots), dtype=np.int64),
            scale=chunk.scale,
        )

    def map_cost(self, chunk: Chunk) -> List[KernelLaunch]:
        n_chars = chunk.logical_items
        n_words = int(n_chars / MEAN_WORD_CHARS)
        return [
            launch_1d(
                "wo_map_scan_hash",
                n_chars,
                flops_per_item=4.0,          # scan + 3 poly-hash streams
                read_bytes_per_item=1.0,
                write_bytes_per_item=0.0,    # emissions are atomics (below)
                items_per_thread=96,          # one line of text per thread
                coalescing=0.5,               # threads start at line offsets
                divergence=0.7,               # variable word/line lengths
            ),
            launch_1d(
                "wo_emit_atomics",
                n_words,
                flops_per_item=1.0,
                read_bytes_per_item=4.0,      # MPH displacement lookup
                atomics_per_item=1.0,         # fire-and-forget increment
                atomic_conflict=1.2,          # 43k counters: rare collisions
            ),
        ]

    def output_bytes_estimate(self, chunk: Chunk) -> int:
        # Emissions go straight into the accumulator table; transient
        # buffers only hold per-block staging.
        return 1 << 20


class FusedWOMapper(FusedMapper):
    """Scan + hash + count fused into one call per chunk.

    The per-rank state is the 43k-slot count table (the accumulator's
    resident table), updated with one ``bincount`` per chunk — integer
    arithmetic, so bit-identical to the staged
    ``WOMapper + SumAccumulator`` path that scatter-adds a 1 per
    emission.  Tokenising and the MPH lookup stay host-side on every
    tier (text never ships to the device); only the count table is
    namespace-resident.
    """

    def __init__(self, mph: MinimalPerfectHash, n_words: int) -> None:
        self.mph = mph
        self.n_words = n_words

    def initial_state(self, ns: ArrayNamespace):
        return ns.zeros(self.n_words, dtype=np.int64)

    def map_reduce_chunk(self, chunk: Chunk, state, ns: ArrayNamespace):
        text = chunk.data
        starts, lengths = tokenize(text)
        if len(starts) == 0:
            return state, None
        hashes = segmented_poly_hashes(text, starts, lengths)
        slots = self.mph.lookup_hashes(hashes).astype(np.uint32)
        if ns.is_host:
            state += np.bincount(slots, minlength=self.n_words).astype(np.int64)
            return state, None
        counts = ns.bincount(ns.from_host(slots), minlength=self.n_words)
        return state + ns.astype(counts, np.int64), None

    def finish_state(self, state, ns: ArrayNamespace):
        return KeyValueSet(
            keys=ns.arange(self.n_words, dtype=np.uint32),
            values=state,
            scale=1.0,
        )


class WOWarpReducer(Reducer):
    """Warp-per-key: coalesced value reads + warp-wide reduction."""

    def reduce_segments(self, keys, values, offsets, counts, scale) -> KeyValueSet:
        sums = segmented_reduce(values.astype(np.int64), offsets)
        return KeyValueSet(keys=keys, values=sums, scale=scale)

    def reduce_cost(self, n_values: int, n_keys: int) -> List[KernelLaunch]:
        return [
            launch_1d(
                "wo_reduce_warp",
                n_values,
                flops_per_item=1.0,
                read_bytes_per_item=8.0,
                write_bytes_per_item=8.0 * n_keys / max(n_values, 1),
                coalescing=1.0,     # the whole point of warp-per-key
                items_per_thread=1,
                syncs=1,            # warp-wide reduction epilogue
            )
        ]


class WOThreadReducer(Reducer):
    """Thread-per-key: the paper's first, slower attempt (ablation A4).

    "The reads are not coalesced, and each thread has to wait a
    (relatively) long time for each read to finish."
    """

    def reduce_segments(self, keys, values, offsets, counts, scale) -> KeyValueSet:
        sums = segmented_reduce(values.astype(np.int64), offsets)
        return KeyValueSet(keys=keys, values=sums, scale=scale)

    def reduce_cost(self, n_values: int, n_keys: int) -> List[KernelLaunch]:
        return [
            launch_1d(
                "wo_reduce_thread",
                n_values,
                flops_per_item=1.0,
                read_bytes_per_item=8.0,
                write_bytes_per_item=8.0 * n_keys / max(n_values, 1),
                coalescing=0.08,    # serial strided reads per thread
                divergence=0.6,
            )
        ]


def wo_dataset(
    n_chars: int,
    chunk_chars: int = 8 << 20,   # "each chunk contains millions of bytes"
    seed: int = 0,
    sample_factor: int = 1,
    n_words: int = DICTIONARY_WORDS,
) -> TextDataset:
    """The paper's WO input: random dictionary text, 1-byte elements."""
    return TextDataset(
        n_chars=n_chars,
        chunk_chars=chunk_chars,
        n_words=n_words,
        seed=seed,
        sample_factor=sample_factor,
    )


def wo_job(
    n_gpus: int,
    n_words: int = DICTIONARY_WORDS,
    use_accumulation: bool = True,
    warp_reducer: bool = True,
    partitioner_threshold: int = PARTITIONER_THRESHOLD,
) -> MapReduceJob:
    """The WO pipeline, with the paper's GPU-count-dependent partitioner.

    ``use_accumulation=False`` reproduces the pre-Accumulation variant
    the paper describes as dramatically worse (ablation A1).
    """
    mph = wo_mph(n_words)
    partitioner = (
        RoundRobinPartitioner() if n_gpus > partitioner_threshold else None
    )
    reducer = WOWarpReducer() if warp_reducer else WOThreadReducer()
    key_bits = max(int(np.ceil(np.log2(n_words))) + 1, 8)
    return MapReduceJob(
        name="word-occurrence",
        mapper=WOMapper(mph),
        reducer=reducer,
        partitioner=partitioner,
        accumulator=(
            SumAccumulator(n_words, value_dtype=np.int64, use_atomics=True)
            if use_accumulation
            else None
        ),
        # Fused analogue of the accumulation pipeline only; the raw
        # emit-per-word variant has none.
        fused=FusedWOMapper(mph, n_words) if use_accumulation else None,
        sorter=RadixSorter(key_bits=key_bits),
        key_bytes=4,
        value_bytes=4,
        key_bits=key_bits,
    )


def wo_validate(result: JobResult, dataset: TextDataset) -> None:
    """Check counts against the MPH-slot oracle over the sampled corpus."""
    from ..baselines.serial import word_counts

    mph = wo_mph(len(dataset.dictionary))
    expected = word_counts(dataset, mph)
    got = np.zeros(mph.n, dtype=np.int64)
    merged = result.merged()
    np.add.at(got, merged.keys.astype(np.int64), merged.values.astype(np.int64))
    np.testing.assert_array_equal(got, expected)


# -- baseline descriptors ---------------------------------------------------

def wo_phoenix_workload(dataset: TextDataset) -> PhoenixWorkload:
    """Phoenix WO: per-word emit + hash grouping; string handling on the
    CPU is byte-at-a-time, so the map is latency-heavy."""
    return PhoenixWorkload(
        name="wo",
        n_items=dataset.n_chars,
        map_flops_per_item=4.0,      # scan + hash per character
        map_bytes_per_item=1.0,
        emits_per_item=1.0 / MEAN_WORD_CHARS,
        pair_bytes=PAIR_BYTES + 8,   # Phoenix keeps word pointers too
        n_unique_keys=len(dataset.dictionary),
        reduce_flops_per_pair=1.0,
        flops_efficiency=0.06,       # byte-wise scanning, branchy
        group_cost_per_pair=1.5e-7,  # string compare + realloc on hash hit
    )


def wo_mars_workload(dataset: TextDataset) -> MarsWorkload:
    """Mars WO: two-pass map over the text, then a bitonic sort of one
    pair per word (no accumulation support)."""
    n_chars = dataset.n_chars
    n_words = dataset.words_in_logical_chars(n_chars)
    return MarsWorkload(
        name="wo",
        input_bytes=n_chars,
        n_items=n_words,
        map_launches=[
            launch_1d(
                "mars_wo_map",
                n_chars,
                flops_per_item=4.0,
                read_bytes_per_item=1.0,
                write_bytes_per_item=(PAIR_BYTES + 8) / MEAN_WORD_CHARS,
                items_per_thread=96,
                coalescing=0.5,
                divergence=0.7,
            )
        ],
        n_pairs=n_words,
        pair_bytes=PAIR_BYTES + 8,
        key_bits=32,
        reduce_launches=[
            launch_1d(
                "mars_wo_reduce",
                n_words,
                flops_per_item=1.0,
                read_bytes_per_item=float(PAIR_BYTES),
                coalescing=0.25,
            )
        ],
        output_bytes=len(dataset.dictionary) * PAIR_BYTES,
    )


def run_wo(
    n_gpus: int,
    dataset: TextDataset,
    *,
    backend: str = "sim",
    schedule=None,
    use_accumulation: bool = True,
    warp_reducer: bool = True,
    partitioner_threshold: int = PARTITIONER_THRESHOLD,
    **executor_kwargs,
) -> JobResult:
    """Convenience: run WO on ``n_gpus`` workers of ``backend``.

    The uniform runner signature shared by every app: ``backend`` /
    ``schedule`` plus WO's own :func:`wo_job` knobs as keywords, with
    ``**executor_kwargs`` going to the backend factory verbatim.
    """
    job = wo_job(
        n_gpus,
        n_words=len(dataset.dictionary),
        use_accumulation=use_accumulation,
        warp_reducer=warp_reducer,
        partitioner_threshold=partitioner_threshold,
    )
    return make_executor(backend, n_gpus, **executor_kwargs).run(
        job, dataset, schedule=schedule
    )

"""Sparse Integer Occurrence (SIO) — paper Section 5.3.2.

Counts occurrences of each integer in a uniformly random sequence.
Implementation choices follow the paper exactly:

* the mapper reads **two integers per thread** ("to efficiently access
  GPU memory") and emits ``<I, 1>`` per integer;
* **no Partial Reduction or Accumulation** ("they yield no speedup with
  our intermediate data") and **no Combine** ("it causes slowdown") —
  sparse keys do not compact;
* default round-robin partitioner and default radix sort;
* the reducer is **one key per thread**, summing its values ("our
  final and best implementation of the reducer is the same as the CPU
  approach") — the block-per-key variant lost because most keys have
  fewer than five values.

SIO stresses "many key-value pairs": intermediate data is 2x the input
and cannot shrink, so the job rides the PCI-e bus, the network, and the
sort.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from ..accel import ArrayNamespace, FusedMapper
from ..baselines.mars import MarsWorkload
from ..baselines.phoenix import PhoenixWorkload
from ..core import (
    KeyValueSet,
    MapReduceJob,
    Mapper,
    Reducer,
    RoundRobinPartitioner,
    make_executor,
)
from ..core.combine import combine_by_key_sum
from ..core.chunk import Chunk
from ..core.runtime import JobResult
from ..hw.kernel import KernelLaunch
from ..primitives import launch_1d, segmented_reduce
from ..workloads import IntegerDataset

__all__ = [
    "SIOMapper",
    "FusedSIOMapper",
    "SIOReducer",
    "sio_job",
    "sio_dataset",
    "sio_validate",
    "sio_phoenix_workload",
    "sio_mars_workload",
]

PAIR_BYTES = 8  # 4-byte key + 4-byte count


class SIOMapper(Mapper):
    """Each thread reads two integers and emits ``<I, 1>`` for each.

    ``sleep_per_chunk`` (seconds, default 0) is a load-balancing test
    hook: an artificial per-chunk delay that widens the window in which
    idle peers can steal from a loaded rank.  It slows the *functional*
    map only — the modeled kernel cost is unchanged.
    """

    def __init__(self, sleep_per_chunk: float = 0.0) -> None:
        self.sleep_per_chunk = float(sleep_per_chunk)

    def map_chunk(self, chunk: Chunk) -> KeyValueSet:
        if self.sleep_per_chunk:
            time.sleep(self.sleep_per_chunk)
        data = chunk.data
        return KeyValueSet(
            keys=data.astype(np.uint32),
            values=np.ones(len(data), dtype=np.int32),
            scale=chunk.scale,
        )

    def map_cost(self, chunk: Chunk) -> List[KernelLaunch]:
        n = chunk.logical_items
        return [
            launch_1d(
                "sio_map",
                n,
                flops_per_item=1.0,
                read_bytes_per_item=4.0,
                write_bytes_per_item=8.0,   # key + value out
                items_per_thread=2,          # two integers per thread
                coalescing=1.0,
            )
        ]

    def output_bytes_estimate(self, chunk: Chunk) -> int:
        return chunk.logical_items * PAIR_BYTES


class FusedSIOMapper(FusedMapper):
    """Map + per-chunk combine in one call: sort/compact each chunk's
    pairs before they leave the map kernel.

    SIO carries no rank-resident state (sparse keys do not compact
    across chunks — the paper's reason for skipping Accumulation), so
    the fusion win is *emission volume*: like keys inside a chunk merge
    before partitioning, shrinking shuffle bytes while the reducer's
    integer sums stay exact.  The host path delegates to the staged
    mapper (honouring its ``sleep_per_chunk`` hook) and the vectorised
    combine oracle; the device path runs the same sort → segment →
    sum through the namespace.
    """

    def __init__(self, mapper: SIOMapper, key_bits: int) -> None:
        self.mapper = mapper
        self.key_bits = int(key_bits)

    def map_reduce_chunk(self, chunk: Chunk, state, ns: ArrayNamespace):
        kv = self.mapper.map_chunk(chunk)
        if len(kv) == 0:
            return state, None
        if ns.is_host:
            return state, combine_by_key_sum(kv)
        keys, values = ns.sort_pairs(
            ns.from_host(kv.keys), ns.from_host(kv.values), key_bits=self.key_bits
        )
        runs = ns.unique_segments(keys)
        summed = ns.segmented_reduce(values, runs.offsets, op="sum")
        return state, KeyValueSet(
            keys=runs.unique_keys, values=summed, scale=kv.scale
        )


class SIOReducer(Reducer):
    """One key per thread; the thread sums all its values."""

    def reduce_segments(self, keys, values, offsets, counts, scale) -> KeyValueSet:
        sums = segmented_reduce(values.astype(np.int64), offsets)
        return KeyValueSet(keys=keys, values=sums, scale=scale)

    def reduce_cost(self, n_values: int, n_keys: int) -> List[KernelLaunch]:
        return [
            launch_1d(
                "sio_reduce",
                n_values,
                flops_per_item=1.0,
                read_bytes_per_item=4.0,
                write_bytes_per_item=8.0 * n_keys / max(n_values, 1),
                # Thread-per-key reads its run serially: uncoalesced.
                coalescing=0.25,
                divergence=0.8,  # variable run lengths
            )
        ]


def sio_dataset(
    n_elements: int,
    chunk_elements: int = 16 << 20,
    key_space: int = 1 << 28,
    seed: int = 0,
    sample_factor: int = 1,
) -> IntegerDataset:
    """The paper's SIO input: uniform random 4-byte integers."""
    return IntegerDataset(
        n_elements=n_elements,
        chunk_elements=chunk_elements,
        key_space=key_space,
        seed=seed,
        sample_factor=sample_factor,
    )


def sio_job(key_space: int = 1 << 28, map_sleep_seconds: float = 0.0) -> MapReduceJob:
    """The SIO pipeline: plain map -> partition -> sort -> reduce.

    ``map_sleep_seconds`` feeds :class:`SIOMapper`'s per-chunk delay
    hook (load-balancing tests only; 0 for real runs).
    """
    mapper = SIOMapper(sleep_per_chunk=map_sleep_seconds)
    key_bits = max(int(np.ceil(np.log2(key_space))), 1)
    return MapReduceJob(
        name="sparse-integer-occurrence",
        mapper=mapper,
        reducer=SIOReducer(),
        partitioner=RoundRobinPartitioner(),
        # Per-chunk combine fusion: like keys merge before the shuffle.
        fused=FusedSIOMapper(mapper, key_bits),
        key_bytes=4,
        value_bytes=4,
        key_bits=key_bits,
    )


def sio_validate(result: JobResult, dataset: IntegerDataset) -> None:
    """Check GPMR's counts against the dense bincount oracle."""
    from ..baselines.serial import integer_counts

    expected = integer_counts(dataset)
    got = np.zeros(dataset.key_space, dtype=np.int64)
    merged = result.merged()
    np.add.at(got, merged.keys.astype(np.int64), merged.values.astype(np.int64))
    np.testing.assert_array_equal(got, expected)


# -- baseline descriptors -----------------------------------------------------

def sio_phoenix_workload(dataset: IntegerDataset) -> PhoenixWorkload:
    """Phoenix SIO: per-item emit through the runtime's function-pointer
    API, hash-table grouping per pair — grouping dominates."""
    return PhoenixWorkload(
        name="sio",
        n_items=dataset.n_elements,
        map_flops_per_item=2.0,
        map_bytes_per_item=4.0,
        emits_per_item=1.0,
        pair_bytes=PAIR_BYTES,
        n_unique_keys=min(dataset.n_elements, dataset.key_space),
        reduce_flops_per_pair=1.0,
        flops_efficiency=0.5,
        group_cost_per_pair=6e-8,
    )


def sio_mars_workload(dataset: IntegerDataset) -> MarsWorkload:
    """Mars SIO: two-pass map, then a bitonic sort of every pair.

    Mars's record directory adds 8 bytes of (offset, size) metadata
    per pair on top of the payload.
    """
    n = dataset.n_elements
    return MarsWorkload(
        name="sio",
        input_bytes=n * 4,
        n_items=n,
        map_launches=[
            launch_1d(
                "mars_sio_map",
                n,
                flops_per_item=1.0,
                read_bytes_per_item=4.0,
                write_bytes_per_item=float(PAIR_BYTES + 8),
                coalescing=0.8,
            )
        ],
        n_pairs=n,
        pair_bytes=PAIR_BYTES + 8,
        key_bits=32,
        reduce_launches=[
            launch_1d(
                "mars_sio_reduce",
                n,
                flops_per_item=1.0,
                read_bytes_per_item=float(PAIR_BYTES),
                coalescing=0.25,
            )
        ],
        output_bytes=min(n, dataset.key_space) * PAIR_BYTES,
    )


def run_sio(
    n_gpus: int,
    dataset: IntegerDataset,
    *,
    backend: str = "sim",
    schedule=None,
    **executor_kwargs,
) -> JobResult:
    """Convenience: run SIO on ``n_gpus`` workers of ``backend``."""
    return make_executor(backend, n_gpus, **executor_kwargs).run(
        sio_job(dataset.key_space), dataset, schedule=schedule
    )

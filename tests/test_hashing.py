"""Tests for the minimal perfect hash and vectorised string hashing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    MinimalPerfectHash,
    poly_hashes_bytes,
    segmented_poly_hashes,
)
from repro.workloads import build_dictionary


def pack_words(words):
    """Pack byte words into (data, starts, lengths) arrays."""
    data = np.frombuffer(b"".join(words), dtype=np.uint8)
    lengths = np.array([len(w) for w in words], dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(lengths[:-1]))).astype(np.int64)
    return data, starts, lengths


# -- base hashes ---------------------------------------------------------------

def test_poly_hashes_deterministic():
    a = poly_hashes_bytes([b"alpha", b"beta"])
    b = poly_hashes_bytes([b"alpha", b"beta"])
    np.testing.assert_array_equal(a.h1, b.h1)
    np.testing.assert_array_equal(a.h2, b.h2)
    np.testing.assert_array_equal(a.h3, b.h3)


def test_poly_hashes_distinguish_words():
    h = poly_hashes_bytes([b"alpha", b"alphb"])
    assert h.h1[0] != h.h1[1]


def test_segmented_hashes_match_scalar_path():
    words = [b"spelk", b"braid", b"x", b"longerwordhere"]
    data, starts, lengths = pack_words(words)
    seg = segmented_poly_hashes(data, starts, lengths)
    ref = poly_hashes_bytes(words)
    np.testing.assert_array_equal(seg.h1, ref.h1)
    np.testing.assert_array_equal(seg.h2, ref.h2)
    np.testing.assert_array_equal(seg.h3, ref.h3)


def test_segmented_hashes_empty_batch():
    seg = segmented_poly_hashes(np.empty(0, dtype=np.uint8), [], [])
    assert len(seg) == 0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.binary(min_size=1, max_size=20), min_size=1, max_size=30
    )
)
def test_property_segmented_matches_scalar(words):
    data, starts, lengths = pack_words(words)
    seg = segmented_poly_hashes(data, starts, lengths)
    ref = poly_hashes_bytes(words)
    np.testing.assert_array_equal(seg.h1, ref.h1)
    np.testing.assert_array_equal(seg.h2, ref.h2)
    np.testing.assert_array_equal(seg.h3, ref.h3)


# -- MPH -------------------------------------------------------------------

def test_mph_requires_unique_vocabulary():
    with pytest.raises(ValueError):
        MinimalPerfectHash.build([b"dup", b"dup"])


def test_mph_empty_vocabulary_rejected():
    with pytest.raises(ValueError):
        MinimalPerfectHash.build([])


def test_mph_small_vocab_is_minimal_and_perfect():
    words = [f"word{i}".encode() for i in range(100)]
    mph = MinimalPerfectHash.build(words)
    slots = mph.lookup_words(words)
    assert sorted(slots.tolist()) == list(range(100))


def test_mph_single_word():
    mph = MinimalPerfectHash.build([b"only"])
    assert mph.lookup_words([b"only"])[0] == 0


def test_mph_on_real_dictionary_subset():
    words = list(build_dictionary(5000))
    mph = MinimalPerfectHash.build(words)
    slots = mph.lookup_words(words)
    assert len(np.unique(slots)) == 5000
    assert slots.min() == 0 and slots.max() == 4999


def test_mph_vectorised_lookup_matches_wordwise():
    words = list(build_dictionary(2000))
    mph = MinimalPerfectHash.build(words)
    data, starts, lengths = pack_words(words)
    seg = segmented_poly_hashes(data, starts, lengths)
    np.testing.assert_array_equal(mph.lookup_hashes(seg), mph.lookup_words(words))


def test_mph_table_bytes_reasonable():
    # Paper: "43k integer-integer pairs requires less than 350 kB".
    words = list(build_dictionary(4300))
    mph = MinimalPerfectHash.build(words)
    assert mph.table_bytes <= 4300 * 8


@settings(max_examples=20, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=12), min_size=2, max_size=200))
def test_property_mph_is_bijective_on_vocab(word_set):
    words = sorted(word_set)
    mph = MinimalPerfectHash.build(words)
    slots = mph.lookup_words(words)
    assert sorted(slots.tolist()) == list(range(len(words)))


# -- dictionary ------------------------------------------------------------

def test_dictionary_size_and_uniqueness():
    d = build_dictionary(43_000)
    assert len(d) == 43_000
    assert len(set(d)) == 43_000


def test_dictionary_words_are_clean_ascii():
    for w in build_dictionary(1000):
        assert w.isalpha()
        assert 2 <= len(w) <= 16


def test_dictionary_is_deterministic():
    assert build_dictionary(500) == build_dictionary(500)

"""ClusterExecutor integration: the fabric under the real dataflow.

Parity of the cluster backend with sim/serial/local is enforced app by
app in ``tests/test_exec_parity.py``; this file covers what is specific
to the socket fabric — stats plumbing over the wire, the externally
launched rank path (``python -m repro.fabric.launch``, the multi-host
entry point, exercised here over localhost), and executor-level
configuration.
"""

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps.sparse_int_occurrence import sio_dataset, sio_job
from repro.core import (
    KeyValueSet,
    Mapper,
    MapReduceJob,
    RoundRobinPartitioner,
    make_executor,
)
from repro.exec import ClusterExecutor

REPO_ROOT = Path(__file__).resolve().parent.parent


def _job_and_dataset(seed=4):
    ds = sio_dataset(50_000, chunk_elements=8_000, key_space=1 << 14, seed=seed)
    job = sio_job(key_space=1 << 14).with_config(enable_stealing=False)
    return job, ds


def test_cluster_stats_are_populated():
    """Measured Figure-2 stage buckets survive the RESULT frame."""
    job, ds = _job_and_dataset()
    result = make_executor("cluster", 4).run(job, dataset=ds)
    stats = result.stats
    assert stats.elapsed > 0
    assert stats.total_chunks == ds.n_chunks
    assert stats.total_pairs_logical == ds.n_elements
    assert stats.total_network_bytes > 0
    assert len(stats.workers) == 4
    for w in stats.workers:
        assert w.stage_seconds.get("map", 0.0) >= 0.0
        assert "bin" in w.stage_seconds  # real exchange time was timed


def test_cluster_executor_registry_kwargs():
    ex = make_executor(
        "cluster", 3, timeout_seconds=45.0, start_method="spawn"
    )
    assert isinstance(ex, ClusterExecutor)
    assert ex.n_workers == 3
    assert ex.timeout_seconds == 45.0
    assert ex.start_method == "spawn"
    assert ex.coordinator_address is None  # only set while running


def test_cluster_externally_launched_ranks():
    """The multi-host path: ranks join via ``repro.fabric.launch``.

    The driver runs with ``spawn_ranks=False`` and each rank is a
    separate ``python -m repro.fabric.launch`` process dialing the
    coordinator — exactly what a two-terminal / two-host run does,
    minus the second host.
    """
    job, ds = _job_and_dataset(seed=8)
    n = 2
    ex = ClusterExecutor(n, spawn_ranks=False, timeout_seconds=60.0)
    holder = {}

    def _drive():
        try:
            holder["result"] = ex.run(job, dataset=ds)
        except BaseException as exc:  # surfaced in the main thread below
            holder["error"] = exc

    driver = threading.Thread(target=_drive, daemon=True)
    driver.start()
    deadline = time.monotonic() + 30.0
    while ex.coordinator_address is None and "error" not in holder:
        assert time.monotonic() < deadline, "coordinator never came up"
        time.sleep(0.01)
    assert "error" not in holder, holder.get("error")
    host, port = ex.coordinator_address

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    ranks = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.fabric.launch",
                "--coordinator", f"{host}:{port}",
                "--rank", str(r),
                "--listen-host", "127.0.0.1",
                "--timeout", "60",
            ],
            env=env,
        )
        for r in range(n)
    ]
    for p in ranks:
        assert p.wait(timeout=60.0) == 0
    driver.join(timeout=60.0)
    assert "error" not in holder, holder.get("error")

    ref = make_executor("serial", n).run(job, dataset=ds)
    got = holder["result"]
    for a, b in zip(ref.outputs, got.outputs):
        assert (a is None) == (b is None)
        if a is not None:
            assert a.values.tobytes() == b.values.tobytes()


def test_cluster_rank_never_arrives_times_out_fast():
    """A missing rank is a named TimeoutError (the same exception
    class the local backend's deadline raises), not an infinite hang."""
    job, ds = _job_and_dataset(seed=5)
    ex = ClusterExecutor(2, spawn_ranks=False, timeout_seconds=1.0)
    t0 = time.monotonic()
    with pytest.raises(TimeoutError, match="registration timed out"):
        ex.run(job, dataset=ds)
    assert time.monotonic() - t0 < 10.0


def test_cluster_wildcard_bind_still_dials_loopback():
    """host="0.0.0.0" (the multi-host bind) must not break locally
    spawned ranks — they dial loopback, not the wildcard."""
    job, ds = _job_and_dataset(seed=7)
    result = ClusterExecutor(
        2, host="0.0.0.0", timeout_seconds=60.0
    ).run(job, dataset=ds)
    ref = make_executor("serial", 2).run(job, dataset=ds)
    for a, b in zip(ref.outputs, result.outputs):
        assert (a is None) == (b is None)
        if a is not None:
            assert a.values.tobytes() == b.values.tobytes()


def test_cluster_frame_bound_is_enforced_end_to_end():
    """A max_frame_bytes too small for the ASSIGN payload fails loudly
    (bound plumbed driver -> coordinator -> ranks), not silently."""
    job, ds = _job_and_dataset(seed=6)
    ex = ClusterExecutor(2, max_frame_bytes=512, timeout_seconds=15.0)
    with pytest.raises(Exception, match="frame|max_frame_bytes|failed"):
        ex.run(job, dataset=ds)


class _FanoutMapper(Mapper):
    """Emits 32 pairs per input element: shuffle volume >> input volume,
    so the exchange batches blow past a frame bound the (small) control
    frames — ASSIGN in, reduced RESULT out — fit comfortably within."""

    def map_chunk(self, chunk):
        data = np.asarray(chunk.data).astype(np.uint32)
        keys = (np.repeat(data, 32) * np.uint32(2654435761)) % np.uint32(1 << 14)
        return KeyValueSet(
            keys=keys,
            values=np.ones(len(keys), dtype=np.int32),
            scale=chunk.scale,
        )

    def map_cost(self, chunk):  # pragma: no cover - never priced
        return []


def test_cluster_batch_larger_than_frame_bound_streams():
    """Protocol v1 died with FrameTooLarge when one shuffle batch beat
    max_frame_bytes; the streamed data plane must complete the run —
    bit-identically — through a bound the batches exceed many times."""
    from repro.apps.sparse_int_occurrence import SIOReducer

    ds = sio_dataset(16_000, chunk_elements=4_000, key_space=1 << 14, seed=21)
    job = MapReduceJob(
        name="fanout",
        mapper=_FanoutMapper(),
        reducer=SIOReducer(),
        partitioner=RoundRobinPartitioner(),
    ).with_config(enable_stealing=False)
    # 16000 * 32 pairs * 8 B over a 2x2 exchange: each (src, dst) batch
    # carries ~1 MiB against a 128 KiB frame bound, while the reduced
    # outputs (<= 8192 keys per rank) stay inside it.
    bound = 1 << 17
    got = ClusterExecutor(
        2, max_frame_bytes=bound, timeout_seconds=60.0
    ).run(job, dataset=ds)
    assert got.stats.total_network_bytes > 4 * bound  # batches really big
    ref = make_executor("serial", 2).run(job, dataset=ds)
    for a, b in zip(ref.outputs, got.outputs):
        assert (a is None) == (b is None)
        if a is not None:
            assert np.array_equal(a.keys, b.keys)
            assert a.values.tobytes() == b.values.tobytes()


def test_cluster_compressed_exchange_parity():
    """The zlib gate changes the wire encoding, never the results."""
    job, ds = _job_and_dataset(seed=9)
    got = ClusterExecutor(
        3, compress_exchange=True, timeout_seconds=60.0
    ).run(job, dataset=ds)
    ref = make_executor("serial", 3).run(job, dataset=ds)
    for a, b in zip(ref.outputs, got.outputs):
        assert (a is None) == (b is None)
        if a is not None:
            assert np.array_equal(a.keys, b.keys)
            assert a.values.tobytes() == b.values.tobytes()


def test_cluster_backend_with_auth_key_bit_identical():
    """A keyed cluster run: spawned ranks answer the coordinator's
    HMAC challenge and the outputs stay bit-identical to keyless."""
    job, ds = _job_and_dataset()
    ref = make_executor("cluster", 2).run(job, dataset=ds)
    got = make_executor("cluster", 2, auth_key=b"fabric-key").run(
        job, dataset=ds
    )
    for a, b in zip(ref.outputs, got.outputs):
        assert np.array_equal(a.keys, b.keys)
        assert a.values.tobytes() == b.values.tobytes()

"""Tests for shared utilities: units, rng, validation, meter."""

import numpy as np
import pytest

from repro.hw.meter import Meter
from repro.util import (
    check_in_range,
    check_non_negative,
    check_positive,
    child_generators,
    fmt_bytes,
    fmt_rate,
    fmt_time,
    generator,
    require,
)
from repro.util.units import GB, GIB, KB, KIB, MB, MIB


def test_unit_constants():
    assert KB == 1000 and KIB == 1024
    assert MB == 10**6 and MIB == 2**20
    assert GB == 10**9 and GIB == 2**30


def test_fmt_bytes():
    assert fmt_bytes(512) == "512.0 B"
    assert fmt_bytes(1536) == "1.5 KiB"
    assert fmt_bytes(3 * GIB) == "3.0 GiB"


def test_fmt_time():
    assert fmt_time(0) == "0 s"
    assert fmt_time(5e-9) == "5.0 ns"
    assert fmt_time(5e-6) == "5.0 us"
    assert fmt_time(5e-3) == "5.00 ms"
    assert fmt_time(5.0) == "5.000 s"


def test_fmt_rate():
    assert fmt_rate(2.8e9) == "2.8 GB/s"
    assert fmt_rate(500) == "500.0 B/s"


def test_generator_deterministic():
    a = generator(1).integers(0, 100, 10)
    b = generator(1).integers(0, 100, 10)
    np.testing.assert_array_equal(a, b)


def test_generator_streams_independent():
    a = generator(1, stream=(0,)).integers(0, 1 << 30, 10)
    b = generator(1, stream=(1,)).integers(0, 1 << 30, 10)
    assert not np.array_equal(a, b)


def test_generator_default_seed_stable():
    np.testing.assert_array_equal(
        generator().integers(0, 100, 5), generator(None).integers(0, 100, 5)
    )


def test_child_generators_count_and_independence():
    gens = list(child_generators(7, 3))
    assert len(gens) == 3
    draws = [g.integers(0, 1 << 30, 8) for g in gens]
    assert not np.array_equal(draws[0], draws[1])


def test_require():
    require(True, "fine")
    with pytest.raises(ValueError, match="broken"):
        require(False, "broken")


def test_check_positive():
    assert check_positive(1, "x") == 1
    with pytest.raises(ValueError):
        check_positive(0, "x")


def test_check_non_negative():
    assert check_non_negative(0, "x") == 0
    with pytest.raises(ValueError):
        check_non_negative(-1, "x")


def test_check_in_range():
    assert check_in_range(0.5, 0, 1, "x") == 0.5
    with pytest.raises(ValueError):
        check_in_range(2, 0, 1, "x")


def test_meter_accumulates_and_merges():
    m1, m2 = Meter(), Meter()
    m1.add("a", 1.0)
    m1.add("a", 0.5)
    m2.add("b", 2.0)
    m1.merge(m2)
    assert m1.get("a") == pytest.approx(1.5)
    assert m1.get("b") == pytest.approx(2.0)
    assert m1.total == pytest.approx(3.5)
    assert dict(m1.items()) == m1.as_dict()


def test_meter_rejects_negative():
    with pytest.raises(ValueError):
        Meter().add("x", -1.0)


def test_meter_clear():
    m = Meter()
    m.add("x", 1.0)
    m.clear()
    assert m.total == 0.0

"""Unit and property tests for the device-memory allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.memory import Allocation, DeviceAllocator, OutOfDeviceMemory

CAP = 1 << 20  # 1 MiB


def test_capacity_validation():
    with pytest.raises(ValueError):
        DeviceAllocator(0)


def test_simple_alloc_free_cycle():
    a = DeviceAllocator(CAP)
    alloc = a.alloc(1000, tag="buf")
    assert alloc.size >= 1000
    assert alloc.size % DeviceAllocator.ALIGNMENT == 0
    assert a.used == alloc.size
    a.free(alloc)
    assert a.used == 0
    assert a.largest_free_block() == CAP


def test_alloc_rounds_to_alignment():
    a = DeviceAllocator(CAP)
    alloc = a.alloc(1)
    assert alloc.size == DeviceAllocator.ALIGNMENT


def test_zero_byte_alloc_gets_minimum_block():
    a = DeviceAllocator(CAP)
    alloc = a.alloc(0)
    assert alloc.size == DeviceAllocator.ALIGNMENT


def test_oom_raises():
    a = DeviceAllocator(1024)
    a.alloc(512)
    with pytest.raises(OutOfDeviceMemory):
        a.alloc(1024)


def test_oom_carries_diagnostics():
    a = DeviceAllocator(1024)
    a.alloc(512)
    try:
        a.alloc(1024)
    except OutOfDeviceMemory as exc:
        assert exc.requested == 1024
        assert exc.capacity == 1024


def test_double_free_rejected():
    a = DeviceAllocator(CAP)
    alloc = a.alloc(128)
    a.free(alloc)
    with pytest.raises(ValueError):
        a.free(alloc)


def test_foreign_allocation_rejected():
    a = DeviceAllocator(CAP)
    a.alloc(256)
    with pytest.raises(ValueError):
        a.free(Allocation(offset=0, size=512))


def test_free_coalesces_neighbours():
    a = DeviceAllocator(CAP)
    x = a.alloc(256)
    y = a.alloc(256)
    z = a.alloc(256)
    # Free in an order that requires both-sides coalescing for y.
    a.free(x)
    a.free(z)
    a.free(y)
    assert a.largest_free_block() == CAP


def test_allocations_never_overlap():
    a = DeviceAllocator(CAP)
    allocs = [a.alloc(1000) for _ in range(100)]
    spans = sorted((al.offset, al.end) for al in allocs)
    for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
        assert hi1 <= lo2


def test_peak_used_high_water_mark():
    a = DeviceAllocator(CAP)
    x = a.alloc(1024)
    y = a.alloc(2048)
    a.free(x)
    a.free(y)
    assert a.peak_used == 1024 + 2048
    assert a.used == 0


def test_would_fit_tracks_fragmentation():
    a = DeviceAllocator(1024)
    x = a.alloc(256)
    y = a.alloc(256)
    z = a.alloc(512)
    a.free(x)
    a.free(z)
    # 768 bytes are free but the largest hole is 512.
    assert a.free_bytes == 768
    assert a.would_fit(512)
    assert not a.would_fit(768)
    del y


def test_reset_restores_full_capacity():
    a = DeviceAllocator(CAP)
    a.alloc(4096)
    a.reset()
    assert a.used == 0
    assert a.largest_free_block() == CAP


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 4096)),
        min_size=1,
        max_size=120,
    )
)
def test_property_allocator_invariants(ops):
    """Random alloc/free sequences preserve the core invariants."""
    a = DeviceAllocator(CAP)
    live = []
    for op, size in ops:
        if op == "alloc":
            try:
                live.append(a.alloc(size))
            except OutOfDeviceMemory:
                pass
        elif live:
            a.free(live.pop(size % len(live)))

        # Invariant 1: accounting balances.
        assert a.used + a.free_bytes == CAP
        # Invariant 2: used equals the sum of live allocation sizes.
        assert a.used == sum(al.size for al in live)
        # Invariant 3: live allocations are disjoint and in-bounds.
        spans = sorted((al.offset, al.end) for al in live)
        for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
            assert hi1 <= lo2
        for lo, hi in spans:
            assert 0 <= lo < hi <= CAP

    for al in live:
        a.free(al)
    assert a.used == 0
    assert a.largest_free_block() == CAP

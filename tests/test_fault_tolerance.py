"""Fault tolerance: kill -9 mid-map, reclaim, respawn, speculate.

The contract under test is the tentpole one: kill a rank mid-map on
any backend and the job still completes with output **bit-identical**
to a failure-free run, with ``chunks_reclaimed > 0`` proving the
recovery path actually ran.  The real backends take a genuine SIGKILL
(local: one process per worker; cluster: one endpoint process per
rank, killed mid-protocol and replaced by a rejoining incarnation);
the serial and sim mirrors model the same death deterministically so
recovery schedules stay record/replay-able.

Speculative re-execution is checked the same way: a scripted straggler
forces a duplicate grant, both copies ship, and the canonical-winner
dedup at the receivers keeps the output bit-identical — a duplicate
never double-counts.

The tier is marked ``slow`` (real processes, real sockets, scripted
stalls): the default ``pytest -m "not slow"`` run skips it, and CI
executes it in its own ``fault-tolerance`` job.
"""

import numpy as np
import pytest

from repro.apps.sparse_int_occurrence import sio_dataset, sio_job, sio_validate
from repro.core import FaultPlan, make_executor

pytestmark = pytest.mark.slow

N_WORKERS = 4


def _dataset():
    # 16 chunks over 4 workers: enough grants that a rank dying at its
    # second grant is genuinely mid-map.
    return sio_dataset(
        n_elements=64_000, chunk_elements=4_000, key_space=1 << 14, seed=7
    )


def _assert_bit_identical(ref, got, tag):
    assert len(ref.outputs) == len(got.outputs), tag
    for rank, (a, b) in enumerate(zip(ref.outputs, got.outputs)):
        where = f"{tag} rank {rank}"
        assert (a is None) == (b is None), where
        if a is None:
            continue
        assert a.keys.dtype == b.keys.dtype, where
        assert np.array_equal(a.keys, b.keys), where
        assert a.values.dtype == b.values.dtype, where
        assert a.values.tobytes() == b.values.tobytes(), where
        assert a.scale == b.scale, where


def _run(backend, fault_plan=None, schedule=None, **kwargs):
    ds = _dataset()
    result = make_executor(
        backend, N_WORKERS, fault_plan=fault_plan, **kwargs
    ).run(sio_job(ds.key_space), dataset=ds, schedule=schedule)
    sio_validate(result, ds)
    return result


# -- kill -9 mid-map on every backend ----------------------------------------

@pytest.mark.parametrize(
    "backend,kwargs",
    [
        ("local", {}),
        ("cluster", {"timeout_seconds": 60.0}),
    ],
)
def test_kill_rank_mid_map_bit_identical(backend, kwargs):
    """A rank SIGKILLed at its 2nd grant is reclaimed + respawned; the
    recovered run is bit-identical to the failure-free one."""
    ref = _run(backend, **kwargs)
    assert ref.stats.chunks_reclaimed == 0
    got = _run(
        backend, fault_plan=FaultPlan(kill_rank_at_chunk={1: 2}), **kwargs
    )
    assert got.stats.chunks_reclaimed > 0
    # Reclaimed chunks are re-granted as flagged retries — to the
    # respawned rank or to a survivor that stole them first.
    assert sum(got.stats.retries_by_worker) > 0
    _assert_bit_identical(ref, got, f"{backend} kill mid-map")


@pytest.mark.parametrize("backend", ["serial", "sim"])
def test_kill_mirror_backends_bit_identical(backend):
    """The serial/sim mirrors model the same death deterministically."""
    ref = _run(backend)
    got = _run(backend, fault_plan=FaultPlan(kill_rank_at_chunk={1: 2}))
    assert got.stats.chunks_reclaimed > 0
    _assert_bit_identical(ref, got, f"{backend} kill mirror")


def test_sim_recovery_schedule_replays_clean():
    """The effective schedule a faulted sim run records grants every
    chunk exactly once, so it replays bit-identically on a clean sim —
    recovery runs stay record/replay-able."""
    faulted = _run("sim", fault_plan=FaultPlan(kill_rank_at_chunk={2: 1}))
    assert faulted.stats.chunks_reclaimed > 0
    replayed = _run("sim", schedule=faulted.schedule)
    assert replayed.stats.chunks_reclaimed == 0
    _assert_bit_identical(faulted, replayed, "sim recovery replay")


def test_respawn_budget_exhaustion_fails_the_run():
    """With max_respawns=0 a death is terminal, as before the redesign."""
    from repro.exec.local import WorkerFailure

    with pytest.raises(WorkerFailure):
        _run(
            "local",
            fault_plan=FaultPlan(
                kill_rank_at_chunk={1: 1}, max_respawns=0
            ),
        )


# -- speculation: duplicate never double-counts ------------------------------

@pytest.mark.parametrize(
    "backend,kwargs",
    [
        ("local", {}),
        ("cluster", {"timeout_seconds": 60.0}),
    ],
)
def test_speculative_duplicate_never_double_counts(backend, kwargs):
    """A scripted straggler forces a speculative duplicate; both copies
    ship their batches, the receivers keep the canonical one, and the
    output stays bit-identical to an unfaulted run."""
    ds = sio_dataset(
        n_elements=32_000, chunk_elements=2_000, key_space=1 << 14, seed=9
    )
    job = sio_job(ds.key_space, map_sleep_seconds=0.05)
    ref = make_executor(backend, 2, **kwargs).run(job, dataset=ds)
    got = make_executor(
        backend,
        2,
        fault_plan=FaultPlan(stall_seconds={1: 0.3}, speculate_after=0.1),
        **kwargs,
    ).run(job, dataset=ds)
    sio_validate(got, ds)
    assert got.stats.speculative_wins > 0
    _assert_bit_identical(ref, got, f"{backend} speculation")


# -- plan validation at the executor boundary --------------------------------

def test_fault_plan_and_schedule_replay_are_mutually_exclusive():
    clean = _run("sim")
    for backend in ("sim", "serial", "local"):
        ex = make_executor(
            backend, N_WORKERS, fault_plan=FaultPlan(kill_rank_at_chunk={0: 1})
        )
        ds = _dataset()
        with pytest.raises(ValueError, match="schedule"):
            ex.run(sio_job(ds.key_space), dataset=ds, schedule=clean.schedule)


def test_speculation_rejected_on_deterministic_backends():
    with pytest.raises(ValueError, match="sim backend"):
        make_executor("sim", 2, fault_plan=FaultPlan(speculate_after=0.1))
    with pytest.raises(ValueError, match="one at a time"):
        make_executor("serial", 2, fault_plan=FaultPlan(speculate_after=0.1))


def test_speculation_rejected_with_accumulator_jobs():
    """Accumulated map state is not idempotent across duplicate grants;
    the executor refuses the combination up front."""
    from repro.apps.linear_regression import lr_dataset, lr_job

    ds = lr_dataset(n_points=4_000, chunk_points=500)
    ex = make_executor(
        "local", 2, fault_plan=FaultPlan(speculate_after=0.1)
    )
    with pytest.raises(ValueError, match="accumulat|combine"):
        ex.run(lr_job(use_accumulation=True), dataset=ds)


def test_out_of_range_rank_rejected_at_construction():
    with pytest.raises(ValueError, match="only 2 worker"):
        make_executor(
            "local", 2, fault_plan=FaultPlan(kill_rank_at_chunk={5: 1})
        )

"""The job-service acceptance tier (slow; CI's job-service job).

One daemon on the local (real multiprocessing) backend serving 8
concurrent clients × 5 jobs each over a mixed app set, with three
acceptance gates from ROADMAP item 2:

- every service-run output is bit-identical to its one-shot
  ``run_app`` twin,
- warm-pool submit-to-result latency beats cold one-shot latency at
  the median,
- a second same-spec submission is a dataset-cache hit with ~zero
  ingest time.

Run with ``python -m pytest tests/test_job_service.py -q -m slow``.
"""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.apps import APPS
from repro.service import JobService, ServiceClient
from repro.service.loadgen import run_load

pytestmark = pytest.mark.slow

N_CLIENTS = 8
JOBS_PER_CLIENT = 5
N_GPUS = 2

#: Mixed workload: three single-phase apps with multi-chunk datasets.
MIX = (
    ("SIO", {"n_elements": 6000, "chunk_elements": 1500,
             "key_space": 512, "seed": 21}),
    ("WO", {"n_chars": 4000, "chunk_chars": 1000, "seed": 22}),
    ("LR", {"n_points": 4000, "chunk_points": 1000, "seed": 23}),
)


@pytest.fixture(scope="module")
def daemon():
    svc = JobService(port=0, default_backend="local",
                     max_concurrent_jobs=4).start()
    yield svc
    svc.close()


def _oneshot(app, spec, **kwargs):
    entry = APPS[app]
    return entry.runner(N_GPUS, entry.dataset(**spec),
                        backend="local", **kwargs)


def _assert_identical(ref, got, tag):
    assert len(ref.outputs) == len(got.outputs), tag
    for rank, (a, b) in enumerate(zip(ref.outputs, got.outputs)):
        where = f"{tag} rank {rank}"
        assert (a is None) == (b is None), where
        if a is None:
            continue
        assert np.array_equal(a.keys, b.keys), where
        assert a.values.tobytes() == b.values.tobytes(), where


def test_concurrent_load_bit_identical(daemon):
    """8 clients × 5 jobs, mixed apps: all complete, all bit-identical."""
    report = run_load(
        daemon.address,
        n_clients=N_CLIENTS,
        jobs_per_client=JOBS_PER_CLIENT,
        mix=MIX,
        n_gpus=N_GPUS,
    )
    assert report.failed == 0, report.errors
    assert report.completed == N_CLIENTS * JOBS_PER_CLIENT
    assert report.jobs_per_sec > 0

    # Spot-check every app in the mix against its one-shot twin on a
    # fresh connection (the daemon is still warm from the load).
    with ServiceClient(*daemon.address) as client:
        for app, spec in MIX:
            run = client.submit(app, spec, n_gpus=N_GPUS, timeout=120)
            _assert_identical(_oneshot(app, spec), run.result, app)


def test_warm_submit_beats_cold_oneshot(daemon):
    """Median warm service latency < median cold-start one-shot latency.

    Cold start means what a user without the daemon actually does:
    launch a fresh driver process that imports the stack, builds the
    dataset and executor, forks the shm tracker, and runs the job
    once.  The warm path is one submit over an open connection to the
    already-resident daemon.  Medians over several runs keep scheduler
    noise out.
    """
    app, spec = MIX[0]
    with ServiceClient(*daemon.address) as client:
        client.submit(app, spec, n_gpus=N_GPUS, timeout=120)  # prime
        warm = []
        for _ in range(5):
            t0 = time.perf_counter()
            client.submit(app, spec, n_gpus=N_GPUS, timeout=120)
            warm.append(time.perf_counter() - t0)
    cold_script = (
        "from repro.apps import APPS\n"
        f"entry = APPS[{app!r}]\n"
        f"entry.runner({N_GPUS}, entry.dataset(**{spec!r}), backend='local')\n"
    )
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH", "")) if p
    )
    cold = []
    for _ in range(3):
        t0 = time.perf_counter()
        subprocess.run(
            [sys.executable, "-c", cold_script],
            check=True, env=env, timeout=120,
        )
        cold.append(time.perf_counter() - t0)
    warm_p50 = sorted(warm)[len(warm) // 2]
    cold_p50 = sorted(cold)[len(cold) // 2]
    assert warm_p50 < cold_p50, (
        f"warm p50 {warm_p50:.4f}s not below cold-start p50 "
        f"{cold_p50:.4f}s (warm={warm}, cold={cold})"
    )


def test_cache_hit_ingest_near_zero(daemon):
    spec = {"n_elements": 200_000, "chunk_elements": 50_000,
            "key_space": 1024, "seed": 77}
    with ServiceClient(*daemon.address) as client:
        cold = client.submit("SIO", spec, n_gpus=N_GPUS, timeout=120)
        warm = client.submit("SIO", spec, n_gpus=N_GPUS, timeout=120)
    assert cold.cache_hit is False
    assert warm.cache_hit is True
    # Both sides are microseconds today (dataset factories build
    # lazily), so the acceptance gate is the flags plus an absolute
    # ingest ~ 0 bound — not a miss-vs-hit race between two tiny
    # numbers.
    assert warm.ingest_s < 0.01
    # The daemon's metrics histogram saw both acquisitions.
    with ServiceClient(*daemon.address) as client:
        snap = client.metrics()
    assert snap["metrics"]["histograms"]["ingest_s"]["count"] >= 2

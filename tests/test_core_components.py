"""Unit tests for core data structures: KVSet, Chunk, scheduler, stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BlockPartitioner,
    Chunk,
    ChunkScheduler,
    HashPartitioner,
    KeyValueSet,
    RoundRobinPartitioner,
    WorkerStats,
    combine_by_key_sum,
)
from repro.core.stats import STAGES, JobStats


# ---------------------------------------------------------------------------
# KeyValueSet
# ---------------------------------------------------------------------------

def kv(keys, values, scale=1.0):
    return KeyValueSet(
        keys=np.asarray(keys, dtype=np.uint32),
        values=np.asarray(values),
        scale=scale,
    )


def test_kvset_validation():
    with pytest.raises(ValueError):
        kv([1, 2], [1.0])  # length mismatch
    with pytest.raises(TypeError):
        KeyValueSet(keys=np.array([1.5]), values=np.array([1.0]))
    with pytest.raises(ValueError):
        kv([1], [1.0], scale=0)
    with pytest.raises(ValueError):
        KeyValueSet(keys=np.zeros((2, 2), dtype=np.uint32), values=np.zeros(2))


def test_kvset_byte_accounting():
    s = kv([1, 2, 3], np.ones(3, dtype=np.float64), scale=4.0)
    assert s.pair_bytes == 4 + 8
    assert s.nbytes_actual == 3 * 12
    assert s.nbytes_logical == 3 * 12 * 4
    assert s.logical_pairs == 12


def test_kvset_value_width_2d():
    s = kv([1, 2], np.ones((2, 5), dtype=np.float32))
    assert s.value_width == 5
    assert s.pair_bytes == 4 + 20


def test_kvset_concat_preserves_scale():
    a = kv([1], [1.0], scale=2.0)
    b = kv([2], [2.0], scale=2.0)
    c = KeyValueSet.concat([a, b])
    assert len(c) == 2 and c.scale == 2.0


def test_kvset_concat_rejects_mixed_scales():
    with pytest.raises(ValueError):
        KeyValueSet.concat([kv([1], [1.0], scale=1.0), kv([2], [2.0], scale=2.0)])


def test_kvset_concat_ignores_empty_scale_mismatch():
    full = kv([1], [1.0], scale=2.0)
    empty = KeyValueSet.empty(scale=1.0)
    merged = KeyValueSet.concat([full, empty])
    assert len(merged) == 1 and merged.scale == 2.0


def test_kvset_split_by_preserves_order_and_pairs():
    s = kv([5, 6, 7, 8, 9], [50, 60, 70, 80, 90])
    parts = s.split_by(np.array([1, 0, 1, 0, 1]), 2)
    np.testing.assert_array_equal(parts[0].keys, [6, 8])
    np.testing.assert_array_equal(parts[1].keys, [5, 7, 9])
    np.testing.assert_array_equal(parts[1].values, [50, 70, 90])


def test_kvset_split_by_validates():
    s = kv([1, 2], [1, 2])
    with pytest.raises(ValueError):
        s.split_by(np.array([0]), 2)
    with pytest.raises(ValueError):
        s.split_by(np.array([0, 5]), 2)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 100), min_size=0, max_size=60),
    st.integers(1, 7),
)
def test_property_split_by_partitions_everything(keys, n_parts):
    s = kv(keys, list(range(len(keys))))
    ids = np.asarray([k % n_parts for k in keys], dtype=np.int64)
    parts = s.split_by(ids, n_parts)
    assert sum(len(p) for p in parts) == len(s)
    rebuilt = sorted(
        v for p in parts for v in np.atleast_1d(p.values).tolist()
    )
    assert rebuilt == sorted(range(len(keys)))


def test_combine_by_key_sum_scalar():
    s = kv([3, 1, 3, 1, 2], [1, 10, 2, 20, 5])
    c = combine_by_key_sum(s)
    np.testing.assert_array_equal(c.keys, [1, 2, 3])
    np.testing.assert_array_equal(c.values, [30, 5, 3])


def test_combine_by_key_sum_2d():
    s = kv([1, 0, 1], np.array([[1.0, 2.0], [5.0, 5.0], [3.0, 4.0]]))
    c = combine_by_key_sum(s)
    np.testing.assert_array_equal(c.keys, [0, 1])
    np.testing.assert_array_equal(c.values, [[5.0, 5.0], [4.0, 6.0]])


def test_combine_by_key_sum_empty_passthrough():
    e = KeyValueSet.empty()
    assert len(combine_by_key_sum(e)) == 0


# ---------------------------------------------------------------------------
# Chunk serialisation
# ---------------------------------------------------------------------------

def test_chunk_roundtrip_single_array():
    data = np.arange(100, dtype=np.uint32)
    c = Chunk(index=3, data=data, logical_items=800, logical_bytes=3200)
    c2 = Chunk.from_bytes(c.to_bytes())
    assert c2.index == 3
    assert c2.logical_items == 800
    assert c2.logical_bytes == 3200
    np.testing.assert_array_equal(c2.data, data)


def test_chunk_roundtrip_tuple_of_arrays():
    a = np.ones((4, 4), dtype=np.float32)
    b = np.zeros(7, dtype=np.int64)
    c = Chunk(index=1, data=(a, b), logical_items=16, logical_bytes=64)
    c2 = Chunk.from_bytes(c.to_bytes())
    np.testing.assert_array_equal(c2.data[0], a)
    np.testing.assert_array_equal(c2.data[1], b)


def test_chunk_scale_and_wire_bytes():
    c = Chunk(index=0, data=np.zeros(10), logical_items=40, logical_bytes=160)
    assert c.scale == 4.0
    assert c.wire_bytes == 160
    assert c.actual_items == 10


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------

def make_chunks(n):
    return [
        Chunk(index=i, data=np.zeros(1), logical_items=1, logical_bytes=8)
        for i in range(n)
    ]


def test_scheduler_round_robin_assignment():
    s = ChunkScheduler(3)
    s.assign_round_robin(make_chunks(7))
    assert [s.queue_len(w) for w in range(3)] == [3, 2, 2]


def test_scheduler_local_first():
    s = ChunkScheduler(2)
    s.assign_round_robin(make_chunks(4))
    a = s.request(0)
    assert a.victim == 0 and not a.stolen_by(0)
    assert a.chunk.index == 0


def test_scheduler_steals_from_longest_queue():
    s = ChunkScheduler(3)
    for c in make_chunks(6):
        s.push(1, c)
    a = s.request(0)
    assert a is not None and a.victim == 1 and a.stolen_by(0)
    # Steal takes from the tail.
    assert a.chunk.index == 5
    assert s.steals == 1


def test_scheduler_no_steal_below_threshold():
    s = ChunkScheduler(2)
    s.push(1, make_chunks(1)[0])  # victim has only 1 chunk
    assert s.request(0) is None


def test_scheduler_stealing_disabled():
    s = ChunkScheduler(2, enable_stealing=False)
    for c in make_chunks(6):
        s.push(1, c)
    assert s.request(0) is None


def test_scheduler_drains_completely():
    s = ChunkScheduler(4)
    s.assign_round_robin(make_chunks(10))
    served = 0
    while any(s.request(w) for w in range(4)):
        served += 1
    assert s.remaining == 0


def test_scheduler_validation():
    with pytest.raises(ValueError):
        ChunkScheduler(0)
    s = ChunkScheduler(1)
    with pytest.raises(ValueError):
        s.request(5)


# ---------------------------------------------------------------------------
# Partitioners
# ---------------------------------------------------------------------------

def test_round_robin_partitioner():
    p = RoundRobinPartitioner()
    s = kv([0, 1, 2, 3, 4], np.zeros(5))
    np.testing.assert_array_equal(p.partition(s, 3), [0, 1, 2, 0, 1])


def test_block_partitioner_ranges():
    p = BlockPartitioner(key_space=100)
    s = kv([0, 49, 50, 99], np.zeros(4))
    np.testing.assert_array_equal(p.partition(s, 2), [0, 0, 1, 1])


def test_block_partitioner_clamps_top():
    p = BlockPartitioner(key_space=10)
    s = kv([9, 15], np.zeros(2))  # 15 is out of declared space
    ids = p.partition(s, 4)
    assert ids.max() <= 3


def test_hash_partitioner_in_range_and_spread():
    p = HashPartitioner()
    s = kv(np.arange(1000), np.zeros(1000))
    ids = p.partition(s, 8)
    assert ids.min() >= 0 and ids.max() < 8
    counts = np.bincount(ids, minlength=8)
    assert counts.min() > 60  # roughly uniform


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=100), st.integers(1, 16))
def test_property_partitioners_cover_all_pairs(keys, n_parts):
    s = kv(keys, np.zeros(len(keys)))
    for p in (RoundRobinPartitioner(), HashPartitioner(), BlockPartitioner(2**31)):
        ids = p.partition(s, n_parts)
        assert len(ids) == len(keys)
        assert ids.min() >= 0 and ids.max() < n_parts


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------

def test_worker_stats_rejects_bad_input():
    w = WorkerStats(rank=0)
    with pytest.raises(ValueError):
        w.add("unknown-stage", 1.0)
    with pytest.raises(ValueError):
        w.add("map", -1.0)


def test_worker_stats_fractions():
    w = WorkerStats(rank=0)
    w.add("map", 3.0)
    w.add("sort", 1.0)
    assert w.total == 4.0
    assert w.fraction("map") == pytest.approx(0.75)
    assert w.fraction("reduce") == 0.0


def test_job_stats_aggregation():
    w0, w1 = WorkerStats(rank=0), WorkerStats(rank=1)
    w0.add("map", 2.0)
    w1.add("map", 2.0)
    w1.add("bin", 4.0)
    js = JobStats(job_name="j", n_gpus=2, elapsed=5.0, workers=[w0, w1])
    assert js.stage_totals["map"] == 4.0
    assert js.stage_fractions["bin"] == pytest.approx(0.5)
    assert set(js.stage_fractions) == set(STAGES)

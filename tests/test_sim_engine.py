"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import EmptySchedule, Environment, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(3.5)

    env.process(proc(env))
    env.run()
    assert env.now == 3.5


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()
    got = []

    def proc(env):
        got.append((yield env.timeout(1, value="payload")))

    env.process(proc(env))
    env.run()
    assert got == ["payload"]


def test_events_fire_in_time_order():
    env = Environment()
    log = []

    def worker(env, name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker(env, "late", 10))
    env.process(worker(env, "early", 1))
    env.process(worker(env, "mid", 5))
    env.run()
    assert log == [(1, "early"), (5, "mid"), (10, "late")]


def test_simultaneous_events_fire_in_creation_order():
    env = Environment()
    log = []

    def worker(env, name):
        yield env.timeout(1)
        log.append(name)

    for name in "abcd":
        env.process(worker(env, name))
    env.run()
    assert log == list("abcd")


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1)

    env.process(proc(env))
    env.run(until=7.5)
    assert env.now == 7.5


def test_run_until_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()

    def child(env):
        yield env.timeout(2)
        return 42

    result = env.run(until=env.process(child(env)))
    assert result == 42
    assert env.now == 2


def test_run_dry_before_event_raises():
    env = Environment()
    evt = env.event()
    with pytest.raises(RuntimeError, match="ran dry"):
        env.run(until=evt)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_process_return_value_propagates():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return "done"

    def parent(env):
        value = yield env.process(child(env))
        return value + "!"

    assert env.run(until=env.process(parent(env))) == "done!"


def test_process_exception_propagates_to_parent():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise ValueError("boom")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return f"caught {exc}"

    assert env.run(until=env.process(parent(env))) == "caught boom"


def test_unhandled_process_exception_crashes_run():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise ValueError("boom")

    env.process(child(env))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_yield_non_event_is_error():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_event_succeed_once_only():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(RuntimeError):
        evt.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_event_value_raises_before_and_after_failure():
    env = Environment()
    evt = env.event()
    evt.fail(KeyError("k"))
    evt.defuse()
    with pytest.raises(KeyError):
        _ = evt.value
    env.run()


def test_shared_event_wakes_all_waiters():
    env = Environment()
    evt = env.event()
    woken = []

    def waiter(env, name):
        value = yield evt
        woken.append((env.now, name, value))

    def firer(env):
        yield env.timeout(4)
        evt.succeed("go")

    env.process(waiter(env, "w1"))
    env.process(waiter(env, "w2"))
    env.process(firer(env))
    env.run()
    assert woken == [(4, "w1", "go"), (4, "w2", "go")]


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    assert env.run(until=env.process(proc(env))) == (5, ["a", "b"])


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(100, value="slow")
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    assert env.run(until=env.process(proc(env))) == (1, ["fast"])


def test_condition_operators():
    env = Environment()

    def proc(env):
        a = env.timeout(1)
        b = env.timeout(2)
        yield a & b
        assert env.now == 2
        c = env.timeout(3)
        d = env.timeout(99)
        yield c | d
        return env.now

    assert env.run(until=env.process(proc(env))) == 5


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        result = yield env.all_of([])
        return result

    assert env.run(until=env.process(proc(env))) == {}


def test_all_of_fails_fast_on_sub_event_failure():
    env = Environment()

    def failer(env):
        yield env.timeout(1)
        raise RuntimeError("sub failure")

    def proc(env):
        p = env.process(failer(env))
        t = env.timeout(100)
        try:
            yield env.all_of([p, t])
        except RuntimeError as exc:
            return str(exc)

    assert env.run(until=env.process(proc(env))) == "sub failure"
    assert env.now == 1


def test_mixing_environments_rejected():
    env1, env2 = Environment(), Environment()
    foreign = env2.timeout(1)

    def proc(env):
        yield foreign

    env1.process(proc(env1))
    with pytest.raises(RuntimeError, match="another environment"):
        env1.run()


def test_interrupt_raises_in_target():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as it:
            log.append((env.now, it.cause))

    def attacker(env, proc):
        yield env.timeout(3)
        proc.interrupt(cause="stop")

    p = env.process(victim(env))
    env.process(attacker(env, p))
    env.run()
    assert log == [(3, "stop")]


def test_interrupt_dead_process_is_error():
    env = Environment()

    def victim(env):
        yield env.timeout(1)

    def attacker(env, proc):
        yield env.timeout(5)
        proc.interrupt()

    p = env.process(victim(env))
    env.process(attacker(env, p))
    with pytest.raises(RuntimeError, match="terminated"):
        env.run()


def test_interrupted_process_can_continue_waiting():
    env = Environment()
    log = []

    def victim(env):
        t = env.timeout(10, value="finished")
        while True:
            try:
                value = yield t
                log.append((env.now, value))
                return
            except Interrupt:
                log.append((env.now, "interrupted"))
                t = env.timeout(10, value="finished")

    def attacker(env, proc):
        yield env.timeout(4)
        proc.interrupt()

    p = env.process(victim(env))
    env.process(attacker(env, p))
    env.run()
    assert log == [(4, "interrupted"), (14, "finished")]


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(3)
    assert env.peek() == 3


def test_immediately_processed_event_resumes_synchronously():
    # Yielding an already-processed event must not deadlock.
    env = Environment()

    def proc(env):
        evt = env.event()
        evt.succeed("early")
        yield env.timeout(1)  # let evt become processed
        value = yield evt
        return value

    assert env.run(until=env.process(proc(env))) == "early"


def test_active_process_visible_during_step():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    assert seen == [p]
    assert env.active_process is None

"""Tests for the Phoenix and Mars baseline models and serial oracles."""

import numpy as np
import pytest

from repro.apps import (
    kmc_dataset,
    kmc_mars_workload,
    mm_dataset,
    mm_mars_workload,
    mm_phoenix_workload,
    sio_dataset,
    wo_dataset,
    wo_mars_workload,
)
from repro.baselines import (
    MarsModel,
    MarsOutOfCore,
    MarsWorkload,
    PhoenixModel,
    PhoenixWorkload,
    serial,
)
from repro.primitives import launch_1d
from repro.util.units import GIB


# ---------------------------------------------------------------------------
# Phoenix model
# ---------------------------------------------------------------------------

def simple_phoenix(n=1 << 20, **kwargs):
    defaults = dict(
        name="t",
        n_items=n,
        map_flops_per_item=10.0,
        map_bytes_per_item=8.0,
        emits_per_item=1.0,
        pair_bytes=8,
        n_unique_keys=1000,
    )
    defaults.update(kwargs)
    return PhoenixWorkload(**defaults)


def test_phoenix_breakdown_sums_to_total():
    b = PhoenixModel().runtime(simple_phoenix())
    assert b.total == pytest.approx(b.map + b.group + b.reduce)


def test_phoenix_map_scales_with_items():
    m = PhoenixModel()
    t1 = m.runtime(simple_phoenix(n=1 << 20)).map
    t2 = m.runtime(simple_phoenix(n=1 << 21)).map
    assert t2 == pytest.approx(2 * t1)


def test_phoenix_map_is_roofline():
    m = PhoenixModel()
    # Compute-heavy: doubling flops doubles map time.
    heavy = simple_phoenix(map_flops_per_item=1000.0)
    heavier = simple_phoenix(map_flops_per_item=2000.0)
    assert m.runtime(heavier).map == pytest.approx(2 * m.runtime(heavy).map)
    # Memory-heavy: flops no longer matter.
    memory = simple_phoenix(map_flops_per_item=0.001, map_bytes_per_item=800.0)
    assert m.runtime(memory).map == pytest.approx(
        (1 << 20) * 800 / (m.cpu.mem_bandwidth * memory.mem_efficiency)
    )


def test_phoenix_group_scales_with_emits():
    m = PhoenixModel()
    few = simple_phoenix(emits_per_item=0.1)
    many = simple_phoenix(emits_per_item=10.0)
    assert m.runtime(many).group == pytest.approx(100 * m.runtime(few).group)


def test_phoenix_efficiency_validation():
    with pytest.raises(ValueError):
        simple_phoenix(flops_efficiency=0.0)
    with pytest.raises(ValueError):
        simple_phoenix(flops_efficiency=1.5)


def test_phoenix_mm_matches_papers_twenty_seconds():
    # "Phoenix required almost twenty seconds to multiply two 1024x1024
    # matrices" — our model should land within a factor of ~2.
    ds = mm_dataset(1024, tile=256, kspan=4, sample_factor=4)
    t = PhoenixModel().runtime(mm_phoenix_workload(ds)).total
    assert 5.0 < t < 40.0


# ---------------------------------------------------------------------------
# Mars model
# ---------------------------------------------------------------------------

def simple_mars(n=1 << 20, pairs=None, **kwargs):
    pairs = n if pairs is None else pairs
    defaults = dict(
        name="t",
        input_bytes=n * 4,
        n_items=n,
        map_launches=[
            launch_1d("m", n, flops_per_item=2.0, read_bytes_per_item=4.0)
        ],
        n_pairs=pairs,
        pair_bytes=16,
    )
    defaults.update(kwargs)
    return MarsWorkload(**defaults)


def test_mars_defaults_to_full_board_memory():
    assert MarsModel().gpu.mem_capacity == 4 * GIB


def test_mars_breakdown_sums_to_total():
    b = MarsModel().runtime(simple_mars())
    assert b.total == pytest.approx(
        b.h2d + b.map_count + b.scan + b.map_emit + b.sort + b.reduce + b.d2h
    )


def test_mars_two_pass_map():
    b = MarsModel().runtime(simple_mars())
    assert b.map_count == pytest.approx(b.map_emit * MarsModel.COUNT_PASS_FACTOR)


def test_mars_in_core_limit_enforced():
    # 200M pairs x 16B x 2 > 4 GiB.
    with pytest.raises(MarsOutOfCore):
        MarsModel().runtime(simple_mars(n=200 << 20))


def test_mars_skip_sort_reduces_requirement_and_time():
    w_sorted = simple_mars(n=8 << 20)
    w_unsorted = simple_mars(n=8 << 20, sorts_pairs=False)
    m = MarsModel()
    assert m.required_bytes(w_unsorted) < m.required_bytes(w_sorted)
    assert m.runtime(w_unsorted).sort == 0.0
    assert m.runtime(w_sorted).sort > 0.0


def test_mars_bitonic_sort_superlinear_in_n():
    # O(n log^2 n): 4x the pairs should cost clearly more than 4x.
    m = MarsModel()
    t1 = m.runtime(simple_mars(n=1 << 20)).sort
    t4 = m.runtime(simple_mars(n=1 << 22)).sort
    assert t4 > 4.4 * t1


def test_mars_table3_workloads_fit_in_core():
    m = MarsModel()
    m.check_in_core(mm_mars_workload(mm_dataset(4096, tile=1024, kspan=4)))
    m.check_in_core(kmc_mars_workload(kmc_dataset(8 << 20, sample_factor=8)))
    m.check_in_core(wo_mars_workload(wo_dataset(512 << 20, sample_factor=256)))


def test_mars_larger_than_table3_does_not_fit():
    with pytest.raises(MarsOutOfCore):
        MarsModel().check_in_core(
            kmc_mars_workload(kmc_dataset(128 << 20, sample_factor=64))
        )


# ---------------------------------------------------------------------------
# Serial oracles
# ---------------------------------------------------------------------------

def test_serial_integer_counts():
    ds = sio_dataset(10_000, chunk_elements=2_500, key_space=64, seed=1)
    counts = serial.integer_counts(ds)
    assert counts.sum() == 10_000
    assert len(counts) == 64


def test_serial_word_counts_total():
    from repro.apps import wo_mph
    from repro.workloads import tokenize

    ds = wo_dataset(50_000, chunk_chars=10_000, n_words=500, seed=2)
    counts = serial.word_counts(ds, wo_mph(500))
    total_words = sum(len(tokenize(c.data)[0]) for c in ds.chunks())
    assert counts.sum() == total_words


def test_serial_kmeans_step_reduces_inertia():
    ds = kmc_dataset(20_000, n_centers=5, chunk_points=20_000, seed=3)
    start = ds.start_centers()
    new, counts = serial.kmeans_step(ds, start)

    def inertia(centers):
        pts = ds.chunk(0).data
        d2 = ((pts[:, None, :] - centers[None]) ** 2).sum(axis=2)
        return d2.min(axis=1).sum()

    assert counts.sum() == 20_000
    assert inertia(new) <= inertia(start)


def test_serial_kmeans_empty_cluster_keeps_old_center():
    ds = kmc_dataset(1_000, n_centers=3, chunk_points=1_000, seed=4)
    # Put one centre far outside the unit square: it captures nothing.
    centers = np.array([[0.5, 0.5], [0.4, 0.6], [100.0, 100.0]])
    new, counts = serial.kmeans_step(ds, centers)
    assert counts[2] == 0
    np.testing.assert_array_equal(new[2], centers[2])


def test_serial_regression_fit_exact_line():
    sums = {"n": 3.0, "sx": 6.0, "sy": 12.0, "sxx": 14.0, "syy": 56.0, "sxy": 28.0}
    # Points (1,2),(2,4),(3,6): y = 2x.
    slope, intercept = serial.regression_fit(sums)
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(0.0)


def test_serial_regression_degenerate_rejected():
    with pytest.raises(ValueError):
        serial.regression_fit(
            {"n": 2.0, "sx": 2.0, "sy": 2.0, "sxx": 2.0, "syy": 2.0, "sxy": 2.0}
        )


def test_serial_matrix_product_matches_numpy():
    ds = mm_dataset(16, tile=4, kspan=2, seed=5)
    np.testing.assert_allclose(
        serial.matrix_product(ds).astype(np.float64),
        (ds.a.astype(np.float64) @ ds.b.astype(np.float64)),
        rtol=1e-5,
    )

"""The cluster fabric's wire layer, tested in isolation.

No executors, no dataflow: raw sockets (or socketpairs) exercising the
framing protocol — round-trips, bound enforcement, truncation and
disconnect detection, version negotiation failure — plus the
coordinator handshake against hand-rolled rank endpoints, including a
straggler that registers late and a rank that never shows up.
"""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.core.kvset import KeyValueSet
from repro.fabric import (
    ClusterTimeout,
    Coordinator,
    FabricError,
    FrameTooLarge,
    PeerDisconnected,
    ProtocolError,
    ProtocolVersionError,
    RankEndpoint,
    TruncatedFrame,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.fabric import recv_batch, recv_raw_frame, send_batch, send_raw_frame
from repro.fabric.wire import HEADER, MAGIC, MSG_BATCH, MSG_HELLO, PROTOCOL_VERSION


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    yield a, b
    a.close()
    b.close()


# -- framing round-trips ----------------------------------------------------

@pytest.mark.parametrize(
    "payload",
    [
        None,
        {"rank": 3, "shuffle_address": ("127.0.0.1", 4242)},
        list(range(1000)),
        b"\x00" * 4096,
    ],
)
def test_frame_round_trip(pair, payload):
    a, b = pair
    sent = send_frame(a, MSG_HELLO, payload)
    msg_type, got = recv_frame(b)
    assert msg_type == MSG_HELLO
    assert got == payload
    assert sent > 0


def test_frame_round_trip_kvset_batch(pair):
    """The shuffle's actual cargo — KeyValueSets — survives the wire."""
    a, b = pair
    kv = KeyValueSet(
        keys=np.arange(512, dtype=np.uint32),
        values=np.linspace(0.0, 1.0, 512),
        scale=4.0,
    )
    send_frame(a, MSG_BATCH, {"src": 1, "parts": [kv, kv]})
    _, got = recv_frame(b, expect=MSG_BATCH)
    for part in got["parts"]:
        assert np.array_equal(part.keys, kv.keys)
        assert part.values.tobytes() == kv.values.tobytes()
        assert part.scale == kv.scale


def test_many_frames_on_one_stream(pair):
    """Length prefixes keep message boundaries exact back-to-back."""
    a, b = pair
    for i in range(50):
        send_frame(a, MSG_HELLO, {"seq": i})
    for i in range(50):
        _, got = recv_frame(b)
        assert got == {"seq": i}


def test_raw_frame_round_trip(pair):
    """The data plane's primitive: bytes in, the same bytes out."""
    a, b = pair
    payload = bytes(range(256)) * 16
    sent = send_raw_frame(a, MSG_BATCH, payload)
    msg_type, got = recv_raw_frame(b, expect=MSG_BATCH)
    assert msg_type == MSG_BATCH
    assert got == payload
    assert sent == len(payload)


# -- streamed batches -------------------------------------------------------

def _batch_parts(n_pairs=512, seed=0):
    rng = np.random.default_rng(seed)
    return [
        KeyValueSet(
            keys=np.arange(n_pairs, dtype=np.uint32),
            values=rng.standard_normal(n_pairs),
            scale=4.0,
        ),
        KeyValueSet(
            keys=rng.integers(0, 99, n_pairs // 2).astype(np.int64),
            values=rng.standard_normal((n_pairs // 2, 3)).astype(np.float32),
            scale=4.0,
        ),
    ]


def _assert_parts_identical(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert g.keys.dtype == e.keys.dtype
        assert np.array_equal(g.keys, e.keys)
        assert g.values.dtype == e.values.dtype
        assert g.values.shape == e.values.shape
        assert g.values.tobytes() == e.values.tobytes()
        assert g.scale == e.scale


def test_batch_stream_round_trip(pair):
    a, b = pair
    parts = _batch_parts()
    result = {}
    sender = threading.Thread(
        target=lambda: result.update(sent=send_batch(a, 3, parts)), daemon=True
    )
    sender.start()
    src, got, _tags = recv_batch(b)
    sender.join(timeout=10.0)
    assert src == 3
    _assert_parts_identical(got, parts)
    assert result["sent"] > 0


def test_empty_batch_streams(pair):
    a, b = pair
    send_batch(a, 1, [])
    src, got, _tags = recv_batch(b)
    assert src == 1
    assert got == []


def test_batch_larger_than_frame_bound_streams(pair):
    """The point of chunked streaming: a batch far beyond
    max_frame_bytes arrives whole instead of raising FrameTooLarge."""
    a, b = pair
    bound = 8192
    parts = _batch_parts(n_pairs=20_000, seed=1)  # ~300 KiB payload
    payload_nbytes = sum(
        p.keys.nbytes + p.values.nbytes for p in parts
    )
    assert payload_nbytes > 10 * bound
    result = {}
    sender = threading.Thread(
        target=lambda: result.update(
            sent=send_batch(a, 0, parts, max_frame_bytes=bound)
        ),
        daemon=True,
    )
    sender.start()
    src, got, _tags = recv_batch(b, max_frame_bytes=bound)
    sender.join(timeout=10.0)
    assert src == 0
    _assert_parts_identical(got, parts)
    assert result["sent"] >= payload_nbytes


@pytest.mark.parametrize("compressible", [True, False])
def test_batch_compression_round_trips(pair, compressible):
    a, b = pair
    n = 50_000
    values = (
        np.zeros(n)  # deflates massively
        if compressible
        else np.random.default_rng(2).standard_normal(n)  # barely at all
    )
    parts = [KeyValueSet(keys=np.arange(n, dtype=np.uint32), values=values)]
    raw_nbytes = parts[0].keys.nbytes + parts[0].values.nbytes
    result = {}
    sender = threading.Thread(
        target=lambda: result.update(
            sent=send_batch(a, 2, parts, compress=True)
        ),
        daemon=True,
    )
    sender.start()
    src, got, _tags = recv_batch(b)
    sender.join(timeout=10.0)
    assert src == 2
    _assert_parts_identical(got, parts)
    if compressible:
        # The zlib gate actually shrank the wire traffic.
        assert result["sent"] < raw_nbytes / 2


def test_zero_key_batch_streams(pair):
    """A batch whose parts hold zero pairs (a rank that binned nothing
    for a peer still posts its one batch) round-trips: the manifest
    carries the empty parts, no DATA frames flow."""
    a, b = pair
    parts = [
        KeyValueSet.empty(scale=2.0),
        KeyValueSet.empty(key_dtype=np.int64, value_dtype=np.float32,
                          value_width=3, scale=2.0),
    ]
    send_batch(a, 5, parts)
    src, got, _tags = recv_batch(b)
    assert src == 5
    _assert_parts_identical(got, parts)
    assert all(len(p) == 0 for p in got)


def test_batch_exactly_at_frame_bound_streams(pair):
    """A payload that lands exactly on the per-frame chunk room must
    ride in one full DATA frame — the boundary case between 'fits' and
    'splits' is off-by-one territory."""
    from repro.fabric.stream import _DATA_HEADER

    bound = 4096
    room = bound - _DATA_HEADER.size  # the largest raw chunk one frame carries
    # Buffers are chunked independently; size the pair count so the
    # key buffer is exactly one full frame and the value buffer (8 B
    # per value) exactly two — every DATA frame lands on the bound.
    assert room % 4 == 0
    n_pairs = room // 4
    parts = [
        KeyValueSet(
            keys=np.arange(n_pairs, dtype=np.uint32),
            values=np.linspace(0.0, 1.0, n_pairs),
        )
    ]
    assert parts[0].keys.nbytes == room
    assert parts[0].values.nbytes == 2 * room

    a, b = pair
    result = {}
    sender = threading.Thread(
        target=lambda: result.update(
            sent=send_batch(a, 1, parts, max_frame_bytes=bound)
        ),
        daemon=True,
    )
    sender.start()
    src, got, _tags = recv_batch(b, max_frame_bytes=bound)
    sender.join(timeout=10.0)
    assert src == 1
    _assert_parts_identical(got, parts)


def test_many_small_parts_coalesce_into_few_data_frames(pair):
    """Batch coalescing: hundreds of tiny parts pack into a handful of
    DATA frames instead of one-plus frames per buffer, and the
    ``counters`` hook reports the per-batch frame count."""
    a, b = pair
    parts = [
        KeyValueSet(
            keys=np.arange(4, dtype=np.uint32) + i,
            values=np.full(4, float(i)),
        )
        for i in range(200)
    ]
    counters = {}
    result = {}
    sender = threading.Thread(
        target=lambda: result.update(
            sent=send_batch(a, 2, parts, counters=counters)
        ),
        daemon=True,
    )
    sender.start()
    src, got, _tags = recv_batch(b)
    sender.join(timeout=10.0)
    assert src == 2
    _assert_parts_identical(got, parts)
    # 200 parts x 2 buffers each would be 400 DATA frames uncoalesced;
    # the whole ~10 KB payload packs into a single chunk.
    assert counters["frames"] == 2  # 1 BATCH + 1 DATA
    assert counters["bytes"] == result["sent"]


def test_incompressible_chunk_ships_raw_through_compression_gate(pair):
    """zlib inflates tiny high-entropy chunks; with ``compress=True``
    the per-chunk gate must fall back to the raw form — and the wire
    byte count proves it did."""
    from repro.fabric.stream import _BATCH_HEADER, _DATA_HEADER
    from repro.core.kvset import pack_parts

    rng = np.random.default_rng(7)
    parts = [
        KeyValueSet(
            keys=rng.integers(0, 1 << 32, 4, dtype=np.uint32),
            values=rng.standard_normal(4),
        )
    ]
    manifest, _buffers, payload_nbytes = pack_parts(parts)
    import zlib
    whole = parts[0].keys.tobytes() + parts[0].values.tobytes()
    assert len(zlib.compress(whole)) > len(whole), "payload must be incompressible"

    a, b = pair
    sent = send_batch(a, 3, parts, compress=True)
    src, got, _tags = recv_batch(b)
    assert src == 3
    _assert_parts_identical(got, parts)
    # Exactly the raw bytes rode the wire: one header frame (struct +
    # manifest) plus DATA frames carrying the *uncompressed* chunks.
    # The tiny key and value buffers coalesce into a single DATA frame.
    expected = (
        _BATCH_HEADER.size + len(manifest)
        + _DATA_HEADER.size + payload_nbytes
    )
    assert sent == expected


def test_unusably_small_frame_bound_is_loud(pair):
    a, _ = pair
    with pytest.raises(FrameTooLarge, match="no room"):
        send_batch(a, 0, _batch_parts(), max_frame_bytes=8)


def test_zero_length_batch_chunk_is_protocol_error(pair):
    """A DATA chunk that makes no progress must fail fast, not spin
    the receive loop until the job timeout."""
    from repro.fabric.stream import _BATCH_HEADER, _DATA_HEADER
    from repro.fabric.wire import MSG_BATCH_DATA

    a, b = pair
    send_raw_frame(a, MSG_BATCH, _BATCH_HEADER.pack(0, 0, 64, 0))
    send_raw_frame(a, MSG_BATCH_DATA, _DATA_HEADER.pack(0, 0))
    with pytest.raises(ProtocolError, match="zero-length"):
        recv_batch(b)


def test_manifest_payload_mismatch_is_protocol_error(pair):
    """A manifest that disagrees with the delivered bytes is classified
    as a protocol problem (the exchange loop drops such connections)."""
    a, b = pair
    parts = _batch_parts(n_pairs=64)
    result = {}
    sender = threading.Thread(
        target=lambda: result.update(sent=send_batch(a, 0, parts)), daemon=True
    )
    sender.start()

    # Proxy the header frame through untouched, but truncate the
    # declared total so the manifest promises more than arrives.
    from repro.fabric.stream import _BATCH_HEADER

    msg_type, payload = recv_raw_frame(b)
    src, flags, total, mlen = _BATCH_HEADER.unpack_from(payload)
    c, d = socket.socketpair()
    c.settimeout(5.0)
    d.settimeout(5.0)
    try:
        send_raw_frame(
            c,
            msg_type,
            _BATCH_HEADER.pack(src, flags, total // 2, mlen)
            + payload[_BATCH_HEADER.size :],
        )
        moved = 0
        while moved < total // 2:
            t, frame = recv_raw_frame(b)
            send_raw_frame(c, t, frame)
            moved = moved + len(frame) - 12
        with pytest.raises(ProtocolError):
            recv_batch(d)
    finally:
        sender.join(timeout=10.0)
        c.close()
        d.close()


# -- bound enforcement ------------------------------------------------------

def test_oversized_send_is_refused(pair):
    a, _ = pair
    with pytest.raises(FrameTooLarge):
        send_frame(a, MSG_HELLO, b"x" * 1024, max_frame_bytes=512)


def test_oversized_declared_length_is_refused_before_allocation(pair):
    a, b = pair
    # A hand-forged header declaring a huge payload must be rejected
    # from the 16 header bytes alone.
    a.sendall(HEADER.pack(MAGIC, PROTOCOL_VERSION, MSG_HELLO, 1 << 40))
    with pytest.raises(FrameTooLarge):
        recv_frame(b, max_frame_bytes=1 << 20)


# -- truncation / disconnect ------------------------------------------------

def test_truncated_header_raises(pair):
    a, b = pair
    a.sendall(b"GPMR\x01")  # 5 of 16 header bytes
    a.close()
    with pytest.raises(TruncatedFrame):
        recv_frame(b)


def test_truncated_payload_raises(pair):
    a, b = pair
    a.sendall(HEADER.pack(MAGIC, PROTOCOL_VERSION, MSG_HELLO, 1000) + b"x" * 10)
    a.close()
    with pytest.raises(TruncatedFrame):
        recv_frame(b)


def test_clean_close_raises_peer_disconnected(pair):
    a, b = pair
    a.close()
    with pytest.raises(PeerDisconnected):
        recv_frame(b)


# -- protocol violations ----------------------------------------------------

def test_protocol_version_mismatch(pair):
    a, b = pair
    future = struct.Struct("!4sBB2xQ").pack(MAGIC, PROTOCOL_VERSION + 1, MSG_HELLO, 0)
    a.sendall(future)
    with pytest.raises(ProtocolVersionError, match="protocol"):
        recv_frame(b)


def test_bad_magic(pair):
    a, b = pair
    a.sendall(HEADER.pack(b"HTTP", PROTOCOL_VERSION, MSG_HELLO, 0))
    with pytest.raises(ProtocolError, match="magic"):
        recv_frame(b)


def test_unexpected_message_type(pair):
    a, b = pair
    send_frame(a, MSG_BATCH, {"src": 0, "parts": []})
    with pytest.raises(ProtocolError, match="expected HELLO"):
        recv_frame(b, expect=MSG_HELLO)


def test_parse_address():
    assert parse_address("10.0.0.7:5555") == ("10.0.0.7", 5555)
    assert parse_address("host.example:1") == ("host.example", 1)
    with pytest.raises(ValueError):
        parse_address("5555")
    with pytest.raises(ValueError):
        parse_address(":5555")


# -- coordinator handshake --------------------------------------------------

def _register(rank, address, delay=0.0, timeout=10.0):
    if delay:
        time.sleep(delay)
    ep = RankEndpoint(rank, address, timeout_seconds=timeout)
    ep.connect()
    return ep


def _register_expecting_rejection(sink, rank, address):
    """Thread target for ranks the coordinator will turn away."""
    try:
        sink.append(_register(rank, address))
    except PeerDisconnected:
        pass  # the coordinator hung up on us, as the test expects


def test_handshake_with_straggler_rank():
    """Registration order is free: a late rank still completes the
    handshake, and every rank learns the same cluster size."""
    with Coordinator(3, timeout_seconds=10.0) as coord:
        endpoints = []
        threads = [
            threading.Thread(
                # Rank 1 dials in well after 2 and 0.
                target=lambda r=r, d=d: endpoints.append(
                    _register(r, coord.address, delay=d)
                ),
                daemon=True,
            )
            for r, d in ((2, 0.0), (0, 0.05), (1, 0.6))
        ]
        for t in threads:
            t.start()
        coord.wait_for_ranks()
        for t in threads:
            t.join(timeout=10.0)
        try:
            assert len(endpoints) == 3
            assert all(ep.n_workers == 3 for ep in endpoints)
            assert set(coord.shuffle_peers) == {0, 1, 2}
            # Each advertised shuffle listener is really dialable.
            for host, port in coord.shuffle_peers.values():
                socket.create_connection((host, port), timeout=5.0).close()
        finally:
            for ep in endpoints:
                ep.close()


def test_registration_timeout_names_missing_ranks():
    with Coordinator(2, timeout_seconds=0.5) as coord:
        eps = []
        t = threading.Thread(
            target=lambda: eps.append(_register(0, coord.address)), daemon=True
        )
        t.start()
        try:
            with pytest.raises(ClusterTimeout, match=r"rank\(s\) \[1\]"):
                coord.wait_for_ranks()
        finally:
            t.join(timeout=5.0)
            for ep in eps:
                ep.close()


def test_out_of_range_rank_is_rejected():
    with Coordinator(2, timeout_seconds=5.0) as coord:
        t = threading.Thread(
            target=_register_expecting_rejection,
            args=([], 7, coord.address),
            daemon=True,
        )
        t.start()
        with pytest.raises(FabricError, match="out-of-range rank 7"):
            coord.wait_for_ranks()
        t.join(timeout=5.0)


def test_stray_connection_does_not_abort_registration():
    """A port scanner / health check that connects and closes (or
    sends garbage) is dropped; the real ranks still register."""
    with Coordinator(2, timeout_seconds=10.0) as coord:
        def _noise_then_ranks():
            # Stray 1: connect and close immediately.
            socket.create_connection(coord.address, timeout=5.0).close()
            # Stray 2: send non-fabric bytes, then close.
            s = socket.create_connection(coord.address, timeout=5.0)
            s.sendall(b"GET / HTTP/1.1\r\n\r\n")
            s.close()

        eps = []
        threads = [threading.Thread(target=_noise_then_ranks, daemon=True)] + [
            threading.Thread(
                target=lambda r=r: eps.append(
                    _register(r, coord.address, delay=0.2)
                ),
                daemon=True,
            )
            for r in (0, 1)
        ]
        for t in threads:
            t.start()
        coord.wait_for_ranks()
        for t in threads:
            t.join(timeout=10.0)
        try:
            assert set(coord.shuffle_peers) == {0, 1}
        finally:
            for ep in eps:
                ep.close()


def test_stray_connection_does_not_abort_shuffle():
    """The data-plane listener tolerates scanners too: a rank's
    exchange drops garbage connections and still collects every real
    batch."""
    a = RankEndpoint(0, ("127.0.0.1", 1), timeout_seconds=10.0)
    b = RankEndpoint(1, ("127.0.0.1", 1), timeout_seconds=10.0)
    a.n_workers = b.n_workers = 2
    a.peers = b.peers = {0: a.shuffle_address, 1: b.shuffle_address}

    def _part(tag):
        return KeyValueSet(
            keys=np.full(8, tag, dtype=np.uint32), values=np.arange(8.0)
        )

    parts_for = [[_part(0)], [_part(1)]]
    try:
        # Noise at rank 0's shuffle port before/while batches fly.
        s = socket.create_connection(a.shuffle_address, timeout=5.0)
        s.sendall(b"\x00" * 32)
        s.close()
        socket.create_connection(a.shuffle_address, timeout=5.0).close()

        results = {}
        tb = threading.Thread(
            target=lambda: results.update(b=b.exchange(parts_for)),
            daemon=True,
        )
        tb.start()
        results["a"] = a.exchange(parts_for)
        tb.join(timeout=10.0)
        assert sorted(src for src, _p, _t in results["a"]) == [0, 1]
        assert sorted(src for src, _p, _t in results["b"]) == [0, 1]
        for batches in results.values():
            for src, parts, _tags in batches:
                assert len(parts) == 1
                # Rank r's inbox got the parts_for[r] payload.
                assert parts[0].values.tobytes() == np.arange(8.0).tobytes()
    finally:
        a.close()
        b.close()


def test_error_frame_at_barrier_surfaces_rank_traceback():
    """A rank that fails before the barrier reports its traceback as
    RankFailure, not as a framing ProtocolError."""
    from repro.fabric import RankFailure

    with Coordinator(1, timeout_seconds=10.0) as coord:
        eps = []
        t = threading.Thread(
            target=lambda: eps.append(_register(0, coord.address)), daemon=True
        )
        t.start()
        coord.wait_for_ranks()
        t.join(timeout=10.0)
        try:
            eps[0].send_error("Traceback: boom before barrier")
            with pytest.raises(RankFailure, match="boom before barrier"):
                coord.barrier("start")
        finally:
            for ep in eps:
                ep.close()


def test_broadcast_to_dead_rank_names_the_rank():
    """A rank that registers and dies before ASSIGN arrives surfaces
    as RankFailure(rank), not a bare disconnect from a send loop."""
    from repro.fabric import RankFailure

    with Coordinator(1, timeout_seconds=10.0) as coord:
        eps = []
        t = threading.Thread(
            target=lambda: eps.append(_register(0, coord.address)), daemon=True
        )
        t.start()
        coord.wait_for_ranks()
        t.join(timeout=10.0)
        eps[0].close()  # rank dies right after registering
        with pytest.raises(RankFailure, match="rank 0"):
            # One ASSIGN payload cannot overrun the socket buffers, so
            # grow it until the dead peer's RST is felt mid-send.
            for _ in range(50):
                coord.broadcast_assignments(b"x" * (1 << 20))
                time.sleep(0.02)


def test_duplicate_rank_is_rejected():
    with Coordinator(2, timeout_seconds=5.0) as coord:
        eps = []
        threads = [
            threading.Thread(
                target=_register_expecting_rejection,
                args=(eps, 0, coord.address),
                daemon=True,
            )
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        try:
            with pytest.raises(FabricError, match="duplicate registration"):
                coord.wait_for_ranks()
        finally:
            for t in threads:
                t.join(timeout=5.0)
            for ep in eps:
                ep.close()


# -- authenticated registration (protocol v5) --------------------------------

FABRIC_KEY = b"fabric-shared-key"


def test_authenticated_registration_round_trip():
    """Keyed coordinator + keyed ranks: the handshake completes and the
    cluster forms exactly as in the keyless case."""
    with Coordinator(2, timeout_seconds=10.0, auth_key=FABRIC_KEY) as coord:
        eps = []

        def _keyed(rank):
            ep = RankEndpoint(rank, coord.address, timeout_seconds=10.0,
                              auth_key=FABRIC_KEY)
            ep.connect()
            eps.append(ep)

        threads = [threading.Thread(target=_keyed, args=(r,), daemon=True)
                   for r in (0, 1)]
        for t in threads:
            t.start()
        try:
            coord.wait_for_ranks()
            for t in threads:
                t.join(timeout=10.0)
            assert len(eps) == 2
            assert all(ep.n_workers == 2 for ep in eps)
        finally:
            for ep in eps:
                ep.close()


def test_wrong_key_rank_is_dropped_not_fatal():
    """A rank with the wrong key is refused like a port scanner — the
    coordinator keeps listening and the registration deadline, not an
    auth crash, reports the missing rank."""
    with Coordinator(2, timeout_seconds=0.8, auth_key=FABRIC_KEY) as coord:
        failures = []

        def _wrong_key():
            try:
                RankEndpoint(0, coord.address, timeout_seconds=5.0,
                             auth_key=b"not-it").connect()
            except FabricError as exc:
                failures.append(exc)

        t = threading.Thread(target=_wrong_key, daemon=True)
        t.start()
        with pytest.raises(ClusterTimeout):
            coord.wait_for_ranks()
        t.join(timeout=5.0)
        assert failures, "wrong-key rank should have been refused"


def test_keyless_rank_against_keyed_coordinator_names_the_problem():
    with Coordinator(1, timeout_seconds=0.8, auth_key=FABRIC_KEY) as coord:
        errors = []

        def _keyless():
            try:
                RankEndpoint(0, coord.address, timeout_seconds=5.0).connect()
            except FabricError as exc:
                errors.append(str(exc))

        t = threading.Thread(target=_keyless, daemon=True)
        t.start()
        with pytest.raises(ClusterTimeout):
            coord.wait_for_ranks()
        t.join(timeout=5.0)
        assert errors and "auth key" in errors[0]

"""The local backend's zero-copy exchange and its failure paths.

Covers the shared-memory queue transport in isolation (encode/decode,
segment lifecycle, undelivered-message cleanup), the pickle-vs-shm
parity, and three exchange-path regressions:

* a worker that fails *mid-posting* backfills only the peers that never
  got its batch (never double-posts to an already-served peer);
* a worker that exits cleanly (code 0) without reporting a result is a
  prompt :class:`WorkerFailure`, not a full-timeout hang;
* network byte accounting excludes self-destined parts (they never
  leave the process), reported separately as ``bytes_kept_local``.
"""

import multiprocessing as mp
import os
import threading
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.apps.sparse_int_occurrence import sio_dataset, sio_job
from repro.core import Mapper, MapReduceJob, make_executor
from repro.core.kvset import KeyValueSet
from repro.core.runtime import resolve_chunks
from repro.exec import WorkerFailure, map_worker
from repro.exec.exchange import (
    SHM_MIN_BYTES,
    decode_batch,
    encode_batch,
    ensure_shared_tracker,
    release_message,
    release_segment,
)
from repro.exec.local import _ListChunkSource, _worker_main


def _big_batch():
    n = SHM_MIN_BYTES  # 12 B/pair -> comfortably above the threshold
    return [
        KeyValueSet(
            keys=np.arange(n, dtype=np.uint32),
            values=np.arange(n, dtype=np.float64),
            scale=2.0,
        )
    ]


def _small_batch():
    return [
        KeyValueSet(keys=np.arange(8, dtype=np.uint32), values=np.ones(8))
    ]


# -- transport encode/decode ------------------------------------------------

def test_small_batch_rides_inline():
    message = encode_batch(_small_batch(), transport="shm")
    assert message[0] == "inline"
    parts, segment = decode_batch(message)
    assert segment is None
    assert len(parts) == 1
    assert parts[0].values.tobytes() == np.ones(8).tobytes()


def test_large_batch_rides_shared_memory_and_unlinks():
    batch = _big_batch()
    message = encode_batch(batch, transport="shm")
    assert message[0] == "shm"
    name = message[1]
    parts, segment = decode_batch(message)
    assert segment is not None
    assert parts[0].keys.tobytes() == batch[0].keys.tobytes()
    assert parts[0].values.tobytes() == batch[0].values.tobytes()
    assert parts[0].scale == 2.0
    # Zero-copy: the arrays are views into the mapped segment.
    assert not parts[0].keys.flags.owndata
    del parts
    release_segment(segment)
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_release_segment_with_live_views_still_unlinks():
    """BufferError on close (views alive) must not block the unlink."""
    message = encode_batch(_big_batch(), transport="shm")
    parts, segment = decode_batch(message)
    release_segment(segment)  # parts still reference the mapping
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=message[1])
    assert parts[0].keys[3] == 3  # mapping stays valid for live views


def test_release_message_cleans_undelivered_segment():
    message = encode_batch(_big_batch(), transport="shm")
    release_message(message)
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=message[1])
    release_message(message)  # second release is a no-op, not an error


def test_pickle_transport_round_trip():
    message = encode_batch(_small_batch(), transport="pickle")
    assert message[0] == "pickle"
    parts, segment = decode_batch(message)
    assert segment is None
    assert parts[0].values.tobytes() == np.ones(8).tobytes()


def test_unknown_transport_rejected():
    with pytest.raises(ValueError, match="transport"):
        encode_batch(_small_batch(), transport="carrier-pigeon")
    with pytest.raises(ValueError, match="transport"):
        make_executor("local", 2, exchange="carrier-pigeon")


@pytest.mark.parametrize("n_workers", (2, 4))
def test_pickle_and_shm_exchanges_are_bit_identical(n_workers):
    ds = sio_dataset(60_000, chunk_elements=9_000, key_space=1 << 14, seed=19)
    job = sio_job(key_space=1 << 14).with_config(enable_stealing=False)
    shm_run = make_executor("local", n_workers, exchange="shm").run(
        job, dataset=ds
    )
    pickle_run = make_executor("local", n_workers, exchange="pickle").run(
        job, dataset=ds
    )
    for a, b in zip(shm_run.outputs, pickle_run.outputs):
        assert (a is None) == (b is None)
        if a is not None:
            assert np.array_equal(a.keys, b.keys)
            assert a.values.tobytes() == b.values.tobytes()


# -- regression: mid-posting failure backfill -------------------------------

class _ListQueue:
    def __init__(self):
        self.items = []

    def put(self, item):
        self.items.append(item)

    def get(self, *a, **k):  # pragma: no cover - receive side unused
        raise AssertionError("test worker should fail before receiving")


class _BoomQueue:
    """A queue whose put always fails (a torn-down pipe)."""

    def put(self, item):
        raise RuntimeError("pipe burst")


@pytest.mark.parametrize("transport", ("pickle", "shm"))
def test_mid_posting_failure_backfills_only_unserved_peers(transport):
    """Rank 0 posts to rank 1, then fails posting to rank 2.  Rank 1
    must end with exactly ONE batch from rank 0 — re-posting an empty
    backfill to it would make its n-1 receive loop miscount and merge
    another source's batch nondeterministically."""
    ds = sio_dataset(6_000, chunk_elements=2_000, key_space=1 << 12, seed=3)
    job = sio_job(key_space=1 << 12).with_config(enable_stealing=False)
    chunks = resolve_chunks(ds, None)

    own, served, result_queue = _ListQueue(), _ListQueue(), _ListQueue()
    queues = [own, served, _BoomQueue()]
    _worker_main(
        0, 3, job, _ListChunkSource(chunks[:1], 0), queues, result_queue,
        transport,
    )

    # Exactly one message for the served peer: the real batch.
    assert len(served.items) == 1
    src, message, tags = served.items[0]
    assert src == 0
    parts, segment = decode_batch(message)
    assert sum(len(p) for p in parts) > 0
    assert len(tags) == len(parts)
    if segment is not None:
        release_segment(segment)
    # The failure itself was reported, with the posting traceback.
    assert len(result_queue.items) == 1
    rank, error, output, _stats, _obs = result_queue.items[0]
    assert rank == 0 and output is None
    assert "pipe burst" in error


# -- regression: clean exit without a result --------------------------------

class _ExitZeroMapper(Mapper):
    """Dies with exit code 0 on chunk 0 — no traceback, no result."""

    def map_chunk(self, chunk):
        if chunk.index == 0:
            os._exit(0)
        return KeyValueSet(
            keys=np.asarray([chunk.index], dtype=np.uint32),
            values=np.ones(1),
        )

    def map_cost(self, chunk):  # pragma: no cover - never priced
        return []


def test_clean_exit_without_result_is_prompt_failure():
    """`dead_worker_failure` only flags nonzero exit codes; a rank that
    exits 0 without posting must still fail the run promptly instead of
    hanging for the full timeout_seconds."""
    ds = sio_dataset(9_000, chunk_elements=1_500, key_space=1 << 10, seed=2)
    job = MapReduceJob(name="ghost", mapper=_ExitZeroMapper()).with_config(
        enable_stealing=False
    )
    t0 = time.monotonic()
    with pytest.raises(WorkerFailure, match="exited cleanly without posting"):
        make_executor("local", 3, timeout_seconds=60.0).run(job, dataset=ds)
    assert time.monotonic() - t0 < 30.0


def _shm_roundtrip_child() -> None:
    seg = shared_memory.SharedMemory(create=True, size=4096)
    try:
        seg.buf[:4] = b"ok!!"
    finally:
        seg.close()
        seg.unlink()


def test_fork_while_tracker_lock_held_does_not_deadlock_child():
    """A multi-threaded driver (the job-service daemon runs concurrent
    jobs) can fork a rank at the exact moment another thread holds the
    resource tracker's process-local RLock; the child used to inherit
    it locked forever and deadlock on its first shm registration.
    ``ensure_shared_tracker`` installs at-fork hooks that serialise the
    fork against the lock and hand the child a fresh one."""
    if "fork" not in mp.get_all_start_methods():
        pytest.skip("platform without fork")
    from multiprocessing import resource_tracker

    ensure_shared_tracker()
    tracker = resource_tracker._resource_tracker

    release = threading.Event()
    entered = threading.Event()

    def _hold() -> None:
        with tracker._lock:
            entered.set()
            release.wait(10.0)

    holder = threading.Thread(target=_hold, daemon=True)
    holder.start()
    assert entered.wait(5.0)
    # Let the fork through after a beat: the before-fork hook must wait
    # for the holder rather than snapshotting the lock mid-hold.
    threading.Timer(0.3, release.set).start()

    proc = mp.get_context("fork").Process(target=_shm_roundtrip_child)
    try:
        proc.start()
        proc.join(20.0)
        # Without the at-fork hooks the child hangs in ensure_running.
        assert proc.exitcode == 0
    finally:
        release.set()
        if proc.is_alive():  # pragma: no cover - only on regression
            proc.kill()
            proc.join(5.0)
        holder.join(5.0)


# -- regression: self vs remote byte split ----------------------------------

def test_map_phase_output_splits_self_and_remote_bytes():
    ds = sio_dataset(40_000, chunk_elements=8_000, key_space=1 << 14, seed=5)
    job = sio_job(key_space=1 << 14).with_config(enable_stealing=False)
    out = map_worker(job, resolve_chunks(ds, None), 4)
    assert out.bytes_binned > 0
    assert sum(out.bytes_binned_by_dest) == out.bytes_binned
    for rank in range(4):
        assert out.bytes_self(rank) == out.bytes_binned_by_dest[rank]
        assert out.bytes_self(rank) + out.bytes_remote(rank) == out.bytes_binned
        # A round-robin partition over a uniform key set touches every
        # destination, so both halves of the split are non-trivial.
        assert out.bytes_self(rank) > 0
        assert out.bytes_remote(rank) > 0


def test_network_bytes_exclude_self_destined_parts():
    ds = sio_dataset(30_000, chunk_elements=6_000, key_space=1 << 14, seed=9)
    job = sio_job(key_space=1 << 14).with_config(enable_stealing=False)

    # One worker: every part is self-destined — nothing rides the wire.
    solo = make_executor("serial", 1).run(job, dataset=ds).stats
    assert solo.total_network_bytes == 0
    assert solo.total_local_exchange_bytes > 0

    # Four workers: both shares are visible, and the real backends all
    # agree on the split (same map_worker accounting everywhere).
    serial = make_executor("serial", 4).run(job, dataset=ds).stats
    local = make_executor("local", 4).run(job, dataset=ds).stats
    assert serial.total_network_bytes > 0
    assert serial.total_local_exchange_bytes > 0
    assert local.total_network_bytes == serial.total_network_bytes
    assert local.total_local_exchange_bytes == serial.total_local_exchange_bytes
    # Every worker moved something on each side of the split.
    for w in serial.workers:
        assert w.bytes_sent_network > 0
        assert w.bytes_kept_local > 0

    # The sim charges its fabric the same way (loopback traffic is not
    # network traffic), so modeled and measured byte ledgers agree.
    sim = make_executor("sim", 4).run(job, dataset=ds).stats
    assert sim.total_network_bytes == serial.total_network_bytes
    assert sim.total_local_exchange_bytes == serial.total_local_exchange_bytes

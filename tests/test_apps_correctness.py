"""Functional correctness of all five benchmark apps vs serial oracles.

Every app runs at sample_factor=1 (bit-exact datasets) over several GPU
counts and must reproduce the reference answer exactly (integer counts)
or to floating-point round-off (sums, products).
"""

import pytest

from repro.apps import (
    kmc_dataset,
    kmc_validate,
    lr_dataset,
    lr_fit,
    lr_validate,
    mm_dataset,
    mm_validate,
    run_kmc,
    run_lr,
    run_matmul,
    run_sio,
    run_wo,
    sio_dataset,
    sio_validate,
    wo_dataset,
    wo_validate,
)


# -- SIO --------------------------------------------------------------------

@pytest.mark.parametrize("n_gpus", [1, 3, 4])
def test_sio_counts_exact(n_gpus):
    ds = sio_dataset(
        n_elements=60_000, chunk_elements=10_000, key_space=1 << 12, seed=3
    )
    result = run_sio(n_gpus, ds)
    sio_validate(result, ds)


def test_sio_no_compaction_traffic():
    # Sparse keys: exchange traffic ~ pair_bytes * n (nothing compacts).
    ds = sio_dataset(
        n_elements=40_000, chunk_elements=10_000, key_space=1 << 24, seed=4
    )
    stats = run_sio(2, ds).stats
    shuffled = stats.total_network_bytes + stats.total_local_exchange_bytes
    assert shuffled >= 40_000 * 8 * 0.9
    # Network bytes exclude the self-destined share; with a uniform
    # round-robin split over 2 ranks that is ~half the traffic.
    assert stats.total_network_bytes >= 40_000 * 8 * 0.9 / 2


# -- WO --------------------------------------------------------------------

@pytest.mark.parametrize("n_gpus", [1, 2, 4])
def test_wo_counts_exact(n_gpus):
    ds = wo_dataset(n_chars=200_000, chunk_chars=40_000, seed=5, n_words=2_000)
    result = run_wo(n_gpus, ds)
    wo_validate(result, ds)


def test_wo_counts_exact_above_partitioner_threshold(monkeypatch):
    ds = wo_dataset(n_chars=120_000, chunk_chars=20_000, seed=6, n_words=1_000)
    result = run_wo(12, ds)  # > PARTITIONER_THRESHOLD: partitioner active
    wo_validate(result, ds)


def test_wo_accumulation_shrinks_traffic():
    ds = wo_dataset(n_chars=400_000, chunk_chars=50_000, seed=7, n_words=1_000)
    with_acc = run_wo(2, ds, use_accumulation=True)
    without = run_wo(2, ds, use_accumulation=False)
    wo_validate(with_acc, ds)
    wo_validate(without, ds)
    assert (
        with_acc.stats.total_network_bytes < without.stats.total_network_bytes / 3
    )


def test_wo_thread_reducer_same_answer():
    ds = wo_dataset(n_chars=100_000, chunk_chars=25_000, seed=8, n_words=1_000)
    result = run_wo(2, ds, warp_reducer=False)
    wo_validate(result, ds)


# -- KMC --------------------------------------------------------------------

@pytest.mark.parametrize("n_gpus", [1, 2, 5])
def test_kmc_step_matches_lloyd(n_gpus):
    ds = kmc_dataset(
        n_points=30_000, n_centers=8, chunk_points=6_000, seed=9
    )
    result = run_kmc(n_gpus, ds)
    kmc_validate(result, ds)


def test_kmc_traffic_is_tiny():
    ds = kmc_dataset(n_points=50_000, n_centers=16, chunk_points=10_000, seed=10)
    result = run_kmc(4, ds)
    # Each rank ships a K*(dims+1)-entry table, nothing point-sized.
    assert result.stats.total_network_bytes < 16 * 3 * 12 * 4 * 4


# -- LR --------------------------------------------------------------------

@pytest.mark.parametrize("n_gpus", [1, 2, 6])
def test_lr_sums_match_serial(n_gpus):
    ds = lr_dataset(n_points=80_000, chunk_points=16_000, seed=11)
    result = run_lr(n_gpus, ds)
    lr_validate(result, ds)


def test_lr_recovers_generating_model():
    ds = lr_dataset(
        n_points=200_000, chunk_points=50_000, seed=12, slope=3.5, intercept=0.25
    )
    result = run_lr(2, ds)
    slope, intercept = lr_fit(result)
    assert slope == pytest.approx(3.5, abs=0.02)
    assert intercept == pytest.approx(0.25, abs=0.02)


def test_lr_outputs_only_on_rank0():
    ds = lr_dataset(n_points=20_000, chunk_points=5_000, seed=13)
    result = run_lr(3, ds)
    assert result.outputs[0] is not None and len(result.outputs[0]) == 6
    for kv in result.outputs[1:]:
        assert kv is None or len(kv) == 0


# -- MM --------------------------------------------------------------------

@pytest.mark.parametrize("n_gpus", [1, 2, 4])
def test_mm_product_matches_numpy(n_gpus):
    ds = mm_dataset(m=64, tile=16, kspan=2, seed=14)
    result = run_matmul(n_gpus, ds)
    mm_validate(result, ds)


def test_mm_phase2_sums_multiple_partials():
    ds = mm_dataset(m=64, tile=16, kspan=1, seed=15)  # 4 partials per tile
    assert ds.k_groups == 4
    result = run_matmul(2, ds)
    mm_validate(result, ds)


def test_mm_single_tile_degenerate():
    ds = mm_dataset(m=8, tile=8, kspan=1, seed=16)
    result = run_matmul(1, ds)
    mm_validate(result, ds)


def test_mm_sampled_run_matches_sampled_oracle():
    ds = mm_dataset(m=64, tile=16, kspan=2, seed=17, sample_factor=4)
    result = run_matmul(2, ds)
    mm_validate(result, ds)  # oracle is the sampled matrices' product
    assert result.product.shape == (16, 16)


def test_mm_stats_merge_phases():
    ds = mm_dataset(m=32, tile=8, kspan=2, seed=18)
    result = run_matmul(2, ds)
    merged = result.stats
    assert merged.elapsed == pytest.approx(
        result.phase1.elapsed + result.phase2.elapsed
    )
    assert merged.total_chunks == (
        result.phase1.stats.total_chunks + result.phase2.stats.total_chunks
    )

"""Tests for the experiment harness: report, loc, configs, runners."""

import pytest

from repro.harness import (
    APP_NAMES,
    GPU_COUNTS,
    TABLE2_SIZES,
    TABLE3_SIZES,
    app_loc_counts,
    banner,
    dataset_for,
    efficiency_curve,
    render_series,
    render_table,
    run_app,
    sample_factor_for,
    strong_scaling_sizes,
    table1,
    table4,
)
from repro.harness.experiments import chunk_elements_for, mm_tile_for
from repro.harness.loc import count_loc


# -- report -------------------------------------------------------------------

def test_render_table_alignment():
    text = render_table(["a", "bee"], [[1, 2.5], [100, 0.001]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bee" in lines[1]
    assert len({len(l) for l in lines[1:]}) == 1  # consistent width


def test_render_table_float_formatting():
    text = render_table(["x"], [[0.00001], [12345.6], [1.5], [0]])
    assert "1e-05" in text
    assert "1.23e+04" in text
    assert "1.500" in text


def test_render_series_pads_missing():
    text = render_series("x", [1, 2, 3], [("s", [10, 20])])
    assert "3" in text  # row exists even without a y value


def test_banner_has_title():
    assert "hello" in banner("hello")


# -- loc -------------------------------------------------------------------

def test_count_loc_ignores_comments_and_docstrings(tmp_path):
    f = tmp_path / "m.py"
    f.write_text(
        '"""Module docstring\nspanning lines."""\n'
        "# comment\n"
        "\n"
        "x = 1  # trailing comment still counts the line\n"
        "def f():\n"
        '    """doc"""\n'
        "    return x\n"
    )
    assert count_loc(f) == 3  # "x = 1", "def f():", "return x"


def test_app_loc_counts_cover_all_apps():
    counts = app_loc_counts()
    assert set(counts) == {"MM", "KMC", "WO", "SIO", "LR"}
    for app, n in counts.items():
        assert 50 < n < 700, (app, n)


# -- experiment configs ---------------------------------------------------

def test_gpu_counts_match_paper():
    assert GPU_COUNTS == (1, 4, 8, 16, 32, 64)


def test_strong_scaling_sizes_quick_subset():
    full = strong_scaling_sizes("SIO")
    quick = strong_scaling_sizes("SIO", quick=True)
    assert set(quick) <= set(full)
    assert len(quick) < len(full)


def test_sample_factor_keeps_functional_size_bounded():
    for app in APP_NAMES:
        for size in strong_scaling_sizes(app):
            sf = sample_factor_for(app, size)
            if app == "MM":
                assert mm_tile_for(size) // sf >= 32
            else:
                assert size // sf <= 4 << 20


def test_chunk_policy_gives_parallelism_at_table_sizes():
    # Table 2/3 runs use 4 GPUs: every dataset must have >= 4 chunks.
    for app, size in {**TABLE2_SIZES, **TABLE3_SIZES}.items():
        ds = dataset_for(app, size)
        assert ds.n_chunks >= 4, (app, size, ds.n_chunks)


def test_chunk_policy_bounds():
    m = 1 << 20
    assert chunk_elements_for("SIO", 1 * m) == 1 * m
    assert chunk_elements_for("SIO", 1024 * m) == 16 * m
    with pytest.raises(ValueError):
        chunk_elements_for("MM", 1024)


def test_dataset_for_unknown_app():
    with pytest.raises(ValueError):
        dataset_for("FFT", 100)


def test_mm_tile_rule():
    assert mm_tile_for(16384) == 1024
    assert mm_tile_for(1024) == 256
    assert mm_tile_for(128) == 64


# -- runners ----------------------------------------------------------------

@pytest.mark.parametrize("app", ["SIO", "WO", "KMC", "LR", "MM"])
def test_run_app_all_apps_small(app):
    size = 256 if app == "MM" else 1 << 20
    ds = dataset_for(app, size, seed=1)
    run = run_app(app, ds, 2)
    assert run.elapsed > 0
    assert run.n_gpus == 2
    assert abs(sum(run.stats.stage_fractions.values()) - 1.0) < 1e-9


def test_run_app_unknown():
    with pytest.raises(ValueError):
        run_app("NOPE", None, 1)


def test_efficiency_curve_structure():
    curve = efficiency_curve("LR", 1 << 20, gpu_counts=(1, 2, 4))
    assert curve.gpu_counts == [1, 2, 4]
    assert curve.efficiency_at(1) == pytest.approx(1.0)
    assert len(curve.speedups) == 3
    assert all(s > 0 for s in curve.speedups)


# -- cheap tables -----------------------------------------------------------

def test_table1_is_static():
    t = table1()
    assert "Dataset sizes" in t.render()


def test_table4_counts_render():
    t = table4()
    text = t.render()
    assert "GPMR (this repo)" in text
    assert "397" in text  # paper's WO figure appears

"""Streaming ingest: parity, faults, readers, and the satellite fixes.

The out-of-core contract: a ``streamed(factory, **spec)`` dataset runs
every job **bit-identically** to the conventionally materialised
``factory(**spec)`` on all four backends — the only difference is
*where* payloads live (re-materialised on workers at grant time, never
resident in the driver).  The fault-tolerance corollary: a rank killed
mid-map on a streamed run recovers exactly like a materialised one,
because reclaimed descriptor chunks rebuild their payloads from
``(reader, index)`` on the respawned rank.

Also regression-tests the satellite fixes that rode along with the
streaming PR: the ``Chunk`` codec's numeric key sort past 10 arrays,
the dataset cache's per-key build locks (and its ``stream`` flag), the
executor pool's retire-on-failed-reset path, and the canonical
content-based freeze keys.
"""

import pickle
import threading

import numpy as np
import pytest

from repro.apps.kmeans import kmc_dataset, kmc_job
from repro.apps.linear_regression import lr_dataset, lr_job
from repro.apps.matmul import mm_dataset, mm_phase1_job
from repro.apps.sparse_int_occurrence import sio_dataset, sio_job
from repro.apps.word_occurrence import wo_dataset, wo_job
from repro.core import FaultPlan, make_executor
from repro.core.chunk import Chunk
from repro.obs import Observability
from repro.service.cache import DatasetCache
from repro.service.pool import ExecutorPool
from repro.util.freeze import freeze_kwargs, freeze_value
from repro.workloads import (
    DatasetReader,
    NpySpanReader,
    StreamedDataset,
    TextSpanReader,
    streamed,
)

BACKENDS = ("sim", "serial", "local", "cluster")
PROCESS_BACKENDS = ("local", "cluster")
N_WORKERS = 2


def _assert_outputs_identical(ref, other, tag):
    assert len(ref.outputs) == len(other.outputs), tag
    for rank, (a, b) in enumerate(zip(ref.outputs, other.outputs)):
        where = f"{tag} rank {rank}"
        assert (a is None) == (b is None), where
        if a is None:
            continue
        assert a.keys.dtype == b.keys.dtype, where
        assert a.values.dtype == b.values.dtype, where
        assert np.array_equal(a.keys, b.keys), where
        # Bitwise on purpose: streamed payloads must be the *same
        # arrays*, so reductions happen in the same order.
        assert a.values.tobytes() == b.values.tobytes(), where
        assert a.scale == b.scale, where


# --- streamed vs materialised bit-parity, five apps x four backends ---

#: app -> (dataset factory, scalar spec, job builder over the
#: materialised dataset).  The job is built ONCE and shared by the
#: streamed and materialised runs, so only the dataset flavour varies.
APP_CASES = {
    "SIO": (
        sio_dataset,
        dict(n_elements=30_000, chunk_elements=4_500, key_space=1 << 12, seed=7),
        lambda ds: sio_job(key_space=1 << 12),
    ),
    "WO": (
        wo_dataset,
        dict(n_chars=1 << 16, chunk_chars=10_000, n_words=500, seed=11),
        lambda ds: wo_job(N_WORKERS, n_words=500),
    ),
    "KMC": (
        kmc_dataset,
        dict(n_points=6_000, n_centers=8, dims=3, chunk_points=1_000, seed=5),
        lambda ds: kmc_job(ds),
    ),
    "LR": (
        lr_dataset,
        dict(n_points=8_000, chunk_points=1_500, seed=13),
        lambda ds: lr_job(),
    ),
    "MM": (
        mm_dataset,
        dict(m=256, tile=64, kspan=2, seed=17),
        lambda ds: mm_phase1_job(ds),
    ),
}


@pytest.mark.parametrize("app", sorted(APP_CASES))
@pytest.mark.parametrize("backend", BACKENDS)
def test_streamed_matches_materialised(app, backend):
    factory, spec, job_fn = APP_CASES[app]
    materialised = factory(**spec)
    stream = streamed(factory, **spec)
    assert stream.n_chunks == materialised.n_chunks
    job = job_fn(materialised).with_config(enable_stealing=False)
    ref = make_executor(backend, N_WORKERS).run(job, dataset=materialised)
    got = make_executor(backend, N_WORKERS).run(job, dataset=stream)
    _assert_outputs_identical(ref, got, f"{app}/{backend}/streamed")


def test_streamed_dataset_delegates_app_attributes():
    ds = kmc_dataset(**APP_CASES["KMC"][1])
    stream = streamed(kmc_dataset, **APP_CASES["KMC"][1])
    # kmc_job reads start_centers() off the dataset; the facade must
    # forward it (and refuse private names so pickle probes stay sane).
    assert np.array_equal(stream.start_centers(), ds.start_centers())
    with pytest.raises(AttributeError):
        stream._nonexistent_private


# --- kill -9 mid-map on a streamed run --------------------------------

@pytest.mark.parametrize("backend", PROCESS_BACKENDS)
def test_streamed_run_survives_mid_map_kill(backend):
    spec = dict(n_elements=42_000, chunk_elements=6_000, key_space=1 << 12, seed=9)
    job = sio_job(key_space=1 << 12).with_config(enable_stealing=False)
    clean = make_executor(backend, 3).run(
        job, dataset=streamed(sio_dataset, **spec)
    )
    faulted = make_executor(
        backend, 3, fault_plan=FaultPlan(kill_rank_at_chunk={1: 2})
    ).run(job, dataset=streamed(sio_dataset, **spec))
    # The respawned rank re-granted reclaimed *descriptor* chunks and
    # re-materialised their payloads locally — same answer, bit for bit.
    assert faulted.stats.chunks_reclaimed > 0
    _assert_outputs_identical(clean, faulted, f"SIO/{backend}/streamed-kill")


# --- reader unit tests ------------------------------------------------

def test_npy_span_reader_round_trip(tmp_path):
    arr = np.arange(23 * 4, dtype=np.int64).reshape(23, 4)
    path = tmp_path / "rows.npy"
    np.save(path, arr)
    reader = NpySpanReader(path, rows_per_chunk=5)
    assert reader.n_chunks == 5  # 4 full spans + a 3-row tail
    rebuilt = np.concatenate(
        [reader.materialize(i).data for i in range(reader.n_chunks)]
    )
    assert np.array_equal(rebuilt, arr)
    # chunk_meta is exact and payload-free: rows and row-bytes.
    assert reader.chunk_meta(0) == (5, 5 * 4 * 8)
    assert reader.chunk_meta(4) == (3, 3 * 4 * 8)
    # The span copy owns its bytes (not a view into the mmap).
    item = reader.materialize(1)
    assert item.data.base is None or not isinstance(
        item.data.base, np.memmap
    )


def test_text_span_reader_line_boundaries(tmp_path):
    lines = [f"word{i} " * (i % 5 + 1) for i in range(200)]
    blob = "\n".join(lines).encode() + b"\n"
    path = tmp_path / "corpus.txt"
    path.write_bytes(blob)
    reader = TextSpanReader(path, chunk_bytes=256)
    assert reader.n_chunks > 1
    spans = [reader.materialize(i).data for i in range(reader.n_chunks)]
    assert b"".join(s.tobytes() for s in spans) == blob
    for span in spans[:-1]:
        # No word is ever split: every non-final span ends on a newline.
        assert span[-1] == ord("\n")
    for span in spans:
        assert span.dtype == np.uint8


def test_text_span_reader_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_bytes(b"")
    with pytest.raises(ValueError, match="empty"):
        TextSpanReader(path, chunk_bytes=64)


def test_reader_pickle_round_trips_to_process_cache(tmp_path):
    np.save(tmp_path / "a.npy", np.arange(12, dtype=np.uint32))
    reader = NpySpanReader(tmp_path / "a.npy", rows_per_chunk=4)
    blob = pickle.dumps(reader)
    # Unpickling twice yields the *same* cached instance: one open
    # mmap / boundary scan per (path, geometry) per worker process,
    # however many descriptor chunks name it.
    r1, r2 = pickle.loads(blob), pickle.loads(blob)
    assert r1 is r2
    assert np.array_equal(r1.materialize(0).data, reader.materialize(0).data)


def test_dataset_reader_rejects_live_object_specs():
    with pytest.raises(TypeError):
        DatasetReader(sio_dataset, {"n_elements": 1024, "rng": object()})


# --- satellite 1: chunk codec past ten arrays -------------------------

def test_chunk_codec_preserves_order_past_ten_arrays():
    # 12 distinct arrays: the npz member names run arr0..arr11, and a
    # lexicographic sort would interleave arr10/arr11 before arr2 —
    # the regression the numeric-suffix sort fixes.
    payload = tuple(
        np.full(3, i, dtype=np.int32) + np.arange(3, dtype=np.int32)
        for i in range(12)
    )
    chunk = Chunk(index=4, data=payload, logical_items=36, logical_bytes=144)
    rebuilt = Chunk.from_bytes(chunk.to_bytes())
    assert isinstance(rebuilt.data, tuple) and len(rebuilt.data) == 12
    for i, (a, b) in enumerate(zip(payload, rebuilt.data)):
        assert np.array_equal(a, b), f"array {i} out of order"
    assert rebuilt.index == 4
    assert rebuilt.logical_items == 36
    assert rebuilt.logical_bytes == 144


def test_descriptor_chunk_pickles_small_and_rematerialises(tmp_path):
    np.save(tmp_path / "d.npy", np.arange(1 << 16, dtype=np.uint32))
    reader = NpySpanReader(tmp_path / "d.npy", rows_per_chunk=1 << 14)
    items, bytes_ = reader.chunk_meta(2)
    chunk = Chunk.from_descriptor(reader, 2, items, bytes_)
    assert not chunk.materialized
    blob = pickle.dumps(chunk)
    # Descriptor-only on the wire: far smaller than the 64 KiB payload.
    assert len(blob) < 4096
    clone = pickle.loads(blob)
    assert np.array_equal(clone.data, reader.materialize(2).data)
    clone.release()
    assert not clone.materialized
    assert np.array_equal(clone.data, reader.materialize(2).data)


# --- satellite 2: per-key cache build locks ---------------------------

def test_dataset_cache_builds_once_under_contention():
    obs = Observability()
    cache = DatasetCache(max_entries=8, obs=obs)
    specs = [
        {"n_elements": 4096, "chunk_elements": 1024, "seed": 1},
        {"n_elements": 4096, "chunk_elements": 1024, "seed": 2},
    ]
    got = []
    lock = threading.Lock()

    def worker(spec):
        ds, _hit = cache.get("SIO", spec)
        with lock:
            got.append((spec["seed"], ds))

    threads = [
        threading.Thread(target=worker, args=(specs[i % 2],))
        for i in range(16)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Exactly one ingest per distinct spec, every caller sharing it.
    assert obs.metrics.counter("dataset_cache_misses").value == 2
    assert obs.metrics.counter("dataset_cache_hits").value == 14
    for seed in (1, 2):
        objs = {id(ds) for s, ds in got if s == seed}
        assert len(objs) == 1, f"seed {seed} built more than once"


def test_dataset_cache_stream_flag_builds_streamed_entry():
    cache = DatasetCache(max_entries=8)
    spec = {"n_elements": 4096, "chunk_elements": 1024, "seed": 3}
    plain, hit = cache.get("SIO", dict(spec))
    assert not hit and not isinstance(plain, StreamedDataset)
    stream, hit = cache.get("SIO", {**spec, "stream": True})
    assert not hit and isinstance(stream, StreamedDataset)
    # Distinct entries: the flag is part of the key, not of the spec
    # handed to the factory.
    again, hit = cache.get("SIO", {**spec, "stream": True})
    assert hit and again is stream
    assert len(cache) == 2


# --- satellite 3: pool retires a lease whose reset fails --------------

def test_pool_retires_executor_when_reset_raises():
    pool = ExecutorPool()
    ex = pool.lease("serial", 2)

    def broken_reset():
        raise RuntimeError("reset exploded")

    ex.reset = broken_reset
    with pytest.raises(RuntimeError, match="reset exploded"):
        pool.release(ex)
    # The broken lease was closed, not shelved: the next lease must
    # not inherit un-resettable state.
    assert ex.closed
    assert pool.idle_count == 0
    replacement = pool.lease("serial", 2)
    assert replacement is not ex
    pool.release(replacement)
    pool.close()


# --- satellite 4: canonical content-based freeze keys -----------------

def test_freeze_rejects_address_bearing_reprs():
    # A default repr embeds the object's address — such a key would
    # never match again, silently defeating the pool/cache.  Rejecting
    # is the fix; keying on repr was the bug.
    with pytest.raises(TypeError, match="canonicalise"):
        freeze_kwargs({"obs": object()})


def test_freeze_distinguishes_truncation_colliding_arrays():
    a = np.arange(10_000, dtype=np.int64)
    b = a.copy()
    b[5_000] += 1
    # repr() truncates both to "[0 1 2 ... 9997 9998 9999]" — a repr
    # key would collide these distinct specs onto one cache entry.
    assert repr(a) == repr(b)
    assert freeze_value(a) != freeze_value(b)
    # ...while genuinely equal arrays (even non-contiguous views that
    # compare equal) share a key.
    assert freeze_value(a) == freeze_value(np.arange(10_000, dtype=np.int64))
    assert freeze_kwargs({"x": 1, "y": a}) == freeze_kwargs({"y": b - (b - a), "x": 1})


def test_freeze_plans_and_scalars_share_keys_by_value():
    plan_a = FaultPlan(kill_rank_at_chunk={1: 2})
    plan_b = FaultPlan(kill_rank_at_chunk={1: 2})
    assert freeze_value(plan_a) == freeze_value(plan_b)
    assert freeze_value(True) != freeze_value(1)  # no bool/int aliasing

"""End-to-end tests of the GPMR pipeline with a toy counting job.

The toy job is SIO-shaped: map emits <key, 1> per integer; reduce sums.
Every pipeline configuration (plain, partial-reduce, combiner,
accumulator, no-partitioner, skip-sort-reduce) must produce exactly the
reference counts, at every GPU count.
"""

import numpy as np
import pytest

from repro.core import (
    Chunk,
    GPMRRuntime,
    KeyValueSet,
    MapReduceJob,
    Mapper,
    PipelineConfig,
    Reducer,
    RoundRobinPartitioner,
    SumAccumulator,
    SumCombiner,
    SumPartialReducer,
)
from repro.primitives import launch_1d, segmented_reduce
from repro.workloads import IntegerDataset

KEY_SPACE = 64


class CountMapper(Mapper):
    """Emit <key, 1> per input integer."""

    def map_chunk(self, chunk):
        data = chunk.data
        return KeyValueSet(
            keys=data.astype(np.uint32),
            values=np.ones(len(data), dtype=np.int64),
            scale=chunk.scale,
        )

    def map_cost(self, chunk):
        return [
            launch_1d(
                "count_map",
                chunk.logical_items,
                flops_per_item=1.0,
                read_bytes_per_item=4.0,
                write_bytes_per_item=8.0,
            )
        ]


class SumReducer(Reducer):
    """Sum each key's values."""

    def reduce_segments(self, keys, values, offsets, counts, scale):
        sums = segmented_reduce(values, offsets)
        return KeyValueSet(keys=keys, values=sums, scale=scale)

    def reduce_cost(self, n_values, n_keys):
        return [
            launch_1d(
                "count_reduce",
                n_values,
                flops_per_item=1.0,
                read_bytes_per_item=8.0,
                write_bytes_per_item=8.0 * n_keys / max(n_values, 1),
            )
        ]


def make_dataset(n=20_000, chunk=2_500, seed=11):
    return IntegerDataset(
        n_elements=n, chunk_elements=chunk, key_space=KEY_SPACE, seed=seed
    )


def reference_counts(dataset):
    counts = np.zeros(KEY_SPACE, dtype=np.int64)
    for c in dataset.chunks():
        counts += np.bincount(c.data, minlength=KEY_SPACE)
    return counts


def result_counts(result):
    merged = result.merged()
    counts = np.zeros(KEY_SPACE, dtype=np.int64)
    np.add.at(counts, merged.keys.astype(np.int64), merged.values.astype(np.int64))
    return counts


def count_job(name="toy-count", **kwargs):
    defaults = dict(
        mapper=CountMapper(),
        reducer=SumReducer(),
        partitioner=RoundRobinPartitioner(),
        key_bytes=4,
        value_bytes=8,
        key_bits=int(np.ceil(np.log2(KEY_SPACE))),
    )
    defaults.update(kwargs)
    return MapReduceJob(name=name, **defaults)


@pytest.mark.parametrize("n_gpus", [1, 2, 4, 8])
def test_counts_exact_at_every_gpu_count(n_gpus):
    ds = make_dataset()
    result = GPMRRuntime(n_gpus=n_gpus).run(count_job(), ds)
    np.testing.assert_array_equal(result_counts(result), reference_counts(ds))


def test_output_keys_unique_across_ranks():
    ds = make_dataset()
    result = GPMRRuntime(n_gpus=4).run(count_job(), ds)
    merged = result.merged()
    assert len(np.unique(merged.keys)) == len(merged.keys)


def test_round_robin_partitioner_places_keys_on_owning_rank():
    ds = make_dataset()
    result = GPMRRuntime(n_gpus=4).run(count_job(), ds)
    for rank, kv in enumerate(result.outputs):
        assert kv is not None
        assert np.all(kv.keys % 4 == rank)


def test_partial_reduce_same_result_less_traffic():
    ds = make_dataset()
    plain = GPMRRuntime(n_gpus=4).run(count_job(), ds)
    pr = GPMRRuntime(n_gpus=4).run(
        count_job(partial_reducer=SumPartialReducer()), ds
    )
    np.testing.assert_array_equal(result_counts(pr), reference_counts(ds))
    # 64 unique keys per chunk vs 2500 raw pairs: traffic must collapse.
    assert pr.stats.total_network_bytes < plain.stats.total_network_bytes / 5


def test_combiner_same_result_less_traffic():
    ds = make_dataset()
    plain = GPMRRuntime(n_gpus=4).run(count_job(), ds)
    cb = GPMRRuntime(n_gpus=4).run(count_job(combiner=SumCombiner()), ds)
    np.testing.assert_array_equal(result_counts(cb), reference_counts(ds))
    assert cb.stats.total_network_bytes < plain.stats.total_network_bytes / 5


def test_accumulator_same_result_minimal_traffic():
    ds = make_dataset()
    acc = GPMRRuntime(n_gpus=4).run(
        count_job(
            accumulator=SumAccumulator(KEY_SPACE, value_dtype=np.int64),
        ),
        ds,
    )
    np.testing.assert_array_equal(result_counts(acc), reference_counts(ds))
    # 4 ranks x 64 keys x 12B: tiny.
    assert acc.stats.total_network_bytes < 64 * 4 * 12 * 4


def test_no_partitioner_sends_everything_to_rank0():
    ds = make_dataset(n=5_000, chunk=1_000)
    result = GPMRRuntime(n_gpus=3).run(count_job(partitioner=None), ds)
    assert result.outputs[0] is not None and len(result.outputs[0]) == KEY_SPACE
    for kv in result.outputs[1:]:
        assert kv is None or len(kv) == 0
    np.testing.assert_array_equal(result_counts(result), reference_counts(ds))


def test_skip_sort_reduce_returns_shuffled_pairs():
    ds = make_dataset(n=4_000, chunk=1_000)
    job = count_job(
        reducer=None, config=PipelineConfig(skip_sort_reduce=True)
    )
    result = GPMRRuntime(n_gpus=2).run(job, ds)
    total_pairs = sum(len(kv) for kv in result.outputs if kv is not None)
    assert total_pairs == 4_000
    np.testing.assert_array_equal(result_counts(result), reference_counts(ds))


def test_double_buffer_is_faster_or_equal():
    ds = make_dataset(n=40_000, chunk=2_000)
    on = GPMRRuntime(n_gpus=2).run(count_job(), ds)
    off = GPMRRuntime(n_gpus=2).run(
        count_job(config=PipelineConfig(double_buffer=False)), ds
    )
    assert on.elapsed <= off.elapsed + 1e-12
    np.testing.assert_array_equal(result_counts(on), result_counts(off))


def test_more_gpus_is_faster_for_plain_counting():
    ds = make_dataset(n=80_000, chunk=2_000)
    t1 = GPMRRuntime(n_gpus=1).run(count_job(), ds).elapsed
    t4 = GPMRRuntime(n_gpus=4).run(count_job(), ds).elapsed
    assert t4 < t1


def test_stats_structure():
    ds = make_dataset()
    result = GPMRRuntime(n_gpus=2).run(count_job(), ds)
    stats = result.stats
    assert stats.n_gpus == 2
    assert stats.elapsed > 0
    assert stats.total_chunks == 8  # 20000 / 2500
    fr = stats.stage_fractions
    assert abs(sum(fr.values()) - 1.0) < 1e-9
    assert stats.total_pairs_logical == 20_000
    assert "toy-count" in stats.describe()


def test_stealing_balances_single_node_distribution():
    # All chunks start on worker 0's queue; stealing must spread work.
    ds = make_dataset(n=40_000, chunk=2_000)
    rt = GPMRRuntime(n_gpus=4, initial_distribution="single")
    result = rt.run(count_job(), ds)
    np.testing.assert_array_equal(result_counts(result), reference_counts(ds))
    assert result.stats.total_steals > 0
    # Thieves actually mapped chunks.
    mapped = [w.chunks_mapped for w in result.stats.workers]
    assert sum(mapped[1:]) > 0
    # The scheduler's steal count is surfaced per worker: the owner of
    # the initial queue steals nothing, every thief's ledger is its own
    # stolen-chunk count, and the total is the scheduler's total.
    per_worker = result.stats.steals_by_worker
    assert per_worker[0] == 0
    assert sum(per_worker) == result.stats.total_steals
    assert all(s >= 0 for s in per_worker)
    assert [w.chunks_stolen for w in result.stats.workers] == per_worker


def test_sim_run_emits_replayable_schedule_trace():
    """Every sim run records its grant log; the trace's ledgers match
    the per-worker stats exactly (grant-for-grant bookkeeping)."""
    ds = make_dataset(n=40_000, chunk=2_000)
    rt = GPMRRuntime(n_gpus=4, initial_distribution="single")
    result = rt.run(count_job(), ds)
    trace = result.schedule
    assert trace is not None
    assert len(trace) == result.stats.total_chunks
    assert trace.total_steals == result.stats.total_steals > 0
    assert trace.steals_by_worker(4) == result.stats.steals_by_worker
    assert trace.chunk_counts(4) == [
        w.chunks_mapped for w in result.stats.workers
    ]
    # Replaying the trace reproduces the run, modeled time included.
    again = GPMRRuntime(n_gpus=4, initial_distribution="single").run(
        count_job(), ds, schedule=trace
    )
    np.testing.assert_array_equal(result_counts(again), reference_counts(ds))
    assert again.elapsed == result.elapsed
    assert again.schedule == trace


def test_stealing_disabled_respects_config():
    ds = make_dataset(n=10_000, chunk=2_500)  # 4 chunks
    job = count_job(config=PipelineConfig(enable_stealing=False))
    rt = GPMRRuntime(n_gpus=2, initial_distribution="blocks")
    result = rt.run(job, ds)
    assert result.stats.total_steals == 0
    np.testing.assert_array_equal(result_counts(result), reference_counts(ds))


def test_explicit_chunks_accepted():
    data = np.array([1, 1, 2], dtype=np.uint32)
    chunk = Chunk(index=0, data=data, logical_items=3, logical_bytes=12)
    result = GPMRRuntime(n_gpus=1).run(count_job(), chunks=[chunk])
    merged = result.merged()
    assert dict(zip(merged.keys.tolist(), merged.values.tolist())) == {1: 2, 2: 1}


def test_dataset_and_chunks_mutually_exclusive():
    ds = make_dataset()
    with pytest.raises(ValueError):
        GPMRRuntime(n_gpus=1).run(count_job(), ds, chunks=[])
    with pytest.raises(ValueError):
        GPMRRuntime(n_gpus=1).run(count_job())


def test_job_validation_rules():
    with pytest.raises(ValueError, match="mutually exclusive"):
        count_job(
            partial_reducer=SumPartialReducer(),
            accumulator=SumAccumulator(KEY_SPACE),
        )
    with pytest.raises(ValueError, match="Combine"):
        count_job(
            combiner=SumCombiner(), accumulator=SumAccumulator(KEY_SPACE)
        )
    with pytest.raises(ValueError, match="reducer"):
        count_job(config=PipelineConfig(skip_sort_reduce=True))


def test_runtime_validation():
    with pytest.raises(ValueError):
        GPMRRuntime(n_gpus=0)
    with pytest.raises(ValueError):
        GPMRRuntime(n_gpus=4096)
    with pytest.raises(ValueError):
        GPMRRuntime(n_gpus=1, initial_distribution="sideways")


def test_sampled_run_matches_sampled_reference():
    full = IntegerDataset(
        n_elements=64_000, chunk_elements=8_000, key_space=KEY_SPACE, seed=5
    )
    sampled = IntegerDataset(
        n_elements=64_000, chunk_elements=8_000, key_space=KEY_SPACE,
        seed=5, sample_factor=8,
    )
    result = GPMRRuntime(n_gpus=2).run(count_job(), sampled)
    np.testing.assert_array_equal(result_counts(result), reference_counts(sampled))
    # Logical pair count reflects full scale.
    assert result.stats.total_pairs_logical == 64_000
    # And the sampled run's exchange bytes match the full run's
    # (logical).  The self/remote split halves each share, so the same
    # sampling noise doubles in relative terms on the network-only
    # figure — compare the total tightly, the remote share a bit looser.
    full_res = GPMRRuntime(n_gpus=2).run(count_job(), full)
    assert (
        result.stats.total_network_bytes
        + result.stats.total_local_exchange_bytes
    ) == pytest.approx(
        full_res.stats.total_network_bytes
        + full_res.stats.total_local_exchange_bytes,
        rel=0.01,
    )
    assert result.stats.total_network_bytes == pytest.approx(
        full_res.stats.total_network_bytes, rel=0.02
    )
